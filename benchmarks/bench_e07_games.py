"""E7 — the bipartite hitting games (Lemmas 10 and 12).

Times batches of games and asserts the measured means respect the
floors.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import complete_game_floor, hitting_game_floor
from repro.lowerbounds import FreshRandomPlayer, HittingGame, play


def bench_hitting_game_c32_k2(benchmark):
    """20 fresh-player games at (c, k) = (32, 2)."""

    def run():
        rounds = []
        for seed in range(20):
            game = HittingGame(c=32, k=2, seed=seed)
            rounds.append(play(game, FreshRandomPlayer(seed=seed + 1)).rounds)
        return rounds

    rounds = benchmark(run)
    assert float(np.mean(rounds)) >= hitting_game_floor(32, 2)


def bench_complete_game_c27(benchmark):
    """20 fresh-player complete games at c = 27 (Lemma 12)."""

    def run():
        rounds = []
        for seed in range(20):
            game = HittingGame(c=27, k=27, seed=seed)
            rounds.append(play(game, FreshRandomPlayer(seed=seed + 1)).rounds)
        return rounds

    rounds = benchmark(run)
    assert float(np.mean(rounds)) >= complete_game_floor(27)
