"""E9 — the Theorem 14 broadcast floor on channel-disjoint trees.

Times CGCAST on a depth-3 Theorem 14 tree and asserts its dissemination
cost respects the analytic floor.
"""

from __future__ import annotations

from repro.baselines import broadcast_floor, tree_broadcast_floor
from repro.core import CGCast
from repro.graphs import build_theorem14_tree


def bench_cgcast_theorem14_tree(benchmark):
    """CGCAST on the complete channel-disjoint tree (c=4, depth=3)."""
    net = build_theorem14_tree(c=4, depth=3, seed=1)
    floor = tree_broadcast_floor(
        c=4, delta=net.max_degree, depth=3
    )

    def run():
        return CGCast(net, source=0, seed=2).run()

    result = benchmark(run)
    assert result.success
    assert result.ledger.get("dissemination") >= floor
    # The omniscient greedy schedule also respects the analytic floor.
    assert broadcast_floor(net, source=0) >= floor
