"""E4 — the CKSEEK filter (Theorem 6).

Times a khat-filter run on a heterogeneous network and asserts both the
filter guarantee and the schedule saving over full CSEEK.
"""

from __future__ import annotations

from repro.core import CKSeek, exchange_slot_cost, verify_k_discovery
from repro.graphs import build_network, random_regular


def _hetero_net():
    graph = random_regular(20, 4, seed=3)
    return build_network(
        graph, c=16, k=2, seed=3, kind="heterogeneous", kmax=4
    )


def bench_ckseek_khat4(benchmark):
    """CKSEEK with khat = kmax = 4 on a 20-node heterogeneous network."""
    net = _hetero_net()
    khat = 4
    delta_khat = net.max_good_degree(khat)

    def run():
        return CKSeek(
            net, khat=khat, delta_khat=delta_khat, seed=5
        ).run()

    result = benchmark(run)
    assert verify_k_discovery(result, net, khat=khat).success
    # Theorem 6: the filter is strictly cheaper than full discovery
    # (exchange_slot_cost is exactly full CSEEK's scheduled length).
    from repro.core import ProtocolConstants

    full_slots = exchange_slot_cost(
        net.knowledge(), ProtocolConstants.fast()
    )
    assert result.total_slots < full_slots
