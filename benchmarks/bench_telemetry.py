"""Telemetry overhead: the same CSEEK workload with recording on vs off.

The telemetry subsystem's contract is *near-zero overhead*: disabled,
every instrumentation site is one truthiness check (``repro.obs.count``)
or a shared ``nullcontext`` (``repro.obs.span``); enabled, each hit is a
dict update plus (for spans) two monotonic clock reads. This pair pins
that contract on the end-to-end workload the CI regression gate already
tracks — 16 full CSEEK protocol executions on the E2 regular topology,
trial-batched. ``compare_bench`` gates the on/off ratio at 1.05x: if
instrumentation ever creeps into a per-slot inner loop, this is the
benchmark that catches it.
"""

from __future__ import annotations

from repro import obs
from repro.core import CSeekBatch
from repro.graphs import build_network, random_regular

CSEEK_TRIALS = 16


def _e2_net():
    """E2's standard discovery workload: 20-node 4-regular, c=8, k=2."""
    return build_network(random_regular(20, 4, seed=7), c=8, k=2, seed=11)


def bench_cseek16_telemetry_off(benchmark):
    """The reference: batched CSEEK with no recorder active."""
    net = _e2_net()
    seeds = list(range(100, 100 + CSEEK_TRIALS))
    runner = CSeekBatch(net)
    assert not obs.enabled()
    results = benchmark(runner.run, seeds)
    assert len(results) == CSEEK_TRIALS


def bench_cseek16_telemetry_on(benchmark):
    """The same workload recorded under a live telemetry recorder."""
    net = _e2_net()
    seeds = list(range(100, 100 + CSEEK_TRIALS))
    runner = CSeekBatch(net)

    def run():
        obs.start()
        try:
            return runner.run(seeds)
        finally:
            obs.stop()

    results = benchmark(run)
    assert len(results) == CSEEK_TRIALS
    assert not obs.enabled()
