"""Harness throughput: serial vs process-parallel vs batched trials.

The paper's guarantees are w.h.p. statements, so statistical confidence
scales with trial throughput — this benchmark tracks the executor
layer's strategies on the workloads where each one matters. All
strategies produce bit-identical results (pinned by tests/test_harness
and tests/test_executor); the interesting number is wall-clock.

* ``trials64_*``: one heavy homogeneous COUNT sweep point (E1's shape
  with the paper-exact first-crossing rule: ~5k-slot steps), 64 Monte
  Carlo trials. On a multi-core runner ``jobs4`` should beat ``serial``
  by ~2x or better; single-core it only pays the pool fee. ``batched``
  is roughly a wash here — after the engine's BLAS-backed resolve, a
  heavy trial is already one big matmul and batching adds memory
  traffic.
* ``backoff64_*``: 64 independent CSEEK part-two back-off windows
  (tiny ``lg Delta``-slot steps). Per-call overhead dominates, so the
  batched axis wins outright.
* ``cseek16_*``: 16 *full CSEEK protocol executions* on the E2 regular
  workload, serial vs trial-batched (``CSeekBatch``). This is the
  end-to-end pair the CI regression gate tracks: the batched runner
  turns every part-one step and part-two window into one engine call
  across all trials, so it must beat the serial loop outright.
* ``jammed_cseek16_*``: the same 16-trial protocol pair under heavy
  Markov primary-user traffic (the E12 workload shape). The serial
  reference advances one sequential occupancy stream per trial; the
  batched runner rides a ``MarkovTraffic`` spectrum environment whose
  ON/OFF recurrence runs once for the whole trial axis — the gate pins
  that the jammed batched path keeps beating the jammed serial loop.
* ``e1_table_serial``: a full experiment table end-to-end, the number
  users actually wait on.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    CSeek,
    CSeekBatch,
    ProtocolConstants,
    resolve_backoff_batch,
    run_count_step,
    run_count_step_batch,
)
from repro.core.cseek import backoff_probabilities
from repro.graphs import build_network, random_regular
from repro.harness import run_experiment, run_trials
from repro.sim import MarkovTraffic
from repro.sim.engine import resolve_step

TRIALS = 64
# The paper-exact rule implies long rounds — a deliberately heavy trial.
HEAVY_CONSTS = ProtocolConstants(
    count_rule="first_crossing", count_round_slots=192.0
)


def _count_workload(m=32):
    """E1's sweep-point topology: one listener, m broadcasters."""
    n = m + 1
    adj = np.zeros((n, n), dtype=bool)
    adj[0, 1:] = True
    adj[1:, 0] = True
    channels = np.zeros(n, dtype=np.int64)
    tx_role = np.ones(n, dtype=bool)
    tx_role[0] = False
    return adj, channels, tx_role


def _count_trial():
    adj, channels, tx_role = _count_workload()

    def trial(s: int) -> float:
        out = run_count_step(
            adj,
            channels,
            tx_role,
            max_count=32,
            log_n=5,
            constants=HEAVY_CONSTS,
            rng=np.random.default_rng(s),
        )
        return float(out.estimates[0])

    def run_batch(seeds):
        out = run_count_step_batch(
            adj,
            channels,
            tx_role,
            max_count=32,
            log_n=5,
            constants=HEAVY_CONSTS,
            rngs=[np.random.default_rng(s) for s in seeds],
        )
        return [float(e) for e in out.estimates[:, 0]]

    trial.run_batch = run_batch
    return trial


def bench_trials64_serial(benchmark):
    """64 heavy COUNT trials, one at a time (the reference)."""
    trial = _count_trial()
    out = benchmark(run_trials, trial, TRIALS, 7)
    assert len(out) == TRIALS


def bench_trials64_jobs4(benchmark):
    """64 heavy COUNT trials across 4 worker processes."""
    trial = _count_trial()
    out = benchmark(
        lambda: run_trials(trial, TRIALS, 7, executor=4)
    )
    assert len(out) == TRIALS


def bench_trials64_batched(benchmark):
    """64 heavy COUNT trials as one vectorized resolve."""
    trial = _count_trial()
    out = benchmark(
        lambda: run_trials(trial, TRIALS, 7, executor="batch")
    )
    assert len(out) == TRIALS


def _backoff_workload():
    rng = np.random.default_rng(0)
    n = 20
    adj = rng.random((n, n)) < 0.3
    adj = np.triu(adj, 1)
    adj = adj | adj.T
    channels = rng.integers(0, 4, size=n)
    tx_role = rng.random(n) < 0.5
    return adj, channels, tx_role


def bench_backoff64_serial(benchmark):
    """64 part-two back-off windows resolved one step at a time."""
    adj, channels, tx_role = _backoff_workload()
    n = adj.shape[0]
    backoff_len = 5
    probs = backoff_probabilities(backoff_len)

    def run():
        outs = []
        for s in range(TRIALS):
            rng = np.random.default_rng(s)
            coins = rng.random((backoff_len, n)) < probs[:, None]
            outs.append(resolve_step(adj, channels, tx_role, coins))
        return outs

    assert len(benchmark(run)) == TRIALS


def bench_backoff64_batched(benchmark):
    """64 part-two back-off windows in one batched resolve."""
    adj, channels, tx_role = _backoff_workload()
    backoff_len = 5

    def run():
        return resolve_backoff_batch(
            adj,
            channels,
            tx_role,
            backoff_len,
            [np.random.default_rng(s) for s in range(TRIALS)],
        )

    assert benchmark(run).num_trials == TRIALS


CSEEK_TRIALS = 16


def _e2_net():
    """E2's standard discovery workload: 20-node 4-regular, c=8, k=2."""
    return build_network(random_regular(20, 4, seed=7), c=8, k=2, seed=11)


def bench_cseek16_serial(benchmark):
    """16 full CSEEK protocol runs, one trial at a time (the reference)."""
    net = _e2_net()
    seeds = list(range(100, 100 + CSEEK_TRIALS))

    def run():
        return [CSeek(net, seed=s).run() for s in seeds]

    results = benchmark(run)
    assert len(results) == CSEEK_TRIALS


def bench_cseek16_batched(benchmark):
    """16 full CSEEK protocol runs in lockstep across the trial axis."""
    net = _e2_net()
    seeds = list(range(100, 100 + CSEEK_TRIALS))
    runner = CSeekBatch(net)
    results = benchmark(runner.run, seeds)
    assert len(results) == CSEEK_TRIALS


def _jammed_workload():
    """The E12 shape: the E2 network under 60%-occupancy Markov bursts."""
    net = _e2_net()
    env = MarkovTraffic(
        sorted(net.assignment.universe()),
        activity=0.6,
        mean_dwell=8.0,
        seed_offset=1000,
    )
    return net, env


def bench_jammed_cseek16_serial(benchmark):
    """16 jammed CSEEK runs, one trial (and occupancy stream) at a time."""
    net, env = _jammed_workload()
    seeds = list(range(100, 100 + CSEEK_TRIALS))

    def run():
        return [
            CSeek(net, seed=s, environment=env).run() for s in seeds
        ]

    results = benchmark(run)
    assert len(results) == CSEEK_TRIALS


def bench_jammed_cseek16_batched(benchmark):
    """16 jammed CSEEK runs with one batched occupancy recurrence."""
    net, env = _jammed_workload()
    seeds = list(range(100, 100 + CSEEK_TRIALS))
    runner = CSeekBatch(net, environment=env)
    results = benchmark(runner.run, seeds)
    assert len(results) == CSEEK_TRIALS


def bench_e1_table_serial(benchmark):
    """Full E1 table (12 sweep points) with the serial reference."""
    table = benchmark(lambda: run_experiment("E1", trials=8, seed=3))
    assert table.rows
