"""Cross-point lockstep batching vs per-point batching on a real sweep.

``jobs="batch"`` already locksteps the trials of one sweep point; a
multi-point sweep still pays the per-step Python and engine-dispatch
overhead once per point. ``jobs="xbatch"`` concatenates every
compatible point's trial axis and pays it once per *group* — the win
this PR's tentpole bought, pinned here end to end:

* ``xpoint16_batch``: a 16-point CSEEK sweep (one replication axis —
  each point samples a fresh 10-node 4-regular network of the same
  shape) executed point by point through ``CSeekBatch``.
* ``xpoint16_xbatch``: the identical sweep (byte-identical rows — the
  equivalence is pinned by tests/test_xbatch.py) as cross-point
  lockstep groups. With only 4 trials per point, per-step overhead
  dominates the per-point path, and the compare gate's ratio check
  requires the grouped run to finish in at most ~2/3 of the per-point
  time (>= 1.5x end-to-end).
"""

from __future__ import annotations

from repro.scenarios import (
    AssignmentSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    run_scenario_spec,
)

POINTS = 16
TRIALS = 4


def _sweep_spec() -> ScenarioSpec:
    """A replication-axis CSEEK sweep: 16 same-shape points, 4 trials.

    Every point's network is freshly sampled (the seeded topology
    defaults its seed to the point's ``pseed``), so the sweep is the
    honest many-small-points workload: same lockstep signature, fresh
    adjacency per point, too few trials per point for per-point
    batching to amortize its per-step overhead.
    """
    return ScenarioSpec(
        name="xpoint-bench",
        title="cross-point batching benchmark sweep",
        trials=TRIALS,
        sweep=SweepSpec(axes={"rep": list(range(POINTS))}),
        topology=TopologySpec("random_regular", {"n": 10, "d": 4}),
        assignment=AssignmentSpec(c=8, k=2),
        protocol=ProtocolSpec("cseek", {"part1_steps": 100}),
    )


def bench_xpoint16_batch(benchmark):
    """The per-point reference: one CSeekBatch execution per point."""
    spec = _sweep_spec()
    table = benchmark(lambda: run_scenario_spec(spec, seed=0, jobs="batch"))
    assert len(table.rows) == POINTS


def bench_xpoint16_xbatch(benchmark):
    """The same sweep as one cross-point lockstep group."""
    spec = _sweep_spec()
    table = benchmark(lambda: run_scenario_spec(spec, seed=0, jobs="xbatch"))
    assert len(table.rows) == POINTS
