"""E8 — the Lemma 11 reduction and Theorem 13.

Times the CSEEK-driven reduction player and asserts its meeting time
respects the game floor.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import hitting_game_floor
from repro.lowerbounds import CSeekReductionPlayer, HittingGame, play


def bench_reduction_player_c16_k2(benchmark):
    """10 reduction-driven games at (c, k) = (16, 2)."""

    def run():
        rounds = []
        for seed in range(10):
            player = CSeekReductionPlayer(k=2, seed=seed)
            game = HittingGame(c=16, k=2, seed=seed + 17)
            budget = 4 * player.schedule_slots(16)
            transcript = play(game, player, max_rounds=budget)
            assert transcript.won
            rounds.append(transcript.rounds)
        return rounds

    rounds = benchmark(run)
    assert float(np.mean(rounds)) >= hitting_game_floor(16, 2)
