"""Micro-benchmarks of the slot engine (implementation health).

Not tied to a paper claim; tracks the cost of the primitives every
protocol run is built from.
"""

from __future__ import annotations

import numpy as np

from repro.sim.engine import resolve_step, resolve_step_batch, resolve_varying


def _random_net(n, seed):
    rng = np.random.default_rng(seed)
    adj = rng.random((n, n)) < 0.2
    adj = np.triu(adj, 1)
    adj = adj | adj.T
    return adj, rng


def bench_resolve_step_n100_t64(benchmark):
    """Fixed-channel step: 64 slots, 100 nodes."""
    adj, rng = _random_net(100, 1)
    channels = rng.integers(0, 8, size=100)
    tx_role = rng.random(100) < 0.5
    coins = rng.random((64, 100)) < 0.3

    out = benchmark(resolve_step, adj, channels, tx_role, coins)
    assert out.heard_from.shape == (64, 100)


def bench_resolve_step_batch_b32_n100_t64(benchmark):
    """Batched trial axis: 32 trials of a 64-slot step in one resolve."""
    adj, rng = _random_net(100, 3)
    channels = rng.integers(0, 8, size=100)
    tx_role = rng.random(100) < 0.5
    coins = rng.random((32, 64, 100)) < 0.3

    out = benchmark(resolve_step_batch, adj, channels, tx_role, coins)
    assert out.heard_from.shape == (32, 64, 100)


def bench_heard_sets_n100_t512(benchmark):
    """Distinct-sender extraction across a long step."""
    adj, rng = _random_net(100, 4)
    channels = rng.integers(0, 8, size=100)
    tx_role = rng.random(100) < 0.5
    coins = rng.random((512, 100)) < 0.3
    out = resolve_step(adj, channels, tx_role, coins)

    sets = benchmark(out.heard_sets)
    assert len(sets) == 100


def bench_resolve_varying_n100_t256(benchmark):
    """Per-slot re-hopping: 256 slots, 100 nodes."""
    adj, rng = _random_net(100, 2)
    channels = rng.integers(0, 8, size=(256, 100))
    tx = rng.random((256, 100)) < 0.3

    out = benchmark(resolve_varying, adj, channels, tx)
    assert out.heard_from.shape == (256, 100)
