"""E11 — amortized repeated broadcast (extension of Theorem 9).

Times a schedule reuse (one redissemination over an existing CGCAST
setup) and asserts it costs a small fraction of the setup.
"""

from __future__ import annotations

import pytest

from repro.core import CGCast, redisseminate


@pytest.fixture(scope="module")
def broadcast_setup(clique_chain_net):
    result = CGCast(clique_chain_net, source=0, seed=1).run()
    assert result.success
    return result


def bench_redisseminate(benchmark, clique_chain_net, broadcast_setup):
    """One message over the reusable schedule (dissemination only)."""

    def run():
        return redisseminate(
            clique_chain_net, broadcast_setup, source=5, seed=3
        )

    diss = benchmark(run)
    assert diss.success
    assert diss.ledger.total < broadcast_setup.total_slots / 10
