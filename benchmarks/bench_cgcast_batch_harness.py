"""End-to-end CGCAST throughput: serial trial loop vs lockstep batch.

PR 2 batched CGCAST's discovery phase; this PR's tentpole locksteps the
whole pipeline — exchanges, coloring, dissemination — across the trial
axis through ``CGCastBatch``. This pair pins that win end to end:

* ``cgcast16_serial``: 16 full CGCAST executions on the E2-shaped
  workload (20-node 4-regular, c=8, k=2), one ``CGCast.run`` per seed —
  the reference semantics.
* ``cgcast16_batched``: the identical 16 trials (bit-identical per
  trial — pinned by tests/test_cgcast_batch.py) through one
  ``CGCastBatch.run``. Discovery resolves one engine call per protocol
  step for all trials, and every dissemination (phase, color) step is
  one ``resolve_step_batch`` call, so the compare gate's ratio check
  requires the batched run to finish in at most ~2/3 of the serial
  time (>= 1.5x end-to-end).
"""

from __future__ import annotations

from repro.core import CGCast, CGCastBatch
from repro.graphs import build_network, random_regular

CGCAST_TRIALS = 16


def _workload():
    """The E2 discovery shape, pushed through the full CGCAST pipeline."""
    return build_network(random_regular(20, 4, seed=7), c=8, k=2, seed=11)


def bench_cgcast16_serial(benchmark):
    """16 full CGCAST runs, one trial at a time (the reference)."""
    net = _workload()
    seeds = list(range(100, 100 + CGCAST_TRIALS))

    def run():
        return [CGCast(net, seed=s).run() for s in seeds]

    results = benchmark(run)
    assert all(r.success for r in results)
    assert len(results) == CGCAST_TRIALS


def bench_cgcast16_batched(benchmark):
    """The same 16 trials as one end-to-end lockstep execution."""
    net = _workload()
    seeds = list(range(100, 100 + CGCAST_TRIALS))
    batch = CGCastBatch(net)

    def run():
        return batch.run(seeds)

    results = benchmark(run)
    assert all(r.success for r in results)
    assert len(results) == CGCAST_TRIALS
