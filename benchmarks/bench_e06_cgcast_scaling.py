"""E6 — CGCAST vs naive broadcast (Theorem 9).

Times one full CGCAST pipeline and one naive broadcast on the D~7
clique-chain workload, asserting delivery and the per-hop advantage of
the color-scheduled dissemination stage.
"""

from __future__ import annotations

from repro.baselines import NaiveBroadcast
from repro.core import CGCast


def bench_cgcast_clique_chain(benchmark, clique_chain_net):
    """Full CGCAST pipeline (discovery+coloring+dissemination)."""

    def run():
        return CGCast(clique_chain_net, source=0, seed=1).run()

    result = benchmark(run)
    assert result.success
    assert result.coloring_valid


def bench_naive_broadcast_clique_chain(benchmark, clique_chain_net):
    """Naive random-hopping broadcast on the same workload."""

    def run():
        return NaiveBroadcast(clique_chain_net, source=0, seed=1).run()

    result = benchmark(run)
    assert result.success


def bench_cgcast_dissemination_beats_naive_per_hop(
    benchmark, clique_chain_net
):
    """The dissemination stage's per-hop slots undercut naive's."""
    kn = clique_chain_net.knowledge()

    def run():
        cg = CGCast(clique_chain_net, source=0, seed=2).run()
        nv = NaiveBroadcast(clique_chain_net, source=0, seed=2).run()
        return cg, nv

    cg, nv = benchmark(run)
    assert cg.success and nv.success
    cg_per_hop = cg.ledger.get("dissemination") / kn.diameter
    nv_per_hop = nv.completion_slot / kn.diameter
    # Theorem 9's regime: Delta (4) << c^2/k (64) so the scheduled
    # dissemination should not be slower per hop than naive hopping.
    assert cg_per_hop <= 2 * nv_per_hop
