"""E5 — Luby line-graph coloring (Lemma 8, Fact 7).

Times one coloring of a 64-node 4-regular network's line graph and
asserts validity within the O(lg n) phase budget's constant.
"""

from __future__ import annotations

from repro.core import LineGraph, LubyEdgeColoring, is_valid_edge_coloring
from repro.graphs import build_network, random_regular


def bench_coloring_n64(benchmark):
    """2*Delta edge coloring, 64 nodes / 128 edges."""
    net = build_network(random_regular(64, 4, seed=9), c=8, k=2, seed=9)
    lg = LineGraph.from_edges(net.edges())
    kn = net.knowledge()

    def run():
        return LubyEdgeColoring(lg, kn, seed=4).run()

    result = benchmark(run)
    assert result.complete
    assert is_valid_edge_coloring(result.colors, lg.edges)
    assert result.phases_used <= 2 * result.scheduled_phases


def bench_coloring_n128(benchmark):
    """2*Delta edge coloring, 128 nodes / 256 edges."""
    net = build_network(random_regular(128, 4, seed=11), c=8, k=2, seed=11)
    lg = LineGraph.from_edges(net.edges())
    kn = net.knowledge()

    def run():
        return LubyEdgeColoring(lg, kn, seed=5).run()

    result = benchmark(run)
    assert result.complete
    assert is_valid_edge_coloring(result.colors, lg.edges)
