"""E10 — the Section 7 heterogeneity bias.

Times a starved CSEEK run on a heterogeneous network and asserts the
part-two bias toward strongly overlapping neighbors.
"""

from __future__ import annotations

import numpy as np

from repro.core import CSeek
from repro.graphs import build_network, random_regular


def bench_heterogeneity_bias(benchmark):
    """Starved CSEEK on kmax/k = 8; high-overlap pairs found more."""
    graph = random_regular(16, 3, seed=3)
    net = build_network(
        graph, c=32, k=1, seed=8, kind="heterogeneous", kmax=8
    )
    lo_pairs = [e for e in net.edges() if net.edge_overlap(*e) == 1]
    hi_pairs = [e for e in net.edges() if net.edge_overlap(*e) == 8]

    def run():
        lo_rates, hi_rates = [], []
        for seed in range(3):
            result = CSeek(
                net, seed=seed, part1_steps=300, part2_steps=400
            ).run()
            lo_rates.append(
                sum(
                    (v in result.discovered[u]) + (u in result.discovered[v])
                    for u, v in lo_pairs
                )
                / (2 * len(lo_pairs))
            )
            hi_rates.append(
                sum(
                    (v in result.discovered[u]) + (u in result.discovered[v])
                    for u, v in hi_pairs
                )
                / (2 * len(hi_pairs))
            )
        return float(np.mean(lo_rates)), float(np.mean(hi_rates))

    lo, hi = benchmark(run)
    assert hi > lo  # part two favors strongly overlapping neighbors
