"""E12 — discovery under primary-user interference (extension).

Times CSEEK with 30% short-burst channel occupancy and asserts the
schedule slack absorbs it.
"""

from __future__ import annotations

from repro.core import CSeek, verify_discovery
from repro.sim import PrimaryUserTraffic


def bench_cseek_under_interference(benchmark, regular_net):
    """CSEEK with 30% primary-user occupancy (dwell 4 slots)."""
    channels = sorted(regular_net.assignment.universe())

    def run():
        traffic = PrimaryUserTraffic(
            channels, activity=0.3, mean_dwell=4.0, seed=9
        )
        return CSeek(regular_net, seed=2, jammer=traffic).run()

    result = benchmark(run)
    assert verify_discovery(result, regular_net).success
