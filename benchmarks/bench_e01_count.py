"""E1 — COUNT accuracy and cost (Lemma 1).

Regenerates the E1 table rows: a single listener estimates ``m``
broadcasters; the benchmark times one COUNT execution and asserts the
constant-factor band on the estimate.
"""

from __future__ import annotations

import numpy as np

from repro.core import ProtocolConstants, run_count_step


def _star_inputs(m: int):
    n = m + 1
    adj = np.zeros((n, n), dtype=bool)
    adj[0, 1:] = True
    adj[1:, 0] = True
    channels = np.zeros(n, dtype=np.int64)
    tx_role = np.ones(n, dtype=bool)
    tx_role[0] = False
    return adj, channels, tx_role


def bench_count_argmax_m16(benchmark):
    """One COUNT execution with 16 broadcasters (argmax rule)."""
    adj, channels, tx_role = _star_inputs(16)
    consts = ProtocolConstants(count_rule="argmax", count_round_slots=8.0)
    rng = np.random.default_rng(1)

    def run():
        return run_count_step(
            adj, channels, tx_role,
            max_count=32, log_n=5, constants=consts, rng=rng,
        )

    out = benchmark(run)
    assert 16 / 4 <= out.estimates[0] <= 16 * 4


def bench_count_first_crossing_m16(benchmark):
    """One paper-rule COUNT execution (long rounds) with 16 broadcasters."""
    adj, channels, tx_role = _star_inputs(16)
    consts = ProtocolConstants(
        count_rule="first_crossing", count_round_slots=192.0
    )
    rng = np.random.default_rng(2)

    def run():
        return run_count_step(
            adj, channels, tx_role,
            max_count=32, log_n=5, constants=consts, rng=rng,
        )

    out = benchmark(run)
    assert out.estimates[0] > 0
