"""Benchmark regression gate: diff a fresh pytest-benchmark JSON against
the committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py \
        benchmarks/bench_parallel_harness.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' --benchmark-only \
        --benchmark-json=BENCH_new.json -q
    python benchmarks/compare_bench.py BENCH_new.json

Compares mean times per benchmark and prints a verdict table (also
appended to ``$GITHUB_STEP_SUMMARY`` when set, so the CI job summary
shows the diff without digging through logs). The exit code gates on
the *key* benchmarks only — the engine primitives and the
batched-vs-serial protocol pairs whose trajectory the ROADMAP tracks —
because pool-based and table-level timings are too runner-sensitive to
gate on. A key benchmark that got more than ``--threshold`` slower than
the baseline (default 30%, generous because CI runners are shared
hardware), or that vanished from either file, fails the comparison.
On top of the absolute diffs, hardware-independent *ratio gates*
(``RATIO_GATES``) check invariants within the fresh run alone — e.g.
the trial-batched CSEEK runner must keep beating the serial loop on
whatever machine ran the benchmarks.

The baseline (``benchmarks/BENCH_baseline.json``) is committed; refresh
it whenever a PR deliberately shifts performance::

    python -m pytest ... --benchmark-json=benchmarks/BENCH_baseline.json

**Cross-run baseline store.** The committed JSON was measured on one
machine; CI runners (and laptops) differ, so absolute comparisons
against it are noisy. ``--store DIR`` (conventionally the repo's
``.repro_cache/`` result-cache directory) consults a *keyed* baseline
store instead: entries are keyed on the benchmark-name set plus the
python version and machine architecture, so a baseline recorded by a
previous run on comparable hardware replaces the committed numbers, and
the committed JSON remains only the cold-start fallback.
``--write-store`` maintains the store: a passing run records its fresh
means outright; a failing run with no store entry seeds the store (its
failure was measured against the other-hardware committed numbers and
has already been reported); and a failing run against an existing
entry only *ratchets* each regressed mean upward by at most the
threshold per run (improvements land immediately). The ratchet keeps
one anomalously fast run from wedging the advisory job permanently red
— the regression is flagged on the run that lands it and for the runs
it takes the baseline to converge, then the store accepts the new
reality. The CI bench job persists the store across runs with
``actions/cache``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
from pathlib import Path
from typing import Dict, List, Optional

# Benchmarks whose regressions fail the comparison. Keep this list to
# stable, single-process timings: engine primitives and the trial-axis
# pairs the batched executor strategy is built on.
KEY_BENCHMARKS = (
    "bench_resolve_step_n100_t64",
    "bench_resolve_step_batch_b32_n100_t64",
    "bench_backoff64_serial",
    "bench_backoff64_batched",
    "bench_trials64_batched",
    "bench_cseek16_serial",
    "bench_cseek16_batched",
    "bench_cgcast16_serial",
    "bench_cgcast16_batched",
    "bench_jammed_cseek16_serial",
    "bench_jammed_cseek16_batched",
    "bench_stream4096_materialized",
    "bench_stream4096_streaming",
    "bench_xpoint16_batch",
    "bench_xpoint16_xbatch",
    "bench_cseek16_telemetry_off",
    "bench_cseek16_telemetry_on",
)

# Machine-independent invariants checked *within* the fresh run: pairs
# (numerator, denominator, max allowed mean ratio). Absolute times vary
# with the runner, but the batched trial axis beating the serial loop on
# the same box is the property the tentpole bought — losing it is a
# regression no matter what hardware measured it. Every operand must
# also appear in KEY_BENCHMARKS so that a renamed/removed benchmark
# fails the missing-benchmark check instead of silently disabling its
# ratio gate (pinned by tests/test_compare_bench.py).
RATIO_GATES = (
    ("bench_cseek16_batched", "bench_cseek16_serial", 1.0),
    ("bench_backoff64_batched", "bench_backoff64_serial", 1.0),
    ("bench_jammed_cseek16_batched", "bench_jammed_cseek16_serial", 1.0),
    # Streaming aggregation must stay within 25% of materialize-then-
    # reduce at equal trial count — the accumulators are an O(1)-memory
    # feature, not a speed tax.
    ("bench_stream4096_streaming", "bench_stream4096_materialized", 1.25),
    # Cross-point lockstep must beat per-point batching by >= 1.5x on
    # the many-small-points sweep it was built for.
    ("bench_xpoint16_xbatch", "bench_xpoint16_batch", 0.6667),
    # The end-to-end batched CGCAST pipeline must beat the serial trial
    # loop by >= 1.5x on the 16-trial sweep.
    ("bench_cgcast16_batched", "bench_cgcast16_serial", 0.6667),
    # Telemetry is an observability feature, not a speed tax: recording
    # the 16-trial CSEEK pair must cost at most 5% over running dark.
    ("bench_cseek16_telemetry_on", "bench_cseek16_telemetry_off", 1.05),
)

DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_baseline.json"


# ----------------------------------------------------------------------
# Cross-run baseline store (rides the repo's .repro_cache/ directory)
# ----------------------------------------------------------------------
def store_key(names: "tuple[str, ...] | list[str]") -> str:
    """Key one store entry: benchmark set + the hardware/runtime class.

    Means are only comparable when the same benchmarks ran on the same
    kind of box, so the key folds in the sorted benchmark names, the
    python ``major.minor`` and the machine architecture. Renaming or
    adding a benchmark therefore starts a fresh baseline history
    instead of diffing against incomparable numbers.
    """
    payload = json.dumps(
        {
            "benchmarks": sorted(names),
            "python": ".".join(platform.python_version_tuple()[:2]),
            "machine": platform.machine(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def store_path(store_dir: Path, names) -> Path:
    return Path(store_dir) / f"bench-baseline-{store_key(names)}.json"


def load_store_baseline(
    store_dir: Path, names
) -> Optional[Dict[str, float]]:
    """The stored means for this benchmark set, or None on a miss.

    Unreadable or corrupt entries are misses (the committed baseline
    then applies), never errors — exactly the result cache's contract.
    """
    path = store_path(store_dir, names)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        means = payload["means"]
        if not isinstance(means, dict):
            return None
        return {str(k): float(v) for k, v in means.items()}
    except (OSError, ValueError, KeyError, TypeError):
        return None


def next_store_means(
    stored: Optional[Dict[str, float]],
    fresh: Dict[str, float],
    threshold: float,
    passed: bool,
) -> Dict[str, float]:
    """What ``--write-store`` should record after this comparison.

    A passing run (or a cold store) adopts the fresh means. After a
    failure against an existing entry, improvements still land
    immediately but each regressed mean moves up by at most
    ``threshold`` — so a lucky outlier-fast baseline self-heals within
    a few runs instead of failing every subsequent honest run forever,
    while a real regression stays red for the runs the convergence
    takes.
    """
    if passed or stored is None:
        return dict(fresh)
    out: Dict[str, float] = {}
    for name, value in fresh.items():
        base = stored.get(name)
        if base is None or value <= base:
            out[name] = value
        else:
            out[name] = min(value, base * (1.0 + threshold))
    return out


def write_store_baseline(
    store_dir: Path, means: Dict[str, float]
) -> Path:
    """Persist fresh means as the next run's baseline; returns the path."""
    store_dir = Path(store_dir)
    store_dir.mkdir(parents=True, exist_ok=True)
    path = store_path(store_dir, tuple(means))
    payload = {
        "means": means,
        "python": ".".join(platform.python_version_tuple()[:2]),
        "machine": platform.machine(),
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    tmp.replace(path)
    return path


def load_means(path: Path) -> Dict[str, float]:
    """Map benchmark name -> mean seconds from a pytest-benchmark JSON."""
    with open(path) as fh:
        payload = json.load(fh)
    means: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        means[bench["name"]] = float(bench["stats"]["mean"])
    return means


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value < 1e-3:
        return f"{value * 1e6:,.1f}µs"
    if value < 1.0:
        return f"{value * 1e3:,.2f}ms"
    return f"{value:,.3f}s"


def compare(
    baseline: Dict[str, float],
    fresh: Dict[str, float],
    threshold: float,
    key_benchmarks: tuple,
) -> tuple[List[List[str]], List[str]]:
    """Build the verdict table and the list of gate failures."""
    rows: List[List[str]] = []
    failures: List[str] = []
    for name in sorted(set(baseline) | set(fresh)):
        base = baseline.get(name)
        new = fresh.get(name)
        gated = name in key_benchmarks
        if base is None:
            verdict = "NEW (no baseline)"
            if gated:
                failures.append(
                    f"{name}: key benchmark has no baseline entry — "
                    "refresh benchmarks/BENCH_baseline.json"
                )
        elif new is None:
            verdict = "MISSING from fresh run"
            if gated:
                failures.append(
                    f"{name}: key benchmark missing from the fresh run"
                )
        else:
            ratio = new / base
            delta = (ratio - 1.0) * 100.0
            if ratio > 1.0 + threshold:
                verdict = f"SLOWER {delta:+.1f}%"
                if gated:
                    failures.append(
                        f"{name}: mean {_fmt_seconds(new)} vs baseline "
                        f"{_fmt_seconds(base)} ({delta:+.1f}% > "
                        f"+{threshold * 100:.0f}% allowance)"
                    )
            elif ratio < 1.0 - threshold:
                verdict = f"faster {delta:+.1f}%"
            else:
                verdict = f"ok {delta:+.1f}%"
        rows.append(
            [
                name + (" *" if gated else ""),
                _fmt_seconds(base),
                _fmt_seconds(new),
                verdict,
            ]
        )
    return rows, failures


def check_ratio_gates(
    fresh: Dict[str, float], gates: tuple = RATIO_GATES
) -> List[str]:
    """Within-run ratio invariants (hardware-independent regressions)."""
    failures: List[str] = []
    for numerator, denominator, max_ratio in gates:
        num = fresh.get(numerator)
        den = fresh.get(denominator)
        if num is None or den is None or den <= 0:
            # Absence fails the key-benchmark checks (every gate operand
            # is in KEY_BENCHMARKS), so the run cannot pass silently.
            continue
        ratio = num / den
        if ratio > max_ratio:
            failures.append(
                f"{numerator} / {denominator}: mean ratio {ratio:.2f} "
                f"exceeds {max_ratio:.2f} in the fresh run — the batched "
                "path no longer beats its serial reference"
            )
    return failures


def render_table(rows: List[List[str]]) -> str:
    headers = ["benchmark (* = gated)", "baseline mean", "fresh mean", "verdict"]
    table = [headers] + rows
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]

    def line(cells):
        return "| " + " | ".join(
            c.ljust(w) for c, w in zip(cells, widths)
        ) + " |"

    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare a fresh pytest-benchmark JSON to the baseline."
    )
    parser.add_argument("fresh", help="fresh pytest-benchmark JSON path")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed mean slowdown fraction for key benchmarks "
        "(default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--key",
        default=None,
        help="comma-separated override of the gated benchmark names",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "cross-run baseline store directory (conventionally "
            ".repro_cache); a keyed entry for this benchmark set "
            "replaces the committed baseline when present"
        ),
    )
    parser.add_argument(
        "--write-store",
        action="store_true",
        help=(
            "maintain the --store baseline: passing runs record their "
            "fresh means, failing runs seed a cold store or ratchet an "
            "existing entry by at most the threshold per run"
        ),
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")
    if args.write_store and args.store is None:
        parser.error("--write-store requires --store")

    baseline_path = Path(args.baseline)
    fresh_path = Path(args.fresh)
    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} not found", file=sys.stderr)
        return 2
    if not fresh_path.exists():
        print(f"error: fresh run {fresh_path} not found", file=sys.stderr)
        return 2
    key_benchmarks = (
        tuple(k.strip() for k in args.key.split(",") if k.strip())
        if args.key is not None
        else KEY_BENCHMARKS
    )

    fresh = load_means(fresh_path)
    baseline = load_means(baseline_path)
    baseline_label = str(baseline_path)
    stored = None
    if args.store is not None:
        stored = load_store_baseline(Path(args.store), tuple(fresh))
        if stored is not None:
            baseline = stored
            baseline_label = str(store_path(Path(args.store), tuple(fresh)))
    print(f"baseline: {baseline_label}")
    rows, failures = compare(baseline, fresh, args.threshold, key_benchmarks)
    failures += check_ratio_gates(fresh)

    if args.write_store:
        written = write_store_baseline(
            Path(args.store),
            next_store_means(
                stored, fresh, args.threshold, passed=not failures
            ),
        )
        print(f"updated cross-run baseline store: {written}")

    table = render_table(rows)
    print(table)
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark check(s) failed:")
        for failure in failures:
            print(f"  - {failure}")
    else:
        print(
            f"\nOK: no key benchmark regressed beyond "
            f"+{args.threshold * 100:.0f}% and all within-run ratio "
            "gates hold."
        )

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        verdict = (
            f"❌ {len(failures)} benchmark check(s) failed"
            if failures
            else "✅ no key benchmark regressed"
        )
        with open(summary_path, "a") as fh:
            fh.write(
                f"### Benchmark comparison — {verdict} "
                f"(threshold +{args.threshold * 100:.0f}%)\n\n"
            )
            fh.write(table + "\n\n")
            for failure in failures:
                fh.write(f"- {failure}\n")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
