"""Streaming vs materialized trial aggregation at equal trial count.

The streaming path exists so precision-targeted runs can take millions
of trials without materializing them; its cost model is "the same
per-chunk vectorized work as the fixed path, plus O(1) accumulator
arithmetic per trial". This benchmark pins that claim on a real COUNT
workload:

* ``stream4096_materialized``: the fixed-path reference — run 4096
  trials through the batched executor, hold every outcome, reduce with
  :func:`repro.analysis.summarize` at the end.
* ``stream4096_streaming``: the same 4096 trials through
  :func:`repro.harness.stream_trials` in 512-trial chunks, folded into
  a :class:`repro.analysis.StreamingSummary` as they arrive. The
  compare gate's ratio check pins this within 25% of the materialized
  reference — the accumulators must stay cheap enough that streaming
  is a memory feature, not a speed tax.
* ``stream_rss_capped``: a subprocess runs a 200k-trial streamed point
  and asserts its peak RSS stays under ``RSS_CAP_MB`` — the memory-cap
  contract itself, checked on every benchmark run. A fresh process is
  the only honest way to measure this: ``ru_maxrss`` is a process-level
  high-water mark, so measuring in-process would report whatever the
  benchmark suite already touched.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap

import numpy as np

from repro.analysis import StreamingSummary, summarize
from repro.core import (
    ProtocolConstants,
    run_count_step,
    run_count_step_batch,
)
from repro.harness import StreamingExecutor, run_trials, stream_trials

TRIALS = 4096
CHUNK = 512
FAST_CONSTS = ProtocolConstants.fast()

#: Declared memory cap for the 200k-trial streamed subprocess, with
#: headroom over the interpreter + numpy import floor (~90 MB here).
RSS_CAP_MB = 512


def _count_workload(m=32):
    """E1's sweep-point shape: one listener, m broadcasters."""
    n = m + 1
    adj = np.zeros((n, n), dtype=bool)
    adj[0, 1:] = True
    adj[1:, 0] = True
    channels = np.zeros(n, dtype=np.int64)
    tx_role = np.ones(n, dtype=bool)
    tx_role[0] = False
    return adj, channels, tx_role


def _count_trial():
    adj, channels, tx_role = _count_workload()

    def trial(s: int) -> float:
        out = run_count_step(
            adj,
            channels,
            tx_role,
            max_count=32,
            log_n=5,
            constants=FAST_CONSTS,
            rng=np.random.default_rng(s),
        )
        return float(out.estimates[0])

    def run_batch(seeds):
        out = run_count_step_batch(
            adj,
            channels,
            tx_role,
            max_count=32,
            log_n=5,
            constants=FAST_CONSTS,
            rngs=[np.random.default_rng(s) for s in seeds],
        )
        return [float(e) for e in out.estimates[:, 0]]

    trial.run_batch = run_batch
    return trial


def bench_stream4096_materialized(benchmark):
    """4096 trials materialized, then reduced at the end (reference)."""
    trial = _count_trial()

    def run():
        values = run_trials(trial, TRIALS, 7, executor="batch")
        return summarize(values)

    assert benchmark(run).count == TRIALS


def bench_stream4096_streaming(benchmark):
    """The same 4096 trials in 512-trial chunks, folded as they arrive."""
    trial = _count_trial()
    executor = StreamingExecutor(chunk_size=CHUNK)

    def run():
        summary = StreamingSummary()

        def consume(results, total):
            summary.update(results)
            return False

        stream_trials(
            trial, 7, consume, max_trials=TRIALS, executor=executor
        )
        return summary

    assert benchmark(run).moments.count == TRIALS


_RSS_SCRIPT = textwrap.dedent(
    """
    import resource
    import sys

    import numpy as np

    from repro.analysis import StreamingSummary
    from repro.core import ProtocolConstants, run_count_step_batch
    from repro.harness import StreamingExecutor, stream_trials

    consts = ProtocolConstants.fast()
    m = 8
    n = m + 1
    adj = np.zeros((n, n), dtype=bool)
    adj[0, 1:] = True
    adj[1:, 0] = True
    channels = np.zeros(n, dtype=np.int64)
    tx_role = np.ones(n, dtype=bool)
    tx_role[0] = False

    def trial(s):
        raise RuntimeError("streamed chunks must ride run_batch")

    def run_batch(seeds):
        out = run_count_step_batch(
            adj, channels, tx_role, max_count=8, log_n=3,
            constants=consts,
            rngs=[np.random.default_rng(s) for s in seeds],
        )
        return [float(e) for e in out.estimates[:, 0]]

    trial.run_batch = run_batch

    summary = StreamingSummary()

    def consume(results, total):
        summary.update(results)
        return False

    ran = stream_trials(
        trial, 7, consume, max_trials=200_000,
        executor=StreamingExecutor(chunk_size=4096),
    )
    assert ran == 200_000, ran
    assert summary.moments.count == 200_000
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(peak_kb)
    """
)


def bench_stream_rss_capped(benchmark):
    """200k streamed trials in a fresh process stay under the RSS cap."""

    def run():
        proc = subprocess.run(
            [sys.executable, "-c", _RSS_SCRIPT],
            capture_output=True,
            text=True,
            check=True,
        )
        return int(proc.stdout.strip().splitlines()[-1])

    peak_kb = benchmark.pedantic(run, rounds=1, iterations=1)
    assert peak_kb < RSS_CAP_MB * 1024, (
        f"streamed 200k-trial run peaked at {peak_kb / 1024:.0f} MB, "
        f"over the declared {RSS_CAP_MB} MB cap"
    )
