"""E3 — CSEEK part split under starvation (Lemmas 2 and 3).

Times a starved-part-one CSEEK on a crowded star and asserts part two's
weighted listener rescues a larger fraction than part one alone found.
"""

from __future__ import annotations

from repro.core import CSeek
from repro.graphs import build_network, star


def _fraction(result, net):
    truth = net.true_neighbor_sets()
    pairs = sum(len(s) for s in truth)
    found = sum(
        len(result.discovered[u] & set(truth[u])) for u in range(net.n)
    )
    return found / pairs


def bench_starved_part_one_rescue(benchmark):
    """Starved part one + weighted part two on a 64-leaf core star."""
    net = build_network(star(65), c=6, k=2, seed=1, kind="global_core")

    def run():
        return CSeek(
            net, seed=3, part1_steps=40, part2_steps=150
        ).run()

    result = benchmark(run)
    truth = net.true_neighbor_sets()
    part1 = sum(
        len(result.discovered_part_one[u] & set(truth[u]))
        for u in range(net.n)
    ) / sum(len(s) for s in truth)
    final = _fraction(result, net)
    assert final > part1  # part two contributed
    assert final > 0.7
