"""Shared benchmark fixtures.

Every benchmark regenerates (a slice of) one experiment from DESIGN.md's
index; `pytest benchmarks/ --benchmark-only` therefore both times the
implementation and re-derives the rows recorded in EXPERIMENTS.md.
Benchmarks print their table via ``print`` so ``-s`` shows the rows.
"""

from __future__ import annotations

import pytest

from repro.core.constants import ProtocolConstants
from repro.graphs import build_network, path_of_cliques, random_regular, star


@pytest.fixture(scope="session")
def constants() -> ProtocolConstants:
    return ProtocolConstants.fast()


@pytest.fixture(scope="session")
def regular_net():
    """20-node 4-regular, c=8, k=2 — the standard discovery workload."""
    return build_network(random_regular(20, 4, seed=7), c=8, k=2, seed=11)


@pytest.fixture(scope="session")
def crowded_star_net():
    """33-leaf star with a global 2-channel core — crowded channels."""
    return build_network(star(33), c=8, k=2, seed=5, kind="global_core")


@pytest.fixture(scope="session")
def clique_chain_net():
    """4 cliques of 4 — a D~7 broadcast workload."""
    return build_network(path_of_cliques(4, 4), c=8, k=1, seed=3)
