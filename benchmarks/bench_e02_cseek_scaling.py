"""E2 — CSEEK vs naive discovery (Theorem 4).

Times one CSEEK and one naive-baseline execution on the standard
discovery workload, asserting full discovery; the full sweep lives in
``python -m repro run E2``.
"""

from __future__ import annotations

from repro.baselines import NaiveDiscovery
from repro.core import CSeek, verify_discovery


def bench_cseek_regular20(benchmark, regular_net):
    """Full CSEEK execution, 20-node 4-regular, c=8, k=2."""

    def run():
        return CSeek(regular_net, seed=1).run()

    result = benchmark(run)
    assert verify_discovery(result, regular_net).success


def bench_naive_discovery_regular20(benchmark, regular_net):
    """Naive random-hopping discovery on the same workload."""

    def run():
        nd = NaiveDiscovery(regular_net, seed=1)
        return nd, nd.run()

    nd, result = benchmark(run)
    assert nd.verify(result).success


def bench_cseek_crowded_star(benchmark, crowded_star_net):
    """CSEEK where channels are maximally crowded (global core)."""

    def run():
        return CSeek(crowded_star_net, seed=2).run()

    result = benchmark(run)
    assert verify_discovery(result, crowded_star_net).success
