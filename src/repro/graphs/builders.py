"""Builders combining topologies with channel assignments.

A builder produces a ready-to-simulate
:class:`~repro.sim.network.CRNetwork` from a topology and an assignment
strategy, and exposes the *realized* model parameters (``k``, ``kmax``,
``Delta``, ``D``) — generators aim for target parameters, but experiments
must always be reported against what was actually constructed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import networkx as nx
import numpy as np

from repro.graphs import assignments, topologies
from repro.model.errors import AssignmentError, TopologyError
from repro.sim.network import CRNetwork

__all__ = [
    "build_network",
    "build_two_node_network",
    "build_random_subset_network",
    "build_theorem14_tree",
]

AssignmentKind = Literal[
    "exact_uniform", "heterogeneous", "global_core"
]


def build_network(
    graph: nx.Graph,
    c: int,
    k: int,
    seed: int,
    kind: AssignmentKind = "exact_uniform",
    kmax: Optional[int] = None,
    high_fraction: float = 0.5,
) -> CRNetwork:
    """Layer a channel assignment over ``graph`` and wrap as a network.

    Args:
        graph: Connected graph on ``0 .. n-1``.
        c: Channels per node.
        k: Minimum per-edge overlap target.
        seed: Randomness seed (labels, heterogeneous edge selection).
        kind: Assignment strategy:
            ``"exact_uniform"`` — every edge shares exactly ``k``
            channels (needs ``Delta * k <= c``);
            ``"heterogeneous"`` — edges share ``k`` or ``kmax``
            channels (needs per-node targets to fit in ``c``);
            ``"global_core"`` — all nodes share a ``k``-channel core
            (maximally crowded channels; any graph).
        kmax: Upper overlap target (heterogeneous only; default ``k``).
        high_fraction: Fraction of strongly overlapping edges
            (heterogeneous only).

    Returns:
        A :class:`CRNetwork` with realized parameters computable via
        ``network.knowledge()``.
    """
    rng = np.random.default_rng(seed)
    if kind == "exact_uniform":
        assignment = assignments.exact_uniform(graph, c, k, rng)
    elif kind == "heterogeneous":
        assignment = assignments.heterogeneous_overlaps(
            graph, c, k, kmax if kmax is not None else k, rng, high_fraction
        )
    elif kind == "global_core":
        assignment = assignments.global_core(graph, c, k, rng)
    else:
        raise AssignmentError(f"unknown assignment kind: {kind!r}")
    return CRNetwork(graph=graph, assignment=assignment)


def build_two_node_network(c: int, k: int, seed: int) -> CRNetwork:
    """The two-node network of the Lemma 11 reduction.

    Nodes 0 and 1 each own ``c`` channels and share exactly ``k`` of
    them; local labels are independent random permutations, exactly the
    setting of the ``(c, k)``-bipartite hitting game.
    """
    graph = topologies.two_node()
    rng = np.random.default_rng(seed)
    assignment = assignments.per_edge_overlaps(graph, c, {(0, 1): k}, rng)
    return CRNetwork(graph=graph, assignment=assignment)


def build_random_subset_network(
    n: int,
    c: int,
    k: int,
    pool_size: int,
    seed: int,
    max_tries: int = 64,
) -> CRNetwork:
    """White-space workload: overlap-induced connectivity.

    Every node samples ``c`` channels from a pool of ``pool_size``; two
    nodes are neighbors iff they share at least ``k`` channels (all nodes
    are assumed within radio range — a dense deployment). Re-samples until
    the induced graph is connected.

    Raises:
        TopologyError: if no connected sample arises within ``max_tries``
            (the pool is too large or ``k`` too strict).
    """
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        assignment = assignments.random_subsets(n, c, pool_size, rng)
        overlap = assignment.overlap_matrix()
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for u in range(n):
            for v in range(u + 1, n):
                if overlap[u, v] >= k:
                    graph.add_edge(u, v)
        if graph.number_of_edges() > 0 and nx.is_connected(graph):
            return CRNetwork(graph=graph, assignment=assignment)
    raise TopologyError(
        f"no connected overlap-induced network after {max_tries} tries "
        f"(n={n}, c={c}, k={k}, pool={pool_size}); shrink the pool or k"
    )


@dataclass(frozen=True)
class _TreeShape:
    fanout: int
    depth: int


def build_theorem14_tree(c: int, depth: int, seed: int, delta: Optional[int] = None) -> CRNetwork:
    """The Theorem 14 lower-bound instance.

    A complete tree in which every internal node has
    ``min(c, Delta) - 1`` children, siblings share **no** channels, and
    each parent-child pair shares exactly one channel (``k = 1``). A
    parent must therefore serialize its children: per slot it can inform
    at most one of them.

    Args:
        c: Channels per node.
        depth: Tree depth (diameter ``2 * depth``; the broadcast source is
            the root, so the relevant distance is ``depth``).
        seed: Label-shuffling seed.
        delta: Optional degree bound; default ``c`` (so fanout is
            ``c - 1``).

    Returns:
        The tree network; per-edge overlap is exactly 1 and sibling
        channel sets are disjoint by construction
        (:func:`repro.graphs.assignments.per_edge_overlaps` never reuses
        ids across edges).
    """
    bound = min(c, delta) if delta is not None else c
    fanout = bound - 1
    if fanout < 1:
        raise TopologyError(
            f"min(c, Delta) - 1 must be >= 1, got c={c}, delta={delta}"
        )
    graph = topologies.complete_tree(fanout, depth)
    rng = np.random.default_rng(seed)
    targets = {edge: 1 for edge in graph.edges()}
    assignment = assignments.per_edge_overlaps(graph, c, targets, rng)
    return CRNetwork(graph=graph, assignment=assignment)
