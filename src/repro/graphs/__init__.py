"""Topology and channel-assignment generators."""

from repro.graphs.assignments import (
    exact_uniform,
    global_core,
    heterogeneous_overlaps,
    max_feasible_uniform_overlap,
    per_edge_overlaps,
    random_subsets,
)
from repro.graphs.builders import (
    build_network,
    build_random_subset_network,
    build_theorem14_tree,
    build_two_node_network,
)
from repro.graphs.topologies import (
    GraphStats,
    complete_tree,
    cycle,
    erdos_renyi_connected,
    graph_stats,
    grid,
    path,
    path_of_cliques,
    random_geometric,
    random_regular,
    star,
    two_node,
)

__all__ = [
    "GraphStats",
    "build_network",
    "build_random_subset_network",
    "build_theorem14_tree",
    "build_two_node_network",
    "complete_tree",
    "cycle",
    "erdos_renyi_connected",
    "exact_uniform",
    "global_core",
    "graph_stats",
    "grid",
    "heterogeneous_overlaps",
    "max_feasible_uniform_overlap",
    "path",
    "path_of_cliques",
    "per_edge_overlaps",
    "random_geometric",
    "random_regular",
    "random_subsets",
    "star",
    "two_node",
]
