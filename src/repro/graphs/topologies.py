"""Connectivity-graph generators.

Every generator returns a connected :class:`networkx.Graph` on nodes
``0 .. n-1``. These graphs play the role of the paper's network graph
``G`` (Section 3): vertices are radios, edges mean "in transmission range
and sharing enough channels". Channel assignments are layered on top by
:mod:`repro.graphs.assignments`.

The zoo covers the worst cases the paper argues about:

* :func:`star` — the ``Omega(Delta)`` neighbor-discovery lower bound.
* :func:`complete_tree` — the ``Omega(D * min(c, Delta))`` broadcast lower
  bound (Theorem 14).
* :func:`path_of_cliques` — diameter sweeps with bounded degree, used for
  CGCAST scaling.
* :func:`random_geometric` — the "radios scattered in the plane" workload
  motivating the paper.
* :func:`erdos_renyi_connected`, :func:`random_regular`, :func:`grid`,
  :func:`path`, :func:`cycle` — standard shapes for property tests and
  sweeps.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.model.errors import TopologyError
from repro.structure import GraphStats, graph_stats

__all__ = [
    "GraphStats",
    "graph_stats",
    "star",
    "path",
    "cycle",
    "grid",
    "complete_tree",
    "path_of_cliques",
    "random_geometric",
    "erdos_renyi_connected",
    "random_regular",
    "two_node",
]


def _relabel_contiguous(graph: nx.Graph) -> nx.Graph:
    """Relabel arbitrary node names to ``0 .. n-1`` (sorted order)."""
    mapping = {v: i for i, v in enumerate(sorted(graph.nodes()))}
    return nx.relabel_nodes(graph, mapping)


def two_node() -> nx.Graph:
    """The two-node network used by the Lemma 11 reduction."""
    graph = nx.Graph()
    graph.add_edge(0, 1)
    return graph


def star(n: int) -> nx.Graph:
    """Star on ``n`` nodes; node 0 is the hub with degree ``n - 1``."""
    if n < 2:
        raise TopologyError(f"star needs n >= 2, got {n}")
    return nx.star_graph(n - 1)


def path(n: int) -> nx.Graph:
    """Path on ``n`` nodes (diameter ``n - 1``)."""
    if n < 2:
        raise TopologyError(f"path needs n >= 2, got {n}")
    return nx.path_graph(n)


def cycle(n: int) -> nx.Graph:
    """Cycle on ``n`` nodes (diameter ``floor(n/2)``)."""
    if n < 3:
        raise TopologyError(f"cycle needs n >= 3, got {n}")
    return nx.cycle_graph(n)


def grid(rows: int, cols: int) -> nx.Graph:
    """``rows x cols`` grid (4-neighborhood), relabeled to ``0..n-1``."""
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid needs positive dims, got {rows}x{cols}")
    if rows * cols < 2:
        raise TopologyError("grid needs at least two nodes")
    graph = nx.grid_2d_graph(rows, cols)
    mapping = {(r, q): r * cols + q for r, q in graph.nodes()}
    return nx.relabel_nodes(graph, mapping)


def complete_tree(fanout: int, depth: int) -> nx.Graph:
    """Complete ``fanout``-ary tree of the given depth.

    The root is node 0. Theorem 14 uses this shape with
    ``fanout = min(c, Delta) - 1`` and channel-disjoint siblings.

    Args:
        fanout: Children per internal node (``>= 1``).
        depth: Edge-depth of the tree (``>= 1``); the diameter is
            ``2 * depth``.
    """
    if fanout < 1:
        raise TopologyError(f"fanout must be >= 1, got {fanout}")
    if depth < 1:
        raise TopologyError(f"depth must be >= 1, got {depth}")
    graph = nx.balanced_tree(fanout, depth)
    return _relabel_contiguous(graph)


def path_of_cliques(num_cliques: int, clique_size: int) -> nx.Graph:
    """A chain of cliques bridged by single edges.

    Yields diameter ``Theta(num_cliques)`` while keeping the max degree at
    ``clique_size`` (bridge endpoints have degree ``clique_size``),
    which makes it ideal for sweeping ``D`` with ``Delta`` held fixed in
    CGCAST experiments.

    Args:
        num_cliques: Number of cliques in the chain (``>= 1``).
        clique_size: Nodes per clique (``>= 2``).
    """
    if num_cliques < 1:
        raise TopologyError(f"need >= 1 cliques, got {num_cliques}")
    if clique_size < 2:
        raise TopologyError(f"cliques need >= 2 nodes, got {clique_size}")
    graph = nx.Graph()
    for i in range(num_cliques):
        base = i * clique_size
        members = list(range(base, base + clique_size))
        graph.add_edges_from(
            (members[a], members[b])
            for a in range(clique_size)
            for b in range(a + 1, clique_size)
        )
        if i > 0:
            # Bridge from the last node of the previous clique to the
            # first node of this one.
            graph.add_edge(base - 1, base)
    return graph


def random_geometric(
    n: int,
    radius: float | None = None,
    seed: int = 0,
    max_tries: int = 64,
) -> nx.Graph:
    """Connected random geometric graph (radios in the unit square).

    Nodes are placed uniformly at random; two nodes are joined when
    within ``radius``. When ``radius`` is omitted we use the standard
    connectivity threshold ``sqrt(2 * ln(n) / n)`` and re-sample until the
    graph is connected.

    Raises:
        TopologyError: if no connected sample is found in ``max_tries``.
    """
    if n < 2:
        raise TopologyError(f"need n >= 2, got {n}")
    if radius is None:
        radius = math.sqrt(2.0 * math.log(max(n, 2)) / n)
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        sub_seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.random_geometric_graph(n, radius, seed=sub_seed)
        if nx.is_connected(graph):
            return _relabel_contiguous(graph)
    raise TopologyError(
        f"no connected geometric graph with n={n}, radius={radius:.3f} "
        f"after {max_tries} tries; increase the radius"
    )


def erdos_renyi_connected(
    n: int,
    p: float | None = None,
    seed: int = 0,
    max_tries: int = 64,
) -> nx.Graph:
    """Connected Erdos-Renyi graph ``G(n, p)``.

    When ``p`` is omitted we use ``min(1, 3 * ln(n) / n)``, comfortably
    above the connectivity threshold.

    Raises:
        TopologyError: if no connected sample is found in ``max_tries``.
    """
    if n < 2:
        raise TopologyError(f"need n >= 2, got {n}")
    if p is None:
        p = min(1.0, 3.0 * math.log(max(n, 2)) / n)
    if not 0.0 < p <= 1.0:
        raise TopologyError(f"edge probability must be in (0, 1], got {p}")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        sub_seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.gnp_random_graph(n, p, seed=sub_seed)
        if graph.number_of_nodes() >= 2 and nx.is_connected(graph):
            return _relabel_contiguous(graph)
    raise TopologyError(
        f"no connected G({n}, {p:.3f}) after {max_tries} tries; increase p"
    )


def random_regular(n: int, d: int, seed: int = 0, max_tries: int = 64) -> nx.Graph:
    """Connected random ``d``-regular graph (an expander w.h.p.).

    Raises:
        TopologyError: on infeasible ``(n, d)`` or if no connected sample
            is found in ``max_tries``.
    """
    if n < 2:
        raise TopologyError(f"need n >= 2, got {n}")
    if d < 1 or d >= n or (n * d) % 2 != 0:
        raise TopologyError(
            f"infeasible regular graph: n={n}, d={d} (need 1 <= d < n and "
            "n*d even)"
        )
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        sub_seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.random_regular_graph(d, n, seed=sub_seed)
        if nx.is_connected(graph):
            return _relabel_contiguous(graph)
    raise TopologyError(
        f"no connected {d}-regular graph on {n} nodes after {max_tries} tries"
    )
