"""Channel-assignment generators.

These generators place the paper's channel-overlap structure on top of a
connectivity graph: every node receives exactly ``c`` global channels and
every edge ``(u, v)`` ends up sharing between ``k`` and ``kmax`` of them.

The core primitive is :func:`per_edge_overlaps`, which allocates a fresh,
globally unique block of channels to every edge: the overlap of each
neighboring pair is then *exactly* its requested target, and non-adjacent
pairs share nothing. On top of it we offer:

* :func:`exact_uniform` — every edge shares exactly ``k`` channels
  (realized ``kmax = k``; the regime where CSEEK is provably near
  optimal).
* :func:`heterogeneous_overlaps` — per-edge targets drawn from
  ``[k, kmax]``, exercising the ``kmax >> k`` gap discussed in Section 7.
* :func:`global_core` — all nodes share one ``k``-channel core plus
  private padding; every channel in the core is accessible to *every*
  neighbor, which makes channels maximally crowded (drives CSEEK into its
  part-two regime; also the natural "licensed band with k free channels"
  scenario from the introduction).
* :func:`random_subsets` — each node samples ``c`` channels uniformly
  from a finite spectrum pool; the realistic white-space workload. Here
  overlap is emergent, so the companion builder induces the graph from
  the overlap pattern.

All generators take a :class:`numpy.random.Generator` so experiments are
reproducible from a single seed.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set, Tuple

import networkx as nx
import numpy as np

from repro.model.channels import ChannelAssignment
from repro.model.errors import AssignmentError

__all__ = [
    "per_edge_overlaps",
    "exact_uniform",
    "heterogeneous_overlaps",
    "global_core",
    "random_subsets",
    "max_feasible_uniform_overlap",
]

Edge = Tuple[int, int]


def _canonical(edge: Edge) -> Edge:
    u, v = edge
    return (u, v) if u <= v else (v, u)


def max_feasible_uniform_overlap(graph: nx.Graph, c: int) -> int:
    """Largest uniform per-edge overlap placeable with ``c`` channels.

    :func:`per_edge_overlaps` gives each node ``sum_of_incident_targets``
    channels before padding, so a uniform target ``k`` is feasible iff
    ``Delta * k <= c``.
    """
    max_degree = max(d for _, d in graph.degree())
    if max_degree == 0:
        raise AssignmentError("graph has no edges")
    return c // max_degree


def per_edge_overlaps(
    graph: nx.Graph,
    c: int,
    targets: Mapping[Edge, int],
    rng: np.random.Generator,
) -> ChannelAssignment:
    """Assign channels so each edge shares exactly its target count.

    Every edge receives a block of fresh global channel ids of its target
    size; both endpoints include the block. Nodes are then padded with
    globally unique ids up to ``c`` channels. Because no id is ever
    reused across edges or pads, the realized overlap of edge ``e`` is
    exactly ``targets[e]`` and non-adjacent pairs share nothing.

    Args:
        graph: Connectivity graph on nodes ``0 .. n-1``.
        c: Channels per node.
        targets: Per-edge overlap targets (keys may be in either
            orientation); every edge of ``graph`` must be covered.
        rng: Randomness source for local label shuffling.

    Raises:
        AssignmentError: if an edge is missing a target, a target is
            non-positive, or some node would need more than ``c``
            channels.
    """
    n = graph.number_of_nodes()
    canon_targets: Dict[Edge, int] = {}
    for edge, t in targets.items():
        canon_targets[_canonical(edge)] = int(t)
    node_sets: List[Set[int]] = [set() for _ in range(n)]
    next_id = 0
    for edge in graph.edges():
        u, v = _canonical(edge)
        if (u, v) not in canon_targets:
            raise AssignmentError(f"no overlap target for edge ({u}, {v})")
        t = canon_targets[(u, v)]
        if t < 1:
            raise AssignmentError(
                f"edge ({u}, {v}) target must be >= 1, got {t}"
            )
        block = range(next_id, next_id + t)
        next_id += t
        node_sets[u].update(block)
        node_sets[v].update(block)
    for u in range(n):
        if len(node_sets[u]) > c:
            raise AssignmentError(
                f"node {u} needs {len(node_sets[u])} channels for its "
                f"incident-edge targets but only c={c} are available"
            )
        while len(node_sets[u]) < c:
            node_sets[u].add(next_id)
            next_id += 1
    return ChannelAssignment.from_sets(node_sets, rng=rng)


def exact_uniform(
    graph: nx.Graph,
    c: int,
    k: int,
    rng: np.random.Generator,
) -> ChannelAssignment:
    """Every edge shares exactly ``k`` channels (realized ``kmax = k``).

    This is the regime in which the paper's bounds are tight
    (``kmax = Theta(k)``). Requires ``Delta * k <= c``.
    """
    targets = {_canonical(e): k for e in graph.edges()}
    return per_edge_overlaps(graph, c, targets, rng)


def heterogeneous_overlaps(
    graph: nx.Graph,
    c: int,
    k: int,
    kmax: int,
    rng: np.random.Generator,
    high_fraction: float = 0.5,
) -> ChannelAssignment:
    """Mix of weakly and strongly overlapping edges.

    A ``high_fraction`` of edges (chosen uniformly at random) get overlap
    ``kmax``; the rest get ``k``. This realizes the Section 7 regime
    where CSEEK's part two is biased toward strongly overlapping
    neighbors. Requires the incident targets of every node to fit in
    ``c``.

    Raises:
        AssignmentError: on infeasible targets or a fraction outside
            ``[0, 1]``.
    """
    if not 0.0 <= high_fraction <= 1.0:
        raise AssignmentError(
            f"high_fraction must be in [0, 1], got {high_fraction}"
        )
    if k > kmax:
        raise AssignmentError(f"need k <= kmax, got k={k}, kmax={kmax}")
    edges = [_canonical(e) for e in graph.edges()]
    num_high = int(round(high_fraction * len(edges)))
    order = rng.permutation(len(edges))
    targets: Dict[Edge, int] = {}
    for rank, idx in enumerate(order):
        targets[edges[idx]] = kmax if rank < num_high else k
    return per_edge_overlaps(graph, c, targets, rng)


def global_core(
    graph: nx.Graph,
    c: int,
    k: int,
    rng: np.random.Generator,
) -> ChannelAssignment:
    """All nodes share one ``k``-channel core; padding is private.

    Every pair of nodes (adjacent or not) shares exactly the ``k`` core
    channels, so each core channel is shared with *all* of a node's
    neighbors — the maximally crowded configuration that exercises CSEEK's
    part two (Lemma 3's regime once degrees are large). Works for any
    graph as long as ``k <= c``.
    """
    if k > c:
        raise AssignmentError(f"core size k={k} exceeds c={c}")
    n = graph.number_of_nodes()
    core = set(range(k))
    next_id = k
    node_sets: List[Set[int]] = []
    for _ in range(n):
        chans = set(core)
        while len(chans) < c:
            chans.add(next_id)
            next_id += 1
        node_sets.append(chans)
    return ChannelAssignment.from_sets(node_sets, rng=rng)


def random_subsets(
    n: int,
    c: int,
    pool_size: int,
    rng: np.random.Generator,
) -> ChannelAssignment:
    """Each node samples ``c`` channels uniformly from a finite pool.

    Models opportunistic white-space access: the spectrum has
    ``pool_size`` usable channels and each radio's regulatory/interference
    environment leaves it a random ``c``-subset. Overlap between any two
    nodes is hypergeometric with mean ``c^2 / pool_size``; the companion
    builder (:func:`repro.graphs.builders.build_random_subset_network`)
    keeps only edges whose realized overlap reaches the required ``k``.

    Raises:
        AssignmentError: if the pool is smaller than ``c``.
    """
    if pool_size < c:
        raise AssignmentError(
            f"pool_size={pool_size} must be at least c={c}"
        )
    node_sets = [
        set(int(g) for g in rng.choice(pool_size, size=c, replace=False))
        for _ in range(n)
    ]
    return ChannelAssignment.from_sets(node_sets, rng=rng)
