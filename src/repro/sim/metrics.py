"""Slot accounting.

Every protocol phase in the reproduction charges its slots to a
:class:`SlotLedger`. This gives experiments exact, auditable time
complexity measurements (the unit of every bound in the paper is the
slot), broken down by phase — e.g. CGCAST reports discovery, coloring and
dissemination slots separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from repro.model.errors import ProtocolError

__all__ = ["SlotLedger"]


@dataclass
class SlotLedger:
    """Append-only per-phase slot counter.

    Attributes:
        phases: Ordered mapping of phase name to slots charged.
    """

    phases: Dict[str, int] = field(default_factory=dict)

    def charge(self, phase: str, slots: int) -> None:
        """Charge ``slots`` slots to ``phase`` (accumulates)."""
        if slots < 0:
            raise ProtocolError(f"cannot charge negative slots: {slots}")
        self.phases[phase] = self.phases.get(phase, 0) + int(slots)

    def get(self, phase: str) -> int:
        """Slots charged to a phase (0 if the phase never ran)."""
        return self.phases.get(phase, 0)

    @property
    def total(self) -> int:
        """Total slots across all phases."""
        return sum(self.phases.values())

    def merge(self, other: "SlotLedger", prefix: str = "") -> None:
        """Fold another ledger into this one, optionally prefixing names."""
        for phase, slots in other.phases.items():
            self.charge(prefix + phase, slots)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate ``(phase, slots)`` in insertion order."""
        return iter(self.phases.items())

    def as_dict(self) -> Dict[str, int]:
        """A copy of the per-phase totals."""
        return dict(self.phases)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in self.phases.items())
        return f"SlotLedger(total={self.total}, {inner})"
