"""Deterministic randomness management.

The paper assumes every node "can independently generate random bits".
We reproduce that with a :class:`RngHub`: one experiment seed fans out to
independent, *named* :class:`numpy.random.Generator` streams — one per
node, per protocol phase. Names are hashed with CRC32 (stable across
processes, unlike Python's salted ``hash``) into
:class:`numpy.random.SeedSequence` spawn keys, so

* the same experiment seed always reproduces the same run, and
* streams for different nodes/phases are statistically independent.
"""

from __future__ import annotations

import zlib
from typing import Iterator, Tuple

import numpy as np

__all__ = ["RngHub", "SeedStream"]


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 32-bit key."""
    return zlib.crc32(name.encode("utf-8"))


class RngHub:
    """A tree of named, independent random generators from one seed.

    Example:
        >>> hub = RngHub(seed=7)
        >>> part_one = hub.child("cseek-part-one")
        >>> node_rng = part_one.node_generator(3)
        >>> coin = node_rng.random() < 0.5
    """

    def __init__(self, seed: int, _path: Tuple[int, ...] = ()) -> None:
        self._seed = int(seed)
        self._path = _path

    @property
    def seed(self) -> int:
        """The root experiment seed."""
        return self._seed

    def child(self, name: str) -> "RngHub":
        """A sub-hub for a named protocol phase."""
        return RngHub(self._seed, self._path + (_stable_key(name),))

    def generator(self, name: str = "root") -> np.random.Generator:
        """A generator for a named stream under this hub."""
        seq = np.random.SeedSequence(
            entropy=self._seed, spawn_key=self._path + (_stable_key(name),)
        )
        return np.random.default_rng(seq)

    def node_generator(self, node: int) -> np.random.Generator:
        """A generator private to one node under this hub."""
        seq = np.random.SeedSequence(
            entropy=self._seed, spawn_key=self._path + (int(node),)
        )
        return np.random.default_rng(seq)

    def node_generators(self, n: int) -> Iterator[np.random.Generator]:
        """Generators for nodes ``0 .. n-1`` under this hub."""
        for u in range(n):
            yield self.node_generator(u)

    def spawn_seeds(self, count: int, name: str = "trials") -> list[int]:
        """Derive ``count`` independent integer seeds (for repeated trials)."""
        gen = self.generator(name)
        return [int(s) for s in gen.integers(0, 2**63 - 1, size=count)]

    def seed_stream(self, name: str = "trials") -> "SeedStream":
        """An incremental view of the same stream :meth:`spawn_seeds` draws.

        The stream is *prefix-stable*: the concatenation of successive
        :meth:`SeedStream.take` calls equals ``spawn_seeds(total, name)``
        for the same total, regardless of how the draws are chunked. A
        chunked (streaming) run therefore hands trial ``i`` exactly the
        seed a one-shot run would — chunk size is invisible to results.
        """
        return SeedStream(self.generator(name))


class SeedStream:
    """Chunked, prefix-stable trial-seed derivation.

    Wraps one named generator; each :meth:`take` continues where the
    previous call stopped. numpy's bounded-integer sampling draws one
    64-bit word per value for a ``2**63`` range, so chunk boundaries
    never change which seed lands at which trial index (pinned by
    ``tests/test_streaming.py``).
    """

    def __init__(self, generator: np.random.Generator) -> None:
        self._generator = generator
        self._drawn = 0

    @property
    def drawn(self) -> int:
        """Total seeds handed out so far."""
        return self._drawn

    def take(self, count: int) -> list[int]:
        """The next ``count`` seeds of the stream."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return []
        self._drawn += count
        return [
            int(s)
            for s in self._generator.integers(0, 2**63 - 1, size=count)
        ]
