"""Vectorized synchronous slot engine.

This module implements the paper's communication model (Section 3) as
pure functions over numpy arrays:

* time is divided into discrete slots;
* in a slot, each transceiver tunes to (at most) one channel and either
  broadcasts or listens;
* a listener hears a message iff **exactly one** of its graph neighbors
  broadcasts on its channel in that slot — silence and collisions are
  indistinguishable (no collision detection);
* broadcasters receive nothing (they only "hear" their own message).

Two entry points:

:func:`resolve_slot`
    One slot with explicit per-node channel and broadcast decisions.
:func:`resolve_step`
    A *step*: a batch of ``T`` slots during which channels and roles are
    fixed and only the per-slot broadcast coins vary (this is exactly the
    structure of COUNT rounds and of CSEEK part-two back-off windows).
    Resolved with two matrix products, which is what makes full protocol
    executions tractable in pure Python.

Identity convention: nodes are identified by their index ``0 .. n-1``;
``-1`` means "heard nothing" (silence or collision) in outputs and
"idle / no channel" in channel inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.errors import ProtocolError

__all__ = [
    "SlotOutcome",
    "StepOutcome",
    "resolve_slot",
    "resolve_step",
    "resolve_varying",
]


@dataclass(frozen=True)
class SlotOutcome:
    """Result of one slot.

    Attributes:
        heard_from: ``(n,)`` int array; ``heard_from[u]`` is the id of the
            unique neighbor whose message ``u`` received this slot, or
            ``-1`` (silence, collision, idle, or ``u`` was broadcasting).
        contenders: ``(n,)`` int array; the number of neighbors of ``u``
            broadcasting on ``u``'s channel (diagnostic ground truth —
            nodes themselves can not observe it, they only see
            message/no-message).
    """

    heard_from: np.ndarray
    contenders: np.ndarray


@dataclass(frozen=True)
class StepOutcome:
    """Result of a fixed-channel, fixed-role batch of ``T`` slots.

    Attributes:
        heard_from: ``(T, n)`` int array; entry ``[t, u]`` is the sender
            ``u`` received in slot ``t`` of the step, or ``-1``.
        contenders: ``(T, n)`` int array of broadcasting-neighbor counts
            (ground-truth diagnostic).
    """

    heard_from: np.ndarray
    contenders: np.ndarray

    @property
    def num_slots(self) -> int:
        return int(self.heard_from.shape[0])

    def heard_sets(self) -> list[set[int]]:
        """Per-node sets of distinct senders heard during the step."""
        n = self.heard_from.shape[1]
        out: list[set[int]] = []
        for u in range(n):
            col = self.heard_from[:, u]
            out.append(set(int(s) for s in col[col >= 0]))
        return out


def _validate_common(
    adjacency: np.ndarray, channels: np.ndarray, n_expected: int | None = None
) -> int:
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ProtocolError(
            f"adjacency must be square, got shape {adjacency.shape}"
        )
    n = adjacency.shape[0]
    if channels.shape != (n,):
        raise ProtocolError(
            f"channels must have shape ({n},), got {channels.shape}"
        )
    if n_expected is not None and n != n_expected:
        raise ProtocolError(f"expected {n_expected} nodes, got {n}")
    return n


def _reception_matrix(
    adjacency: np.ndarray, channels: np.ndarray, tx_role: np.ndarray
) -> np.ndarray:
    """Boolean ``(n, n)``: ``[u, v]`` = "v's broadcasts reach u".

    True iff ``v`` is a neighbor of ``u``, both are tuned to the same
    (non-idle) channel, and ``v`` holds the broadcaster role this step.
    """
    tuned = channels >= 0
    same = channels[:, None] == channels[None, :]
    mask = adjacency & same
    mask &= tuned[:, None] & tuned[None, :]
    mask &= tx_role[None, :]
    return mask


def resolve_slot(
    adjacency: np.ndarray, channels: np.ndarray, tx: np.ndarray
) -> SlotOutcome:
    """Resolve a single slot.

    Args:
        adjacency: ``(n, n)`` boolean adjacency matrix.
        channels: ``(n,)`` global channel per node, ``-1`` for idle.
        tx: ``(n,)`` boolean; True = broadcasting this slot (on its
            channel), False = listening.

    Returns:
        A :class:`SlotOutcome` with reception results.
    """
    n = _validate_common(adjacency, channels)
    if tx.shape != (n,):
        raise ProtocolError(f"tx must have shape ({n},), got {tx.shape}")
    # A single slot is a step of length one in which every broadcaster's
    # coin comes up "transmit"; reuse the batched path.
    coins = np.ones((1, n), dtype=bool)
    step = resolve_step(adjacency, channels, tx, coins)
    return SlotOutcome(
        heard_from=step.heard_from[0], contenders=step.contenders[0]
    )


def resolve_step(
    adjacency: np.ndarray,
    channels: np.ndarray,
    tx_role: np.ndarray,
    coins: np.ndarray,
    jam: np.ndarray | None = None,
) -> StepOutcome:
    """Resolve a step of ``T`` slots with fixed channels and roles.

    Args:
        adjacency: ``(n, n)`` boolean adjacency matrix.
        channels: ``(n,)`` global channel per node (fixed for the step),
            ``-1`` for idle.
        tx_role: ``(n,)`` boolean; True = broadcaster for this step,
            False = listener. Listeners listen in every slot;
            broadcasters transmit in slot ``t`` iff ``coins[t, u]`` and
            otherwise stay silent (they never listen mid-step, matching
            COUNT and the part-two back-off of CSEEK).
        coins: ``(T, n)`` boolean per-slot transmission coins.
        jam: Optional ``(T, n)`` boolean; True kills node ``u``'s
            reception in slot ``t`` (its channel is occupied by a
            primary user — the signal is noise, indistinguishable from
            silence).

    Returns:
        A :class:`StepOutcome`; ``heard_from[t, u] >= 0`` only for
        listeners with exactly one broadcasting neighbor on their channel.
    """
    n = _validate_common(adjacency, channels)
    if tx_role.shape != (n,):
        raise ProtocolError(
            f"tx_role must have shape ({n},), got {tx_role.shape}"
        )
    if coins.ndim != 2 or coins.shape[1] != n:
        raise ProtocolError(
            f"coins must have shape (T, {n}), got {coins.shape}"
        )
    if jam is not None and jam.shape != coins.shape:
        raise ProtocolError(
            f"jam must have shape {coins.shape}, got {jam.shape}"
        )
    reach = _reception_matrix(adjacency, channels, tx_role)
    reach_int = reach.astype(np.int64)
    coins_int = coins.astype(np.int64)
    # contenders[t, u] = number of u's neighbors transmitting on u's
    # channel in slot t.
    contenders = coins_int @ reach_int.T
    # id-sum trick: when exactly one neighbor transmits, the weighted sum
    # of transmitting-neighbor ids *is* the sender's id.
    ids = np.arange(n, dtype=np.int64)
    idsum = coins_int @ (reach_int * ids[None, :]).T
    listeners = (channels >= 0) & ~tx_role
    receivable = listeners[None, :] & (contenders == 1)
    if jam is not None:
        receivable &= ~jam
    heard = np.where(receivable, idsum, -1).astype(np.int64)
    return StepOutcome(heard_from=heard, contenders=contenders)


def resolve_varying(
    adjacency: np.ndarray,
    channels: np.ndarray,
    tx: np.ndarray,
    chunk: int = 128,
) -> StepOutcome:
    """Resolve ``T`` slots in which channels change every slot.

    Used by the naive baselines, whose nodes re-hop on every slot (no
    fixed-channel step structure to batch over). Processed in chunks of
    3-D boolean masks to bound memory at ``chunk * n^2``.

    Args:
        adjacency: ``(n, n)`` boolean adjacency matrix.
        channels: ``(T, n)`` global channel per node per slot (``-1``
            idle).
        tx: ``(T, n)`` boolean; True = broadcasting that slot.
        chunk: Slots per processing chunk.

    Returns:
        A :class:`StepOutcome` over all ``T`` slots.
    """
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ProtocolError(
            f"adjacency must be square, got shape {adjacency.shape}"
        )
    n = adjacency.shape[0]
    if channels.ndim != 2 or channels.shape[1] != n:
        raise ProtocolError(
            f"channels must have shape (T, {n}), got {channels.shape}"
        )
    if tx.shape != channels.shape:
        raise ProtocolError(
            f"tx shape {tx.shape} must match channels {channels.shape}"
        )
    if chunk < 1:
        raise ProtocolError(f"chunk must be >= 1, got {chunk}")
    total = channels.shape[0]
    ids = np.arange(n, dtype=np.int64)
    heard_parts = []
    contender_parts = []
    for start in range(0, total, chunk):
        ch = channels[start : start + chunk]
        tx_c = tx[start : start + chunk]
        tuned = ch >= 0
        # reach[t, u, v]: v's slot-t broadcast reaches u.
        reach = (
            (ch[:, :, None] == ch[:, None, :])
            & adjacency[None, :, :]
            & tuned[:, :, None]
            & (tuned & tx_c)[:, None, :]
        )
        contenders = reach.sum(axis=2)
        idsum = (reach * ids[None, None, :]).sum(axis=2)
        listeners = tuned & ~tx_c
        heard = np.where(listeners & (contenders == 1), idsum, -1)
        heard_parts.append(heard.astype(np.int64))
        contender_parts.append(contenders.astype(np.int64))
    return StepOutcome(
        heard_from=np.concatenate(heard_parts, axis=0),
        contenders=np.concatenate(contender_parts, axis=0),
    )
