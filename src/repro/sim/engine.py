"""Vectorized synchronous slot engine.

This module implements the paper's communication model (Section 3) as
pure functions over numpy arrays:

* time is divided into discrete slots;
* in a slot, each transceiver tunes to (at most) one channel and either
  broadcasts or listens;
* a listener hears a message iff **exactly one** of its graph neighbors
  broadcasts on its channel in that slot — silence and collisions are
  indistinguishable (no collision detection);
* broadcasters receive nothing (they only "hear" their own message).

Three entry points:

:func:`resolve_slot`
    One slot with explicit per-node channel and broadcast decisions.
:func:`resolve_step`
    A *step*: a batch of ``T`` slots during which channels and roles are
    fixed and only the per-slot broadcast coins vary (this is exactly the
    structure of COUNT rounds and of CSEEK part-two back-off windows).
    Resolved with two matrix products, which is what makes full protocol
    executions tractable in pure Python.
:func:`resolve_step_batch`
    A *trial axis* on top of :func:`resolve_step`: ``B`` independent
    Monte Carlo trials of the same step, sharing one adjacency, resolved
    with a single batched matmul/einsum over ``(B, T, n)`` coins. This
    is the vectorized backbone of homogeneous-trial experiments (E1's
    COUNT sweeps, isolated CSEEK back-off windows), where the per-trial
    loop — not the per-slot loop — is the hot path. Entry ``[b]`` of the
    result is bit-identical to a serial :func:`resolve_step` call on
    trial ``b``'s inputs.

:func:`resolve_step_batch` additionally accepts a *per-trial* ``(B, n,
n)`` adjacency stack, which is what lets one lockstep execution span
several sweep points (cross-point batching): trials from different
networks ride one batched resolve, each against its own graph.

The per-step arithmetic — the contender-count and id-sum products —
is delegated to a pluggable :class:`repro.sim.backend.ArrayBackend`
(numpy/BLAS by default, optional numba JIT); every backend returns
exact integers, so the choice never changes results.

Identity convention: nodes are identified by their index ``0 .. n-1``;
``-1`` means "heard nothing" (silence or collision) in outputs and
"idle / no channel" in channel inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro import obs
from repro.model.errors import ProtocolError
from repro.sim.backend import active_backend

__all__ = [
    "BatchStepOutcome",
    "SlotOutcome",
    "StepOutcome",
    "resolve_slot",
    "resolve_step",
    "resolve_step_batch",
    "resolve_varying",
]


@dataclass(frozen=True)
class SlotOutcome:
    """Result of one slot.

    Attributes:
        heard_from: ``(n,)`` int array; ``heard_from[u]`` is the id of the
            unique neighbor whose message ``u`` received this slot, or
            ``-1`` (silence, collision, idle, or ``u`` was broadcasting).
        contenders: ``(n,)`` int array; the number of neighbors of ``u``
            broadcasting on ``u``'s channel (diagnostic ground truth —
            nodes themselves can not observe it, they only see
            message/no-message).
    """

    heard_from: np.ndarray
    contenders: np.ndarray


@dataclass(frozen=True)
class StepOutcome:
    """Result of a fixed-channel, fixed-role batch of ``T`` slots.

    Attributes:
        heard_from: ``(T, n)`` int array; entry ``[t, u]`` is the sender
            ``u`` received in slot ``t`` of the step, or ``-1``.
        contenders: ``(T, n)`` int array of broadcasting-neighbor counts
            (ground-truth diagnostic).
    """

    heard_from: np.ndarray
    contenders: np.ndarray

    @property
    def num_slots(self) -> int:
        return int(self.heard_from.shape[0])

    def heard_sets(self) -> list[set[int]]:
        """Per-node sets of distinct senders heard during the step.

        Vectorized: one ``nonzero`` + ``unique`` over the receptions
        instead of a per-node column scan, so the cost scales with the
        number of receptions rather than ``T * n``.
        """
        n = self.heard_from.shape[1]
        slots, listeners = np.nonzero(self.heard_from >= 0)
        senders = self.heard_from[slots, listeners]
        pairs = np.unique(
            np.stack([listeners, senders.astype(np.int64)], axis=1), axis=0
        )
        # pairs is lexicographically sorted, so each listener's senders
        # form a contiguous block.
        splits = np.searchsorted(pairs[:, 0], np.arange(1, n))
        return [
            set(group.tolist())
            for group in np.split(pairs[:, 1], splits)
        ]


@dataclass(frozen=True)
class BatchStepOutcome:
    """Result of ``B`` independent trials of a fixed-channel step.

    Attributes:
        heard_from: ``(B, T, n)`` int array; entry ``[b, t, u]`` is the
            sender ``u`` received in slot ``t`` of trial ``b``, or ``-1``.
        contenders: ``(B, T, n)`` int array of broadcasting-neighbor
            counts (ground-truth diagnostic).
    """

    heard_from: np.ndarray
    contenders: np.ndarray

    @property
    def num_trials(self) -> int:
        return int(self.heard_from.shape[0])

    @property
    def num_slots(self) -> int:
        return int(self.heard_from.shape[1])

    def trial(self, b: int) -> StepOutcome:
        """Trial ``b``'s slice as a plain :class:`StepOutcome`."""
        return StepOutcome(
            heard_from=self.heard_from[b], contenders=self.contenders[b]
        )


def _validate_common(
    adjacency: np.ndarray, channels: np.ndarray, n_expected: int | None = None
) -> int:
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ProtocolError(
            f"adjacency must be square, got shape {adjacency.shape}"
        )
    n = adjacency.shape[0]
    if channels.shape != (n,):
        raise ProtocolError(
            f"channels must have shape ({n},), got {channels.shape}"
        )
    if n_expected is not None and n != n_expected:
        raise ProtocolError(f"expected {n_expected} nodes, got {n}")
    return n


def _reception_matrix(
    adjacency: np.ndarray, channels: np.ndarray, tx_role: np.ndarray
) -> np.ndarray:
    """Boolean ``(n, n)``: ``[u, v]`` = "v's broadcasts reach u".

    True iff ``v`` is a neighbor of ``u``, both are tuned to the same
    (non-idle) channel, and ``v`` holds the broadcaster role this step.
    """
    tuned = channels >= 0
    same = channels[:, None] == channels[None, :]
    mask = adjacency & same
    mask &= tuned[:, None] & tuned[None, :]
    mask &= tx_role[None, :]
    return mask


#: Memoized reception matrices: (adjacency, channels bytes, tx bytes,
#: reach). Serial protocol loops (COUNT trials on one star, repeated
#: fixed-channel steps) rebuild the identical mask every call; returning
#: the *same object* also lets the numpy backend reuse its float64
#: casts. Adjacency matches by identity (entries hold strong
#: references, so an id can never be reused while cached); channels and
#: roles match by content, since callers often rebuild those small
#: arrays. The sim layer never mutates an adjacency in place — the one
#: assumption this cache leans on.
_REACH_CACHE: List[Tuple[np.ndarray, bytes, bytes, np.ndarray]] = []
_REACH_CACHE_ENTRIES = 8


def _cached_reception_matrix(
    adjacency: np.ndarray, channels: np.ndarray, tx_role: np.ndarray
) -> np.ndarray:
    """:func:`_reception_matrix`, memoized for repeated step inputs."""
    ch_key = channels.tobytes()
    tx_key = tx_role.tobytes()
    for i, (adj, ch, tx, reach) in enumerate(_REACH_CACHE):
        if adj is adjacency and ch == ch_key and tx == tx_key:
            if i:
                _REACH_CACHE.insert(0, _REACH_CACHE.pop(i))
            obs.count("engine.reach_cache.hits")
            return reach
    obs.count("engine.reach_cache.misses")
    reach = _reception_matrix(adjacency, channels, tx_role)
    _REACH_CACHE.insert(0, (adjacency, ch_key, tx_key, reach))
    if len(_REACH_CACHE) > _REACH_CACHE_ENTRIES:
        obs.count(
            "engine.reach_cache.evictions",
            len(_REACH_CACHE) - _REACH_CACHE_ENTRIES,
        )
    del _REACH_CACHE[_REACH_CACHE_ENTRIES:]
    return reach


def resolve_slot(
    adjacency: np.ndarray, channels: np.ndarray, tx: np.ndarray
) -> SlotOutcome:
    """Resolve a single slot.

    Args:
        adjacency: ``(n, n)`` boolean adjacency matrix.
        channels: ``(n,)`` global channel per node, ``-1`` for idle.
        tx: ``(n,)`` boolean; True = broadcasting this slot (on its
            channel), False = listening.

    Returns:
        A :class:`SlotOutcome` with reception results.
    """
    n = _validate_common(adjacency, channels)
    if tx.shape != (n,):
        raise ProtocolError(f"tx must have shape ({n},), got {tx.shape}")
    # A single slot is a step of length one in which every broadcaster's
    # coin comes up "transmit"; reuse the batched path.
    coins = np.ones((1, n), dtype=bool)
    step = resolve_step(adjacency, channels, tx, coins)
    return SlotOutcome(
        heard_from=step.heard_from[0], contenders=step.contenders[0]
    )


def resolve_step(
    adjacency: np.ndarray,
    channels: np.ndarray,
    tx_role: np.ndarray,
    coins: np.ndarray,
    jam: np.ndarray | None = None,
) -> StepOutcome:
    """Resolve a step of ``T`` slots with fixed channels and roles.

    Args:
        adjacency: ``(n, n)`` boolean adjacency matrix.
        channels: ``(n,)`` global channel per node (fixed for the step),
            ``-1`` for idle.
        tx_role: ``(n,)`` boolean; True = broadcaster for this step,
            False = listener. Listeners listen in every slot;
            broadcasters transmit in slot ``t`` iff ``coins[t, u]`` and
            otherwise stay silent (they never listen mid-step, matching
            COUNT and the part-two back-off of CSEEK).
        coins: ``(T, n)`` boolean per-slot transmission coins.
        jam: Optional ``(T, n)`` boolean; True kills node ``u``'s
            reception in slot ``t`` (its channel is occupied by a
            primary user — the signal is noise, indistinguishable from
            silence).

    Returns:
        A :class:`StepOutcome`; ``heard_from[t, u] >= 0`` only for
        listeners with exactly one broadcasting neighbor on their channel.
    """
    n = _validate_common(adjacency, channels)
    if tx_role.shape != (n,):
        raise ProtocolError(
            f"tx_role must have shape ({n},), got {tx_role.shape}"
        )
    if coins.ndim != 2 or coins.shape[1] != n:
        raise ProtocolError(
            f"coins must have shape (T, {n}), got {coins.shape}"
        )
    if jam is not None and jam.shape != coins.shape:
        raise ProtocolError(
            f"jam must have shape {coins.shape}, got {jam.shape}"
        )
    reach = _cached_reception_matrix(adjacency, channels, tx_role)
    # contenders[t, u] = number of u's neighbors transmitting on u's
    # channel in slot t; idsum is the id-sum trick — when exactly one
    # neighbor transmits, the weighted sum of transmitting-neighbor ids
    # *is* the sender's id. Both are exact integers < n^2, so the
    # backend choice (BLAS float64, numba int loops) never changes them.
    obs.count("engine.resolve_step_calls")
    with obs.span("gemm"):
        contenders, idsum = active_backend().step_products(reach, coins)
    listeners = (channels >= 0) & ~tx_role
    receivable = listeners[None, :] & (contenders == 1)
    if jam is not None:
        receivable &= ~jam
    heard = np.where(receivable, idsum, np.int64(-1))
    return StepOutcome(heard_from=heard, contenders=contenders)


def resolve_step_batch(
    adjacency: np.ndarray,
    channels: np.ndarray,
    tx_role: np.ndarray,
    coins: np.ndarray,
    jam: np.ndarray | None = None,
) -> BatchStepOutcome:
    """Resolve ``B`` independent trials of a step in one shot.

    Channels and roles are either shared by every trial (1-D inputs —
    the homogeneous fast path: the trial and slot axes flatten into one
    blocked GEMM) or per-trial (2-D inputs, resolved with batched
    per-trial reception masks). The adjacency is likewise shared
    (``(n, n)``) or per-trial (``(B, n, n)`` — the cross-point batching
    path, where trials of several sweep points, each with its own
    network, resolve in lockstep; per-trial adjacency requires the
    per-trial mask path, so channels/roles broadcast to 2-D). Per-slot
    coins always vary per trial.

    Args:
        adjacency: ``(n, n)`` shared or ``(B, n, n)`` per-trial boolean
            adjacency.
        channels: ``(n,)`` shared or ``(B, n)`` per-trial global channel
            per node, ``-1`` for idle.
        tx_role: ``(n,)`` shared or ``(B, n)`` per-trial broadcaster
            roles.
        coins: ``(B, T, n)`` boolean per-trial per-slot transmission
            coins.
        jam: Optional ``(B, T, n)`` boolean reception-kill mask.

    Returns:
        A :class:`BatchStepOutcome`; slice ``b`` is bit-identical to
        ``resolve_step`` on trial ``b``'s inputs (its own adjacency
        when per-trial).
    """
    if adjacency.ndim not in (2, 3) or (
        adjacency.shape[-1] != adjacency.shape[-2]
    ):
        raise ProtocolError(
            f"adjacency must be square (optionally batched), got shape "
            f"{adjacency.shape}"
        )
    n = adjacency.shape[-1]
    if coins.ndim != 3 or coins.shape[2] != n:
        raise ProtocolError(
            f"coins must have shape (B, T, {n}), got {coins.shape}"
        )
    b = coins.shape[0]
    if adjacency.ndim == 3 and adjacency.shape[0] != b:
        raise ProtocolError(
            f"per-trial adjacency must have shape ({b}, {n}, {n}), "
            f"got {adjacency.shape}"
        )
    if channels.shape not in ((n,), (b, n)):
        raise ProtocolError(
            f"channels must have shape ({n},) or ({b}, {n}), "
            f"got {channels.shape}"
        )
    if tx_role.shape not in ((n,), (b, n)):
        raise ProtocolError(
            f"tx_role must have shape ({n},) or ({b}, {n}), "
            f"got {tx_role.shape}"
        )
    if jam is not None and jam.shape != coins.shape:
        raise ProtocolError(
            f"jam must have shape {coins.shape}, got {jam.shape}"
        )
    t_slots = coins.shape[1]
    backend = active_backend()
    if channels.ndim == 1 and tx_role.ndim == 1 and adjacency.ndim == 2:
        # Homogeneous trials: one shared (n, n) reception mask; the
        # trial and slot axes flatten into one (B*T, n) product (the
        # numpy backend blocks the GEMM rows to stay cache-resident).
        reach = _cached_reception_matrix(adjacency, channels, tx_role)
        flat = coins.reshape(b * t_slots, n)
        obs.count("engine.resolve_step_batch_calls")
        with obs.span("gemm"):
            contenders, idsum = backend.step_products(reach, flat)
        contenders = contenders.reshape(b, t_slots, n)
        idsum = idsum.reshape(b, t_slots, n)
        listeners = (channels >= 0) & ~tx_role
        receivable = listeners[None, None, :] & (contenders == 1)
    else:
        channels2 = np.broadcast_to(np.atleast_2d(channels), (b, n))
        tx_role2 = np.broadcast_to(np.atleast_2d(tx_role), (b, n))
        adjacency3 = (
            adjacency[None, :, :] if adjacency.ndim == 2 else adjacency
        )
        tuned = channels2 >= 0
        # reach[b, u, v]: v's trial-b broadcasts reach u (against trial
        # b's own adjacency when the stack is per-trial).
        reach = (
            (channels2[:, :, None] == channels2[:, None, :])
            & adjacency3
            & tuned[:, :, None]
            & tuned[:, None, :]
            & tx_role2[:, None, :]
        )
        obs.count("engine.resolve_step_batch_calls")
        with obs.span("gemm"):
            contenders, idsum = backend.batch_step_products(reach, coins)
        listeners = tuned & ~tx_role2
        receivable = listeners[:, None, :] & (contenders == 1)
    if jam is not None:
        receivable = receivable & ~jam
    heard = np.where(receivable, idsum, np.int64(-1))
    return BatchStepOutcome(heard_from=heard, contenders=contenders)


def resolve_varying(
    adjacency: np.ndarray,
    channels: np.ndarray,
    tx: np.ndarray,
    chunk: int = 128,
) -> StepOutcome:
    """Resolve ``T`` slots in which channels change every slot.

    Used by the naive baselines, whose nodes re-hop on every slot (no
    fixed-channel step structure to batch over). Processed in chunks of
    3-D boolean masks to bound memory at ``chunk * n^2``.

    Args:
        adjacency: ``(n, n)`` boolean adjacency matrix.
        channels: ``(T, n)`` global channel per node per slot (``-1``
            idle).
        tx: ``(T, n)`` boolean; True = broadcasting that slot.
        chunk: Slots per processing chunk.

    Returns:
        A :class:`StepOutcome` over all ``T`` slots.
    """
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ProtocolError(
            f"adjacency must be square, got shape {adjacency.shape}"
        )
    n = adjacency.shape[0]
    if channels.ndim != 2 or channels.shape[1] != n:
        raise ProtocolError(
            f"channels must have shape (T, {n}), got {channels.shape}"
        )
    if tx.shape != channels.shape:
        raise ProtocolError(
            f"tx shape {tx.shape} must match channels {channels.shape}"
        )
    if chunk < 1:
        raise ProtocolError(f"chunk must be >= 1, got {chunk}")
    total = channels.shape[0]
    ids = np.arange(n, dtype=np.int64)
    heard_parts = []
    contender_parts = []
    for start in range(0, total, chunk):
        ch = channels[start : start + chunk]
        tx_c = tx[start : start + chunk]
        tuned = ch >= 0
        # reach[t, u, v]: v's slot-t broadcast reaches u.
        reach = (
            (ch[:, :, None] == ch[:, None, :])
            & adjacency[None, :, :]
            & tuned[:, :, None]
            & (tuned & tx_c)[:, None, :]
        )
        contenders = reach.sum(axis=2)
        idsum = (reach * ids[None, None, :]).sum(axis=2)
        listeners = tuned & ~tx_c
        heard = np.where(listeners & (contenders == 1), idsum, -1)
        heard_parts.append(heard.astype(np.int64))
        contender_parts.append(contenders.astype(np.int64))
    return StepOutcome(
        heard_from=np.concatenate(heard_parts, axis=0),
        contenders=np.concatenate(contender_parts, axis=0),
    )
