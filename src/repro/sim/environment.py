"""Pluggable spectrum environments — batched primary-user traffic.

The paper motivates every primitive with licensed (primary) users
disrupting channel availability: a slot spent listening on an occupied
channel is lost (Section 1). This module makes that disruption a
first-class, pluggable subsystem instead of a single jammer object
bolted onto CSEEK:

* A :class:`SpectrumEnvironment` is an immutable *description* of a
  traffic process over a set of global channels. It knows nothing about
  trials; it opens stateful occupancy streams on demand.
* :meth:`SpectrumEnvironment.streams` opens one :class:`TrafficStream`
  covering ``B`` Monte Carlo trials at once. The stream produces
  ``(B, num_slots, num_channels)`` occupancy blocks and
  ``(B, num_slots, n)`` per-node reception-kill masks, advancing all
  trials' chains in lockstep — this is what lets
  :class:`repro.core.cseek_batch.CSeekBatch` jam a whole trial axis
  with one call per protocol step instead of a per-trial Python loop.
* :meth:`SpectrumEnvironment.stream` is the single-trial view with the
  legacy :class:`~repro.sim.interference.PrimaryUserTraffic` shapes
  (``(num_slots, num_channels)`` / ``(num_slots, n)``), used by the
  serial protocol path.

Three models ship:

* :class:`MarkovTraffic` — per-channel ON/OFF Markov chains with a
  target stationary occupancy and geometric dwell times. Batched over
  the trial axis, bit-identical per trial to the sequential
  :class:`~repro.sim.interference.PrimaryUserTraffic` stream it
  replaces (pinned in ``tests/test_environment.py``). Bursty: a single
  long ON burst can erase a whole meeting step.
* :class:`PoissonTraffic` — memoryless per-slot occupancy (each channel
  occupied independently each slot with probability ``activity``).
  Same stationary occupancy as a Markov model with ``mean_dwell``
  ``1/(1-activity)``, but losses spread evenly across slots — the
  Poissonian counterpoint the dynamic-spectrum-access literature
  contrasts with Markovian traffic.
* :class:`StaticMask` — a fixed set of blocked channels (a licensed
  band that is simply never available). Deterministic; trial seeds are
  ignored.

Per-trial stream seeds derive as ``trial_seed + seed_offset`` so the
traffic stays decorrelated from protocol coins; ``seed_offset``
defaults to 1000, the convention the scenario layer and experiment E12
have always used.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.model.errors import ProtocolError

__all__ = [
    "MarkovTraffic",
    "PoissonTraffic",
    "SpectrumEnvironment",
    "StaticMask",
    "TrafficStream",
    "make_environment",
]

ENVIRONMENT_MODELS = ("markov", "poisson", "static")


def _validated_channel_ids(
    channel_ids: Sequence[int], allow_empty: bool = False
) -> List[int]:
    ids = sorted(set(int(g) for g in channel_ids))
    if not ids and not allow_empty:
        raise ProtocolError("need at least one channel id")
    if any(g < 0 for g in ids):
        raise ProtocolError("channel ids must be non-negative")
    return ids


def _validated_activity(
    activity: "float | Sequence[float]", num_channels: int
) -> "float | np.ndarray":
    """Normalize a scalar or per-channel activity target.

    Scalars stay plain Python floats (the historical homogeneous path,
    bit-identical to before vectors existed). A sequence becomes a
    float64 vector of one activity per managed channel, aligned with
    the environment's *sorted, deduplicated* ``channel_ids``.
    """
    if np.ndim(activity) == 0:
        value = float(activity)  # type: ignore[arg-type]
        if not 0.0 <= value < 1.0:
            raise ProtocolError(
                f"activity must be in [0, 1), got {value}"
            )
        return value
    vector = np.asarray(activity, dtype=float)
    if vector.shape != (num_channels,):
        raise ProtocolError(
            f"activity vector must have one entry per managed channel "
            f"({num_channels}), got shape {vector.shape}"
        )
    # ~isfinite catches NaN, which slips through both comparisons.
    if np.any((vector < 0.0) | (vector >= 1.0) | ~np.isfinite(vector)):
        raise ProtocolError(
            "every activity entry must be in [0, 1), got "
            f"{vector.tolist()}"
        )
    return vector


def build_column_lut(
    channel_ids: Sequence[int],
) -> "tuple[np.ndarray, int]":
    """``(lut, max_id)`` mapping global channel id -> occupancy column.

    ``lut[g + 1]`` is the column of managed channel ``g``; every other
    index (idle ``-1`` included) maps to the sentinel column
    ``len(channel_ids)``, which callers keep permanently clear. Shared
    by :class:`TrafficStream` and the legacy
    :class:`~repro.sim.interference.PrimaryUserTraffic` so the gather
    semantics cannot drift apart.
    """
    ids = np.asarray(list(channel_ids), dtype=np.int64)
    max_id = int(ids[-1]) if ids.size else -1
    lut = np.full(max_id + 2, ids.size, dtype=np.int64)
    if ids.size:
        lut[ids + 1] = np.arange(ids.size)
    return lut, max_id


def sentinel_columns(
    lut: np.ndarray, max_id: int, channels: np.ndarray
) -> np.ndarray:
    """Occupancy columns for per-node channels, sentinel for the rest.

    ``channels`` may carry ``-1`` (idle) and ids outside the managed
    set; both land on the sentinel column.
    """
    managed = (channels >= 0) & (channels <= max_id)
    return lut[np.where(managed, channels, -1) + 1]


class TrafficStream(ABC):
    """A stateful occupancy stream over ``B`` trials in lockstep.

    Subclasses implement :meth:`occupied_block`; the per-node
    :meth:`jam_mask` view is shared, built on a vectorized
    channel-column gather (no per-node Python loop).
    """

    def __init__(self, channel_ids: Sequence[int], num_trials: int) -> None:
        if num_trials < 1:
            raise ProtocolError(
                f"a stream needs at least one trial, got {num_trials}"
            )
        self.channel_ids = _validated_channel_ids(
            channel_ids, allow_empty=True
        )
        self.num_trials = num_trials
        self._column_lut, self._max_id = build_column_lut(
            self.channel_ids
        )

    @property
    def num_channels(self) -> int:
        """Channels under primary-user control."""
        return len(self.channel_ids)

    @abstractmethod
    def occupied_block(self, num_slots: int) -> np.ndarray:
        """Advance all trials; return ``(B, num_slots, C)`` occupancy.

        Column order matches ``self.channel_ids``; trial ``b``'s slice
        continues exactly where its previous block ended.
        """

    def _check_slots(self, num_slots: int) -> None:
        if num_slots < 1:
            raise ProtocolError(
                f"num_slots must be >= 1, got {num_slots}"
            )

    def jam_mask(
        self, channels: np.ndarray, num_slots: int
    ) -> np.ndarray:
        """Per-node reception-kill masks for a fixed-channel step.

        Args:
            channels: ``(n,)`` (shared by every trial) or ``(B, n)``
                global channel per node (``-1`` idle; idle nodes and
                channels outside the managed set are never jammed).
            num_slots: Step length; every trial's traffic advances by
                this much.

        Returns:
            ``(B, num_slots, n)`` boolean; True where the node's
            channel is occupied that slot in that trial.
        """
        occupied = self.occupied_block(num_slots)
        channels = np.asarray(channels)
        if channels.ndim == 1:
            channels = np.broadcast_to(
                channels, (self.num_trials, channels.shape[0])
            )
        elif channels.shape[0] != self.num_trials:
            raise ProtocolError(
                f"channels covers {channels.shape[0]} trials, stream "
                f"has {self.num_trials}"
            )
        cols = sentinel_columns(self._column_lut, self._max_id, channels)
        # Sentinel column C is all-clear; a single gather replaces the
        # old per-node loop.
        extended = np.concatenate(
            [
                occupied,
                np.zeros(occupied.shape[:2] + (1,), dtype=bool),
            ],
            axis=2,
        )
        return np.take_along_axis(extended, cols[:, None, :], axis=2)


class _SerialStream:
    """Single-trial adapter with the legacy ``PrimaryUserTraffic`` shapes.

    Wraps a one-trial :class:`TrafficStream`, dropping the leading
    trial axis so the serial protocol path (:meth:`CSeek.run`) can
    consume an environment exactly as it consumed a ``jammer=``.
    """

    def __init__(self, stream: TrafficStream) -> None:
        if stream.num_trials != 1:
            raise ProtocolError(
                "a serial view needs a single-trial stream, got "
                f"{stream.num_trials} trials"
            )
        self._stream = stream
        self.channel_ids = stream.channel_ids

    @property
    def num_channels(self) -> int:
        return self._stream.num_channels

    def occupied_block(self, num_slots: int) -> np.ndarray:
        """``(num_slots, num_channels)`` occupancy, trial axis dropped."""
        return self._stream.occupied_block(num_slots)[0]

    def jam_mask(
        self, channels: np.ndarray, num_slots: int
    ) -> np.ndarray:
        """``(num_slots, n)`` reception-kill mask, trial axis dropped."""
        return self._stream.jam_mask(channels, num_slots)[0]


class SpectrumEnvironment(ABC):
    """One primary-user traffic model over a set of global channels.

    Environments are immutable descriptions; all mutable state lives in
    the streams they open. One environment therefore serves any number
    of trials, serial or batched, without cross-trial contamination —
    which is what lets protocols take an ``environment=`` where they
    used to need a per-trial ``jammer_factory``.
    """

    kind: str = "abstract"

    def __init__(
        self, channel_ids: Sequence[int], seed_offset: int = 1000
    ) -> None:
        self.channel_ids = _validated_channel_ids(channel_ids)
        self.seed_offset = int(seed_offset)

    @property
    def num_channels(self) -> int:
        """Channels under primary-user control."""
        return len(self.channel_ids)

    @abstractmethod
    def streams(self, seeds: Sequence[int]) -> TrafficStream:
        """Open one batched occupancy stream over these trial seeds.

        Trial ``b``'s chain seeds from ``seeds[b] + seed_offset``; its
        slice of every block is bit-identical to the stream
        ``self.stream(seeds[b])`` would produce on its own.
        """

    def stream(self, seed: int) -> _SerialStream:
        """The single-trial serial view for one trial seed."""
        return _SerialStream(self.streams([seed]))

    def _stream_seeds(self, seeds: Sequence[int]) -> List[int]:
        if len(seeds) == 0:
            raise ProtocolError("seeds must name at least one trial")
        return [int(s) + self.seed_offset for s in seeds]


class MarkovTraffic(SpectrumEnvironment):
    """Per-channel ON/OFF Markov chains (bursty licensed traffic).

    The batched refactor of
    :class:`~repro.sim.interference.PrimaryUserTraffic`: each channel
    is an independent ON/OFF chain with target stationary occupancy
    ``activity`` and geometric ON bursts of mean ``mean_dwell`` slots.
    Streams stack each trial's flip blocks and run the ON/OFF
    recurrence once, vectorized over trials x channels — per trial
    bit-identical to the legacy sequential stream (same generator, same
    draw order), so swapping the environment in changes throughput, not
    results.

    Feasibility: the OFF->ON probability needed for stationarity
    saturates at 1, capping reachable occupancy at
    ``mean_dwell / (mean_dwell + 1)``; :attr:`realized_activity`
    reports the fraction the chains actually attain.
    """

    kind = "markov"

    def __init__(
        self,
        channel_ids: Sequence[int],
        activity: "float | Sequence[float]",
        mean_dwell: float = 8.0,
        seed_offset: int = 1000,
    ) -> None:
        if mean_dwell < 1.0:
            raise ProtocolError(
                f"mean_dwell must be >= 1 slot, got {mean_dwell}"
            )
        super().__init__(channel_ids, seed_offset=seed_offset)
        # A scalar targets every channel uniformly (the historical
        # path, kept bit-identical); a length-C vector gives each
        # channel its own stationary occupancy — heterogeneous licensed
        # bands, aligned with the sorted channel_ids.
        self.activity = _validated_activity(activity, self.num_channels)
        self.mean_dwell = float(mean_dwell)
        # ON -> OFF with prob 1/dwell; OFF -> ON tuned for stationarity.
        self._off_prob = 1.0 / self.mean_dwell
        if isinstance(self.activity, float):
            if self.activity == 0.0:
                self._on_prob = 0.0
            else:
                self._on_prob = min(
                    1.0,
                    self.activity
                    * self._off_prob
                    / (1.0 - self.activity),
                )
        else:
            self._on_prob = np.where(
                self.activity == 0.0,
                0.0,
                np.minimum(
                    1.0,
                    self.activity
                    * self._off_prob
                    / (1.0 - self.activity),
                ),
            )

    @property
    def realized_activity(self) -> "float | np.ndarray":
        """The stationary occupancy the chains actually attain.

        A float for scalar targets; a per-channel vector when the
        target was a vector.
        """
        if isinstance(self._on_prob, float):
            if self._on_prob == 0.0:
                return 0.0
            return self._on_prob / (self._on_prob + self._off_prob)
        return np.where(
            self._on_prob == 0.0,
            0.0,
            self._on_prob / (self._on_prob + self._off_prob),
        )

    def streams(self, seeds: Sequence[int]) -> "_MarkovStream":
        return _MarkovStream(self, self._stream_seeds(seeds))


class _MarkovStream(TrafficStream):
    def __init__(
        self, env: MarkovTraffic, stream_seeds: Sequence[int]
    ) -> None:
        super().__init__(env.channel_ids, len(stream_seeds))
        self._rngs = [np.random.default_rng(s) for s in stream_seeds]
        self._off_prob = env._off_prob
        self._on_prob = env._on_prob
        # Every trial starts at stationarity, drawn exactly as the
        # legacy sequential stream draws it.
        self._state = np.stack(
            [rng.random(self.num_channels) < env.activity
             for rng in self._rngs]
        )

    def occupied_block(self, num_slots: int) -> np.ndarray:
        self._check_slots(num_slots)
        # Per-trial flip blocks keep each generator's draw order
        # identical to the sequential stream; the recurrence then runs
        # once over the (B, C) state, not once per trial.
        flips = np.stack(
            [rng.random((num_slots, self.num_channels))
             for rng in self._rngs]
        )
        out = np.empty(
            (self.num_trials, num_slots, self.num_channels), dtype=bool
        )
        state = self._state
        for t in range(num_slots):
            f = flips[:, t]
            turn_off = state & (f < self._off_prob)
            turn_on = ~state & (f < self._on_prob)
            state = (state & ~turn_off) | turn_on
            out[:, t] = state
        self._state = state
        return out


class PoissonTraffic(SpectrumEnvironment):
    """Memoryless per-slot occupancy (Poissonian licensed traffic).

    Each channel is occupied independently every slot with probability
    ``activity`` — mean burst length ``1/(1-activity)`` slots, no
    memory between slots. At matched stationary occupancy this spreads
    losses evenly where :class:`MarkovTraffic` concentrates them into
    bursts, which is exactly the contrast the Markov-vs-Poisson
    scenarios measure.
    """

    kind = "poisson"

    def __init__(
        self,
        channel_ids: Sequence[int],
        activity: "float | Sequence[float]",
        seed_offset: int = 1000,
    ) -> None:
        super().__init__(channel_ids, seed_offset=seed_offset)
        # Scalar or per-channel vector, as for MarkovTraffic.
        self.activity = _validated_activity(activity, self.num_channels)

    @property
    def realized_activity(self) -> "float | np.ndarray":
        """Stationary occupancy (every target is feasible here)."""
        return self.activity

    def streams(self, seeds: Sequence[int]) -> "_PoissonStream":
        return _PoissonStream(self, self._stream_seeds(seeds))


class _PoissonStream(TrafficStream):
    def __init__(
        self, env: PoissonTraffic, stream_seeds: Sequence[int]
    ) -> None:
        super().__init__(env.channel_ids, len(stream_seeds))
        self._rngs = [np.random.default_rng(s) for s in stream_seeds]
        self._activity = env.activity

    def occupied_block(self, num_slots: int) -> np.ndarray:
        self._check_slots(num_slots)
        return np.stack(
            [rng.random((num_slots, self.num_channels)) < self._activity
             for rng in self._rngs]
        )


class StaticMask(SpectrumEnvironment):
    """A fixed set of permanently blocked channels.

    Deterministic: the blocked channels are occupied every slot of
    every trial and everything else is always clear, so trial seeds and
    ``seed_offset`` are irrelevant. Models a licensed band that is
    simply off-limits (the paper's heterogeneous-availability setting
    in its most extreme form).
    """

    kind = "static"

    def __init__(self, blocked_channels: Sequence[int]) -> None:
        # An empty blocked set is a valid (no-op) environment.
        self.channel_ids = _validated_channel_ids(
            blocked_channels, allow_empty=True
        )
        self.seed_offset = 0

    @property
    def blocked_channels(self) -> List[int]:
        return list(self.channel_ids)

    def streams(self, seeds: Sequence[int]) -> "_StaticStream":
        if len(seeds) == 0:
            raise ProtocolError("seeds must name at least one trial")
        return _StaticStream(self.channel_ids, len(seeds))


class _StaticStream(TrafficStream):
    def occupied_block(self, num_slots: int) -> np.ndarray:
        self._check_slots(num_slots)
        return np.ones(
            (self.num_trials, num_slots, self.num_channels), dtype=bool
        )


def make_environment(
    model: str,
    channel_ids: Sequence[int],
    activity: "float | Sequence[float]" = 0.0,
    mean_dwell: float = 8.0,
    seed_offset: int = 1000,
    blocked: Optional[Sequence[int]] = None,
) -> Optional[SpectrumEnvironment]:
    """Build an environment from plain (JSON-friendly) parameters.

    The single lowering point shared by the scenario compiler and any
    ad-hoc caller: returns None for configurations that disable
    interference (zero activity for the stochastic models, an empty
    ``blocked`` set for ``static``), so callers can treat "no
    environment" and "inactive environment" the same way.

    ``activity`` is a scalar (every channel shares one stationary
    occupancy) or a per-channel vector aligned with the sorted
    ``channel_ids`` — heterogeneous licensed bands. An all-zero vector
    disables interference like a zero scalar does.

    Raises:
        ProtocolError: on an unknown model name or invalid parameters.
    """
    name = str(model).lower()
    if name not in ENVIRONMENT_MODELS:
        raise ProtocolError(
            f"unknown interference model {model!r}; valid: "
            f"{', '.join(ENVIRONMENT_MODELS)}"
        )
    if name == "static":
        ids = list(blocked) if blocked is not None else []
        if not ids:
            return None
        return StaticMask(ids)
    if np.ndim(activity) == 0:
        if float(activity) <= 0.0:  # type: ignore[arg-type]
            return None
    else:
        # Validate the vector (length included) before the all-zero
        # short-circuit: a mis-sized zero vector is a spec error, not a
        # silent interference-free run.
        vector = _validated_activity(
            activity, len({int(g) for g in channel_ids})
        )
        if not np.any(vector > 0.0):
            return None
    if name == "poisson":
        return PoissonTraffic(
            channel_ids, activity=activity, seed_offset=seed_offset
        )
    return MarkovTraffic(
        channel_ids,
        activity=activity,
        mean_dwell=mean_dwell,
        seed_offset=seed_offset,
    )
