"""Synchronous slot-level simulation engine."""

from repro.sim.backend import (
    ArrayBackend,
    NumpyBackend,
    active_backend,
    available_backends,
    set_backend,
    use_backend,
)
from repro.sim.engine import (
    BatchStepOutcome,
    SlotOutcome,
    StepOutcome,
    resolve_slot,
    resolve_step,
    resolve_step_batch,
    resolve_varying,
)
from repro.sim.environment import (
    MarkovTraffic,
    PoissonTraffic,
    SpectrumEnvironment,
    StaticMask,
    TrafficStream,
    make_environment,
)
from repro.sim.interference import PrimaryUserTraffic
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork
from repro.sim.rng import RngHub
from repro.sim.trace import ReceptionEvent, TraceRecorder

__all__ = [
    "ArrayBackend",
    "BatchStepOutcome",
    "CRNetwork",
    "NumpyBackend",
    "active_backend",
    "available_backends",
    "set_backend",
    "use_backend",
    "MarkovTraffic",
    "PoissonTraffic",
    "PrimaryUserTraffic",
    "ReceptionEvent",
    "RngHub",
    "SlotLedger",
    "SlotOutcome",
    "SpectrumEnvironment",
    "StaticMask",
    "StepOutcome",
    "TraceRecorder",
    "TrafficStream",
    "make_environment",
    "resolve_slot",
    "resolve_step",
    "resolve_step_batch",
    "resolve_varying",
]
