"""Pluggable array-compute backends for the engine's hot path.

Every engine entry point ultimately reduces to the same two products
per step: for each (trial, slot) coin row, the number of reachable
broadcasting neighbors per listener (``contenders``) and the id-sum of
those neighbors (``idsum`` — the sender's identity whenever exactly one
neighbor transmits). :class:`ArrayBackend` isolates exactly that pair
of products, so the surrounding protocol semantics (reception masks,
listener gating, jamming) stay in :mod:`repro.sim.engine` while the
arithmetic can be swapped:

:class:`NumpyBackend`
    The default and the reference. Casts the boolean reception mask to
    float64 once per distinct mask (cached — see
    :meth:`NumpyBackend.reach_floats`) so the products dispatch to BLAS
    GEMMs. All operands are 0/1 coins or ids ``< n``, so every product
    is an exact integer ``< n^2 << 2^53`` — float64 round-trips are
    lossless and results are bit-identical regardless of blocking.
:class:`NumbaBackend`
    Optional JIT backend, discovered at runtime (never imported unless
    selected). Computes the same integer products with fused
    ``prange`` loops over the boolean masks directly — no float
    round-trip, no temporaries. Because both backends produce exact
    integers, their outputs are bit-identical; the equivalence tests
    in ``tests/test_backend.py`` pin that, and they skip cleanly when
    numba is absent.

Selection: :func:`set_backend` / the ``--backend`` CLI flag, or the
``REPRO_BACKEND`` environment variable (read lazily on first use, so
``REPRO_BACKEND=numba pytest`` exercises the JIT path end to end).
:func:`use_backend` scopes a choice to a ``with`` block for tests.
"""

from __future__ import annotations

import importlib.util
import os
from contextlib import contextmanager
from typing import Iterator, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro import obs
from repro.model.errors import HarnessError

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "active_backend",
    "available_backends",
    "set_backend",
    "use_backend",
]

#: Environment variable naming the default backend.
BACKEND_ENV = "REPRO_BACKEND"


@runtime_checkable
class ArrayBackend(Protocol):
    """The two integer products every engine step reduces to.

    Implementations must return exact ``int64`` results — the values
    are counts and id-sums, both integers, so any correct
    implementation is bit-identical to any other. That exactness is
    what makes the backend a pure throughput decision.
    """

    name: str

    def step_products(
        self, reach: np.ndarray, coins: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Products for a shared ``(n, n)`` reception mask.

        Args:
            reach: ``(n, n)`` boolean; ``[u, v]`` = v's broadcasts
                reach u.
            coins: ``(M, n)`` boolean transmission coins (any flattened
                trial/slot axis).

        Returns:
            ``(contenders, idsum)`` int64 arrays of shape ``(M, n)``.
        """
        ...

    def batch_step_products(
        self, reach: np.ndarray, coins: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Products for per-trial ``(B, n, n)`` reception masks.

        Args:
            reach: ``(B, n, n)`` boolean per-trial reception masks.
            coins: ``(B, T, n)`` boolean per-trial per-slot coins.

        Returns:
            ``(contenders, idsum)`` int64 arrays of shape ``(B, T, n)``.
        """
        ...


class NumpyBackend:
    """BLAS-dispatched reference backend (the default).

    Float64 casts of a reception mask are memoized per mask object
    (:meth:`reach_floats`): protocol runs resolve many steps against
    the same mask (COUNT trials re-use one star; cached reception
    matrices in the engine return the same object), and re-materializing
    ``reach.astype(np.float64)`` per call was measurable on small-n
    sweeps. The cache keys on object identity and holds strong
    references, so an entry can never alias a different (freed) array.
    """

    name = "numpy"

    #: Distinct reach masks memoized at once. Protocol runs alternate
    #: between at most a couple of masks; keep this tiny.
    _CACHE_ENTRIES = 4

    #: Rows per GEMM block — big enough to amortize dispatch, small
    #: enough to stay cache-resident (one huge GEMM with this skinny
    #: inner dimension is memory-bound and loses).
    _GEMM_ROWS = 16384

    def __init__(self) -> None:
        self._floats: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    def reach_floats(
        self, reach: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(reach_f, reach_ids)`` float64 casts, memoized per mask."""
        for i, (obj, reach_f, reach_ids) in enumerate(self._floats):
            if obj is reach:
                if i:  # move-to-front; the hot mask stays first
                    self._floats.insert(0, self._floats.pop(i))
                obs.count("backend.float_cache.hits")
                return reach_f, reach_ids
        obs.count("backend.float_cache.misses")
        reach_f = reach.astype(np.float64)
        ids = np.arange(reach.shape[-1], dtype=np.float64)
        reach_ids = reach_f * ids[None, :]
        self._floats.insert(0, (reach, reach_f, reach_ids))
        if len(self._floats) > self._CACHE_ENTRIES:
            obs.count(
                "backend.float_cache.evictions",
                len(self._floats) - self._CACHE_ENTRIES,
            )
        del self._floats[self._CACHE_ENTRIES :]
        return reach_f, reach_ids

    def step_products(
        self, reach: np.ndarray, coins: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        reach_f, reach_ids = self.reach_floats(reach)
        m, n = coins.shape
        contenders = np.empty((m, n), dtype=np.int64)
        idsum = np.empty((m, n), dtype=np.int64)
        rows = self._GEMM_ROWS
        obs.count("backend.gemm_blocks", -(-m // rows))
        for i in range(0, m, rows):
            block = coins[i : i + rows].astype(np.float64)
            contenders[i : i + rows] = (block @ reach_f.T).astype(np.int64)
            idsum[i : i + rows] = (block @ reach_ids.T).astype(np.int64)
        return contenders, idsum

    def batch_step_products(
        self, reach: np.ndarray, coins: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        # Batched BLAS GEMMs over the trial axis (matmul beats einsum
        # ~5x on these shapes). Per-trial masks are fresh arrays every
        # step, so there is nothing to memoize here.
        obs.count("backend.gemm_batches")
        ids = np.arange(reach.shape[-1], dtype=np.float64)
        reach_t = reach.astype(np.float64).transpose(0, 2, 1)
        coins_f = coins.astype(np.float64)
        contenders = (coins_f @ reach_t).astype(np.int64)
        idsum = (coins_f @ (reach_t * ids[:, None])).astype(np.int64)
        return contenders, idsum


class NumbaBackend:
    """JIT backend over the boolean masks directly (optional).

    Compiled lazily on first use; construction fails with a
    :class:`HarnessError` when numba is not importable, so selecting
    ``--backend numba`` in an environment without it is an immediate,
    clear error rather than a deep ImportError.
    """

    name = "numba"

    def __init__(self) -> None:
        try:
            import numba  # noqa: F401 — availability probe
        except ImportError as exc:  # pragma: no cover — env-dependent
            raise HarnessError(
                "backend 'numba' requested but numba is not installed; "
                "install numba or use --backend numpy"
            ) from exc
        self._step_kernel = None
        self._batch_kernel = None

    def _kernels(self):
        if self._step_kernel is None:
            import numba

            @numba.njit(parallel=True, cache=False)
            def step_kernel(reach, coins, contenders, idsum):
                m, n = coins.shape
                for t in numba.prange(m):
                    for u in range(n):
                        cnt = np.int64(0)
                        acc = np.int64(0)
                        for v in range(n):
                            if reach[u, v] and coins[t, v]:
                                cnt += 1
                                acc += v
                        contenders[t, u] = cnt
                        idsum[t, u] = acc

            @numba.njit(parallel=True, cache=False)
            def batch_kernel(reach, coins, contenders, idsum):
                b, t_slots, n = coins.shape
                for b_i in numba.prange(b):
                    for t in range(t_slots):
                        for u in range(n):
                            cnt = np.int64(0)
                            acc = np.int64(0)
                            for v in range(n):
                                if reach[b_i, u, v] and coins[b_i, t, v]:
                                    cnt += 1
                                    acc += v
                            contenders[b_i, t, u] = cnt
                            idsum[b_i, t, u] = acc

            self._step_kernel = step_kernel
            self._batch_kernel = batch_kernel
        return self._step_kernel, self._batch_kernel

    def step_products(
        self, reach: np.ndarray, coins: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        step_kernel, _ = self._kernels()
        contenders = np.empty(coins.shape, dtype=np.int64)
        idsum = np.empty(coins.shape, dtype=np.int64)
        step_kernel(
            np.ascontiguousarray(reach),
            np.ascontiguousarray(coins),
            contenders,
            idsum,
        )
        return contenders, idsum

    def batch_step_products(
        self, reach: np.ndarray, coins: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        _, batch_kernel = self._kernels()
        contenders = np.empty(coins.shape, dtype=np.int64)
        idsum = np.empty(coins.shape, dtype=np.int64)
        batch_kernel(
            np.ascontiguousarray(reach),
            np.ascontiguousarray(coins),
            contenders,
            idsum,
        )
        return contenders, idsum


_FACTORIES = {"numpy": NumpyBackend, "numba": NumbaBackend}

_active: Optional[ArrayBackend] = None


def available_backends() -> List[str]:
    """Backend names usable in this environment (numpy always)."""
    names = ["numpy"]
    if importlib.util.find_spec("numba") is not None:
        names.append("numba")
    return names


def _make(name: str) -> ArrayBackend:
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise HarnessError(
            f"unknown backend {name!r}; expected one of: "
            f"{', '.join(sorted(_FACTORIES))}"
        ) from None
    return factory()


def active_backend() -> ArrayBackend:
    """The backend engine calls resolve against (lazy, env-aware)."""
    global _active
    if _active is None:
        _active = _make(os.environ.get(BACKEND_ENV, "numpy").strip().lower())
    return _active


def set_backend(
    backend: "str | ArrayBackend | None",
) -> ArrayBackend:
    """Install the process-wide backend; ``None`` re-reads the env var."""
    global _active
    if backend is None:
        _active = None
        return active_backend()
    if isinstance(backend, str):
        backend = _make(backend.strip().lower())
    _active = backend
    return backend


@contextmanager
def use_backend(backend: "str | ArrayBackend") -> Iterator[ArrayBackend]:
    """Scope a backend choice to a ``with`` block (tests, benchmarks)."""
    global _active
    previous = _active
    installed = set_backend(backend)
    try:
        yield installed
    finally:
        _active = previous
