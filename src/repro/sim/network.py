"""The simulated cognitive radio network.

:class:`CRNetwork` bundles a connectivity graph with a channel assignment
and precomputes everything the slot engine needs: the boolean adjacency
matrix, neighbor lists, per-edge overlap sizes and the realized model
parameters ``(k, kmax, Delta, D)``.

A ``CRNetwork`` is the *ground truth* the algorithms run against. The
algorithms themselves only ever receive a :class:`~repro.model.spec.ModelKnowledge`
(global parameters) plus their own node's local channel labels — they
never inspect the network object directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

import networkx as nx
import numpy as np

from repro.model.channels import ChannelAssignment
from repro.model.errors import AssignmentError, TopologyError
from repro.model.spec import ModelKnowledge
from repro.structure import GraphStats, graph_stats

__all__ = ["CRNetwork"]


@dataclass
class CRNetwork:
    """A connectivity graph plus channel assignment, ready to simulate.

    Attributes:
        graph: Connected :class:`networkx.Graph` on nodes ``0 .. n-1``.
        assignment: Per-node channel sets with local labels.
    """

    graph: nx.Graph
    assignment: ChannelAssignment

    adjacency: np.ndarray = field(init=False, repr=False)
    stats: GraphStats = field(init=False)
    _neighbors: List[np.ndarray] = field(init=False, repr=False)
    _edge_overlap: Dict[Tuple[int, int], int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n = self.graph.number_of_nodes()
        if sorted(self.graph.nodes()) != list(range(n)):
            raise TopologyError("graph nodes must be 0 .. n-1")
        if self.assignment.n != n:
            raise AssignmentError(
                f"assignment covers {self.assignment.n} nodes, graph has {n}"
            )
        self.stats = graph_stats(self.graph)
        adj = np.zeros((n, n), dtype=bool)
        for u, v in self.graph.edges():
            adj[u, v] = True
            adj[v, u] = True
        self.adjacency = adj
        self._neighbors = [np.flatnonzero(adj[u]) for u in range(n)]
        overlap: Dict[Tuple[int, int], int] = {}
        for u, v in self.graph.edges():
            a, b = (u, v) if u <= v else (v, u)
            size = self.assignment.overlap_size(a, b)
            if size < 1:
                raise AssignmentError(
                    f"neighbors ({a}, {b}) share no channels; the model "
                    "requires k >= 1"
                )
            overlap[(a, b)] = size
        self._edge_overlap = overlap

    # ------------------------------------------------------------------
    # Shape / parameter queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.stats.n

    @property
    def c(self) -> int:
        """Channels per node."""
        return self.assignment.c

    @property
    def max_degree(self) -> int:
        """Realized ``Delta``."""
        return self.stats.max_degree

    @property
    def diameter(self) -> int:
        """Realized ``D``."""
        return self.stats.diameter

    @property
    def realized_k(self) -> int:
        """Realized minimum per-edge overlap."""
        return min(self._edge_overlap.values())

    @property
    def realized_kmax(self) -> int:
        """Realized maximum per-edge overlap."""
        return max(self._edge_overlap.values())

    def knowledge(self) -> ModelKnowledge:
        """The a-priori knowledge handed to algorithms for this network."""
        return ModelKnowledge(
            n=self.n,
            c=self.c,
            k=self.realized_k,
            kmax=self.realized_kmax,
            max_degree=self.max_degree,
            diameter=self.diameter,
        )

    # ------------------------------------------------------------------
    # Topology queries (ground truth; for the engine and for verification)
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> np.ndarray:
        """Sorted array of ``u``'s neighbor ids."""
        return self._neighbors[u]

    def degree(self, u: int) -> int:
        """Number of neighbors of ``u``."""
        return int(self._neighbors[u].size)

    def is_edge(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are neighbors."""
        return bool(self.adjacency[u, v])

    def edges(self) -> List[Tuple[int, int]]:
        """All edges in canonical ``(min, max)`` orientation, sorted."""
        return sorted(self._edge_overlap.keys())

    def edge_overlap(self, u: int, v: int) -> int:
        """The paper's ``k_{u,v}`` for a neighboring pair.

        Raises:
            TopologyError: if ``(u, v)`` is not an edge.
        """
        a, b = (u, v) if u <= v else (v, u)
        if (a, b) not in self._edge_overlap:
            raise TopologyError(f"({u}, {v}) is not an edge")
        return self._edge_overlap[(a, b)]

    def shared_channels(self, u: int, v: int) -> FrozenSet[int]:
        """Global ids of channels shared by ``u`` and ``v``."""
        return self.assignment.overlap(u, v)

    def true_neighbor_sets(self) -> List[FrozenSet[int]]:
        """Per-node ground-truth neighbor sets (for verifying discovery)."""
        return [frozenset(int(v) for v in self._neighbors[u]) for u in range(self.n)]

    def good_neighbor_sets(self, khat: int) -> List[FrozenSet[int]]:
        """Per-node neighbors sharing at least ``khat`` channels.

        These are the targets of the ``khat``-neighbor-discovery problem
        (Section 4.4).
        """
        out: List[FrozenSet[int]] = []
        for u in range(self.n):
            good = frozenset(
                int(v)
                for v in self._neighbors[u]
                if self.edge_overlap(u, int(v)) >= khat
            )
            out.append(good)
        return out

    def max_good_degree(self, khat: int) -> int:
        """Realized ``Delta_khat``: max number of good neighbors."""
        return max(len(s) for s in self.good_neighbor_sets(khat))

    # ------------------------------------------------------------------
    # Channel/physics helpers used by the engine
    # ------------------------------------------------------------------
    def global_channels(self, u: int, local_labels: np.ndarray) -> np.ndarray:
        """Translate an array of ``u``'s local labels to global ids."""
        return self.assignment.table[u, local_labels]

    def channel_table(self) -> np.ndarray:
        """The full ``(n, c)`` local-label -> global-id table."""
        return self.assignment.table

    def crowding(self, u: int) -> Dict[int, int]:
        """For each global channel of ``u``: how many neighbors share it.

        This is the paper's ``n_ch`` (analysis quantity; algorithms must
        estimate it via COUNT).
        """
        out: Dict[int, int] = {}
        for g in self.assignment.channels_of(u):
            out[g] = sum(
                1
                for v in self._neighbors[u]
                if g in self.assignment.channels_of(int(v))
            )
        return out
