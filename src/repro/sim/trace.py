"""Reception tracing.

A :class:`TraceRecorder` captures *who heard whom when* during a protocol
execution. Protocols feed it step outcomes; experiments use it to compute
time-to-completion (e.g. "the slot at which the last node discovered its
last neighbor"), which is the tight empirical counterpart of the paper's
schedule-length bounds.

Recording distinct-first receptions only keeps traces small even for long
runs: the recorder stores the first slot each ordered pair ``(listener,
sender)`` was heard, plus optional full event logs when ``verbose``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.engine import BatchStepOutcome, StepOutcome

__all__ = ["ReceptionEvent", "TraceRecorder", "record_step_batch"]


@dataclass(frozen=True)
class ReceptionEvent:
    """One successful reception.

    Attributes:
        slot: Global slot index at which the message was heard.
        listener: Receiving node id.
        sender: Broadcasting node id.
        channel: Global channel id the exchange happened on (``-1`` if the
            caller did not supply channels).
        phase: Protocol phase label.
    """

    slot: int
    listener: int
    sender: int
    channel: int
    phase: str


@dataclass
class TraceRecorder:
    """Accumulates reception events across protocol phases.

    Attributes:
        verbose: When True, every reception is stored as an event; when
            False only first receptions per ordered pair are kept.
    """

    verbose: bool = False
    first_heard: Dict[Tuple[int, int], ReceptionEvent] = field(
        default_factory=dict
    )
    events: List[ReceptionEvent] = field(default_factory=list)

    def record_step(
        self,
        outcome: StepOutcome,
        start_slot: int,
        phase: str,
        channels: Optional[np.ndarray] = None,
    ) -> None:
        """Ingest a :class:`StepOutcome` whose first slot is ``start_slot``.

        Args:
            outcome: Engine result for the step.
            start_slot: Global slot index of the step's slot 0.
            phase: Phase label for bookkeeping.
            channels: Optional ``(n,)`` global channel per node during the
                step (fixed-channel steps), used to annotate events.
        """
        heard = outcome.heard_from
        slots, listeners = np.nonzero(heard >= 0)
        if slots.size == 0:
            return
        senders = heard[slots, listeners]
        if self.verbose:
            for t, u, s in zip(
                slots.tolist(), listeners.tolist(), senders.tolist()
            ):
                self.events.append(
                    ReceptionEvent(
                        slot=start_slot + t,
                        listener=u,
                        sender=s,
                        channel=int(channels[u]) if channels is not None else -1,
                        phase=phase,
                    )
                )
        # Vectorized first-reception extraction: slot order is already
        # ascending within np.nonzero output (row-major), so np.unique's
        # first occurrence per (listener, sender) key is the earliest.
        n = heard.shape[1]
        keys = listeners.astype(np.int64) * n + senders.astype(np.int64)
        _, first_idx = np.unique(keys, return_index=True)
        for i in first_idx.tolist():
            key = (int(listeners[i]), int(senders[i]))
            if key in self.first_heard:
                continue
            u = key[0]
            self.first_heard[key] = ReceptionEvent(
                slot=start_slot + int(slots[i]),
                listener=u,
                sender=key[1],
                channel=int(channels[u]) if channels is not None else -1,
                phase=phase,
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def first_reception(self, listener: int, sender: int) -> Optional[ReceptionEvent]:
        """First time ``listener`` heard ``sender``, or None."""
        return self.first_heard.get((listener, sender))

    def heard_by(self, listener: int) -> List[int]:
        """Sorted sender ids that ``listener`` has heard at least once."""
        return sorted(s for (u, s) in self.first_heard if u == listener)

    def completion_slot(self) -> Optional[int]:
        """Slot of the last *first* reception (None if nothing was heard).

        For discovery protocols this is the empirical time-to-completion:
        after this slot no listener learns anything new.
        """
        if not self.first_heard:
            return None
        return max(e.slot for e in self.first_heard.values())

    def reception_count(self) -> int:
        """Number of distinct ordered ``(listener, sender)`` pairs heard."""
        return len(self.first_heard)


def record_step_batch(
    recorders: Sequence[TraceRecorder],
    outcome: BatchStepOutcome,
    start_slot: int,
    phase: str,
    channels: Optional[np.ndarray] = None,
) -> None:
    """Ingest one batched step into per-trial recorders in a single pass.

    Equivalent to ``recorders[b].record_step(outcome.trial(b), ...)`` for
    every trial ``b``, but the reception scan (the per-step cost that
    dominates protocol bookkeeping once the engine is batched) runs once
    over the whole ``(B, T, n)`` block instead of ``B`` times. Verbose
    recorders fall back to the per-trial path — event logs need every
    reception, not just firsts.

    Args:
        recorders: One recorder per trial (length ``B``).
        outcome: Batched engine result for the step.
        start_slot: Global slot index of the step's slot 0 (shared by all
            trials — they run in lockstep).
        phase: Phase label for bookkeeping.
        channels: Optional ``(B, n)`` per-trial global channels during
            the step, used to annotate events.
    """
    heard = outcome.heard_from
    if len(recorders) != heard.shape[0]:
        raise ValueError(
            f"{len(recorders)} recorders for {heard.shape[0]} trials"
        )
    if any(rec.verbose for rec in recorders):
        for b, rec in enumerate(recorders):
            rec.record_step(
                outcome.trial(b),
                start_slot,
                phase,
                channels=channels[b] if channels is not None else None,
            )
        return
    trials, slots, listeners = np.nonzero(heard >= 0)
    if trials.size == 0:
        return
    senders = heard[trials, slots, listeners]
    # np.nonzero walks row-major — (trial, slot, listener) ascending — so
    # np.unique's first occurrence per (trial, listener, sender) key is
    # that trial's earliest slot, exactly as in record_step.
    n = heard.shape[2]
    keys = (
        trials.astype(np.int64) * n + listeners.astype(np.int64)
    ) * n + senders.astype(np.int64)
    _, first_idx = np.unique(keys, return_index=True)
    for i in first_idx.tolist():
        b = int(trials[i])
        key = (int(listeners[i]), int(senders[i]))
        first_heard = recorders[b].first_heard
        if key in first_heard:
            continue
        first_heard[key] = ReceptionEvent(
            slot=start_slot + int(slots[i]),
            listener=key[0],
            sender=key[1],
            channel=int(channels[b, key[0]]) if channels is not None else -1,
            phase=phase,
        )
