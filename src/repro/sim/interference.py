"""Primary-user interference (the paper's motivating disruption).

Cognitive radios are secondary users: licensed (primary) users may
occupy channels at any time, and a slot on an occupied channel is lost
— the listener perceives noise, indistinguishable from silence in the
no-collision-detection model. The paper motivates heterogeneous channel
availability with exactly this scenario (Section 1); the *algorithms*
are analyzed on a static assignment, so interference here is a
robustness extension: it lets experiments measure how much schedule
slack CSEEK's w.h.p. budgets leave (experiment E11).

:class:`PrimaryUserTraffic` models each channel as an independent
ON/OFF Markov chain with a target stationary occupancy (``activity``)
and geometric dwell times (``mean_dwell`` slots per ON burst),
generating occupancy sequentially so protocol executions consume it
slot by slot, reproducibly from one seed.

This class predates the pluggable spectrum-environment subsystem
(:mod:`repro.sim.environment`) and remains as the sequential reference
implementation its batched :class:`~repro.sim.environment.MarkovTraffic`
refactor is pinned against (``jammer=`` on the protocols still accepts
it). New code should construct a
:class:`~repro.sim.environment.SpectrumEnvironment` instead — the
environment serves serial and trial-batched execution alike and opens
the door to non-Markovian traffic models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.model.errors import ProtocolError
from repro.sim.environment import build_column_lut, sentinel_columns

__all__ = ["PrimaryUserTraffic"]


class PrimaryUserTraffic:
    """Sequential ON/OFF occupancy over a set of global channels.

    Args:
        channel_ids: Global channel ids the primary users may occupy.
        activity: Target stationary occupied fraction per channel, in
            ``[0, 1)``.
        mean_dwell: Mean ON-burst length in slots (``>= 1``); OFF
            lengths follow from the stationarity constraint.
        seed: Randomness seed.

    Feasibility: with geometric ON bursts of mean ``mean_dwell``, the
    OFF->ON transition probability needed for stationarity is
    ``activity / (mean_dwell * (1 - activity))`` and saturates at 1.
    Targets beyond ``mean_dwell / (mean_dwell + 1)`` are therefore
    unreachable — the chain then turns ON every OFF slot and the
    realized occupancy plateaus at that cap. The
    :attr:`realized_activity` property reports the stationary fraction
    the chain actually attains.
    """

    def __init__(
        self,
        channel_ids: Sequence[int],
        activity: float,
        mean_dwell: float = 8.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= activity < 1.0:
            raise ProtocolError(
                f"activity must be in [0, 1), got {activity}"
            )
        if mean_dwell < 1.0:
            raise ProtocolError(
                f"mean_dwell must be >= 1 slot, got {mean_dwell}"
            )
        ids = sorted(set(int(g) for g in channel_ids))
        if not ids:
            raise ProtocolError("need at least one channel id")
        if any(g < 0 for g in ids):
            raise ProtocolError("channel ids must be non-negative")
        self.channel_ids = ids
        self.activity = activity
        self.mean_dwell = mean_dwell
        # One gather implementation with the environment subsystem:
        # built once here, applied every step in jam_mask.
        self._column_lut, self._max_id = build_column_lut(ids)
        self._rng = np.random.default_rng(seed)
        # ON -> OFF with prob 1/dwell; OFF -> ON tuned for stationarity:
        # p = on_rate / (on_rate + off_rate).
        self._off_prob = 1.0 / mean_dwell
        if activity == 0.0:
            self._on_prob = 0.0
        else:
            self._on_prob = min(
                1.0, activity * self._off_prob / (1.0 - activity)
            )
        # Start at stationarity.
        self._state = self._rng.random(len(ids)) < activity

    @property
    def num_channels(self) -> int:
        """Channels under primary-user control."""
        return len(self.channel_ids)

    @property
    def realized_activity(self) -> float:
        """The stationary occupancy the chain actually attains.

        Equals ``activity`` whenever the target is feasible for the
        requested dwell, and the ``mean_dwell / (mean_dwell + 1)`` cap
        otherwise (see the class docstring).
        """
        if self._on_prob == 0.0:
            return 0.0
        return self._on_prob / (self._on_prob + self._off_prob)

    def occupied_block(self, num_slots: int) -> np.ndarray:
        """Advance the chains; return ``(num_slots, num_channels)`` bool.

        Column order matches ``self.channel_ids``.
        """
        if num_slots < 1:
            raise ProtocolError(f"num_slots must be >= 1, got {num_slots}")
        out = np.empty((num_slots, self.num_channels), dtype=bool)
        state = self._state
        flips = self._rng.random((num_slots, self.num_channels))
        for t in range(num_slots):
            turn_off = state & (flips[t] < self._off_prob)
            turn_on = ~state & (flips[t] < self._on_prob)
            state = (state & ~turn_off) | turn_on
            out[t] = state
        self._state = state
        return out

    def jam_mask(
        self, channels: np.ndarray, num_slots: int
    ) -> np.ndarray:
        """Per-node reception-kill mask for a fixed-channel step.

        Args:
            channels: ``(n,)`` global channel per node (``-1`` idle;
                idle nodes are never jammed — they hear nothing anyway).
            num_slots: Step length; the traffic advances by this much.

        Returns:
            ``(num_slots, n)`` boolean; True where the node's channel is
            occupied that slot. Channels outside the primary users'
            set are never occupied.
        """
        occupied = self.occupied_block(num_slots)
        channels = np.asarray(channels)
        # Channel-column gather through the precomputed LUT: the
        # sentinel column is never occupied (no per-node Python loop).
        cols = sentinel_columns(self._column_lut, self._max_id, channels)
        extended = np.concatenate(
            [occupied, np.zeros((num_slots, 1), dtype=bool)], axis=1
        )
        return extended[:, cols]
