"""The naive global-broadcast baseline (paper, Section 1).

"One can devise a straightforward solution in which nodes hop among
channels randomly and wait for the message if uninformed, or broadcast
it if they are already informed. Such naive solution would cost
approximately ``Õ((c²/k)·D)`` time."

Per slot every node tunes to a uniform channel; informed nodes broadcast
the message with probability 1/2 (the coin keeps two informed neighbors
from colliding forever), uninformed nodes listen. The message crosses an
edge at rate ``~ k_uv / (4 c²)`` per slot, so each of the ``D`` hops
costs ``~ c²/k`` slots — no pipelining discount, hence the
multiplicative ``·D``.

Implementation note: slots are resolved in chunks for speed, but
semantics stay exact — a node informed at slot ``t`` starts broadcasting
at slot ``t + 1``. When a chunk produces new informed nodes, receptions
up to and including the earliest informing slot are committed and the
remainder of the chunk is re-resolved with the updated informed set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.constants import ProtocolConstants
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.engine import resolve_varying
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork
from repro.sim.rng import RngHub

__all__ = ["NaiveBroadcast", "NaiveBroadcastResult"]


@dataclass
class NaiveBroadcastResult:
    """Result of a naive-broadcast execution.

    Attributes:
        informed: ``(n,)`` boolean; who holds the message at the end.
        informed_slot: ``(n,)`` int; slot of first reception (source 0,
            uninformed -1).
        ledger: Slots charged (phase ``"naive_broadcast"``).
        total_slots: Slots executed (early stop may undercut the
            schedule).
        scheduled_slots: The full schedule length.
    """

    informed: np.ndarray
    informed_slot: np.ndarray
    ledger: SlotLedger
    total_slots: int
    scheduled_slots: int

    @property
    def success(self) -> bool:
        return bool(self.informed.all())

    @property
    def completion_slot(self) -> Optional[int]:
        if not self.success:
            return None
        return int(self.informed_slot.max())


class NaiveBroadcast:
    """The introduction's random-hopping broadcast strawman.

    Args:
        network: Ground-truth network.
        source: Initially informed node.
        knowledge: Global parameters; defaults to realized values.
        constants: ``naive_factor`` stretches the schedule
            ``ceil(naive_factor * (c²/k) * D * lg n)`` slots.
        seed: Randomness seed.
        max_slots: Optional hard override of the schedule length.
        early_stop: Stop once everyone is informed.
        chunk: Slots per resolution chunk.
    """

    def __init__(
        self,
        network: CRNetwork,
        source: int = 0,
        knowledge: Optional[ModelKnowledge] = None,
        constants: Optional[ProtocolConstants] = None,
        seed: int = 0,
        max_slots: Optional[int] = None,
        early_stop: bool = True,
        chunk: int = 128,
    ) -> None:
        if not 0 <= source < network.n:
            raise ProtocolError(
                f"source {source} out of range [0, {network.n})"
            )
        self.network = network
        self.source = source
        self.knowledge = knowledge or network.knowledge()
        self.constants = constants or ProtocolConstants.fast()
        self.seed = seed
        self.early_stop = early_stop
        self.chunk = chunk
        kn = self.knowledge
        if max_slots is not None:
            if max_slots < 1:
                raise ProtocolError(f"max_slots must be >= 1: {max_slots}")
            self.schedule_slots = max_slots
        else:
            self.schedule_slots = max(
                1,
                math.ceil(
                    self.constants.naive_factor
                    * (kn.c * kn.c / kn.k)
                    * kn.diameter
                    * kn.log_n
                ),
            )

    def run(self) -> NaiveBroadcastResult:
        """Execute until the schedule ends or everyone is informed."""
        net = self.network
        n, c = net.n, net.c
        table = net.channel_table()
        rng = RngHub(self.seed).child("naive-broadcast").generator("slots")
        ledger = SlotLedger()
        informed = np.zeros(n, dtype=bool)
        informed[self.source] = True
        informed_slot = np.full(n, -1, dtype=np.int64)
        informed_slot[self.source] = 0
        node_idx = np.arange(n)

        slot_cursor = 0
        while slot_cursor < self.schedule_slots:
            if self.early_stop and informed.all():
                break
            batch = min(self.chunk, self.schedule_slots - slot_cursor)
            labels = rng.integers(0, c, size=(batch, n))
            channels = table[node_idx[None, :], labels]
            coins = rng.random((batch, n)) < 0.5
            # Re-resolve the chunk suffix whenever the informed set grows
            # mid-chunk, so new holders start broadcasting next slot.
            offset = 0
            while offset < batch:
                tx = coins[offset:] & informed[None, :]
                outcome = resolve_varying(
                    net.adjacency, channels[offset:], tx, chunk=self.chunk
                )
                heard = outcome.heard_from >= 0
                new_hits = heard & ~informed[None, :]
                if not new_hits.any():
                    offset = batch
                    continue
                slots_with_new = np.flatnonzero(new_hits.any(axis=1))
                first = int(slots_with_new[0])
                newly = new_hits[first]
                informed_slot[newly] = slot_cursor + offset + first
                informed[newly] = True
                offset += first + 1
            slot_cursor += batch
            ledger.charge("naive_broadcast", batch)

        return NaiveBroadcastResult(
            informed=informed,
            informed_slot=informed_slot,
            ledger=ledger,
            total_slots=slot_cursor,
            scheduled_slots=self.schedule_slots,
        )
