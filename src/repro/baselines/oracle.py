"""Omniscient reference schedules (floors, not protocols).

These compute what a centrally scheduled, collision-free network could
achieve — the information-theoretic floors the paper's lower-bound
section (Section 6) argues against:

* :func:`discovery_floor` — a node can receive at most one identity per
  slot, so discovery takes at least ``Δ`` slots (the star argument of
  Theorem 13).
* :func:`broadcast_floor` — a node can inform at most one neighbor per
  slot (no shared channels between its children in the worst case), so
  the best possible broadcast completes in the serialization time of a
  BFS tree; on Theorem 14's complete trees this equals
  ``depth * (min(c, Δ) - 1)``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict

from repro.model.errors import ProtocolError
from repro.sim.network import CRNetwork

__all__ = ["discovery_floor", "broadcast_floor", "tree_broadcast_floor"]


def discovery_floor(network: CRNetwork) -> int:
    """Minimum slots any discovery algorithm needs: ``Δ`` receptions.

    Every node must *receive* one message from each neighbor, and can
    receive at most one message per slot; the busiest node bounds the
    network.
    """
    return network.max_degree


def broadcast_floor(network: CRNetwork, source: int = 0) -> int:
    """Greedy serialization floor for global broadcast.

    Assumes perfect knowledge and no collisions, but keeps the model's
    hard constraint: per slot, an informed node can deliver to at most
    one uninformed neighbor (channel-disjoint children cannot be
    batched). Computed by simulating the greedy optimal schedule: every
    informed node informs one uninformed neighbor per slot, earliest-
    discovered first. This is an upper bound on the best and a valid
    floor for sibling-channel-disjoint instances such as the Theorem 14
    trees.
    """
    if not 0 <= source < network.n:
        raise ProtocolError(f"source {source} out of range")
    informed_at: Dict[int, int] = {source: 0}
    # BFS order: parents inform children one per slot starting the slot
    # after their own reception.
    queue = deque([source])
    while queue:
        u = queue.popleft()
        next_free = informed_at[u] + 1
        for v in sorted(int(x) for x in network.neighbors(u)):
            if v in informed_at:
                continue
            informed_at[v] = next_free
            next_free += 1
            queue.append(v)
    return max(informed_at.values())


def tree_broadcast_floor(c: int, delta: int, depth: int) -> int:
    """Theorem 14's analytic floor ``depth * (min(c, Δ) - 1)``.

    On a complete tree whose internal nodes have ``min(c, Δ) - 1``
    channel-disjoint children, the message needs that many slots per
    level to fan out, for every one of the ``depth`` levels along the
    deepest path.
    """
    if depth < 1:
        raise ProtocolError(f"depth must be >= 1, got {depth}")
    fanout = min(c, delta) - 1
    if fanout < 1:
        raise ProtocolError(
            f"min(c, delta) - 1 must be >= 1, got c={c}, delta={delta}"
        )
    return depth * fanout
