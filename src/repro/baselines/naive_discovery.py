"""The naive neighbor-discovery baseline (paper, Section 1).

"A simple and straightforward strategy would be for each node to
randomly hop among the set of channels available to it; it would then
broadcast (its identity) or listen each with some probability (e.g.,
using a backoff procedure to resolve contention). This simple algorithm
yields a time complexity of approximately ``Õ((c²/k)·Δ)``."

Concretely, per slot every node:

1. tunes to one of its ``c`` channels uniformly at random,
2. listens with probability 1/2, otherwise
3. broadcasts its identity with probability ``1/Δ`` — the safe
   contention-blind back-off rate, since up to ``Δ`` neighbors might be
   contending and the node has no density information (that information
   is exactly what CSEEK's part one buys).

A directed pair is heard at rate ``~ k_uv / (4 c² Δ)`` per slot, giving
the ``(c²/k)·Δ`` baseline shape that CSEEK beats by replacing the
``·Δ`` with ``+ (kmax/k)·Δ``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set

import numpy as np

from repro import obs
from repro.core.constants import ProtocolConstants
from repro.core.cseek import DiscoveryReport
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.engine import StepOutcome, resolve_varying
from repro.sim.environment import (
    SpectrumEnvironment,
    build_column_lut,
    sentinel_columns,
)
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork
from repro.sim.rng import RngHub
from repro.sim.trace import TraceRecorder

__all__ = ["NaiveDiscovery", "NaiveDiscoveryResult"]


class NaiveDiscoveryResult:
    """Result of a naive-discovery execution.

    Attributes:
        discovered: Per-node sets of heard identities.
        trace: First-reception events.
        ledger: Slots charged (phase ``"naive_discovery"``).
        total_slots: Slots executed.
    """

    def __init__(
        self,
        discovered: List[Set[int]],
        trace: TraceRecorder,
        ledger: SlotLedger,
        total_slots: int,
    ) -> None:
        self.discovered = discovered
        self.trace = trace
        self.ledger = ledger
        self.total_slots = total_slots


class NaiveDiscovery:
    """The introduction's random-hopping discovery strawman.

    Args:
        network: Ground-truth network.
        knowledge: Global parameters; defaults to realized values.
        constants: ``naive_factor`` stretches the schedule
            ``ceil(naive_factor * (c²/k) * Δ * lg n)`` slots.
        seed: Randomness seed.
        max_slots: Optional hard override of the schedule length.
        chunk: Engine batch size (slots per 3-D resolution chunk).
        environment: Optional spectrum environment
            (:class:`repro.sim.environment.SpectrumEnvironment`); each
            run opens a fresh single-trial stream seeded from ``seed``,
            and receptions whose listener sits on an occupied channel
            that slot are killed — the same primary-user semantics the
            CSEEK family applies.
    """

    def __init__(
        self,
        network: CRNetwork,
        knowledge: Optional[ModelKnowledge] = None,
        constants: Optional[ProtocolConstants] = None,
        seed: int = 0,
        max_slots: Optional[int] = None,
        chunk: int = 128,
        environment: Optional[SpectrumEnvironment] = None,
    ) -> None:
        self.network = network
        self.knowledge = knowledge or network.knowledge()
        self.environment = environment
        self.constants = constants or ProtocolConstants.fast()
        self.seed = seed
        kn = self.knowledge
        if max_slots is not None:
            if max_slots < 1:
                raise ProtocolError(f"max_slots must be >= 1: {max_slots}")
            self.schedule_slots = max_slots
        else:
            self.schedule_slots = max(
                1,
                math.ceil(
                    self.constants.naive_factor
                    * (kn.c * kn.c / kn.k)
                    * kn.max_degree
                    * kn.log_n
                ),
            )
        self.chunk = chunk

    def run(self) -> NaiveDiscoveryResult:
        """Execute the schedule and collect receptions."""
        with obs.span("discovery"):
            return self._execute()

    def _execute(self) -> NaiveDiscoveryResult:
        net = self.network
        kn = self.knowledge
        n, c = net.n, net.c
        table = net.channel_table()
        rng = RngHub(self.seed).child("naive-discovery").generator("slots")
        trace = TraceRecorder()
        ledger = SlotLedger()
        traffic = (
            self.environment.stream(self.seed)
            if self.environment is not None
            else None
        )
        lut = (
            build_column_lut(traffic.channel_ids)
            if traffic is not None
            else None
        )
        tx_prob = 0.5 / max(1, kn.max_degree)  # role coin x back-off rate
        slot_cursor = 0
        remaining = self.schedule_slots
        while remaining > 0:
            batch = min(self.chunk, remaining)
            labels = rng.integers(0, c, size=(batch, n))
            channels = np.take_along_axis(
                np.broadcast_to(table, (batch, n, c)), labels[:, :, None], 2
            )[:, :, 0]
            tx = rng.random((batch, n)) < tx_prob
            outcome = resolve_varying(
                net.adjacency, channels, tx, chunk=self.chunk
            )
            if traffic is not None:
                # Per-slot occupancy kill: the naive hopper re-tunes
                # every slot, so the mask is gathered per (slot, node)
                # rather than per fixed-channel step.
                occupied = traffic.occupied_block(batch)
                cols = sentinel_columns(lut[0], lut[1], channels)
                clear = np.zeros((batch, 1), dtype=bool)
                jammed = np.take_along_axis(
                    np.concatenate([occupied, clear], axis=1), cols, 1
                )
                outcome = StepOutcome(
                    heard_from=np.where(jammed, -1, outcome.heard_from),
                    contenders=outcome.contenders,
                )
            trace.record_step(outcome, slot_cursor, "naive_discovery")
            slot_cursor += batch
            remaining -= batch
            ledger.charge("naive_discovery", batch)
        discovered = [set(trace.heard_by(u)) for u in range(n)]
        return NaiveDiscoveryResult(
            discovered=discovered,
            trace=trace,
            ledger=ledger,
            total_slots=slot_cursor,
        )

    def verify(self, result: NaiveDiscoveryResult) -> DiscoveryReport:
        """Check the run found every true neighbor."""
        required = [set(s) for s in self.network.true_neighbor_sets()]
        missing = []
        completion = None
        for u in range(self.network.n):
            for v in sorted(required[u]):
                if v not in result.discovered[u]:
                    missing.append((u, v))
                    continue
                event = result.trace.first_reception(u, v)
                if event is not None and (
                    completion is None or event.slot > completion
                ):
                    completion = event.slot
        return DiscoveryReport(
            success=not missing,
            missing=tuple(missing),
            completion_slot=completion,
            scheduled_slots=result.total_slots,
        )
