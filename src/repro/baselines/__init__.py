"""Baselines the paper compares against, plus omniscient floors."""

from repro.baselines.naive_broadcast import NaiveBroadcast, NaiveBroadcastResult
from repro.baselines.naive_discovery import NaiveDiscovery, NaiveDiscoveryResult
from repro.baselines.oracle import (
    broadcast_floor,
    discovery_floor,
    tree_broadcast_floor,
)

__all__ = [
    "NaiveBroadcast",
    "NaiveBroadcastResult",
    "NaiveDiscovery",
    "NaiveDiscoveryResult",
    "broadcast_floor",
    "discovery_floor",
    "tree_broadcast_floor",
]
