"""Section 6 lower bounds: hitting games, reductions, tree instances."""

from repro.lowerbounds.games import GameTranscript, HittingGame
from repro.lowerbounds.players import (
    FreshRandomPlayer,
    Player,
    SweepPlayer,
    UniformRandomPlayer,
    play,
)
from repro.lowerbounds.reduction import (
    CSeekReductionPlayer,
    NaiveReductionPlayer,
    two_node_knowledge,
)
from repro.lowerbounds.tree import (
    LevelTiming,
    level_completion_slots,
    per_hop_costs,
)

__all__ = [
    "CSeekReductionPlayer",
    "FreshRandomPlayer",
    "GameTranscript",
    "HittingGame",
    "LevelTiming",
    "NaiveReductionPlayer",
    "Player",
    "SweepPlayer",
    "UniformRandomPlayer",
    "level_completion_slots",
    "per_hop_costs",
    "play",
    "two_node_knowledge",
]
