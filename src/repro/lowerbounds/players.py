"""Players for the hitting games.

Three reference strategies bracket the achievable range:

* :class:`UniformRandomPlayer` — proposes a uniformly random edge each
  round (with replacement); expected hitting time ``c²/k``.
* :class:`FreshRandomPlayer` — uniformly random *without replacement*;
  expected hitting time ``(c² + 1)/(k + 1)``, essentially the optimal
  oblivious strategy against a uniform referee.
* :class:`SweepPlayer` — deterministic row-major enumeration; worst case
  ``c²`` but the same ``Θ(c²/k)`` expectation against a uniform hidden
  matching.

Experiment E7 plays these against Lemma 10's ``c²/(αk)`` floor: every
strategy's measured rounds must sit above the floor and the best ones
within the ``α ≤ 8`` constant of it.
"""

from __future__ import annotations

from typing import Iterator, Optional, Protocol, Tuple

import numpy as np

from repro.lowerbounds.games import GameTranscript, HittingGame
from repro.model.errors import GameError

__all__ = [
    "Player",
    "UniformRandomPlayer",
    "FreshRandomPlayer",
    "SweepPlayer",
    "play",
]


class Player(Protocol):
    """A hitting-game strategy: a stream of edge proposals."""

    def proposals(self, c: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(a, b)`` proposals for side size ``c``."""
        ...  # pragma: no cover - protocol


class UniformRandomPlayer:
    """Uniformly random proposals, with replacement."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def proposals(self, c: int) -> Iterator[Tuple[int, int]]:
        while True:
            yield (
                int(self._rng.integers(0, c)),
                int(self._rng.integers(0, c)),
            )


class FreshRandomPlayer:
    """Uniformly random proposals, without replacement (then stops)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def proposals(self, c: int) -> Iterator[Tuple[int, int]]:
        order = self._rng.permutation(c * c)
        for idx in order:
            yield int(idx) // c, int(idx) % c


class SweepPlayer:
    """Deterministic row-major sweep of all ``c²`` edges."""

    def proposals(self, c: int) -> Iterator[Tuple[int, int]]:
        for a in range(c):
            for b in range(c):
                yield a, b


def play(
    game: HittingGame,
    player: Player,
    max_rounds: Optional[int] = None,
) -> GameTranscript:
    """Drive a player against a game until a win or the round cap.

    Args:
        game: A fresh game instance.
        player: The strategy to drive.
        max_rounds: Round cap; default ``4 * c²`` (enough for every
            reference strategy to finish w.h.p.).

    Returns:
        The final transcript; ``won`` is False if the cap was hit or the
        player's proposal stream ended.
    """
    if game.rounds_played:
        raise GameError("game must be fresh (no proposals played yet)")
    cap = max_rounds if max_rounds is not None else 4 * game.c * game.c
    stream = player.proposals(game.c)
    for _ in range(cap):
        try:
            a, b = next(stream)
        except StopIteration:
            break
        if game.propose(a, b):
            break
    return game.transcript()
