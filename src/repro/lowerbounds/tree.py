"""Theorem 14 instrumentation: broadcast on channel-disjoint trees.

Theorem 14's ``Ω(D · min(c, Δ))`` term comes from complete trees in
which siblings share no channels: a parent can inform at most one child
per slot, so every level costs ``min(c, Δ) - 1`` slots and the deepest
leaf waits ``depth * (min(c, Δ) - 1)``.

:func:`level_completion_slots` decomposes a broadcast execution's
per-node informed slots into BFS levels so experiments can report the
*per-hop* cost and compare it against the floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from repro.model.errors import ProtocolError
from repro.sim.network import CRNetwork

__all__ = ["LevelTiming", "level_completion_slots", "per_hop_costs"]


@dataclass(frozen=True)
class LevelTiming:
    """Per-BFS-level broadcast timing.

    Attributes:
        level: Hop distance from the source.
        nodes: Number of nodes at this level.
        last_informed_slot: Slot at which the level's last node was
            informed (None if any node at the level stayed uninformed).
    """

    level: int
    nodes: int
    last_informed_slot: Optional[int]


def level_completion_slots(
    network: CRNetwork, source: int, informed_slot: np.ndarray
) -> List[LevelTiming]:
    """Group informed slots by BFS level from the source.

    Args:
        network: The network the broadcast ran on.
        source: Broadcast source.
        informed_slot: ``(n,)`` per-node first-reception slots (-1 =
            never informed).

    Returns:
        One :class:`LevelTiming` per BFS level, ascending.
    """
    if informed_slot.shape != (network.n,):
        raise ProtocolError(
            f"informed_slot must have shape ({network.n},), "
            f"got {informed_slot.shape}"
        )
    levels: Dict[int, List[int]] = {}
    for node, dist in nx.single_source_shortest_path_length(
        network.graph, source
    ).items():
        levels.setdefault(dist, []).append(node)
    out: List[LevelTiming] = []
    for level in sorted(levels):
        members = levels[level]
        slots = [int(informed_slot[v]) for v in members]
        if any(s < 0 for s in slots):
            last = None
        else:
            last = max(slots)
        out.append(
            LevelTiming(level=level, nodes=len(members), last_informed_slot=last)
        )
    return out


def per_hop_costs(timings: List[LevelTiming]) -> List[Optional[int]]:
    """Slot cost of each hop: level-completion deltas.

    Entry ``i`` is the extra slots level ``i+1`` needed after level
    ``i`` completed, or None when either level did not complete.
    """
    costs: List[Optional[int]] = []
    for prev, cur in zip(timings, timings[1:]):
        if prev.last_informed_slot is None or cur.last_informed_slot is None:
            costs.append(None)
        else:
            costs.append(cur.last_informed_slot - prev.last_informed_slot)
    return costs
