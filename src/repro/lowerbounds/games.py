"""The bipartite hitting games (Section 6.1).

The ``(c, k)``-bipartite hitting game: the referee privately selects a
matching ``M`` of size ``k`` in the complete bipartite graph on two
``c``-vertex sides ``A`` and ``B``; the player proposes one edge per
round and wins on the first proposal inside ``M``. Lemma 10: any player
winning with probability ≥ 1/2 needs ``≥ c²/(αk)`` rounds when
``k ≤ c/β`` (``α = 2(β/(β−1))² ≤ 8``).

The ``c``-complete bipartite hitting game is the ``k = c`` special case
(the referee hides a *maximum* matching); Lemma 12 gives ``≥ c/3``
rounds.

Semantics of the game map directly onto neighbor discovery between two
nodes with ``c`` local channel labels each and ``k`` shared channels:
the hidden matching *is* the overlap pattern, and proposing ``(a_i,
b_j)`` is "node u tunes to its label i while node v tunes to its label
j" (see :mod:`repro.lowerbounds.reduction`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.model.errors import GameError

__all__ = ["HittingGame", "GameTranscript"]


@dataclass(frozen=True)
class GameTranscript:
    """Record of one completed game.

    Attributes:
        rounds: Proposals made (the win, if any, is the last one).
        won: Whether the final proposal hit the hidden matching.
        c: Side size of the bipartite graph.
        k: Hidden matching size.
    """

    rounds: int
    won: bool
    c: int
    k: int


class HittingGame:
    """One instance of the ``(c, k)``-bipartite hitting game.

    The referee's matching pairs ``k`` distinct ``A``-vertices with ``k``
    distinct ``B``-vertices, drawn uniformly at random — matching the
    reduction's uniformly permuted local channel labels.

    Args:
        c: Vertices per side (``>= 1``).
        k: Matching size (``1 <= k <= c``); ``k = c`` yields the
            ``c``-complete bipartite hitting game of Lemma 12.
        seed: Referee randomness.
    """

    def __init__(self, c: int, k: int, seed: int = 0) -> None:
        if c < 1:
            raise GameError(f"c must be >= 1, got {c}")
        if not 1 <= k <= c:
            raise GameError(f"k must satisfy 1 <= k <= c, got k={k}, c={c}")
        self.c = c
        self.k = k
        rng = np.random.default_rng(seed)
        a_side = rng.choice(c, size=k, replace=False)
        b_side = rng.choice(c, size=k, replace=False)
        self._matching: Dict[int, int] = {
            int(a): int(b) for a, b in zip(a_side, b_side)
        }
        self._rounds = 0
        self._won = False

    @property
    def rounds_played(self) -> int:
        """Proposals made so far."""
        return self._rounds

    @property
    def won(self) -> bool:
        """Whether the player has already won."""
        return self._won

    def propose(self, a: int, b: int) -> bool:
        """Propose edge ``(a_a, b_b)``; returns True on a hit.

        Raises:
            GameError: on out-of-range vertices or proposals after a win.
        """
        if self._won:
            raise GameError("game already won; no further proposals")
        if not 0 <= a < self.c or not 0 <= b < self.c:
            raise GameError(
                f"proposal ({a}, {b}) outside [0, {self.c}) x [0, {self.c})"
            )
        self._rounds += 1
        if self._matching.get(a) == b:
            self._won = True
        return self._won

    def transcript(self) -> GameTranscript:
        """Snapshot of the game so far."""
        return GameTranscript(
            rounds=self._rounds, won=self._won, c=self.c, k=self.k
        )

    def reveal_matching(self) -> Dict[int, int]:
        """The referee's hidden matching (testing/diagnostics only)."""
        return dict(self._matching)
