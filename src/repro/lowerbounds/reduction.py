"""The Lemma 11 reduction: neighbor discovery plays the hitting game.

Construction (paper, proof of Lemma 11): the player simulates a
two-node network — node ``u`` with channel set ``A`` (its local labels
``0..c-1``) and node ``v`` with channel set ``B`` — where the referee's
hidden ``k``-matching over ``(A, B)`` *is* the pair's channel overlap.
Each simulated slot, the player reads off the channels the algorithm
tunes ``u`` and ``v`` to and proposes that pair. A missed proposal means
the nodes were not on a shared channel, so the player can faithfully
continue the simulation by reporting silence to both nodes; the first
winning proposal is the first slot the nodes could possibly have
communicated.

Consequence: the slot at which a discovery algorithm first *meets* is
lower-bounded by the game bound ``c²/(αk)`` (Lemma 10), which is how
Theorem 13 transfers to every algorithm, CSEEK included.

Because every reception before the first meeting is silence, a
simulated algorithm's channel-choice sequence can be generated without
running the engine: CSEEK's choices are uniform per part-one step and —
with all counts still zero — uniform per part-two step; the naive
baseline's are uniform per slot.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.constants import ProtocolConstants
from repro.core.count import count_schedule
from repro.model.errors import GameError
from repro.model.spec import ModelKnowledge

__all__ = [
    "two_node_knowledge",
    "CSeekReductionPlayer",
    "NaiveReductionPlayer",
]


def two_node_knowledge(c: int, k: int) -> ModelKnowledge:
    """The knowledge both simulated nodes hold in the reduction."""
    return ModelKnowledge(
        n=2, c=c, k=k, kmax=k, max_degree=1, diameter=1
    )


class CSeekReductionPlayer:
    """Plays the hitting game with CSEEK's silent channel sequence.

    Per part-one step, both simulated nodes hold one uniformly random
    channel for the whole COUNT execution (``(ceil(lg Δ)+1) * ceil(a lg n)``
    slots with ``Δ = 1``, ``n = 2``); per part-two step they hold one
    uniformly random channel for the ``lg Δ = 1``-slot back-off window
    (listener weights are all zero under silence, so the uniform
    fallback applies). When the schedule is exhausted without a meeting
    the algorithm has failed; the player keeps proposing fresh part-two
    style choices so the game can still terminate (counted rounds beyond
    the schedule mark the failure).

    Args:
        k: Pair overlap the schedule is sized for.
        constants: Schedule constants (defaults to the fast profile).
        seed: Simulation randomness.
    """

    def __init__(
        self,
        k: int,
        constants: Optional[ProtocolConstants] = None,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise GameError(f"k must be >= 1, got {k}")
        self.k = k
        self.constants = constants or ProtocolConstants.fast()
        self._rng = np.random.default_rng(seed)

    def proposals(self, c: int) -> Iterator[Tuple[int, int]]:
        kn = two_node_knowledge(c, min(self.k, c))
        consts = self.constants
        rounds, round_len = count_schedule(
            kn.max_degree, kn.log_n, consts
        )
        step_slots = rounds * round_len
        part1 = consts.part1_steps(kn.c, kn.k, kn.log_n)
        part2 = consts.part2_steps(kn.kmax, kn.k, kn.max_degree, kn.log_n)
        rng = self._rng
        for _ in range(part1):
            a = int(rng.integers(0, c))
            b = int(rng.integers(0, c))
            for _ in range(step_slots):
                yield a, b
        backoff = kn.log_delta
        for _ in range(part2):
            a = int(rng.integers(0, c))
            b = int(rng.integers(0, c))
            for _ in range(backoff):
                yield a, b
        # Schedule exhausted: keep emitting fresh uniform pairs so the
        # caller's round cap, not a StopIteration, ends the game.
        while True:
            yield int(rng.integers(0, c)), int(rng.integers(0, c))

    def schedule_slots(self, c: int) -> int:
        """Total slots of the simulated CSEEK schedule (for reporting)."""
        kn = two_node_knowledge(c, min(self.k, c))
        consts = self.constants
        rounds, round_len = count_schedule(kn.max_degree, kn.log_n, consts)
        part1 = consts.part1_steps(kn.c, kn.k, kn.log_n) * rounds * round_len
        part2 = (
            consts.part2_steps(kn.kmax, kn.k, kn.max_degree, kn.log_n)
            * kn.log_delta
        )
        return part1 + part2


class NaiveReductionPlayer:
    """Plays the game with the naive baseline's per-slot uniform hops."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def proposals(self, c: int) -> Iterator[Tuple[int, int]]:
        rng = self._rng
        while True:
            yield int(rng.integers(0, c)), int(rng.integers(0, c))
