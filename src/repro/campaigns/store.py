"""The persistent run store — durable provenance for campaign runs.

Where the result cache (:mod:`repro.harness.cache`) is a *throughput*
device — one flat JSON file per table, keyed so any code change
invalidates everything — the run store is a *record*: every campaign
run gets a directory holding the resolved campaign, one manifest per
entry (spec digest, store key, seed, executor, python/numpy versions,
wall time, row counts) and the entry's rows as both JSON and CSV plus
the rendered markdown table. Reports and diffs read the store alone;
nothing is ever re-executed to ask "what did that run produce?".

Layout (default root ``.repro_runs/``, override via ``store`` arguments
or the ``REPRO_RUNS_DIR`` environment variable)::

    .repro_runs/<campaign>/<run_id>/
        campaign.json            # resolved campaign + digest + defaults
        manifest.json            # campaign-level summary (written last)
        entries/<entry_id>/
            manifest.json        # provenance; written after the rows
            rows.json            # the table payload (bit-exact resume)
            rows.csv             # for downstream plotting
            table.md             # the rendered table

Resume is manifest-driven and layered on the result-cache keys: an
entry manifest whose ``key`` equals the freshly computed
:func:`repro.harness.cache.cache_key` (same scenario digest, trials,
seed *and code version*) proves the stored rows are exactly what a
re-run would produce, so the orchestrator loads them instead of
running. Every file lands via write-to-temp + atomic replace, and the
manifest is written only after the row files, so a crash mid-entry
leaves no manifest — the entry simply re-runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.harness.cache import json_default
from repro.harness.runner import ExperimentTable
from repro.harness.tables import write_csv
from repro.model.errors import HarnessError, StoreError

__all__ = ["DEFAULT_STORE_DIR", "CampaignRun", "RunStore"]

DEFAULT_STORE_DIR = Path(".repro_runs")

_SCHEMA = 1


def _write_json(path: Path, payload: object) -> None:
    """Atomic JSON write (temp file + replace)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(
        json.dumps(payload, default=json_default, indent=1),
        encoding="utf-8",
    )
    tmp.replace(path)


def _read_json(path: Path) -> Optional[dict]:
    """Best-effort JSON read; unreadable/corrupt files are None."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


class RunStore:
    """The on-disk root holding every campaign's runs."""

    def __init__(self, root: "str | Path | None" = None) -> None:
        if root is None:
            env = os.environ.get("REPRO_RUNS_DIR")
            root = Path(env) if env else DEFAULT_STORE_DIR
        self.root = Path(root)

    def run(self, campaign: str, run_id: str) -> "CampaignRun":
        """A handle on one (possibly not yet created) campaign run."""
        return CampaignRun(self, campaign, run_id)

    def list_runs(self, campaign: str) -> List[str]:
        """Stored run ids for a campaign, oldest first."""
        base = self.root / campaign
        if not base.is_dir():
            return []
        runs = [
            p.name
            for p in base.iterdir()
            if p.is_dir() and (p / "campaign.json").exists()
        ]

        def started(run_id: str) -> float:
            payload = _read_json(base / run_id / "campaign.json") or {}
            try:
                return float(payload["started"])
            except (KeyError, TypeError, ValueError):
                return (base / run_id).stat().st_mtime

        return sorted(runs, key=lambda r: (started(r), r))

    def latest_run(self, campaign: str) -> "CampaignRun":
        """The most recently started run of a campaign.

        Raises:
            HarnessError: when the campaign has no stored runs.
        """
        runs = self.list_runs(campaign)
        if not runs:
            raise HarnessError(
                f"no stored runs for campaign {campaign!r} under "
                f"{self.root} (run 'run-campaign {campaign}' first)"
            )
        return self.run(campaign, runs[-1])

    def campaigns(self) -> List[str]:
        """Campaign names with at least one stored run."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and any(p.iterdir())
        )


class CampaignRun:
    """One run directory: the single reader/writer surface.

    All mutation goes through :meth:`write_campaign`,
    :meth:`write_entry`, :meth:`write_failed_entry` and
    :meth:`write_manifest`; all file formats stay private to this
    class, so reports, diffs and the orchestrator can never disagree
    about the layout.
    """

    def __init__(
        self, store: RunStore, campaign: str, run_id: str
    ) -> None:
        self.store = store
        self.campaign = campaign
        self.run_id = run_id
        self.path = store.root / campaign / run_id

    # -- campaign level -------------------------------------------------
    def exists(self) -> bool:
        return (self.path / "campaign.json").exists()

    def write_campaign(self, payload: Dict[str, object]) -> None:
        """Record the resolved campaign once, at first run.

        A resume keeps the original record (same digest by
        construction — the run id derives from it), preserving the
        original ``started`` stamp.
        """
        target = self.path / "campaign.json"
        if target.exists():
            return
        _write_json(
            target,
            {"schema": _SCHEMA, "started": time.time(), **payload},
        )

    def campaign_payload(self) -> Optional[dict]:
        return _read_json(self.path / "campaign.json")

    def write_manifest(self, payload: Dict[str, object]) -> None:
        """The campaign-level summary; rewritten by every invocation."""
        _write_json(
            self.path / "manifest.json",
            {"schema": _SCHEMA, "finished": time.time(), **payload},
        )

    def manifest(self) -> Optional[dict]:
        return _read_json(self.path / "manifest.json")

    # -- entries --------------------------------------------------------
    def entry_dir(self, entry_id: str) -> Path:
        return self.path / "entries" / entry_id

    def entry_ids(self) -> List[str]:
        """Entry ids present on disk, in campaign order when known."""
        base = self.path / "entries"
        on_disk = (
            [p.name for p in base.iterdir() if p.is_dir()]
            if base.is_dir()
            else []
        )
        payload = self.campaign_payload() or {}
        ordered = [
            e for e in payload.get("entry_ids", []) if e in on_disk
        ]
        ordered.extend(sorted(e for e in on_disk if e not in ordered))
        return ordered

    def entry_manifest(self, entry_id: str) -> Optional[dict]:
        return _read_json(self.entry_dir(entry_id) / "manifest.json")

    def load_entry_table(
        self, entry_id: str
    ) -> Optional[ExperimentTable]:
        """The stored rows of one entry, or None when absent/corrupt."""
        payload = _read_json(self.entry_dir(entry_id) / "rows.json")
        if payload is None:
            return None
        try:
            return ExperimentTable.from_payload(payload)
        except (KeyError, ValueError):
            return None

    def vouched_entry_table(self, entry_id: str) -> ExperimentTable:
        """The rows an entry's own manifest vouches for — or raise.

        For readers (reports, diffs, gates) that were *promised* rows:
        the entry's manifest says ``status: done``, which by the
        rows-before-manifest write ordering guarantees ``rows.json``
        landed. If the rows are nonetheless missing, unreadable or
        empty, the store is corrupt — that is a :class:`StoreError`
        (exit code 2 territory), not a quiet "no rows" miss.
        """
        table = self.load_entry_table(entry_id)
        if table is None or not table.rows:
            raise StoreError(
                f"entry {entry_id!r} of run "
                f"{self.campaign}@{self.run_id} is marked done but its "
                "stored rows.json is missing, corrupt or empty; re-run "
                "the campaign (or delete the entry directory) to "
                "repair the store"
            )
        return table

    def completed_entry(
        self, entry_id: str, key: str
    ) -> Optional[ExperimentTable]:
        """The stored table iff the entry completed under this exact key.

        The key is the result-cache key (scenario digest + trials +
        seed + code version), so a hit is guaranteed bit-identical to
        what re-running the entry would produce — the resume contract.
        """
        manifest = self.entry_manifest(entry_id)
        if (
            manifest is None
            or manifest.get("status") != "done"
            or manifest.get("key") != key
        ):
            return None
        return self.load_entry_table(entry_id)

    def write_entry(
        self,
        entry_id: str,
        manifest: Dict[str, object],
        table: ExperimentTable,
    ) -> None:
        """Persist one completed entry: rows first, manifest last.

        Ordering is the crash-safety invariant: a manifest with
        ``status: "done"`` implies every row file already landed, so an
        interrupted write can never masquerade as a completed entry.
        """
        directory = self.entry_dir(entry_id)
        directory.mkdir(parents=True, exist_ok=True)
        _write_json(directory / "rows.json", table.to_payload())
        csv_tmp = write_csv(
            directory / "rows.csv.tmp", table.rows, columns=table.columns
        )
        csv_tmp.replace(directory / "rows.csv")
        md = directory / "table.md"
        md_tmp = md.with_suffix(".md.tmp")
        md_tmp.write_text(table.to_markdown() + "\n", encoding="utf-8")
        md_tmp.replace(md)
        # The store-controlled fields come last: they must win over
        # anything a caller-supplied manifest happens to carry (e.g. a
        # previous attempt's status when a retry reuses its block).
        _write_json(
            directory / "manifest.json",
            {
                "schema": _SCHEMA,
                **manifest,
                "entry_id": entry_id,
                "status": "done",
                "row_count": len(table.rows),
            },
        )

    def write_failed_entry(
        self, entry_id: str, manifest: Dict[str, object], error: str
    ) -> None:
        """Record a failed entry (no rows; re-runs on resume)."""
        _write_json(
            self.entry_dir(entry_id) / "manifest.json",
            {
                "schema": _SCHEMA,
                **manifest,
                "entry_id": entry_id,
                "status": "failed",
                "error": error,
            },
        )
