"""Experimental-design expansion: ``$axis`` grids and entry orderings.

A campaign may declare *design axes* (``axes: {name: [values...]}``)
and reference them from entry overrides as ``$name`` tokens. Such an
entry is a **template**: :func:`expand_campaign` stamps it across the
row-major factorial grid of exactly the axes it references, producing
one concrete entry per grid point with the token substituted and a
stable derived id (``<base-id>-<value-slug>...``). Entries that
reference no axis pass through unchanged, but with their id made
explicit at its *declaration* position — so reordering never changes
an entry's identity, and the stamped campaign reuses the existing
manifest-key == cache-key resume scheme untouched.

Orderings make execution order a reproducible spec field:

* ``factorial`` — declaration order, templates expanding in place in
  row-major grid order (the default);
* ``blocked`` — entries grouped by their value on the first declared
  axis (entries not referencing it form a leading block), preserving
  factorial order within each block;
* ``shuffled`` — a deterministic permutation of the factorial order,
  seeded by ``order_seed`` (falling back to the campaign ``seed``).

The shuffle is an own-implementation SplitMix64-driven Fisher–Yates —
never ``random.Random`` or NumPy — so the permutation is pinned by
this module forever, independent of any library's generator history.

Tokens that do not name a declared axis pass through untouched: they
may be scenario-level placeholders (``$m``, ``$activity``) resolved by
the sweep scope downstream. A declared axis that no entry references
is an error — dead design knobs must fail loudly.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Dict, List, Mapping, Tuple

from repro.campaigns.spec import CampaignEntry, CampaignSpec, _slug
from repro.model.errors import HarnessError

__all__ = ["axis_references", "expand_campaign", "seeded_shuffle"]

_TOKEN = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)")

_MASK = (1 << 64) - 1


def _splitmix64(state: int) -> Tuple[int, int]:
    """One SplitMix64 step: (next state, 64-bit output)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return state, z ^ (z >> 31)


def seeded_shuffle(items: List[object], seed: int) -> List[object]:
    """A deterministic Fisher–Yates permutation of ``items``.

    The modulo draw has negligible bias at campaign sizes and keeps
    the permutation a pure function of (items length, seed) — which is
    the property the ``shuffled`` ordering pins.
    """
    out = list(items)
    state = (seed ^ 0x5DEECE66D) & _MASK
    for i in range(len(out) - 1, 0, -1):
        state, draw = _splitmix64(state)
        j = draw % (i + 1)
        out[i], out[j] = out[j], out[i]
    return out


def _collect_tokens(value: object, found: set) -> None:
    if isinstance(value, str):
        found.update(_TOKEN.findall(value))
    elif isinstance(value, Mapping):
        for item in value.values():
            _collect_tokens(item, found)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _collect_tokens(item, found)


def axis_references(
    entry: CampaignEntry, axes: Mapping[str, object]
) -> Tuple[str, ...]:
    """The declared axes this entry's overrides reference, in
    declaration order (the grid's row-major nesting order)."""
    found: set = set()
    _collect_tokens(dict(entry.overrides), found)
    return tuple(axis for axis in axes if axis in found)


def _substitute(value: object, binding: Mapping[str, object]) -> object:
    """Replace ``$axis`` tokens with bound values, keeping types.

    A string that *is* exactly one bound token becomes the typed axis
    value; a token embedded in a longer string is spliced in as text.
    Unbound tokens survive untouched for downstream scope resolution.
    """
    if isinstance(value, str):
        match = _TOKEN.fullmatch(value)
        if match and match.group(1) in binding:
            return binding[match.group(1)]
        return _TOKEN.sub(
            lambda m: (
                str(binding[m.group(1)])
                if m.group(1) in binding
                else m.group(0)
            ),
            value,
        )
    if isinstance(value, Mapping):
        return {k: _substitute(v, binding) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_substitute(v, binding) for v in value]
    return value


def _value_slug(value: object) -> str:
    """A value's id suffix: ``300.0`` -> ``300-0``, ``True`` -> ``true``."""
    return _slug(str(value).lower())


def _grid(
    axes: Mapping[str, object], names: Tuple[str, ...]
) -> List[Dict[str, object]]:
    """Row-major bindings over the named axes (last axis fastest)."""
    bindings: List[Dict[str, object]] = [{}]
    for name in names:
        bindings = [
            {**binding, name: value}
            for binding in bindings
            for value in axes[name]  # type: ignore[index]
        ]
    return bindings


def expand_campaign(spec: CampaignSpec) -> CampaignSpec:
    """Resolve the design into a concrete, ordered campaign.

    Returns a campaign with no axes, ``factorial`` ordering and every
    entry id explicit — so expansion is idempotent and the result is
    itself a valid campaign (what ``campaign.json`` effectively ran).
    """
    expanded: List[Tuple[CampaignEntry, Dict[str, object]]] = []
    referenced: set = set()
    for index, entry in enumerate(spec.entries):
        base_id = entry.resolved_id(index)
        names = axis_references(entry, spec.axes)
        referenced.update(names)
        if not names:
            expanded.append((replace(entry, id=base_id), {}))
            continue
        for binding in _grid(spec.axes, names):
            stamped_id = "-".join(
                [base_id] + [_value_slug(binding[n]) for n in names]
            )
            expanded.append(
                (
                    replace(
                        entry,
                        id=stamped_id,
                        overrides=_substitute(
                            dict(entry.overrides), binding
                        ),
                    ),
                    binding,
                )
            )
    unused = [axis for axis in spec.axes if axis not in referenced]
    if unused:
        raise HarnessError(
            f"campaign {spec.name!r} declares unreferenced axes: "
            f"{', '.join(unused)}; reference them as $name in entry "
            "overrides or drop them"
        )
    ids = [entry.id for entry, _ in expanded]
    dupes = sorted({i for i in ids if ids.count(i) > 1})
    if dupes:
        raise HarnessError(
            f"campaign {spec.name!r} expansion produced duplicate "
            f"entry ids: {', '.join(dupes)}; give colliding templates "
            "explicit distinct ids"
        )

    if spec.ordering == "blocked" and spec.axes:
        first = next(iter(spec.axes))
        values = list(spec.axes[first])  # type: ignore[arg-type]
        blocks: List[Tuple[CampaignEntry, Dict[str, object]]] = [
            pair for pair in expanded if first not in pair[1]
        ]
        for value in values:
            blocks.extend(
                pair
                for pair in expanded
                if first in pair[1] and pair[1][first] == value
            )
        expanded = blocks
    elif spec.ordering == "shuffled":
        seed = (
            spec.order_seed if spec.order_seed is not None else spec.seed
        )
        expanded = seeded_shuffle(expanded, seed)  # type: ignore[arg-type]

    return replace(
        spec,
        entries=tuple(entry for entry, _ in expanded),
        axes={},
        ordering="factorial",
        order_seed=None,
    )
