"""Acceptance gates: judge declared comparisons from the run store.

A gated campaign marks entries as ``baseline`` or ``variant`` and
attaches a :class:`~repro.campaigns.spec.SuccessDelta` rule to each
variant. :func:`evaluate_run` replays those rules against a *stored*
run — nothing is ever re-executed: per entry the rule's metric column
is read from ``rows.json``, reduced with the declared aggregation, and
the variant passes iff its aggregate beats the (pooled) baseline
aggregate by at least the declared threshold in the declared direction.
An exact tie at the threshold passes: the rule is a floor.

Because evaluation is a pure function of the store, re-running ``gate``
against the same run always reproduces the identical verdict, and CI
can gate on science (``run-campaign --gate``) with diff-like exit
codes: 0 every rule passed, 1 a rule failed, 2 the comparison could
not be evaluated (missing entries, corrupt rows, unknown metric).

Per-variant problems never raise: they produce an ``error`` verdict
with the reason, so one broken comparison cannot hide the others'
results. Only a run with no stored campaign record raises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import fmean, median
from typing import Dict, List, Optional, Tuple

from repro.campaigns.design import expand_campaign
from repro.campaigns.spec import (
    CampaignSpec,
    SuccessDelta,
    campaign_from_dict,
)
from repro.campaigns.store import CampaignRun
from repro.harness.tables import render_markdown
from repro.model.errors import HarnessError, ReproError

__all__ = [
    "GateReport",
    "GateVerdict",
    "evaluate_run",
    "gate_exit_code",
    "verdict_rows",
    "verdict_table",
]

_AGGREGATORS = {"mean": fmean, "median": median, "min": min, "max": max}


@dataclass(frozen=True)
class GateVerdict:
    """One variant's judged comparison.

    ``status`` is ``"pass"`` / ``"fail"`` (the rule was evaluated) or
    ``"error"`` (it could not be — see ``reason``). ``delta`` is the
    signed ``variant - baseline`` difference; ``margin`` is the same
    number oriented so that positive always means "moved the declared
    way" regardless of direction.
    """

    variant: str
    baselines: Tuple[str, ...]
    rule: SuccessDelta
    status: str
    reason: str = ""
    baseline_value: Optional[float] = None
    variant_value: Optional[float] = None
    delta: Optional[float] = None
    margin: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        def clean(value: Optional[float]) -> Optional[float]:
            if value is None or math.isnan(value):
                return None
            return value

        return {
            "variant": self.variant,
            "baselines": list(self.baselines),
            "metric": self.rule.metric,
            "direction": self.rule.direction,
            "aggregation": self.rule.aggregation,
            "threshold": self.rule.threshold,
            "baseline_value": clean(self.baseline_value),
            "variant_value": clean(self.variant_value),
            "delta": clean(self.delta),
            "margin": clean(self.margin),
            "status": self.status,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class GateReport:
    """Every verdict of one stored run, worst status first in spirit."""

    campaign: str
    run_id: str
    verdicts: Tuple[GateVerdict, ...]

    @property
    def status(self) -> str:
        """``error`` > ``fail`` > ``pass`` (empty reports are errors —
        gating an ungated campaign is a caller mistake)."""
        if not self.verdicts or any(
            v.status == "error" for v in self.verdicts
        ):
            return "error"
        if any(v.status == "fail" for v in self.verdicts):
            return "fail"
        return "pass"

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    def to_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def gate_exit_code(report: GateReport) -> int:
    """The CLI contract: 0 pass, 1 gate failure, 2 not evaluable."""
    return {"pass": 0, "fail": 1}.get(report.status, 2)


def _metric_values(
    run: CampaignRun, entry_id: str, metric: str
) -> List[float]:
    """An entry's stored metric column, as floats (None -> NaN).

    Raises:
        HarnessError: the entry is absent, unfinished, or its rows
            lack the metric / hold non-numeric values.
        StoreError: the entry claims ``done`` but its rows are missing
            or empty (via :meth:`CampaignRun.vouched_entry_table`).
    """
    manifest = run.entry_manifest(entry_id)
    if manifest is None:
        raise HarnessError(
            f"entry {entry_id!r} has no stored result in "
            f"{run.campaign}@{run.run_id}; run the campaign first"
        )
    if manifest.get("status") != "done":
        raise HarnessError(
            f"entry {entry_id!r} did not complete "
            f"(status {manifest.get('status')!r})"
        )
    table = run.vouched_entry_table(entry_id)
    columns = table.columns or sorted(
        {key for row in table.rows for key in row}
    )
    values: List[float] = []
    for row in table.rows:
        if metric not in row:
            raise HarnessError(
                f"rows of entry {entry_id!r} have no column "
                f"{metric!r}; columns: {', '.join(columns)}"
            )
        value = row[metric]
        if value is None:
            values.append(float("nan"))
        elif isinstance(value, (int, float)) and not isinstance(
            value, bool
        ):
            values.append(float(value))
        else:
            raise HarnessError(
                f"column {metric!r} of entry {entry_id!r} holds "
                f"non-numeric value {value!r}"
            )
    return values


def _aggregate(values: List[float], how: str) -> float:
    """Reduce a metric column; any NaN poisons the aggregate."""
    if any(math.isnan(v) for v in values):
        return float("nan")
    return float(_AGGREGATORS[how](values))


def _judge(
    run: CampaignRun,
    variant_id: str,
    baseline_ids: Tuple[str, ...],
    rule: SuccessDelta,
) -> GateVerdict:
    try:
        if not baseline_ids:
            raise HarnessError(
                f"variant {variant_id!r} has no baseline to compare "
                "against"
            )
        variant_values = _metric_values(run, variant_id, rule.metric)
        baseline_values: List[float] = []
        for baseline_id in baseline_ids:
            baseline_values.extend(
                _metric_values(run, baseline_id, rule.metric)
            )
    except ReproError as exc:
        return GateVerdict(
            variant=variant_id,
            baselines=baseline_ids,
            rule=rule,
            status="error",
            reason=str(exc),
        )
    variant_value = _aggregate(variant_values, rule.aggregation)
    baseline_value = _aggregate(baseline_values, rule.aggregation)
    delta = variant_value - baseline_value
    margin = delta if rule.direction == "increase" else -delta
    if math.isnan(margin):
        return GateVerdict(
            variant=variant_id,
            baselines=baseline_ids,
            rule=rule,
            status="fail",
            reason=(
                f"{rule.metric} aggregated to NaN (undefined for at "
                "least one row); cannot demonstrate the declared margin"
            ),
            baseline_value=baseline_value,
            variant_value=variant_value,
            delta=delta,
            margin=margin,
        )
    passed = margin >= rule.threshold
    comparator = ">=" if passed else "<"
    return GateVerdict(
        variant=variant_id,
        baselines=baseline_ids,
        rule=rule,
        status="pass" if passed else "fail",
        reason=(
            f"{rule.describe()}: margin {margin:g} {comparator} "
            f"{rule.threshold:g}"
        ),
        baseline_value=baseline_value,
        variant_value=variant_value,
        delta=delta,
        margin=margin,
    )


def evaluate_run(
    run: CampaignRun, spec: Optional[CampaignSpec] = None
) -> GateReport:
    """Judge every declared gate of a stored run, store-only.

    Args:
        run: The stored run to judge.
        spec: The campaign to take the rules from; default is the
            run's own stored ``campaign.json`` — the normal case, and
            the reason a later ``gate`` invocation needs nothing but
            the store. Passing a spec judges the same rows under
            different rules (e.g. a tightened threshold) without
            re-running anything.

    Raises:
        HarnessError: the run has no stored campaign record.
    """
    if spec is None:
        payload = run.campaign_payload() or {}
        raw = payload.get("campaign")
        if raw is None:
            raise HarnessError(
                f"run {run.campaign}@{run.run_id} has no stored "
                "campaign.json to take gate rules from"
            )
        spec = campaign_from_dict(raw)
    design = expand_campaign(spec)
    ids = design.entry_ids()
    baseline_ids = tuple(
        eid
        for eid, entry in zip(ids, design.entries)
        if entry.role == "baseline"
    )
    verdicts: List[GateVerdict] = []
    for entry_id, entry in zip(ids, design.entries):
        if entry.role != "variant":
            continue
        rule = entry.success_delta
        assert rule is not None  # enforced by CampaignEntry validation
        targets = (
            (rule.baseline,) if rule.baseline is not None else baseline_ids
        )
        missing = [t for t in targets if t not in ids]
        if missing:
            verdicts.append(
                GateVerdict(
                    variant=entry_id,
                    baselines=targets,
                    rule=rule,
                    status="error",
                    reason=(
                        f"declared baseline {', '.join(missing)} is not "
                        f"an entry of this campaign; entries: "
                        f"{', '.join(ids)}"
                    ),
                )
            )
            continue
        verdicts.append(_judge(run, entry_id, targets, rule))
    return GateReport(
        campaign=run.campaign,
        run_id=run.run_id,
        verdicts=tuple(verdicts),
    )


def verdict_rows(report: GateReport) -> List[Dict[str, object]]:
    """One row per verdict, ready for ``render_markdown``."""
    rows: List[Dict[str, object]] = []
    for v in report.verdicts:
        rows.append(
            {
                "gate": v.variant,
                "rule": v.rule.describe(),
                "baseline": " + ".join(v.baselines) or "(none)",
                "baseline_value": v.baseline_value,
                "variant_value": v.variant_value,
                "margin": v.margin,
                "verdict": v.status.upper(),
            }
        )
    return rows


def verdict_table(report: GateReport) -> str:
    """The PASS/FAIL verdict table as markdown (with reasons below)."""
    if not report.verdicts:
        return "(no gates declared)"
    lines = [render_markdown(verdict_rows(report))]
    reasons = [
        f"- {v.variant}: {v.reason}" for v in report.verdicts if v.reason
    ]
    if reasons:
        lines += [""] + reasons
    return "\n".join(lines)
