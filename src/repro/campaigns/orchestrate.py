"""The campaign orchestrator: resumable multi-scenario execution.

:func:`run_campaign` turns a :class:`~repro.campaigns.spec.CampaignSpec`
into a stored run: every entry resolves up front (bad entries fail the
campaign before anything executes), completed entries are skipped via
their store manifests, and the remainder execute — serially or across a
campaign-level process pool (``campaign_jobs``) *on top of* whatever
per-trial executor each entry uses (``jobs``), since campaign workers
are ordinary non-daemonic processes.

Determinism contract: an entry's rows depend only on (scenario spec,
trials, seed, code) — the executor layer guarantees ``jobs`` never
perturbs rows — so the store key
(:func:`repro.harness.cache.cache_key` with the scenario's digest) is a
proof of bit-identity. Interrupting a campaign at any point and
re-running it therefore produces exactly the rows an uninterrupted run
would have produced: finished entries replay from ``rows.json``,
unfinished ones re-run from their derived seeds.

The progress log is *ordered*: results are consumed in entry order even
when the pool finishes them out of order, so two runs of the same
campaign log identically.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import platform
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import obs
from repro.campaigns.design import expand_campaign
from repro.campaigns.gates import GateReport, evaluate_run
from repro.campaigns.spec import (
    CampaignSpec,
    campaign_digest,
    campaign_to_dict,
    resolve_campaign,
)
from repro.campaigns.store import RunStore
from repro.harness.cache import cache_key, code_version
from repro.harness.executor import get_executor
from repro.harness.runner import ExperimentTable
from repro.model.errors import HarnessError, ReproError
from repro.scenarios import (
    cache_extra,
    resolve_scenario,
    run_scenario,
    spec_to_dict,
)
from repro.sim.backend import active_backend

__all__ = ["CampaignResult", "EntryOutcome", "run_campaign", "run_id_for"]

Jobs = "int | str | None"
Log = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class EntryOutcome:
    """What happened to one campaign entry in this invocation."""

    entry_id: str
    scenario: str
    status: str  # "ran" | "cached" | "failed"
    wall_time: float
    row_count: int
    error: Optional[str] = None


@dataclass(frozen=True)
class CampaignResult:
    """One ``run_campaign`` invocation's summary."""

    campaign: str
    run_id: str
    path: Path
    outcomes: List[EntryOutcome]
    wall_time: float
    gates: Optional[GateReport] = None

    @property
    def failed(self) -> List[EntryOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def counts(self) -> Dict[str, int]:
        counts = {"ran": 0, "cached": 0, "failed": 0}
        for outcome in self.outcomes:
            counts[outcome.status] += 1
        return counts


@dataclass(frozen=True)
class _EntryPlan:
    """One entry, fully resolved: everything a worker or key needs."""

    index: int
    entry_id: str
    scenario: str
    overrides: Dict[str, str]
    trials: Optional[int]
    seed: int
    table_id: str
    title: str
    digest: str
    key: str
    precision: Optional[Dict[str, object]] = None


def run_id_for(
    spec: CampaignSpec, seed: int, trials: Optional[int]
) -> str:
    """The deterministic run directory id for these inputs.

    Folds in the campaign digest plus the invocation-level seed/trials
    overrides — the knobs that change what rows the run produces — so
    resuming the same study lands in the same directory, while a
    different seed or a ``--trials`` smoke run never collides with the
    full study. ``jobs`` is deliberately absent: execution strategy
    never changes rows.
    """
    payload = json.dumps(
        {"digest": campaign_digest(spec), "seed": seed, "trials": trials},
        sort_keys=True,
    )
    tail = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]
    return f"s{seed}-{tail}"


def _plan_entries(
    spec: CampaignSpec, seed: int, trials: Optional[int]
) -> List[_EntryPlan]:
    """Resolve every entry now — a bad entry fails before anything runs."""
    plans: List[_EntryPlan] = []
    for index, entry in enumerate(spec.entries):
        overrides = entry.normalized_overrides()
        resolved = resolve_scenario(entry.scenario, overrides)
        if resolved.precision is not None:
            # Mirror run_scenario: a precision contract governs its own
            # trial budget, and the store key must agree with the cache
            # key the entry itself would compute.
            effective_trials = resolved.precision.max_trials
        else:
            entry_trials = (
                trials
                if trials is not None
                else entry.trials
                if entry.trials is not None
                else spec.trials
            )
            effective_trials = (
                entry_trials if entry_trials is not None else resolved.trials
            )
        entry_seed = entry.seed if entry.seed is not None else seed
        extra = cache_extra(resolved)
        plans.append(
            _EntryPlan(
                index=index,
                entry_id=entry.resolved_id(index),
                scenario=entry.scenario,
                overrides=overrides,
                trials=effective_trials,
                seed=entry_seed,
                table_id=resolved.table_id,
                title=resolved.title,
                digest=str(extra["digest"]),
                key=cache_key(
                    resolved.table_id,
                    effective_trials,
                    entry_seed,
                    extra=extra,
                ),
                precision=spec_to_dict(resolved).get("precision"),
            )
        )
    return plans


def _execute_entry(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one entry; module-level so pool workers can invoke it.

    Returns the table as its JSON payload plus wall time, or the error
    — never raises, so a failing entry cannot take the pool down. When
    the payload asks for telemetry, the entry runs under its own
    recorder and ships the snapshot back; cheap vitals (peak RSS,
    backend identity) are measured in the executing process either way.
    """
    start = time.time()
    tel = obs.start() if payload.get("telemetry") else None
    try:
        table = run_scenario(
            payload["scenario"],
            trials=payload["trials"],
            seed=payload["seed"],
            jobs=payload["jobs"],
            overrides=payload["overrides"],
            cache=payload["cache"],
            cache_dir=payload["cache_dir"],
        )
    except ReproError as exc:
        out: Dict[str, object] = {"ok": False, "error": str(exc)}
    except Exception as exc:  # noqa: BLE001 — recorded in the manifest
        out = {"ok": False, "error": repr(exc)}
    else:
        out = {"ok": True, "table": table.to_payload()}
    out["wall_time"] = time.time() - start
    if tel is not None:
        out["telemetry"] = obs.stop()
    out["vitals"] = {
        "peak_rss_kb": obs.peak_rss_kb(),
        "backend": active_backend().name,
    }
    return out


def _entry_payload(
    plan: _EntryPlan,
    jobs: Jobs,
    cache: bool,
    cache_dir: "str | Path | None",
    telemetry: bool = False,
) -> Dict[str, object]:
    return {
        "scenario": plan.scenario,
        "trials": plan.trials,
        "seed": plan.seed,
        "jobs": jobs,
        "overrides": plan.overrides,
        "cache": cache,
        "cache_dir": cache_dir,
        "telemetry": telemetry,
    }


def _achieved_precision(table: ExperimentTable) -> Dict[str, object]:
    """Summarize a streamed table's per-point precision provenance.

    Streamed rows carry ``trials``, ``converged`` and ``ci_<metric>``
    columns (see :mod:`repro.scenarios.streaming`); this folds them
    into the manifest block campaign reports read.
    """
    points: List[Dict[str, object]] = []
    for row in table.rows:
        point = {
            key: row[key]
            for key in ("trials", "converged")
            if key in row
        }
        point.update(
            {key: row[key] for key in row if key.startswith("ci_")}
        )
        points.append(point)
    trials = [int(p["trials"]) for p in points if "trials" in p]
    return {
        "points": points,
        "total_trials": sum(trials),
        "max_point_trials": max(trials, default=0),
        "all_converged": bool(points)
        and all(bool(p.get("converged")) for p in points),
    }


def _entry_manifest(
    plan: _EntryPlan,
    jobs: Jobs,
    wall_time: float,
    table: Optional[ExperimentTable] = None,
    vitals: Optional[Dict[str, object]] = None,
    telemetry: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The provenance block shared by done and failed entries."""
    executor = "serial" if jobs is None else str(jobs)
    manifest: Dict[str, object] = {
        "index": plan.index,
        "scenario": plan.scenario,
        "overrides": plan.overrides,
        "trials": plan.trials,
        "seed": plan.seed,
        "executor": executor,
        "backend": active_backend().name,
        "experiment_id": plan.table_id,
        "title": plan.title,
        "scenario_digest": plan.digest,
        "key": plan.key,
        "code": code_version(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "wall_time": wall_time,
        "finished": time.time(),
    }
    # Always-on vitals: measured in the process that ran the entry
    # (campaign pool workers ship theirs back), falling back to this
    # process for entries that never executed.
    vitals = dict(vitals or {})
    vitals.setdefault("peak_rss_kb", obs.peak_rss_kb())
    vitals.setdefault("backend", manifest["backend"])
    vitals["executor"] = executor
    vitals["wall_time"] = wall_time
    manifest["vitals"] = vitals
    if telemetry is not None:
        manifest["telemetry"] = telemetry
    if plan.precision is not None:
        block: Dict[str, object] = {"declared": plan.precision}
        if table is not None:
            block["achieved"] = _achieved_precision(table)
        manifest["precision"] = block
    return manifest


def run_campaign(
    campaign: "str | CampaignSpec",
    seed: Optional[int] = None,
    trials: Optional[int] = None,
    jobs: Jobs = None,
    campaign_jobs: int = 1,
    store: "RunStore | str | Path | None" = None,
    cache: bool = False,
    cache_dir: "str | Path | None" = None,
    log: Log = None,
    telemetry: Optional[str] = None,
) -> CampaignResult:
    """Execute (or resume) a campaign into the run store.

    Args:
        campaign: Registered name, ``.json`` campaign file path, or a
            :class:`CampaignSpec`.
        seed: Master seed for every entry (default: the campaign's
            ``seed``). An entry's own explicit ``seed`` always wins.
        trials: Trials override applied to *every* entry (smoke runs);
            default: per-entry, then campaign, then scenario defaults.
        jobs: Per-trial execution strategy handed to each entry
            (``--jobs`` semantics; never changes rows).
        campaign_jobs: Entries executed concurrently (``>= 1``). Uses a
            fork-based process pool whose workers are non-daemonic, so
            entries may still use their own per-trial executors.
        store: The run store (a :class:`RunStore`, a directory, or
            None for the default).
        cache: Also consult/populate the ``.repro_cache`` result cache
            inside each entry (the store alone already provides
            campaign-level resume).
        cache_dir: Result-cache location override.
        log: Progress sink (one line per event); default ``print``.
            Lines arrive in entry order regardless of pool scheduling.
        telemetry: ``"json"`` or ``"chrome"`` records per-entry stage
            spans and counters into entry manifests plus a merged
            campaign rollup (``None`` — the default — records only the
            cheap always-on vitals). Telemetry never touches RNG
            streams, so rows are byte-identical either way.

    Returns:
        A :class:`CampaignResult`; failed entries are recorded (and
        re-run on resume) rather than aborting the rest of the suite.
        When the campaign declares gates, ``result.gates`` holds the
        store-evaluated verdicts (also recorded in the run manifest).
    """
    spec = resolve_campaign(campaign)
    # The design (axis stamping + ordering) resolves first: plans, the
    # store layout and the logs all see concrete entries. The run id
    # still derives from the *declared* spec — expansion is a pure
    # function of it, so same study -> same run directory.
    design = expand_campaign(spec)
    get_executor(jobs)  # validate before any work
    if telemetry is not None and telemetry not in ("json", "chrome"):
        raise HarnessError(
            f"telemetry must be 'json' or 'chrome', got {telemetry!r}"
        )
    if campaign_jobs < 1:
        raise HarnessError(
            f"campaign_jobs must be >= 1, got {campaign_jobs}"
        )
    emit = log if log is not None else print
    if not isinstance(store, RunStore):
        store = RunStore(store)
    effective_seed = seed if seed is not None else spec.seed
    plans = _plan_entries(design, effective_seed, trials)
    run_id = run_id_for(spec, effective_seed, trials)
    run = store.run(spec.name, run_id)
    run.write_campaign(
        {
            "campaign": campaign_to_dict(spec),
            "digest": campaign_digest(spec),
            "seed": effective_seed,
            "trials": trials,
            "entry_ids": [p.entry_id for p in plans],
        }
    )
    total = len(plans)
    emit(
        f"campaign {spec.name} ({total} entries, seed {effective_seed})"
        f" -> {run.path}"
    )

    start = time.time()
    outcomes: List[EntryOutcome] = []
    pending: List[_EntryPlan] = []
    cached_tables: Dict[str, object] = {}
    for plan in plans:
        table = run.completed_entry(plan.entry_id, plan.key)
        if table is not None:
            cached_tables[plan.entry_id] = table
        else:
            pending.append(plan)

    telemetry_snaps: List[Dict[str, object]] = []

    def record(plan: _EntryPlan, result: Dict[str, object]) -> None:
        wall = float(result["wall_time"])
        snap = result.get("telemetry")
        if snap is not None:
            telemetry_snaps.append(snap)
        if result["ok"]:
            table = ExperimentTable.from_payload(result["table"])
            manifest = _entry_manifest(
                plan, jobs, wall, table=table,
                vitals=result.get("vitals"), telemetry=snap,
            )
            run.write_entry(plan.entry_id, manifest, table)
            outcomes.append(
                EntryOutcome(
                    plan.entry_id, plan.scenario, "ran", wall,
                    len(table.rows),
                )
            )
            emit(
                f"[{plan.index + 1}/{total}] {plan.entry_id}: done in "
                f"{wall:.1f}s ({len(table.rows)} rows)"
            )
        else:
            error = str(result["error"])
            manifest = _entry_manifest(
                plan, jobs, wall,
                vitals=result.get("vitals"), telemetry=snap,
            )
            run.write_failed_entry(plan.entry_id, manifest, error)
            outcomes.append(
                EntryOutcome(
                    plan.entry_id, plan.scenario, "failed", wall, 0,
                    error=error,
                )
            )
            emit(
                f"[{plan.index + 1}/{total}] {plan.entry_id}: FAILED — "
                f"{error}"
            )

    def record_cached(plan: _EntryPlan) -> None:
        table = cached_tables[plan.entry_id]
        outcomes.append(
            EntryOutcome(
                plan.entry_id, plan.scenario, "cached", 0.0,
                len(table.rows),
            )
        )
        emit(
            f"[{plan.index + 1}/{total}] {plan.entry_id}: cached "
            f"({len(table.rows)} rows, store key match)"
        )

    if campaign_jobs == 1 or len(pending) <= 1:
        for plan in plans:
            if plan.entry_id in cached_tables:
                record_cached(plan)
            else:
                record(
                    plan,
                    _execute_entry(
                        _entry_payload(
                            plan, jobs, cache, cache_dir,
                            telemetry=telemetry is not None,
                        )
                    ),
                )
    else:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX fallback
            ctx = None
        if ctx is None:  # pragma: no cover
            return run_campaign(
                spec, seed=seed, trials=trials, jobs=jobs,
                campaign_jobs=1, store=store, cache=cache,
                cache_dir=cache_dir, log=log, telemetry=telemetry,
            )
        workers = min(campaign_jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx
        ) as pool:
            futures = {
                plan.entry_id: pool.submit(
                    _execute_entry,
                    _entry_payload(
                        plan, jobs, cache, cache_dir,
                        telemetry=telemetry is not None,
                    ),
                )
                for plan in pending
            }
            # Consume in entry order: the log and the store writes stay
            # deterministic while the pool still runs everything
            # concurrently.
            for plan in plans:
                if plan.entry_id in cached_tables:
                    record_cached(plan)
                    continue
                try:
                    result = futures[plan.entry_id].result()
                except Exception as exc:  # noqa: BLE001
                    # A worker dying outright (OOM kill, segfault)
                    # surfaces as BrokenProcessPool; record the entry
                    # as failed instead of losing the whole campaign.
                    result = {
                        "ok": False,
                        "error": f"campaign worker died: {exc!r}",
                        "wall_time": 0.0,
                    }
                record(plan, result)

    wall_time = time.time() - start
    gates = evaluate_run(run, spec=design) if design.gated() else None
    result = CampaignResult(
        campaign=spec.name,
        run_id=run_id,
        path=run.path,
        outcomes=outcomes,
        wall_time=wall_time,
        gates=gates,
    )
    counts = result.counts()
    manifest: Dict[str, object] = {
        "campaign": spec.name,
        "run_id": run_id,
        "digest": campaign_digest(spec),
        "seed": effective_seed,
        "trials": trials,
        "executor": "serial" if jobs is None else str(jobs),
        "backend": active_backend().name,
        "campaign_jobs": campaign_jobs,
        "status": "done" if counts["failed"] == 0 else "partial",
        "counts": counts,
        "wall_time": wall_time,
        "code": code_version(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "entries": [
            {
                "entry_id": o.entry_id,
                "scenario": o.scenario,
                "status": o.status,
                "wall_time": o.wall_time,
                "row_count": o.row_count,
                "error": o.error,
            }
            for o in outcomes
        ],
    }
    if telemetry_snaps:
        # Commutative rollup of this invocation's ran entries (cached
        # entries did no work; their stored manifests keep their own
        # blocks from the run that produced them).
        manifest["telemetry"] = obs.merge_snapshots(*telemetry_snaps)
    if gates is not None:
        manifest["gates"] = gates.to_dict()
    run.write_manifest(manifest)
    emit(
        f"campaign {spec.name}: {counts['ran']} ran, "
        f"{counts['cached']} cached, {counts['failed']} failed "
        f"in {wall_time:.1f}s"
    )
    if gates is not None:
        for verdict in gates.verdicts:
            emit(
                f"gate {verdict.variant}: {verdict.status.upper()} — "
                f"{verdict.reason}"
            )
    return result
