"""Campaign subsystem — persistent, resumable multi-scenario studies.

Layering: :mod:`~repro.campaigns.spec` defines the JSON-serializable
:class:`CampaignSpec` (an experimental design: scenario entries with
overrides, optional ``$axis`` grids, orderings and baseline/variant
gate roles) and its registry; :mod:`~repro.campaigns.design` expands
the design into concrete entries (factorial stamping + seeded
orderings); :mod:`~repro.campaigns.store` is the durable run store
(manifests + rows under ``.repro_runs/``);
:mod:`~repro.campaigns.orchestrate` executes campaigns — crash-safe,
resumable, optionally across a campaign-level process pool on top of
the per-trial executors; :mod:`~repro.campaigns.gates` judges declared
``success_delta`` rules store-only (the acceptance-gate layer CI exits
on); :mod:`~repro.campaigns.report` turns stored runs into
markdown/CSV reports and cross-run diffs without re-executing
anything. :mod:`~repro.campaigns.stock` registers the shipped studies
(``paper-suite``, ``traffic-models``, ``cseek-vs-naive``), so
importing this package yields a fully populated registry.
"""

from repro.campaigns.design import (
    axis_references,
    expand_campaign,
    seeded_shuffle,
)
from repro.campaigns.gates import (
    GateReport,
    GateVerdict,
    evaluate_run,
    gate_exit_code,
    verdict_rows,
    verdict_table,
)
from repro.campaigns.orchestrate import (
    CampaignResult,
    EntryOutcome,
    run_campaign,
    run_id_for,
)
from repro.campaigns.report import (
    campaign_report,
    diff_refs,
    entry_report,
    gate_section,
    load_ref,
    summary_rows,
    write_report,
)
from repro.campaigns.spec import (
    CampaignEntry,
    CampaignSpec,
    SuccessDelta,
    campaign_digest,
    campaign_from_dict,
    campaign_ids,
    campaign_to_dict,
    get_campaign,
    iter_campaigns,
    load_campaign_file,
    register_campaign,
    resolve_campaign,
)
from repro.campaigns.store import DEFAULT_STORE_DIR, CampaignRun, RunStore
from repro.campaigns import stock as _stock  # noqa: F401 — registration
from repro.campaigns.stock import STOCK_CAMPAIGNS

__all__ = [
    "CampaignEntry",
    "CampaignResult",
    "CampaignRun",
    "CampaignSpec",
    "DEFAULT_STORE_DIR",
    "EntryOutcome",
    "GateReport",
    "GateVerdict",
    "RunStore",
    "STOCK_CAMPAIGNS",
    "SuccessDelta",
    "axis_references",
    "campaign_digest",
    "campaign_from_dict",
    "campaign_ids",
    "campaign_report",
    "campaign_to_dict",
    "diff_refs",
    "entry_report",
    "evaluate_run",
    "expand_campaign",
    "gate_exit_code",
    "gate_section",
    "get_campaign",
    "iter_campaigns",
    "load_campaign_file",
    "load_ref",
    "register_campaign",
    "resolve_campaign",
    "run_campaign",
    "run_id_for",
    "seeded_shuffle",
    "summary_rows",
    "verdict_rows",
    "verdict_table",
    "write_report",
]
