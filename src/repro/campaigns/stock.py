"""Stock campaigns: the studies the repo ships ready to run.

* ``paper-suite`` — the paper's full evaluation, E1–E12, as one
  resumable run: the "regenerate every table in the paper" button.
* ``traffic-models`` — the Markov-vs-Poisson primary-user comparison
  (the Chaoub & Ibn-Elhaj question) as *two entries over the same
  scenario*, one traffic model each, so ``diff-runs
  traffic-models:markov traffic-models:poisson`` reads the burstiness
  effect straight out of the store.
"""

from __future__ import annotations

from repro.campaigns.spec import (
    CampaignEntry,
    CampaignSpec,
    register_campaign,
)

__all__ = ["STOCK_CAMPAIGNS"]

STOCK_CAMPAIGNS = [
    register_campaign(
        CampaignSpec(
            name="paper-suite",
            title="Full paper evaluation — experiments E1-E12",
            description=(
                "Every table of the reproduction in one resumable run; "
                "interrupt at will, re-run to finish."
            ),
            tags=("paper",),
            entries=tuple(
                CampaignEntry(scenario=f"E{i}", id=f"e{i:02d}")
                for i in range(1, 13)
            ),
        )
    ),
    register_campaign(
        CampaignSpec(
            name="traffic-models",
            title="Markov vs Poisson primary-user traffic, per model",
            description=(
                "The markov-vs-poisson occupancy sweep split into one "
                "entry per traffic model, for store-only diffing."
            ),
            tags=("stock", "interference"),
            entries=(
                CampaignEntry(
                    scenario="markov-vs-poisson",
                    id="markov",
                    overrides={"sweep.axes.model": ["markov"]},
                ),
                CampaignEntry(
                    scenario="markov-vs-poisson",
                    id="poisson",
                    overrides={"sweep.axes.model": ["poisson"]},
                ),
            ),
        )
    ),
]
