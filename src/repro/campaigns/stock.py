"""Stock campaigns: the studies the repo ships ready to run.

* ``paper-suite`` — the paper's full evaluation, E1–E12, as one
  resumable run: the "regenerate every table in the paper" button.
* ``traffic-models`` — the Markov-vs-Poisson primary-user comparison
  (the Chaoub & Ibn-Elhaj question) as *two entries over the same
  scenario*, one traffic model each, so ``diff-runs
  traffic-models:markov traffic-models:poisson`` reads the burstiness
  effect straight out of the store — and, gated, asserts the
  burstiness penalty: bursty Markov occupancy must slow COUNT's
  completion measurably relative to memoryless Poisson at the same
  mean activity.
* ``cseek-vs-naive`` — the acceptance gate for the paper's central
  comparison, framed where it is *empirically decidable* at
  smoke-test sizes: under heavy bursty primary-user traffic
  (activity 0.8, dwell 300) CSEEK's listen/announce structure must
  discover a larger fraction of true neighbors than the naive random
  hopper given each protocol's own full schedule. (Raw completion
  *time* is the paper's asymptotic claim and favors naive at n=16 —
  the measured-constants notes on E2 say as much — so gating on it
  would assert something the simulation honestly refutes.)

The gated studies double as the science-CI job: ``run-campaign
cseek-vs-naive --gate`` exits nonzero when the advantage regresses.
"""

from __future__ import annotations

from repro.campaigns.spec import (
    CampaignEntry,
    CampaignSpec,
    SuccessDelta,
    register_campaign,
)

__all__ = ["STOCK_CAMPAIGNS"]

# The heavy-traffic point where the CSEEK-vs-naive gap is robustly
# positive at small n: high mean occupancy, long bursts.
_HEAVY_TRAFFIC = {
    "sweep.axes.activity": [0.8],
    "sweep.axes.dwell": [300.0],
}

STOCK_CAMPAIGNS = [
    register_campaign(
        CampaignSpec(
            name="paper-suite",
            title="Full paper evaluation — experiments E1-E12",
            description=(
                "Every table of the reproduction in one resumable run; "
                "interrupt at will, re-run to finish."
            ),
            tags=("paper",),
            entries=tuple(
                CampaignEntry(scenario=f"E{i}", id=f"e{i:02d}")
                for i in range(1, 13)
            ),
        )
    ),
    register_campaign(
        CampaignSpec(
            name="traffic-models",
            title="Markov vs Poisson primary-user traffic, per model",
            description=(
                "The markov-vs-poisson occupancy sweep split into one "
                "entry per traffic model, for store-only diffing; "
                "gated on the burstiness penalty (Markov slows "
                "completion by >= 500 slots on average)."
            ),
            tags=("stock", "interference", "gated"),
            entries=(
                CampaignEntry(
                    scenario="markov-vs-poisson",
                    id="poisson",
                    overrides={"sweep.axes.model": ["poisson"]},
                    role="baseline",
                ),
                CampaignEntry(
                    scenario="markov-vs-poisson",
                    id="markov",
                    overrides={"sweep.axes.model": ["markov"]},
                    role="variant",
                    # Bursty occupancy leaves long clear windows but
                    # also long blackouts; the laggards dominate mean
                    # completion. Observed margins at seed 0 are
                    # 1300-4000 slots (trials 1-4); 500 is the floor
                    # that still fails if the effect vanishes.
                    success_delta=SuccessDelta(
                        metric="mean_completion",
                        direction="increase",
                        threshold=500.0,
                    ),
                ),
            ),
        )
    ),
    register_campaign(
        CampaignSpec(
            name="cseek-vs-naive",
            title=(
                "CSEEK vs naive hopping under heavy primary-user "
                "traffic"
            ),
            description=(
                "Neighbor discovery on the geometric topology at "
                "activity 0.8 / dwell 300: CSEEK must discover a "
                "larger neighbor fraction than the naive random "
                "hopper (margin >= 0.01)."
            ),
            tags=("stock", "gated", "interference"),
            trials=2,
            entries=(
                CampaignEntry(
                    scenario="pu-geo-cseek",
                    id="naive",
                    overrides={
                        "protocol.kind": "naive_discovery",
                        **_HEAVY_TRAFFIC,
                    },
                    role="baseline",
                ),
                CampaignEntry(
                    scenario="pu-geo-cseek",
                    id="cseek",
                    overrides=dict(_HEAVY_TRAFFIC),
                    role="variant",
                    # Observed margin at seed 0: +0.14 (trials=1),
                    # +0.10 (trials=2); the 0.01 floor is an
                    # order-of-magnitude cushion that still trips if
                    # CSEEK loses its interference resilience.
                    success_delta=SuccessDelta(
                        metric="discovered_fraction",
                        direction="increase",
                        threshold=0.01,
                    ),
                ),
            ),
        )
    ),
]
