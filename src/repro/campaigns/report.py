"""Cross-run reporting: summaries and diffs read from the store alone.

Nothing in this module executes a scenario. Reports and diffs are pure
functions of what :mod:`repro.campaigns.store` already persisted — the
point of the run store is that "what did that study produce?" and "what
changed between these two runs?" are answerable offline, after the
fact, on a machine that never ran anything.

Run references (the CLI's ``report``/``diff-runs`` arguments) come in
two forms:

* ``<campaign>[@<run_id>][:<entry_id>]`` — by name; the run defaults
  to the campaign's most recently started stored run.
* a filesystem path to a run directory or an entry directory inside
  the store (useful for runs copied off CI).

Diffing two *entries* aligns their rows and reports per-column deltas
(numeric columns get an explicit ``Δ`` column); diffing two *runs* (or
two campaigns' runs — e.g. the same study at two commits, or a
``markov`` vs ``poisson`` sweep pair) matches entries by id and diffs
each pair. Columns whose values agree everywhere collapse into shared
key columns, so a diff of a 6-point sweep reads as one compact table.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.campaigns.gates import evaluate_run, verdict_table
from repro.campaigns.spec import campaign_from_dict
from repro.campaigns.store import CampaignRun, RunStore
from repro.harness.runner import ExperimentTable
from repro.harness.tables import format_value, render_markdown, write_csv
from repro.model.errors import HarnessError

__all__ = [
    "campaign_report",
    "diff_refs",
    "entry_report",
    "gate_section",
    "load_ref",
    "summary_rows",
    "telemetry_section",
    "write_report",
]

Row = Dict[str, object]


@dataclass(frozen=True)
class _Ref:
    """A parsed run reference: one run, optionally one entry."""

    run: CampaignRun
    entry_id: Optional[str]

    @property
    def label(self) -> str:
        base = f"{self.run.campaign}@{self.run.run_id}"
        return f"{base}:{self.entry_id}" if self.entry_id else base


def load_ref(store: RunStore, ref: str) -> _Ref:
    """Resolve a reference string against the store.

    Raises:
        HarnessError: when the campaign, run or entry does not exist.
    """
    path = Path(ref)
    if (path / "campaign.json").exists():
        return _Ref(_run_from_path(store, path), None)
    if (path / "manifest.json").exists() and path.parent.name == "entries":
        run = _run_from_path(store, path.parent.parent)
        return _Ref(run, path.name)

    name, _, entry_id = ref.partition(":")
    campaign, _, run_id = name.partition("@")
    if not campaign:
        raise HarnessError(f"empty campaign in run reference {ref!r}")
    if run_id:
        run = store.run(campaign, run_id)
        if not run.exists():
            runs = store.list_runs(campaign)
            raise HarnessError(
                f"no stored run {run_id!r} for campaign {campaign!r} "
                f"under {store.root}; stored runs: "
                f"{', '.join(runs) if runs else '(none)'}"
            )
    else:
        run = store.latest_run(campaign)
    if entry_id:
        if run.entry_manifest(entry_id) is None:
            raise HarnessError(
                f"run {run.campaign}@{run.run_id} has no entry "
                f"{entry_id!r}; entries: "
                f"{', '.join(run.entry_ids()) or '(none)'}"
            )
        return _Ref(run, entry_id)
    return _Ref(run, None)


def _run_from_path(store: RunStore, path: Path) -> CampaignRun:
    run = CampaignRun(store, path.parent.name, path.name)
    # A direct path may live outside store.root; point the handle at it.
    run.path = path
    return run


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def summary_rows(run: CampaignRun) -> List[Row]:
    """One row per stored entry: status, shape and provenance."""
    rows: List[Row] = []
    for entry_id in run.entry_ids():
        manifest = run.entry_manifest(entry_id) or {}
        rows.append(
            {
                "entry": entry_id,
                "scenario": manifest.get("scenario"),
                "status": manifest.get("status", "missing"),
                "rows": manifest.get("row_count"),
                "trials": manifest.get("trials"),
                "seed": manifest.get("seed"),
                "wall_s": manifest.get("wall_time"),
                "digest": manifest.get("scenario_digest"),
            }
        )
    if not rows:
        raise HarnessError(
            f"run {run.campaign}@{run.run_id} has no stored entries"
        )
    return rows


def campaign_report(run: CampaignRun) -> str:
    """The full markdown report of one stored run."""
    payload = run.campaign_payload() or {}
    manifest = run.manifest() or {}
    campaign = payload.get("campaign", {})
    lines: List[str] = [
        f"# Campaign report — {run.campaign} @ {run.run_id}",
        "",
    ]
    if campaign.get("title"):
        lines += [str(campaign["title"]), ""]
    provenance = [
        f"seed {payload.get('seed')}",
        f"trials {payload.get('trials') or 'default'}",
    ]
    if manifest:
        provenance += [
            f"executor {manifest.get('executor')}",
            f"code {manifest.get('code')}",
            f"python {manifest.get('python')}",
            f"numpy {manifest.get('numpy')}",
        ]
        counts = manifest.get("counts", {})
        provenance.append(
            f"status {manifest.get('status')} "
            f"({counts.get('ran', 0)} ran, {counts.get('cached', 0)} "
            f"cached, {counts.get('failed', 0)} failed, "
            f"{manifest.get('wall_time', 0.0):.1f}s)"
        )
    lines += [" · ".join(str(p) for p in provenance), ""]

    lines += ["## Summary", "", render_markdown(summary_rows(run)), ""]

    gates = gate_section(run)
    if gates:
        lines += ["## Gates", "", gates, ""]

    telemetry = telemetry_section(run)
    if telemetry:
        lines += ["## Telemetry", "", telemetry, ""]

    for entry_id in run.entry_ids():
        entry_manifest = run.entry_manifest(entry_id) or {}
        if entry_manifest.get("status") != "done":
            lines += [
                f"## {entry_id} — {entry_manifest.get('status', 'missing')}",
                "",
            ]
            if entry_manifest.get("error"):
                lines += [f"```\n{entry_manifest['error']}\n```", ""]
            continue
        table = run.vouched_entry_table(entry_id)
        lines += [f"## {entry_id}", "", table.to_markdown(), ""]
    return "\n".join(lines).rstrip() + "\n"


def gate_section(run: CampaignRun) -> Optional[str]:
    """The PASS/FAIL verdict table for a gated stored run, or None.

    Verdicts are re-evaluated live from the store (never read back
    from the manifest), so a report always shows what ``gate`` would
    conclude right now — the two commands cannot disagree.
    """
    payload = run.campaign_payload() or {}
    raw = payload.get("campaign")
    if not isinstance(raw, dict):
        return None
    spec = campaign_from_dict(raw)
    if not spec.gated():
        return None
    report = evaluate_run(run, spec=spec)
    return (
        f"Gate verdict: **{report.status.upper()}**\n\n"
        + verdict_table(report)
    )


def telemetry_section(run: CampaignRun) -> Optional[str]:
    """Per-entry stage breakdowns from stored manifests, or None.

    Rendered store-only: the section is a pure function of the
    ``telemetry`` blocks that ``run-campaign --telemetry`` persisted in
    entry manifests — no scenario re-executes, and runs recorded
    without telemetry simply have no section.
    """
    per_entry: List[Tuple[str, dict]] = []
    for entry_id in run.entry_ids():
        manifest = run.entry_manifest(entry_id) or {}
        snap = manifest.get("telemetry")
        if isinstance(snap, dict):
            per_entry.append((entry_id, snap))
    if not per_entry:
        return None
    rows: List[Row] = []
    for entry_id, snap in per_entry:
        for stage in obs.stage_rows(snap):
            rows.append(
                {
                    "entry": entry_id,
                    "stage": stage["stage"],
                    "calls": stage["calls"],
                    "total_s": round(stage["total_s"], 4),
                    "mean_ms": round(stage["mean_ms"], 3),
                    "share": f"{stage['share'] * 100:.1f}%",
                }
            )
    lines: List[str] = []
    if rows:
        lines += [render_markdown(rows), ""]
    merged = obs.merge_snapshots(*(snap for _, snap in per_entry))
    lines.append(obs.render_telemetry(merged, heading="**Campaign totals**"))
    return "\n".join(lines).rstrip()


def entry_report(run: CampaignRun, entry_id: str) -> str:
    """One entry's markdown: provenance line + its stored table."""
    manifest = run.entry_manifest(entry_id)
    if manifest is None:
        raise HarnessError(
            f"run {run.campaign}@{run.run_id} has no entry "
            f"{entry_id!r}; entries: "
            f"{', '.join(run.entry_ids()) or '(none)'}"
        )
    lines = [
        f"# Entry report — {run.campaign}@{run.run_id}:{entry_id}",
        "",
        _entry_provenance(manifest),
        "",
    ]
    if manifest.get("status") != "done":
        lines.append(f"Status: {manifest.get('status')}")
        if manifest.get("error"):
            lines += ["", f"```\n{manifest['error']}\n```"]
        return "\n".join(lines).rstrip() + "\n"
    lines.append(run.vouched_entry_table(entry_id).to_markdown())
    snap = manifest.get("telemetry")
    if isinstance(snap, dict):
        lines += ["", obs.render_telemetry(snap, heading="**Telemetry**")]
    return "\n".join(lines).rstrip() + "\n"


def write_report(
    run: CampaignRun,
    out_dir: "str | Path",
    entry_id: Optional[str] = None,
) -> Dict[str, Path]:
    """Write a stored run (or one entry of it) as files.

    Whole-run: ``report.md`` + ``summary.csv``. Single entry:
    ``report.md`` holds the entry report, and ``rows.csv`` its rows
    (omitted when the entry has no completed rows) — the written files
    always match what the ``report`` command printed.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    md_path = out / "report.md"
    if entry_id is None:
        md_path.write_text(campaign_report(run), encoding="utf-8")
        csv_path = write_csv(out / "summary.csv", summary_rows(run))
        return {"markdown": md_path, "csv": csv_path}
    md_path.write_text(entry_report(run, entry_id), encoding="utf-8")
    paths: Dict[str, Path] = {"markdown": md_path}
    manifest = run.entry_manifest(entry_id) or {}
    table = (
        run.vouched_entry_table(entry_id)
        if manifest.get("status") == "done"
        else None
    )
    if table is not None:
        paths["csv"] = write_csv(
            out / "rows.csv", table.rows, columns=table.columns
        )
    return paths


# ----------------------------------------------------------------------
# Diffs
# ----------------------------------------------------------------------
def _table_columns(table: ExperimentTable) -> List[str]:
    if table.columns:
        return list(table.columns)
    cols: List[str] = []
    for row in table.rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    return cols


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _diff_tables(
    table_a: ExperimentTable, table_b: ExperimentTable
) -> Tuple[List[str], bool]:
    """Markdown lines + verdict for two stored tables.

    Equal-length tables align row-by-row (sweep order is deterministic,
    so position is identity); columns that agree everywhere become
    shared key columns and the rest expand into a/b(/Δ) triples.
    """
    cols_a, cols_b = _table_columns(table_a), _table_columns(table_b)
    shared = [c for c in cols_a if c in cols_b]
    only_a = [c for c in cols_a if c not in cols_b]
    only_b = [c for c in cols_b if c not in cols_a]
    lines: List[str] = []
    identical = not only_a and not only_b
    if only_a:
        lines.append(f"Columns only in a: {', '.join(only_a)}")
    if only_b:
        lines.append(f"Columns only in b: {', '.join(only_b)}")

    rows_a, rows_b = table_a.rows, table_b.rows
    if len(rows_a) != len(rows_b):
        lines.append(
            f"Row counts differ: {len(rows_a)} (a) vs {len(rows_b)} "
            "(b); no aligned diff."
        )
        return lines, False

    pairs = list(zip(rows_a, rows_b))
    keys = [
        c
        for c in shared
        if all(ra.get(c) == rb.get(c) for ra, rb in pairs)
    ]
    changed = [c for c in shared if c not in keys]
    if not changed:
        lines.append(
            f"{len(rows_a)} rows, all shared columns identical."
        )
        return lines, identical

    header: List[str] = list(keys)
    for c in changed:
        header += [f"{c} (a)", f"{c} (b)"]
        if all(
            _is_number(ra.get(c)) and _is_number(rb.get(c))
            for ra, rb in pairs
        ):
            header.append(f"Δ {c}")
    lines.append("| " + " | ".join(header) + " |")
    lines.append("| " + " | ".join("---" for _ in header) + " |")
    for ra, rb in pairs:
        cells = [format_value(ra.get(c)) for c in keys]
        for c in changed:
            va, vb = ra.get(c), rb.get(c)
            cells += [format_value(va), format_value(vb)]
            if f"Δ {c}" in header:
                cells.append(format_value(vb - va))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    lines.append(
        f"Differing columns: {', '.join(changed)}; key columns: "
        f"{', '.join(keys) if keys else '(none)'}."
    )
    return lines, False


def _entry_provenance(manifest: dict) -> str:
    bits = [
        f"scenario {manifest.get('scenario')}",
        f"digest {manifest.get('scenario_digest')}",
        f"trials {manifest.get('trials')}",
        f"seed {manifest.get('seed')}",
        f"code {manifest.get('code')}",
    ]
    vitals = manifest.get("vitals")
    if isinstance(vitals, dict):
        if vitals.get("backend"):
            bits.append(f"backend {vitals['backend']}")
        if vitals.get("peak_rss_kb"):
            bits.append(f"peak RSS {vitals['peak_rss_kb']} KiB")
    return " · ".join(str(b) for b in bits)


def _telemetry_diff(man_a: dict, man_b: dict) -> List[str]:
    """Informational stage-time comparison for two entry manifests.

    Wall-clock timings are never deterministic, so this table is purely
    informational — it must not (and does not) influence the
    identical-rows verdict.
    """
    snap_a, snap_b = man_a.get("telemetry"), man_b.get("telemetry")
    if not isinstance(snap_a, dict) or not isinstance(snap_b, dict):
        return []
    rows_a = {r["stage"]: r for r in obs.stage_rows(snap_a)}
    rows_b = {r["stage"]: r for r in obs.stage_rows(snap_b)}
    stages = list(dict.fromkeys([*rows_a, *rows_b]))
    if not stages:
        return []
    lines = [
        "",
        "Telemetry stages (informational; never affects the verdict):",
        "",
        "| stage | total_s (a) | total_s (b) | ratio b/a |",
        "| --- | ---: | ---: | ---: |",
    ]
    for stage in stages:
        total_a = rows_a.get(stage, {}).get("total_s", 0.0)
        total_b = rows_b.get(stage, {}).get("total_s", 0.0)
        ratio = f"{total_b / total_a:.2f}" if total_a else "—"
        lines.append(
            f"| {stage} | {total_a:.4f} | {total_b:.4f} | {ratio} |"
        )
    return lines


def _diff_entries(
    ref_a: _Ref, entry_a: str, ref_b: _Ref, entry_b: str
) -> Tuple[List[str], bool]:
    man_a = ref_a.run.entry_manifest(entry_a) or {}
    man_b = ref_b.run.entry_manifest(entry_b) or {}
    lines = [
        f"a: {ref_a.run.campaign}@{ref_a.run.run_id}:{entry_a} — "
        f"{_entry_provenance(man_a)}",
        f"b: {ref_b.run.campaign}@{ref_b.run.run_id}:{entry_b} — "
        f"{_entry_provenance(man_b)}",
        "",
    ]
    # Rows count only when the manifest vouches for them: a rows.json
    # left behind by an earlier success must not be diffed as current
    # once the entry's latest state is "failed". Conversely, a "done"
    # manifest whose rows are gone is store corruption and raises.
    table_a = (
        ref_a.run.vouched_entry_table(entry_a)
        if man_a.get("status") == "done"
        else None
    )
    table_b = (
        ref_b.run.vouched_entry_table(entry_b)
        if man_b.get("status") == "done"
        else None
    )
    if table_a is None or table_b is None:
        missing = [
            label
            for label, table in (("a", table_a), ("b", table_b))
            if table is None
        ]
        lines.append(
            f"No completed rows for side(s): {', '.join(missing)}."
        )
        return lines, False
    body, identical = _diff_tables(table_a, table_b)
    # Appended after the verdict-bearing table diff: timings differ on
    # every run, so the telemetry comparison is display-only.
    body += _telemetry_diff(man_a, man_b)
    return lines + body, identical


def diff_refs(
    store: RunStore, raw_a: str, raw_b: str
) -> Tuple[str, bool]:
    """Diff two references; returns (markdown, identical).

    Entry vs entry diffs the two tables. Run vs run matches entries by
    id (a's order) and diffs each pair — so diffing a campaign against
    the same campaign at another commit, or the ``markov`` entry
    against the ``poisson`` entry of ``traffic-models``, is the same
    command.
    """
    ref_a, ref_b = load_ref(store, raw_a), load_ref(store, raw_b)
    if (ref_a.entry_id is None) != (ref_b.entry_id is None):
        raise HarnessError(
            "cannot diff a whole run against a single entry; give two "
            "entries or two runs"
        )
    lines: List[str] = [f"# Diff — {ref_a.label} vs {ref_b.label}", ""]
    if ref_a.entry_id is not None:
        body, identical = _diff_entries(
            ref_a, ref_a.entry_id, ref_b, ref_b.entry_id
        )
        lines += body
    else:
        ids_a: Sequence[str] = ref_a.run.entry_ids()
        ids_b: Sequence[str] = ref_b.run.entry_ids()
        shared = [e for e in ids_a if e in ids_b]
        only_a = [e for e in ids_a if e not in ids_b]
        only_b = [e for e in ids_b if e not in ids_a]
        identical = not only_a and not only_b
        if only_a:
            lines.append(f"Entries only in a: {', '.join(only_a)}")
        if only_b:
            lines.append(f"Entries only in b: {', '.join(only_b)}")
        if not shared:
            lines.append("No shared entries to diff.")
            identical = False
        for entry_id in shared:
            lines += [f"## {entry_id}", ""]
            body, entry_identical = _diff_entries(
                ref_a, entry_id, ref_b, entry_id
            )
            lines += body + [""]
            identical = identical and entry_identical
    verdict = (
        "Verdict: identical rows."
        if identical
        else "Verdict: runs differ."
    )
    lines += ["", verdict]
    return "\n".join(lines).rstrip() + "\n", identical
