"""Campaign specifications: a suite of scenario runs as data.

A :class:`CampaignSpec` names a *study* — the unit a paper actually
ships: an ordered list of :class:`CampaignEntry` items, each naming one
scenario (a registered name or a ``.json`` scenario file) plus
``--set``-style overrides and optional per-entry trials/seed. Campaigns
are JSON-serializable (:func:`campaign_to_dict` /
:func:`campaign_from_dict`), carry a content digest
(:func:`campaign_digest`), and register by name exactly like scenarios
do, so ``python -m repro run-campaign paper-suite`` works out of the
box and ``run-campaign my_study.json`` runs a user file.

The campaign layer never executes anything itself — entries resolve
through :func:`repro.scenarios.resolve_scenario` and run through the
same ``run_scenario_spec`` path as a single CLI run, so a campaign is
pure orchestration over already-deterministic scenario runs.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.model.errors import HarnessError
from repro.scenarios.spec import _as_int

__all__ = [
    "CampaignEntry",
    "CampaignSpec",
    "SuccessDelta",
    "campaign_digest",
    "campaign_from_dict",
    "campaign_ids",
    "campaign_to_dict",
    "get_campaign",
    "iter_campaigns",
    "load_campaign_file",
    "register_campaign",
    "resolve_campaign",
]

ORDERINGS = ("factorial", "blocked", "shuffled")
ENTRY_ROLES = ("baseline", "variant")
DELTA_DIRECTIONS = ("increase", "decrease")
DELTA_AGGREGATIONS = ("mean", "median", "min", "max")

_AXIS_NAME = re.compile(r"^[a-z][a-z0-9_]*$")


def _slug(text: str) -> str:
    """A filesystem- and ref-safe lowercase identifier."""
    cleaned = "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in text.lower()
    ).strip("-")
    return cleaned or "entry"


def _as_str(value: object, where: str) -> str:
    """Coerce-check a string field, failing as a clean spec error."""
    if not isinstance(value, str):
        raise HarnessError(f"{where} must be a string, got {value!r}")
    return value


def _as_tags(value: object, where: str) -> Tuple[str, ...]:
    """Validate a tags field: a list/tuple of strings, never a string.

    A bare string would silently explode into per-character tags via
    ``tuple()`` — the classic ``"tags": "paper"`` typo must fail
    loudly instead.
    """
    if not isinstance(value, (list, tuple)):
        raise HarnessError(
            f"{where} must be a list of strings, got {value!r}"
        )
    return tuple(_as_str(tag, f"{where} entry") for tag in value)


@dataclass(frozen=True)
class SuccessDelta:
    """A declared acceptance rule for one variant entry.

    The rule asserts a *signed margin* between the variant and its
    baseline(s), evaluated store-only from the rows each entry wrote:
    per entry the ``metric`` column is reduced with ``aggregation``,
    and the gate passes iff the aggregate moved in ``direction`` by at
    least ``threshold`` (an exact tie at the threshold passes — the
    rule is a floor, not a strict inequality).

    Attributes:
        metric: Row column to compare (e.g. ``discovered_fraction``).
        direction: ``"increase"`` (variant must exceed baseline) or
            ``"decrease"`` (variant must undercut it).
        threshold: Minimum required margin in metric units (>= 0).
        aggregation: Per-entry row reduction: ``mean`` | ``median`` |
            ``min`` | ``max``.
        baseline: Entry id to compare against; None pools the rows of
            every ``role: baseline`` entry in the campaign.
    """

    metric: str
    direction: str = "increase"
    threshold: float = 0.0
    aggregation: str = "mean"
    baseline: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.metric or not isinstance(self.metric, str):
            raise HarnessError(
                f"success_delta needs a metric column name, got "
                f"{self.metric!r}"
            )
        if self.direction not in DELTA_DIRECTIONS:
            raise HarnessError(
                f"success_delta direction must be one of "
                f"{', '.join(DELTA_DIRECTIONS)}, got {self.direction!r}"
            )
        if self.aggregation not in DELTA_AGGREGATIONS:
            raise HarnessError(
                f"success_delta aggregation must be one of "
                f"{', '.join(DELTA_AGGREGATIONS)}, got "
                f"{self.aggregation!r}"
            )
        if not isinstance(self.threshold, (int, float)) or isinstance(
            self.threshold, bool
        ):
            raise HarnessError(
                f"success_delta threshold must be a number, got "
                f"{self.threshold!r}"
            )
        if self.threshold < 0:
            raise HarnessError(
                f"success_delta threshold must be >= 0, got "
                f"{self.threshold} (flip direction instead)"
            )

    def describe(self) -> str:
        """One-line human form, e.g. ``mean(x) increase >= 0.01``."""
        return (
            f"{self.aggregation}({self.metric}) {self.direction} "
            f">= {self.threshold:g}"
        )


def _delta_to_dict(rule: SuccessDelta) -> Dict[str, object]:
    out: Dict[str, object] = {"metric": rule.metric}
    if rule.direction != "increase":
        out["direction"] = rule.direction
    if rule.threshold:
        out["threshold"] = rule.threshold
    if rule.aggregation != "mean":
        out["aggregation"] = rule.aggregation
    if rule.baseline is not None:
        out["baseline"] = rule.baseline
    return out


def _delta_from_dict(raw: object, where: str) -> SuccessDelta:
    if isinstance(raw, SuccessDelta):
        return raw
    if not isinstance(raw, Mapping):
        raise HarnessError(
            f"{where} must be an object with at least 'metric', got "
            f"{raw!r}"
        )
    known = {f.name for f in fields(SuccessDelta)}
    bad = set(raw) - known
    if bad:
        raise HarnessError(
            f"unknown {where} keys: {', '.join(sorted(bad))}; valid: "
            f"{', '.join(sorted(known))}"
        )
    kwargs = dict(raw)
    kwargs["metric"] = _as_str(kwargs.get("metric"), f"{where} metric")
    if "threshold" in kwargs:
        threshold = kwargs["threshold"]
        if not isinstance(threshold, (int, float)) or isinstance(
            threshold, bool
        ):
            raise HarnessError(
                f"{where} threshold must be a number, got {threshold!r}"
            )
        kwargs["threshold"] = float(threshold)
    for key in ("direction", "aggregation", "baseline"):
        if kwargs.get(key) is not None:
            kwargs[key] = _as_str(kwargs[key], f"{where} {key}")
    return SuccessDelta(**kwargs)


@dataclass(frozen=True)
class CampaignEntry:
    """One scenario run inside a campaign.

    Attributes:
        scenario: Registered scenario name or path to a ``.json``
            scenario file (the same forms ``run-scenario`` accepts).
        id: Stable entry id inside the campaign (used for store
            directories and report/diff refs). Defaults to
            ``<index>-<scenario slug>``.
        overrides: ``--set``-style dotted-path overrides applied to the
            scenario before running. Values may be raw strings (parsed
            as JSON when possible, exactly like the CLI) or plain JSON
            values.
        trials: Per-entry trials override (None = campaign default,
            then the scenario's own default).
        seed: Per-entry master seed override (None = the campaign
            seed).
        role: Gate role — ``"baseline"``, ``"variant"``, or None for
            an ungated entry.
        success_delta: The acceptance rule for a ``variant`` entry
            (required for variants, forbidden otherwise).
    """

    scenario: str
    id: Optional[str] = None
    overrides: Mapping[str, object] = field(default_factory=dict)
    trials: Optional[int] = None
    seed: Optional[int] = None
    role: Optional[str] = None
    success_delta: Optional[SuccessDelta] = None

    def __post_init__(self) -> None:
        if not self.scenario:
            raise HarnessError("a campaign entry needs a scenario")
        if not isinstance(self.overrides, Mapping):
            raise HarnessError(
                f"entry overrides must be an object mapping --set-style "
                f"paths to values, got {self.overrides!r}"
            )
        if self.trials is not None and self.trials < 1:
            raise HarnessError(
                f"entry trials must be >= 1, got {self.trials}"
            )
        if self.id is not None and self.id != _slug(self.id):
            raise HarnessError(
                f"entry id {self.id!r} must be a lowercase slug "
                "(letters, digits, '-', '_')"
            )
        if self.role is not None and self.role not in ENTRY_ROLES:
            raise HarnessError(
                f"entry role must be one of {', '.join(ENTRY_ROLES)}, "
                f"got {self.role!r}"
            )
        if self.role == "variant" and self.success_delta is None:
            raise HarnessError(
                f"variant entry {self.id or self.scenario!r} needs a "
                "success_delta rule to gate on"
            )
        if self.success_delta is not None and self.role != "variant":
            raise HarnessError(
                f"entry {self.id or self.scenario!r} declares a "
                "success_delta but is not a variant; set role: variant"
            )

    def resolved_id(self, index: int) -> str:
        """The entry's store id: explicit, or derived from its slot."""
        if self.id is not None:
            return self.id
        stem = Path(self.scenario).stem if (
            "/" in self.scenario or self.scenario.endswith(".json")
        ) else self.scenario
        return f"{index + 1:02d}-{_slug(stem)}"

    def normalized_overrides(self) -> Dict[str, str]:
        """Overrides in the raw-string form ``apply_overrides`` takes.

        String values pass through untouched (they get the CLI's
        parse-as-JSON-when-possible treatment downstream); JSON values
        are dumped, so ``{"sweep.axes.m": [2, 4]}`` in a campaign file
        means exactly ``--set sweep.axes.m=[2,4]``.
        """
        out: Dict[str, str] = {}
        for path, value in self.overrides.items():
            out[path] = (
                value if isinstance(value, str) else json.dumps(value)
            )
        return out


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered suite of scenario runs with shared defaults.

    Attributes:
        name: Registry id (case-insensitive, unique; also the store
            directory name).
        title: Human-readable study headline.
        description: One-line summary for ``campaigns`` listings.
        entries: The scenario runs, in execution order; resolved entry
            ids must be unique.
        trials: Default trials per entry (None = each scenario's own
            default).
        seed: Default master seed for every entry.
        tags: Free-form labels.
        axes: Campaign-level design axes: ``{name: [values...]}``.
            Entries whose override values reference ``$name`` are
            *templates*, stamped across the factorial grid of the axes
            they reference into concrete entries (see
            :mod:`repro.campaigns.design`).
        ordering: Entry execution order after stamping —
            ``"factorial"`` (declaration/grid order, the default),
            ``"blocked"`` (grouped by the first declared axis's value),
            or ``"shuffled"`` (deterministic seeded permutation).
        order_seed: Seed for ``shuffled`` ordering (None = the
            campaign ``seed``).
    """

    name: str
    title: str
    description: str = ""
    entries: Tuple[CampaignEntry, ...] = ()
    trials: Optional[int] = None
    seed: int = 0
    tags: Tuple[str, ...] = ()
    axes: Mapping[str, Tuple[object, ...]] = field(default_factory=dict)
    ordering: str = "factorial"
    order_seed: Optional[int] = None

    def __post_init__(self) -> None:
        # The name is a store directory component and the leading token
        # of report/diff references, so it must be a slug: a path
        # escape ("../evil") or a ref metacharacter ("@", ":") would
        # write outside the store root or break reference parsing.
        if not self.name or self.name != _slug(self.name):
            raise HarnessError(
                f"campaign name {self.name!r} must be a lowercase slug "
                "(letters, digits, '-', '_')"
            )
        if not self.entries:
            raise HarnessError(
                f"campaign {self.name!r} needs at least one entry"
            )
        if self.trials is not None and self.trials < 1:
            raise HarnessError(
                f"campaign trials must be >= 1, got {self.trials}"
            )
        ids = [e.resolved_id(i) for i, e in enumerate(self.entries)]
        dupes = {i for i in ids if ids.count(i) > 1}
        if dupes:
            raise HarnessError(
                f"campaign {self.name!r} has duplicate entry ids: "
                f"{', '.join(sorted(dupes))}"
            )
        if self.ordering not in ORDERINGS:
            raise HarnessError(
                f"campaign ordering must be one of "
                f"{', '.join(ORDERINGS)}, got {self.ordering!r}"
            )
        if not isinstance(self.axes, Mapping):
            raise HarnessError(
                f"campaign axes must be an object mapping axis names "
                f"to value lists, got {self.axes!r}"
            )
        for axis, values in self.axes.items():
            if not isinstance(axis, str) or not _AXIS_NAME.match(axis):
                raise HarnessError(
                    f"campaign axis name {axis!r} must match "
                    "[a-z][a-z0-9_]* (it is referenced as $name)"
                )
            if isinstance(values, str) or not isinstance(
                values, (list, tuple)
            ):
                raise HarnessError(
                    f"campaign axis {axis!r} must list its values, "
                    f"got {values!r}"
                )
            if not values:
                raise HarnessError(
                    f"campaign axis {axis!r} needs at least one value"
                )
            for value in values:
                if value is not None and not isinstance(
                    value, (str, int, float, bool)
                ):
                    raise HarnessError(
                        f"campaign axis {axis!r} values must be JSON "
                        f"scalars, got {value!r}"
                    )
        # Normalize axis values to tuples so list- and tuple-declared
        # axes compare (and digest) identically after a round-trip.
        object.__setattr__(
            self,
            "axes",
            {axis: tuple(values) for axis, values in self.axes.items()},
        )
        roles = [e.role for e in self.entries]
        if "variant" in roles and "baseline" not in roles:
            raise HarnessError(
                f"campaign {self.name!r} declares variant entries but "
                "no baseline entry to compare against"
            )

    def entry_ids(self) -> List[str]:
        """Resolved entry ids, in execution order."""
        return [e.resolved_id(i) for i, e in enumerate(self.entries)]

    def gated(self) -> bool:
        """Whether any entry declares an acceptance rule."""
        return any(e.role == "variant" for e in self.entries)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def campaign_to_dict(spec: CampaignSpec) -> Dict[str, object]:
    """A JSON-ready dict; round-trips through :func:`campaign_from_dict`."""
    out: Dict[str, object] = {
        "name": spec.name,
        "title": spec.title,
    }
    if spec.description:
        out["description"] = spec.description
    if spec.tags:
        out["tags"] = list(spec.tags)
    if spec.trials is not None:
        out["trials"] = spec.trials
    if spec.seed:
        out["seed"] = spec.seed
    if spec.axes:
        out["axes"] = {
            axis: list(values) for axis, values in spec.axes.items()
        }
    if spec.ordering != "factorial":
        out["ordering"] = spec.ordering
    if spec.order_seed is not None:
        out["order_seed"] = spec.order_seed
    entries: List[Dict[str, object]] = []
    for entry in spec.entries:
        e: Dict[str, object] = {"scenario": entry.scenario}
        if entry.id is not None:
            e["id"] = entry.id
        if entry.overrides:
            e["overrides"] = dict(entry.overrides)
        if entry.trials is not None:
            e["trials"] = entry.trials
        if entry.seed is not None:
            e["seed"] = entry.seed
        if entry.role is not None:
            e["role"] = entry.role
        if entry.success_delta is not None:
            e["success_delta"] = _delta_to_dict(entry.success_delta)
        entries.append(e)
    out["entries"] = entries
    return out


def campaign_from_dict(payload: Mapping[str, object]) -> CampaignSpec:
    """Build a campaign from a dict (e.g. a parsed JSON file).

    Unknown keys raise — a typo in a campaign file must fail loudly,
    not silently run the wrong study.
    """
    if not isinstance(payload, Mapping):
        raise HarnessError(
            f"campaign payload must be an object, got {payload!r}"
        )
    known = {f.name for f in fields(CampaignSpec)}
    unknown = set(payload) - known
    if unknown:
        raise HarnessError(
            f"unknown campaign keys: {', '.join(sorted(unknown))}; "
            f"valid: {', '.join(sorted(known))}"
        )
    if "name" not in payload or "entries" not in payload:
        raise HarnessError(
            "a campaign needs at least 'name' and 'entries'"
        )
    raw_entries = payload["entries"]
    if not isinstance(raw_entries, (list, tuple)):
        raise HarnessError(
            f"campaign entries must be a list, got {raw_entries!r}"
        )
    entry_fields = {f.name for f in fields(CampaignEntry)}
    entries: List[CampaignEntry] = []
    for i, raw in enumerate(raw_entries):
        if isinstance(raw, str):
            # Shorthand: a bare scenario name is a default entry.
            entries.append(CampaignEntry(scenario=raw))
            continue
        if not isinstance(raw, Mapping):
            raise HarnessError(
                f"campaign entry {i} must be an object or a scenario "
                f"name, got {raw!r}"
            )
        bad = set(raw) - entry_fields
        if bad:
            raise HarnessError(
                f"unknown campaign entry keys: {', '.join(sorted(bad))}; "
                f"valid: {', '.join(sorted(entry_fields))}"
            )
        kwargs = dict(raw)
        for field_name in ("trials", "seed"):
            if kwargs.get(field_name) is not None:
                kwargs[field_name] = _as_int(
                    kwargs[field_name], f"entry {i} {field_name}"
                )
        kwargs["scenario"] = _as_str(
            kwargs.get("scenario"), f"entry {i} scenario"
        )
        if kwargs.get("id") is not None:
            kwargs["id"] = _as_str(kwargs["id"], f"entry {i} id")
        if kwargs.get("role") is not None:
            kwargs["role"] = _as_str(kwargs["role"], f"entry {i} role")
        if kwargs.get("success_delta") is not None:
            kwargs["success_delta"] = _delta_from_dict(
                kwargs["success_delta"], f"entry {i} success_delta"
            )
        entries.append(CampaignEntry(**kwargs))
    trials = payload.get("trials")
    order_seed = payload.get("order_seed")
    name = _as_str(payload["name"], "campaign name")
    raw_axes = payload.get("axes", {})
    if not isinstance(raw_axes, Mapping):
        raise HarnessError(
            f"campaign axes must be an object, got {raw_axes!r}"
        )
    axes = {
        _as_str(axis, "campaign axis name"): tuple(values)
        if isinstance(values, (list, tuple))
        else values
        for axis, values in raw_axes.items()
    }
    return CampaignSpec(
        name=name,
        title=_as_str(payload.get("title", name), "campaign title"),
        description=_as_str(
            payload.get("description", ""), "campaign description"
        ),
        entries=tuple(entries),
        trials=(
            None if trials is None else _as_int(trials, "campaign trials")
        ),
        seed=_as_int(payload.get("seed", 0), "campaign seed"),
        tags=_as_tags(payload.get("tags", ()), "campaign tags"),
        axes=axes,
        ordering=_as_str(
            payload.get("ordering", "factorial"), "campaign ordering"
        ),
        order_seed=(
            None
            if order_seed is None
            else _as_int(order_seed, "campaign order_seed")
        ),
    )


def campaign_digest(spec: CampaignSpec) -> str:
    """A short stable digest of the campaign's own content.

    Covers the entry list, overrides and defaults — anything that
    changes what the campaign *asks for*. What each scenario's code
    does with those asks is covered per entry by the run-store keys
    (scenario digest + code version), not here.
    """
    canonical = json.dumps(
        campaign_to_dict(spec), sort_keys=True, default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, CampaignSpec] = {}


def register_campaign(spec: CampaignSpec) -> CampaignSpec:
    """Register a campaign under its (case-insensitive) name."""
    key = spec.name.lower()
    if key in _REGISTRY:
        raise HarnessError(
            f"campaign {spec.name!r} is already registered"
        )
    _REGISTRY[key] = spec
    return spec


def campaign_ids() -> List[str]:
    """Registered campaign names, in registration order."""
    return [spec.name for spec in _REGISTRY.values()]


def iter_campaigns() -> List[CampaignSpec]:
    """Registered campaigns, in registration order."""
    return list(_REGISTRY.values())


def get_campaign(name: str) -> CampaignSpec:
    """Look a registered campaign up by name (case-insensitive)."""
    spec = _REGISTRY.get(name.lower())
    if spec is None:
        raise HarnessError(
            f"unknown campaign {name!r}; valid: "
            f"{', '.join(campaign_ids())} (or a path to a .json "
            "campaign file)"
        )
    return spec


def load_campaign_file(path: "str | Path") -> CampaignSpec:
    """Parse a JSON campaign file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise HarnessError(f"cannot read campaign file {path}: {exc}")
    except ValueError as exc:
        raise HarnessError(
            f"campaign file {path} is not valid JSON: {exc}"
        )
    return campaign_from_dict(payload)


def resolve_campaign(campaign: "str | CampaignSpec") -> CampaignSpec:
    """A registered name, a ``.json`` file path, or a spec as-is."""
    if isinstance(campaign, CampaignSpec):
        return campaign
    if "/" in campaign or campaign.endswith(".json"):
        return load_campaign_file(campaign)
    return get_campaign(campaign)
