"""Campaign specifications: a suite of scenario runs as data.

A :class:`CampaignSpec` names a *study* — the unit a paper actually
ships: an ordered list of :class:`CampaignEntry` items, each naming one
scenario (a registered name or a ``.json`` scenario file) plus
``--set``-style overrides and optional per-entry trials/seed. Campaigns
are JSON-serializable (:func:`campaign_to_dict` /
:func:`campaign_from_dict`), carry a content digest
(:func:`campaign_digest`), and register by name exactly like scenarios
do, so ``python -m repro run-campaign paper-suite`` works out of the
box and ``run-campaign my_study.json`` runs a user file.

The campaign layer never executes anything itself — entries resolve
through :func:`repro.scenarios.resolve_scenario` and run through the
same ``run_scenario_spec`` path as a single CLI run, so a campaign is
pure orchestration over already-deterministic scenario runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.model.errors import HarnessError
from repro.scenarios.spec import _as_int

__all__ = [
    "CampaignEntry",
    "CampaignSpec",
    "campaign_digest",
    "campaign_from_dict",
    "campaign_ids",
    "campaign_to_dict",
    "get_campaign",
    "iter_campaigns",
    "load_campaign_file",
    "register_campaign",
    "resolve_campaign",
]


def _slug(text: str) -> str:
    """A filesystem- and ref-safe lowercase identifier."""
    cleaned = "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in text.lower()
    ).strip("-")
    return cleaned or "entry"


def _as_str(value: object, where: str) -> str:
    """Coerce-check a string field, failing as a clean spec error."""
    if not isinstance(value, str):
        raise HarnessError(f"{where} must be a string, got {value!r}")
    return value


def _as_tags(value: object, where: str) -> Tuple[str, ...]:
    """Validate a tags field: a list/tuple of strings, never a string.

    A bare string would silently explode into per-character tags via
    ``tuple()`` — the classic ``"tags": "paper"`` typo must fail
    loudly instead.
    """
    if not isinstance(value, (list, tuple)):
        raise HarnessError(
            f"{where} must be a list of strings, got {value!r}"
        )
    return tuple(_as_str(tag, f"{where} entry") for tag in value)


@dataclass(frozen=True)
class CampaignEntry:
    """One scenario run inside a campaign.

    Attributes:
        scenario: Registered scenario name or path to a ``.json``
            scenario file (the same forms ``run-scenario`` accepts).
        id: Stable entry id inside the campaign (used for store
            directories and report/diff refs). Defaults to
            ``<index>-<scenario slug>``.
        overrides: ``--set``-style dotted-path overrides applied to the
            scenario before running. Values may be raw strings (parsed
            as JSON when possible, exactly like the CLI) or plain JSON
            values.
        trials: Per-entry trials override (None = campaign default,
            then the scenario's own default).
        seed: Per-entry master seed override (None = the campaign
            seed).
    """

    scenario: str
    id: Optional[str] = None
    overrides: Mapping[str, object] = field(default_factory=dict)
    trials: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.scenario:
            raise HarnessError("a campaign entry needs a scenario")
        if not isinstance(self.overrides, Mapping):
            raise HarnessError(
                f"entry overrides must be an object mapping --set-style "
                f"paths to values, got {self.overrides!r}"
            )
        if self.trials is not None and self.trials < 1:
            raise HarnessError(
                f"entry trials must be >= 1, got {self.trials}"
            )
        if self.id is not None and self.id != _slug(self.id):
            raise HarnessError(
                f"entry id {self.id!r} must be a lowercase slug "
                "(letters, digits, '-', '_')"
            )

    def resolved_id(self, index: int) -> str:
        """The entry's store id: explicit, or derived from its slot."""
        if self.id is not None:
            return self.id
        stem = Path(self.scenario).stem if (
            "/" in self.scenario or self.scenario.endswith(".json")
        ) else self.scenario
        return f"{index + 1:02d}-{_slug(stem)}"

    def normalized_overrides(self) -> Dict[str, str]:
        """Overrides in the raw-string form ``apply_overrides`` takes.

        String values pass through untouched (they get the CLI's
        parse-as-JSON-when-possible treatment downstream); JSON values
        are dumped, so ``{"sweep.axes.m": [2, 4]}`` in a campaign file
        means exactly ``--set sweep.axes.m=[2,4]``.
        """
        out: Dict[str, str] = {}
        for path, value in self.overrides.items():
            out[path] = (
                value if isinstance(value, str) else json.dumps(value)
            )
        return out


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered suite of scenario runs with shared defaults.

    Attributes:
        name: Registry id (case-insensitive, unique; also the store
            directory name).
        title: Human-readable study headline.
        description: One-line summary for ``campaigns`` listings.
        entries: The scenario runs, in execution order; resolved entry
            ids must be unique.
        trials: Default trials per entry (None = each scenario's own
            default).
        seed: Default master seed for every entry.
        tags: Free-form labels.
    """

    name: str
    title: str
    description: str = ""
    entries: Tuple[CampaignEntry, ...] = ()
    trials: Optional[int] = None
    seed: int = 0
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # The name is a store directory component and the leading token
        # of report/diff references, so it must be a slug: a path
        # escape ("../evil") or a ref metacharacter ("@", ":") would
        # write outside the store root or break reference parsing.
        if not self.name or self.name != _slug(self.name):
            raise HarnessError(
                f"campaign name {self.name!r} must be a lowercase slug "
                "(letters, digits, '-', '_')"
            )
        if not self.entries:
            raise HarnessError(
                f"campaign {self.name!r} needs at least one entry"
            )
        if self.trials is not None and self.trials < 1:
            raise HarnessError(
                f"campaign trials must be >= 1, got {self.trials}"
            )
        ids = [e.resolved_id(i) for i, e in enumerate(self.entries)]
        dupes = {i for i in ids if ids.count(i) > 1}
        if dupes:
            raise HarnessError(
                f"campaign {self.name!r} has duplicate entry ids: "
                f"{', '.join(sorted(dupes))}"
            )

    def entry_ids(self) -> List[str]:
        """Resolved entry ids, in execution order."""
        return [e.resolved_id(i) for i, e in enumerate(self.entries)]


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def campaign_to_dict(spec: CampaignSpec) -> Dict[str, object]:
    """A JSON-ready dict; round-trips through :func:`campaign_from_dict`."""
    out: Dict[str, object] = {
        "name": spec.name,
        "title": spec.title,
    }
    if spec.description:
        out["description"] = spec.description
    if spec.tags:
        out["tags"] = list(spec.tags)
    if spec.trials is not None:
        out["trials"] = spec.trials
    if spec.seed:
        out["seed"] = spec.seed
    entries: List[Dict[str, object]] = []
    for entry in spec.entries:
        e: Dict[str, object] = {"scenario": entry.scenario}
        if entry.id is not None:
            e["id"] = entry.id
        if entry.overrides:
            e["overrides"] = dict(entry.overrides)
        if entry.trials is not None:
            e["trials"] = entry.trials
        if entry.seed is not None:
            e["seed"] = entry.seed
        entries.append(e)
    out["entries"] = entries
    return out


def campaign_from_dict(payload: Mapping[str, object]) -> CampaignSpec:
    """Build a campaign from a dict (e.g. a parsed JSON file).

    Unknown keys raise — a typo in a campaign file must fail loudly,
    not silently run the wrong study.
    """
    if not isinstance(payload, Mapping):
        raise HarnessError(
            f"campaign payload must be an object, got {payload!r}"
        )
    known = {f.name for f in fields(CampaignSpec)}
    unknown = set(payload) - known
    if unknown:
        raise HarnessError(
            f"unknown campaign keys: {', '.join(sorted(unknown))}; "
            f"valid: {', '.join(sorted(known))}"
        )
    if "name" not in payload or "entries" not in payload:
        raise HarnessError(
            "a campaign needs at least 'name' and 'entries'"
        )
    raw_entries = payload["entries"]
    if not isinstance(raw_entries, (list, tuple)):
        raise HarnessError(
            f"campaign entries must be a list, got {raw_entries!r}"
        )
    entry_fields = {f.name for f in fields(CampaignEntry)}
    entries: List[CampaignEntry] = []
    for i, raw in enumerate(raw_entries):
        if isinstance(raw, str):
            # Shorthand: a bare scenario name is a default entry.
            entries.append(CampaignEntry(scenario=raw))
            continue
        if not isinstance(raw, Mapping):
            raise HarnessError(
                f"campaign entry {i} must be an object or a scenario "
                f"name, got {raw!r}"
            )
        bad = set(raw) - entry_fields
        if bad:
            raise HarnessError(
                f"unknown campaign entry keys: {', '.join(sorted(bad))}; "
                f"valid: {', '.join(sorted(entry_fields))}"
            )
        kwargs = dict(raw)
        for field_name in ("trials", "seed"):
            if kwargs.get(field_name) is not None:
                kwargs[field_name] = _as_int(
                    kwargs[field_name], f"entry {i} {field_name}"
                )
        kwargs["scenario"] = _as_str(
            kwargs.get("scenario"), f"entry {i} scenario"
        )
        if kwargs.get("id") is not None:
            kwargs["id"] = _as_str(kwargs["id"], f"entry {i} id")
        entries.append(CampaignEntry(**kwargs))
    trials = payload.get("trials")
    name = _as_str(payload["name"], "campaign name")
    return CampaignSpec(
        name=name,
        title=_as_str(payload.get("title", name), "campaign title"),
        description=_as_str(
            payload.get("description", ""), "campaign description"
        ),
        entries=tuple(entries),
        trials=(
            None if trials is None else _as_int(trials, "campaign trials")
        ),
        seed=_as_int(payload.get("seed", 0), "campaign seed"),
        tags=_as_tags(payload.get("tags", ()), "campaign tags"),
    )


def campaign_digest(spec: CampaignSpec) -> str:
    """A short stable digest of the campaign's own content.

    Covers the entry list, overrides and defaults — anything that
    changes what the campaign *asks for*. What each scenario's code
    does with those asks is covered per entry by the run-store keys
    (scenario digest + code version), not here.
    """
    canonical = json.dumps(
        campaign_to_dict(spec), sort_keys=True, default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, CampaignSpec] = {}


def register_campaign(spec: CampaignSpec) -> CampaignSpec:
    """Register a campaign under its (case-insensitive) name."""
    key = spec.name.lower()
    if key in _REGISTRY:
        raise HarnessError(
            f"campaign {spec.name!r} is already registered"
        )
    _REGISTRY[key] = spec
    return spec


def campaign_ids() -> List[str]:
    """Registered campaign names, in registration order."""
    return [spec.name for spec in _REGISTRY.values()]


def iter_campaigns() -> List[CampaignSpec]:
    """Registered campaigns, in registration order."""
    return list(_REGISTRY.values())


def get_campaign(name: str) -> CampaignSpec:
    """Look a registered campaign up by name (case-insensitive)."""
    spec = _REGISTRY.get(name.lower())
    if spec is None:
        raise HarnessError(
            f"unknown campaign {name!r}; valid: "
            f"{', '.join(campaign_ids())} (or a path to a .json "
            "campaign file)"
        )
    return spec


def load_campaign_file(path: "str | Path") -> CampaignSpec:
    """Parse a JSON campaign file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise HarnessError(f"cannot read campaign file {path}: {exc}")
    except ValueError as exc:
        raise HarnessError(
            f"campaign file {path} is not valid JSON: {exc}"
        )
    return campaign_from_dict(payload)


def resolve_campaign(campaign: "str | CampaignSpec") -> CampaignSpec:
    """A registered name, a ``.json`` file path, or a spec as-is."""
    if isinstance(campaign, CampaignSpec):
        return campaign
    if "/" in campaign or campaign.endswith(".json"):
        return load_campaign_file(campaign)
    return get_campaign(campaign)
