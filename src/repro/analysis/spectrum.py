"""Spectrum analytics: how protocols actually used the channels.

Post-hoc introspection of discovery executions: which physical channels
carried the receptions, how crowded each channel was, and how well a
node's part-one density estimates match ground truth. Used by the
examples and by diagnosis when tuning protocol constants.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List


from repro.core.cseek import CSeekResult
from repro.model.errors import HarnessError
from repro.sim.network import CRNetwork

__all__ = [
    "ChannelUsage",
    "channel_usage",
    "density_estimate_quality",
    "reception_histogram",
]


@dataclass(frozen=True)
class ChannelUsage:
    """Per-channel usage summary for one discovery execution.

    Attributes:
        global_id: The physical channel.
        receptions: First-receptions that happened on it.
        subscribers: Nodes that can access it.
        max_crowding: Largest per-node neighbor count sharing it (the
            paper's ``max_u n_ch``).
    """

    global_id: int
    receptions: int
    subscribers: int
    max_crowding: int


def reception_histogram(result: CSeekResult) -> Dict[int, int]:
    """First receptions per global channel (``-1`` = unannotated)."""
    counter: Counter = Counter(
        event.channel for event in result.trace.first_heard.values()
    )
    return dict(counter)


def channel_usage(
    network: CRNetwork, result: CSeekResult
) -> List[ChannelUsage]:
    """Usage summary for every channel in the network's universe.

    Sorted by descending receptions, then ascending id — the head of
    the list is where discovery actually happened.
    """
    receptions = reception_histogram(result)
    members = network.assignment.membership_map()
    crowding_by_channel: Dict[int, int] = {}
    for u in range(network.n):
        for g, count in network.crowding(u).items():
            crowding_by_channel[g] = max(
                crowding_by_channel.get(g, 0), count
            )
    usage = [
        ChannelUsage(
            global_id=g,
            receptions=receptions.get(g, 0),
            subscribers=len(nodes),
            max_crowding=crowding_by_channel.get(g, 0),
        )
        for g, nodes in members.items()
    ]
    usage.sort(key=lambda u: (-u.receptions, u.global_id))
    return usage


def density_estimate_quality(
    network: CRNetwork, result: CSeekResult, node: int
) -> Dict[int, tuple[float, int]]:
    """Compare a node's part-one channel scores with true crowding.

    For each of ``node``'s channels (by global id) returns
    ``(accumulated score, true neighbor count on the channel)``. CSEEK's
    part two is only as good as the correlation between these two —
    Lemma 3's analysis assumes scores track ``n_ch`` within constants.

    Raises:
        HarnessError: if ``node`` is out of range.
    """
    if not 0 <= node < network.n:
        raise HarnessError(f"node {node} out of range [0, {network.n})")
    crowding = network.crowding(node)
    table = network.channel_table()
    out: Dict[int, tuple[float, int]] = {}
    for label in range(network.c):
        g = int(table[node, label])
        out[g] = (float(result.counts[node, label]), crowding.get(g, 0))
    return out
