"""Empirical scaling analysis: log-log slopes, ratios, crossovers.

The reproducible content of an asymptotic bound is its *shape*: if
``T(x) = Θ(x^p · polylog)`` then measured times against a swept
parameter should show slope ``≈ p`` on log-log axes, and two algorithms'
curves should cross where the bounds say they cross. These helpers turn
sweep measurements into those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.model.errors import HarnessError

__all__ = ["PowerFit", "fit_power_law", "ratio_curve", "find_crossover"]


@dataclass(frozen=True)
class PowerFit:
    """Least-squares fit of ``y = C · x^slope`` on log-log axes.

    Attributes:
        slope: Fitted exponent.
        log_intercept: Fitted ``log(C)`` (natural log).
        r_squared: Coefficient of determination in log space.
    """

    slope: float
    log_intercept: float
    r_squared: float

    @property
    def constant(self) -> float:
        """The multiplicative constant ``C``."""
        return float(np.exp(self.log_intercept))

    def predict(self, x: float) -> float:
        """Evaluate the fitted law at ``x``."""
        return self.constant * x**self.slope


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> PowerFit:
    """Fit ``y ~ C x^p`` by least squares in log space.

    Raises:
        HarnessError: on fewer than two points or non-positive values.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise HarnessError(
            f"need >= 2 paired points, got {x.size} xs and {y.size} ys"
        )
    if (x <= 0).any() or (y <= 0).any():
        raise HarnessError("power-law fits need strictly positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, deg=1)
    predicted = slope * lx + intercept
    ss_res = float(((ly - predicted) ** 2).sum())
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return PowerFit(
        slope=float(slope), log_intercept=float(intercept), r_squared=r2
    )


def ratio_curve(
    numerators: Sequence[float], denominators: Sequence[float]
) -> np.ndarray:
    """Element-wise ratios (e.g. naive slots / CSEEK slots along a sweep).

    Raises:
        HarnessError: on length mismatch or zero denominators.
    """
    num = np.asarray(numerators, dtype=float)
    den = np.asarray(denominators, dtype=float)
    if num.size != den.size:
        raise HarnessError(
            f"length mismatch: {num.size} numerators, {den.size} denominators"
        )
    if (den == 0).any():
        raise HarnessError("zero denominator in ratio curve")
    return num / den


def find_crossover(
    xs: Sequence[float],
    ys_a: Sequence[float],
    ys_b: Sequence[float],
) -> Optional[float]:
    """First swept ``x`` past which curve A exceeds curve B (or None).

    Linear interpolation between the bracketing sweep points; returns
    None when A never exceeds B over the sweep.
    """
    x = np.asarray(xs, dtype=float)
    a = np.asarray(ys_a, dtype=float)
    b = np.asarray(ys_b, dtype=float)
    if not (x.size == a.size == b.size):
        raise HarnessError("crossover inputs must have equal lengths")
    if x.size == 0:
        raise HarnessError("crossover needs at least one point")
    diff = a - b
    if diff[0] > 0:
        return float(x[0])
    for i in range(1, x.size):
        if diff[i] > 0:
            # Interpolate within [x[i-1], x[i]].
            span = diff[i] - diff[i - 1]
            if span == 0:
                return float(x[i])
            t = -diff[i - 1] / span
            return float(x[i - 1] + t * (x[i] - x[i - 1]))
    return None
