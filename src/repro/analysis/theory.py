"""Closed-form bound curves for every theorem in the paper.

Each function returns the *shape* term of a bound — the expression
inside the paper's ``Õ(·)`` / ``Ω(·)`` — optionally scaled by the
``lg n`` factors the tilde hides. Experiments plot measured slots
against these curves: absolute constants are implementation-specific,
but ratios along a sweep (slopes, crossovers, who-wins) must match.

Bound inventory:

=============  =====================================================
Theorem 4      CSEEK:      ``Õ(c²/k + (kmax/k)·Δ)``
Theorem 6      CKSEEK:     ``Õ(c²/k̂ + (kmax/k̂)·Δ_k̂ + Δ)``
Theorem 9      CGCAST:     ``Õ(c²/k + (kmax/k)·Δ + D·Δ)``
Section 1      naive ND:   ``Õ((c²/k)·Δ)``
Section 1      naive bcast ``Õ((c²/k)·D)``
Section 2      Zeng et al. ``Õ(c²/k + c·Δ/k)``
Lemma 10       game floor  ``c²/(αk)``, ``α = 2(β/(β−1))²``
Lemma 12       game floor  ``c/3``
Theorem 13     ND floor    ``Ω(c²/k + Δ)``
Theorem 14     bcast floor ``Ω(c²/k + D·min(c, Δ))``
=============  =====================================================
"""

from __future__ import annotations

from repro.model.errors import SpecError
from repro.model.spec import ModelKnowledge, ceil_log2

__all__ = [
    "cseek_bound",
    "ckseek_bound",
    "cgcast_bound",
    "naive_discovery_bound",
    "naive_broadcast_bound",
    "zeng_discovery_bound",
    "hitting_game_floor",
    "complete_game_floor",
    "nd_lower_bound",
    "broadcast_lower_bound",
]


def _check_core(c: int, k: int) -> None:
    if c < 1 or k < 1 or k > c:
        raise SpecError(f"need 1 <= k <= c, got k={k}, c={c}")


def cseek_bound(
    c: int, k: int, kmax: int, delta: int, n: int | None = None
) -> float:
    """Theorem 4 shape: ``c²/k + (kmax/k)·Δ`` (× lg³n-ish when n given).

    With ``n`` supplied the paper's explicit polylog factors are applied
    (``lg³n`` on the first term, ``lg²n`` on the second).
    """
    _check_core(c, k)
    first = c * c / k
    second = (kmax / k) * delta
    if n is None:
        return first + second
    lg = ceil_log2(n)
    return first * lg**3 + second * lg**2


def ckseek_bound(
    c: int,
    khat: int,
    kmax: int,
    delta_khat: int,
    delta: int,
    n: int | None = None,
) -> float:
    """Theorem 6 shape: ``c²/k̂ + (kmax/k̂)·Δ_k̂ + Δ``."""
    _check_core(c, khat)
    first = c * c / khat
    second = (kmax / khat) * delta_khat + delta
    if n is None:
        return first + second
    lg = ceil_log2(n)
    return first * lg**3 + second * lg**2


def cgcast_bound(
    c: int, k: int, kmax: int, delta: int, diameter: int, n: int | None = None
) -> float:
    """Theorem 9 shape: ``c²/k + (kmax/k)·Δ + D·Δ``."""
    _check_core(c, k)
    first = c * c / k
    second = (kmax / k) * delta
    third = diameter * delta
    if n is None:
        return first + second + third
    lg = ceil_log2(n)
    return first * lg**4 + second * lg**3 + third * lg**2


def naive_discovery_bound(
    c: int, k: int, delta: int, n: int | None = None
) -> float:
    """Section 1 strawman: ``(c²/k)·Δ``."""
    _check_core(c, k)
    value = (c * c / k) * delta
    return value if n is None else value * ceil_log2(n)


def naive_broadcast_bound(
    c: int, k: int, diameter: int, n: int | None = None
) -> float:
    """Section 1 strawman: ``(c²/k)·D``."""
    _check_core(c, k)
    value = (c * c / k) * diameter
    return value if n is None else value * ceil_log2(n)


def zeng_discovery_bound(
    c: int, k: int, delta: int, n: int | None = None
) -> float:
    """Zeng et al. [25] comparator: ``c²/k + c·Δ/k``.

    Always at least CSEEK's bound since ``c >= kmax`` (Section 2).
    """
    _check_core(c, k)
    value = c * c / k + c * delta / k
    return value if n is None else value * ceil_log2(n)


def hitting_game_floor(c: int, k: int, beta: float = 2.0) -> float:
    """Lemma 10 floor ``c²/(αk)`` for ``k <= c/β``.

    ``α = 2(β/(β−1))²``; for ``β = 2`` (the paper's canonical use),
    ``α = 8``.
    """
    _check_core(c, k)
    if beta < 2.0:
        raise SpecError(f"Lemma 10 requires beta >= 2, got {beta}")
    if k > c / beta:
        raise SpecError(
            f"Lemma 10 requires k <= c/beta = {c / beta:.2f}, got {k}"
        )
    alpha = 2.0 * (beta / (beta - 1.0)) ** 2
    return c * c / (alpha * k)


def complete_game_floor(c: int) -> float:
    """Lemma 12 floor ``c/3`` for the complete bipartite game."""
    if c < 1:
        raise SpecError(f"c must be >= 1, got {c}")
    return c / 3.0


def nd_lower_bound(c: int, k: int, delta: int) -> float:
    """Theorem 13: ``Ω(c²/k + Δ)`` with Lemma 10's ``α = 8`` constant."""
    _check_core(c, k)
    if k <= c / 2:
        game = hitting_game_floor(c, k, beta=2.0)
    else:
        game = complete_game_floor(c)
    return game + delta


def broadcast_lower_bound(c: int, k: int, delta: int, diameter: int) -> float:
    """Theorem 14: ``Ω(c²/k + D·min(c, Δ))``."""
    _check_core(c, k)
    if k <= c / 2:
        game = hitting_game_floor(c, k, beta=2.0)
    else:
        game = complete_game_floor(c)
    return game + diameter * min(c, delta)


def knowledge_bounds(knowledge: ModelKnowledge) -> dict[str, float]:
    """All applicable bound shapes for one parameter set (diagnostics)."""
    kn = knowledge
    return {
        "cseek": cseek_bound(kn.c, kn.k, kn.kmax, kn.max_degree),
        "cgcast": cgcast_bound(
            kn.c, kn.k, kn.kmax, kn.max_degree, kn.diameter
        ),
        "naive_discovery": naive_discovery_bound(kn.c, kn.k, kn.max_degree),
        "naive_broadcast": naive_broadcast_bound(kn.c, kn.k, kn.diameter),
        "zeng_discovery": zeng_discovery_bound(kn.c, kn.k, kn.max_degree),
        "nd_lower": nd_lower_bound(kn.c, kn.k, kn.max_degree),
        "broadcast_lower": broadcast_lower_bound(
            kn.c, kn.k, kn.max_degree, kn.diameter
        ),
    }
