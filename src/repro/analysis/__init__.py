"""Bound curves, scaling fits, and trial statistics."""

from repro.analysis.fitting import (
    PowerFit,
    find_crossover,
    fit_power_law,
    ratio_curve,
)
from repro.analysis.spectrum import (
    ChannelUsage,
    channel_usage,
    density_estimate_quality,
    reception_histogram,
)
from repro.analysis.stats import (
    TrialSummary,
    success_rate,
    summarize,
    wilson_interval,
)
from repro.analysis.theory import (
    broadcast_lower_bound,
    cgcast_bound,
    ckseek_bound,
    complete_game_floor,
    cseek_bound,
    hitting_game_floor,
    naive_broadcast_bound,
    naive_discovery_bound,
    nd_lower_bound,
    zeng_discovery_bound,
)

__all__ = [
    "ChannelUsage",
    "PowerFit",
    "TrialSummary",
    "broadcast_lower_bound",
    "channel_usage",
    "density_estimate_quality",
    "reception_histogram",
    "cgcast_bound",
    "ckseek_bound",
    "complete_game_floor",
    "cseek_bound",
    "find_crossover",
    "fit_power_law",
    "hitting_game_floor",
    "naive_broadcast_bound",
    "naive_discovery_bound",
    "nd_lower_bound",
    "ratio_curve",
    "success_rate",
    "summarize",
    "wilson_interval",
    "zeng_discovery_bound",
]
