"""Trial statistics for w.h.p. claims.

The paper's guarantees are "with high probability"; empirically that is
a success *frequency* across independent seeded trials, plus location
statistics of the measured slot counts. :class:`TrialSummary` is the
standard unit every experiment row reports.

Two families of estimators live here:

* **Materialized** — :func:`summarize` / :func:`success_rate` over the
  full measurement list. The reference semantics every golden table
  pins.
* **Streaming** — fixed-size online accumulators for the chunked trial
  path, where the measurement list never materializes:
  :class:`StreamingMoments` (Welford/Chan mean and variance),
  :class:`P2Quantile` (the Jain–Chlamtac P² quantile sketch, five
  markers, with a commutative mixture-CDF ``merge``),
  :class:`StreamingSummary` (the two combined, reproducing every
  :class:`TrialSummary` field) and :class:`StreamingRate` (success
  counts with Wilson intervals). Merging two accumulators is
  *commutative* — ``a.merge(b)`` equals ``b.merge(a)`` — so chunk
  summaries combined in any order agree (within sketch error) with the
  exact statistics of the materialized array.

Confidence-interval half-widths (:func:`mean_halfwidth`,
:func:`rate_halfwidth`) drive CI-targeted stopping: both degrade to
``math.inf`` — "not yet resolvable" — instead of dividing by zero when
the trial count cannot support an interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import List, Optional, Sequence

import numpy as np

from repro.model.errors import HarnessError

__all__ = [
    "P2Quantile",
    "StreamingMoments",
    "StreamingRate",
    "StreamingSummary",
    "TrialSummary",
    "mean_halfwidth",
    "normal_quantile",
    "rate_halfwidth",
    "summarize",
    "success_rate",
    "t_quantile",
    "wilson_interval",
]


@dataclass(frozen=True)
class TrialSummary:
    """Summary of one configuration's repeated trials.

    Attributes:
        count: Number of trials.
        mean: Mean of the measurements.
        std: Sample standard deviation (0 for a single trial).
        median: 50th percentile.
        p10: 10th percentile.
        p90: 90th percentile.
        minimum: Smallest measurement.
        maximum: Largest measurement.
    """

    count: int
    mean: float
    std: float
    median: float
    p10: float
    p90: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> TrialSummary:
    """Summarize repeated measurements.

    Raises:
        HarnessError: on empty input.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise HarnessError("cannot summarize zero measurements")
    return TrialSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        median=float(np.median(arr)),
        p10=float(np.percentile(arr, 10)),
        p90=float(np.percentile(arr, 90)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def success_rate(outcomes: Sequence[bool]) -> float:
    """Fraction of successful trials.

    Raises:
        HarnessError: on empty input.
    """
    if not outcomes:
        raise HarnessError("cannot compute a rate of zero outcomes")
    return sum(1 for o in outcomes if o) / len(outcomes)


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a success probability.

    More honest than the normal approximation at the small trial counts
    experiments use (and never leaves ``[0, 1]``).

    Raises:
        HarnessError: on invalid counts.
    """
    if trials <= 0:
        raise HarnessError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise HarnessError(
            f"successes must lie in [0, {trials}], got {successes}"
        )
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def normal_quantile(p: float) -> float:
    """Standard-normal quantile (inverse CDF).

    Raises:
        HarnessError: unless ``0 < p < 1``.
    """
    if not 0.0 < p < 1.0:
        raise HarnessError(f"quantile probability must lie in (0, 1), got {p}")
    return NormalDist().inv_cdf(p)


def t_quantile(p: float, df: int) -> float:
    """Student-t quantile via a Cornish–Fisher expansion.

    Accurate to well under 1% for ``df >= 2`` (the regime CI-targeted
    stopping operates in; ``min_trials`` floors keep ``df`` large). At
    ``df == 1`` the expansion undershoots the true quantile by ~10% —
    acceptable because a 2-trial interval is only ever a coarse "not
    yet converged" signal. Avoids a scipy dependency.

    Raises:
        HarnessError: unless ``0 < p < 1`` and ``df >= 1``.
    """
    if df < 1:
        raise HarnessError(f"degrees of freedom must be >= 1, got {df}")
    z = normal_quantile(p)
    g1 = (z**3 + z) / 4.0
    g2 = (5.0 * z**5 + 16.0 * z**3 + 3.0 * z) / 96.0
    g3 = (3.0 * z**7 + 19.0 * z**5 + 17.0 * z**3 - 15.0 * z) / 384.0
    g4 = (
        79.0 * z**9
        + 776.0 * z**7
        + 1482.0 * z**5
        - 1920.0 * z**3
        - 945.0 * z
    ) / 92160.0
    return z + g1 / df + g2 / df**2 + g3 / df**3 + g4 / df**4


def mean_halfwidth(count: int, std: float, confidence: float = 0.95) -> float:
    """Half-width of the t-based confidence interval for a mean.

    Degrades to ``math.inf`` ("not yet resolvable") when ``count < 2``:
    a single trial has ``std == 0`` by convention and no degrees of
    freedom, so the naive formula would divide by zero — an interval
    that looks infinitely precise exactly when it carries no
    information.

    Raises:
        HarnessError: unless ``0 < confidence < 1``.
    """
    if not 0.0 < confidence < 1.0:
        raise HarnessError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    if count < 2:
        return math.inf
    t = t_quantile(0.5 + confidence / 2.0, count - 1)
    return t * std / math.sqrt(count)


def rate_halfwidth(
    successes: int, trials: int, confidence: float = 0.95
) -> float:
    """Half-width of the Wilson interval for a success rate.

    Degrades to ``math.inf`` when ``trials == 0`` — no outcomes, no
    interval.

    Raises:
        HarnessError: on negative/inconsistent counts or a confidence
            outside ``(0, 1)``.
    """
    if not 0.0 < confidence < 1.0:
        raise HarnessError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    if trials == 0:
        return math.inf
    z = normal_quantile(0.5 + confidence / 2.0)
    low, high = wilson_interval(successes, trials, z=z)
    return (high - low) / 2.0


class StreamingMoments:
    """Online count/mean/variance/extrema over chunked measurements.

    Welford's algorithm in its parallel (Chan et al.) form: ``update``
    folds in a whole chunk at once, ``merge`` combines two partial
    accumulators. Merging is exact and commutative — the result is
    bit-for-bit independent of argument order, and agrees with the
    one-shot statistics of the concatenated data up to floating-point
    rounding.
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, values: Sequence[float]) -> None:
        """Fold a chunk of measurements into the accumulator."""
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        other = StreamingMoments()
        other.count = int(arr.size)
        other.mean = float(arr.mean())
        other._m2 = float(((arr - other.mean) ** 2).sum())
        other.minimum = float(arr.min())
        other.maximum = float(arr.max())
        self.merge(other)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another accumulator into this one (commutative)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        # Weighted-mean form (rather than mean + delta*nb/total) keeps
        # the merge exactly symmetric in its two operands.
        mean = (self.count * self.mean + other.count * other.mean) / total
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / total
        )
        self.mean = mean
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Sample variance (``ddof=1``); 0.0 below two measurements."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation; 0.0 below two measurements."""
        return math.sqrt(max(0.0, self.variance))


# P² maintains five markers; marker i tracks the quantile at fraction
# _P2_FRACTIONS[i](p) of the data seen so far.
_P2_BUFFER = 5


def _p2_fractions(p: float) -> List[float]:
    return [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]


class P2Quantile:
    """Fixed-size P² quantile sketch (Jain & Chlamtac, 1985).

    Tracks one quantile with five markers and O(1) memory. While fewer
    than five values have been seen the sketch is exact (it keeps the
    sorted buffer and interpolates like ``np.percentile``); after that
    the classic marker-adjustment recurrence takes over.

    ``merge`` combines two sketches by inverting their *mixture* CDF —
    each sketch's markers define a piecewise-linear CDF, the mixture
    weighs them by count, and the merged markers are placed at the
    mixture's canonical marker fractions via bisection. The
    construction is symmetric in its operands, so merging chunk
    sketches is commutative and (like the sketch itself) approximate
    but chunk-order-invariant.
    """

    __slots__ = (
        "p",
        "count",
        "_fractions",
        "_buffer",
        "_heights",
        "_positions",
        "_desired",
    )

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise HarnessError(
                f"quantile fraction must lie in (0, 1), got {p}"
            )
        self.p = p
        self.count = 0
        self._fractions = _p2_fractions(p)
        self._buffer: Optional[List[float]] = []
        self._heights: Optional[List[float]] = None
        self._positions: Optional[List[float]] = None
        self._desired: Optional[List[float]] = None

    def _init_markers(self, values: Sequence[float]) -> None:
        self._heights = sorted(float(v) for v in values)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = self._desired_positions(_P2_BUFFER)
        self._buffer = None

    def _desired_positions(self, n: int) -> List[float]:
        return [1.0 + f * (n - 1.0) for f in self._fractions]

    def update(self, values: Sequence[float]) -> None:
        """Fold a chunk of measurements into the sketch."""
        arr = np.asarray(values, dtype=float).ravel()
        for x in arr.tolist():
            self._add(x)

    def _add(self, x: float) -> None:
        self.count += 1
        if self._buffer is not None:
            self._buffer.append(x)
            if len(self._buffer) == _P2_BUFFER:
                self._init_markers(self._buffer)
            return
        q = self._heights
        n = self._positions
        d_pos = self._desired
        assert q is not None and n is not None and d_pos is not None
        if x < q[0]:
            q[0] = x
            cell = 0
        elif x >= q[4]:
            q[4] = x
            cell = 3
        elif x < q[1]:
            cell = 0
        elif x < q[2]:
            cell = 1
        elif x < q[3]:
            cell = 2
        else:
            cell = 3
        for i in range(cell + 1, _P2_BUFFER):
            n[i] += 1.0
        fr = self._fractions
        for i in (1, 2, 3, 4):
            d_pos[i] += fr[i]
        for i in (1, 2, 3):
            d = d_pos[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, step)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, step)
                q[i] = candidate
                n[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        q = self._heights
        n = self._positions
        assert q is not None and n is not None
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q = self._heights
        n = self._positions
        assert q is not None and n is not None
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current quantile estimate.

        Raises:
            HarnessError: if no measurements have been seen.
        """
        if self.count == 0:
            raise HarnessError("cannot estimate a quantile of zero values")
        if self._buffer is not None:
            return float(np.percentile(self._buffer, self.p * 100.0))
        assert self._heights is not None
        return float(self._heights[2])

    def _cdf(self, xs: np.ndarray) -> np.ndarray:
        """Normalized empirical CDF (order-statistic convention)."""
        if self._buffer is not None:
            heights = np.sort(np.asarray(self._buffer, dtype=float))
            positions = np.arange(1.0, heights.size + 1.0)
        else:
            assert self._heights is not None and self._positions is not None
            heights = np.asarray(self._heights)
            positions = np.asarray(self._positions)
        if heights.size == 1 or heights[0] == heights[-1]:
            return np.where(xs < heights[0], 0.0, 1.0)
        ranks = np.interp(xs, heights, positions)
        return (ranks - 1.0) / (positions[-1] - 1.0)

    def merge(self, other: "P2Quantile") -> None:
        """Fold another sketch for the same quantile into this one.

        Commutative: the merged state depends only on the (unordered)
        pair of inputs.

        Raises:
            HarnessError: if the sketches track different quantiles.
        """
        if other.p != self.p:
            raise HarnessError(
                f"cannot merge sketches of p={self.p} and p={other.p}"
            )
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._buffer = (
                None if other._buffer is None else list(other._buffer)
            )
            self._heights = (
                None if other._heights is None else list(other._heights)
            )
            self._positions = (
                None if other._positions is None else list(other._positions)
            )
            self._desired = (
                None if other._desired is None else list(other._desired)
            )
            return
        total = self.count + other.count
        if self._buffer is not None and other._buffer is not None:
            combined = sorted(self._buffer + other._buffer)
            if total < _P2_BUFFER:
                self._buffer = combined
                self.count = total
                return
            # Exactly five (or more) buffered values: seed the markers
            # from the combined sorted sample, then run any surplus
            # through the normal update path. Sorting makes the result
            # order-independent.
            self._init_markers(combined[:_P2_BUFFER])
            self.count = _P2_BUFFER
            for x in combined[_P2_BUFFER:]:
                self._add(x)
            return
        # Mixture-CDF inversion. Each operand contributes a monotone
        # piecewise-linear CDF weighted by its count; the merged
        # markers sit where the mixture crosses the canonical P²
        # fractions.
        lo = min(self._min_height(), other._min_height())
        hi = max(self._max_height(), other._max_height())
        wa = self.count / total
        wb = other.count / total

        def mixture(xs: np.ndarray) -> np.ndarray:
            return wa * self._cdf(xs) + wb * other._cdf(xs)

        heights = [lo]
        for frac in self._fractions[1:-1]:
            heights.append(_invert_monotone(mixture, frac, lo, hi))
        heights.append(hi)
        for i in range(1, _P2_BUFFER):
            heights[i] = max(heights[i], heights[i - 1])
        positions = (
            [1.0]
            + [
                float(min(max(round(1.0 + f * (total - 1.0)), 2), total - 1))
                for f in self._fractions[1:-1]
            ]
            + [float(total)]
        )
        # Enforce the strict ordering P² requires (possible because a
        # merged sketch always holds >= 6 values).
        for i in range(1, _P2_BUFFER):
            positions[i] = max(positions[i], positions[i - 1] + 1.0)
        for i in range(_P2_BUFFER - 2, -1, -1):
            positions[i] = min(positions[i], positions[i + 1] - 1.0)
        self._heights = heights
        self._positions = positions
        self._desired = self._desired_positions(total)
        self._buffer = None
        self.count = total

    def _min_height(self) -> float:
        if self._buffer is not None:
            return min(self._buffer)
        assert self._heights is not None
        return float(self._heights[0])

    def _max_height(self) -> float:
        if self._buffer is not None:
            return max(self._buffer)
        assert self._heights is not None
        return float(self._heights[-1])


def _invert_monotone(fn, target: float, lo: float, hi: float) -> float:
    """Bisection inverse of a nondecreasing function on [lo, hi]."""
    if lo == hi:
        return lo
    f_lo = float(fn(np.asarray([lo]))[0])
    f_hi = float(fn(np.asarray([hi]))[0])
    if target <= f_lo:
        return lo
    if target >= f_hi:
        return hi
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if float(fn(np.asarray([mid]))[0]) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


class StreamingSummary:
    """Streaming replacement for :func:`summarize`.

    Combines :class:`StreamingMoments` with three :class:`P2Quantile`
    sketches (p10 / median / p90) so a chunked run can report every
    :class:`TrialSummary` field in O(1) memory. Mean, std, count and
    extrema are exact; quantiles are exact below five values and
    sketched after.
    """

    __slots__ = ("moments", "_sketches")

    def __init__(self) -> None:
        self.moments = StreamingMoments()
        self._sketches = {
            "p10": P2Quantile(0.10),
            "median": P2Quantile(0.50),
            "p90": P2Quantile(0.90),
        }

    @property
    def count(self) -> int:
        return self.moments.count

    @property
    def mean(self) -> float:
        return self.moments.mean

    @property
    def std(self) -> float:
        return self.moments.std

    def update(self, values: Sequence[float]) -> None:
        """Fold a chunk of measurements into the accumulator."""
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        self.moments.update(arr)
        for sketch in self._sketches.values():
            sketch.update(arr)

    def merge(self, other: "StreamingSummary") -> None:
        """Fold another accumulator into this one (commutative)."""
        self.moments.merge(other.moments)
        for name, sketch in self._sketches.items():
            sketch.merge(other._sketches[name])

    def halfwidth(self, confidence: float = 0.95) -> float:
        """t-based CI half-width for the mean (inf below two trials)."""
        return mean_halfwidth(self.count, self.std, confidence)

    def summary(self) -> TrialSummary:
        """Render the accumulated state as a :class:`TrialSummary`.

        Raises:
            HarnessError: if no measurements have been seen.
        """
        if self.count == 0:
            raise HarnessError("cannot summarize zero measurements")
        return TrialSummary(
            count=self.moments.count,
            mean=self.moments.mean,
            std=self.moments.std,
            median=self._sketches["median"].value(),
            p10=self._sketches["p10"].value(),
            p90=self._sketches["p90"].value(),
            minimum=self.moments.minimum,
            maximum=self.moments.maximum,
        )


class StreamingRate:
    """Streaming replacement for :func:`success_rate`.

    Counts boolean outcomes across chunks; the Wilson half-width feeds
    CI-targeted stopping.
    """

    __slots__ = ("successes", "count")

    def __init__(self) -> None:
        self.successes = 0
        self.count = 0

    def update(self, outcomes: Sequence[bool]) -> None:
        """Fold a chunk of outcomes into the accumulator."""
        self.count += len(outcomes)
        self.successes += sum(1 for o in outcomes if o)

    def merge(self, other: "StreamingRate") -> None:
        """Fold another accumulator into this one (commutative)."""
        self.successes += other.successes
        self.count += other.count

    def rate(self) -> float:
        """Observed success fraction.

        Raises:
            HarnessError: if no outcomes have been seen.
        """
        if self.count == 0:
            raise HarnessError("cannot compute a rate of zero outcomes")
        return self.successes / self.count

    def halfwidth(self, confidence: float = 0.95) -> float:
        """Wilson CI half-width (inf before any outcome arrives)."""
        return rate_halfwidth(self.successes, self.count, confidence)
