"""Trial statistics for w.h.p. claims.

The paper's guarantees are "with high probability"; empirically that is
a success *frequency* across independent seeded trials, plus location
statistics of the measured slot counts. :class:`TrialSummary` is the
standard unit every experiment row reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.model.errors import HarnessError

__all__ = ["TrialSummary", "summarize", "success_rate", "wilson_interval"]


@dataclass(frozen=True)
class TrialSummary:
    """Summary of one configuration's repeated trials.

    Attributes:
        count: Number of trials.
        mean: Mean of the measurements.
        std: Sample standard deviation (0 for a single trial).
        median: 50th percentile.
        p10: 10th percentile.
        p90: 90th percentile.
        minimum: Smallest measurement.
        maximum: Largest measurement.
    """

    count: int
    mean: float
    std: float
    median: float
    p10: float
    p90: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> TrialSummary:
    """Summarize repeated measurements.

    Raises:
        HarnessError: on empty input.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise HarnessError("cannot summarize zero measurements")
    return TrialSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        median=float(np.median(arr)),
        p10=float(np.percentile(arr, 10)),
        p90=float(np.percentile(arr, 90)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def success_rate(outcomes: Sequence[bool]) -> float:
    """Fraction of successful trials.

    Raises:
        HarnessError: on empty input.
    """
    if not outcomes:
        raise HarnessError("cannot compute a rate of zero outcomes")
    return sum(1 for o in outcomes if o) / len(outcomes)


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a success probability.

    More honest than the normal approximation at the small trial counts
    experiments use (and never leaves ``[0, 1]``).

    Raises:
        HarnessError: on invalid counts.
    """
    if trials <= 0:
        raise HarnessError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise HarnessError(
            f"successes must lie in [0, {trials}], got {successes}"
        )
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, center - margin), min(1.0, center + margin)
