"""Observability: spans, counters, gauges, vitals, and exporters.

Usage at an instrumentation site (all no-ops while telemetry is off)::

    from repro import obs

    with obs.span("gemm"):
        contenders, idsum = backend.step_products(reach, coins)
    obs.count("engine.resolve_step_calls")

Usage at a collection site::

    with obs.capture() as tel:
        run_trials(...)
    manifest["telemetry"] = tel.snapshot()

See :mod:`repro.obs.telemetry` for the merge contract and
:mod:`repro.obs.export` for rendering.
"""

from .export import (
    chrome_trace_events,
    render_telemetry,
    stage_rows,
    write_chrome_trace,
)
from .telemetry import (
    SPAN_STAGES,
    Telemetry,
    active,
    capture,
    count,
    empty_snapshot,
    enabled,
    gauge_max,
    merge_snapshots,
    peak_rss_kb,
    span,
    start,
    stop,
)

__all__ = [
    "SPAN_STAGES",
    "Telemetry",
    "active",
    "capture",
    "chrome_trace_events",
    "count",
    "empty_snapshot",
    "enabled",
    "gauge_max",
    "merge_snapshots",
    "peak_rss_kb",
    "render_telemetry",
    "span",
    "stage_rows",
    "start",
    "stop",
    "write_chrome_trace",
]
