"""Dependency-free telemetry: spans, counters, gauges, and a collector.

The observability layer answers *where wall-clock and GEMM budgets go*
inside the batched runners, pool workers, and streaming loops — the
question the end-row metrics (slots, informed fractions) cannot. Three
primitives:

- **Spans** — nestable timed regions with stage labels (``discovery``,
  ``oracle_exchange``, ``luby_coloring``, ``dissemination``, ``gemm``,
  ``chunk``). Each label aggregates ``[count, total_ns, max_ns]``.
- **Counters** — monotonic integer event counts (resolve-step calls,
  cache hits/misses, trials executed, chunks flushed).
- **Gauges** — high-water marks merged by ``max`` (peak RSS per
  worker process).

Design constraints, in order:

1. **Off by default, near-zero overhead.** Recording happens only while
   a recorder is active (:func:`start` / :func:`capture`). Disabled,
   :func:`span` returns a shared ``nullcontext`` and :func:`count` is a
   single truthiness check — no allocation, no clock read.
2. **Never touches RNG streams.** Telemetry reads clocks and dict
   slots; it draws nothing and reorders nothing, so golden rows are
   byte-identical with it on or off (CI-checked).
3. **Deterministic, commutative merge.** Durations are integer
   nanoseconds (``time.perf_counter_ns``): integer sums are exactly
   commutative *and* associative, unlike float addition, so merging
   per-worker snapshots in pool-completion order or streaming chunks in
   any order yields identical aggregates — the same discipline as
   ``StreamingMoments``.

The collector is a stack of recorders: :func:`start` pushes, the
instrumentation sites write to the top, and :func:`stop` pops and folds
the child's snapshot into its parent. Fork-pool workers inherit the
enabled state, record each chunk under a fresh recorder, and ship the
snapshot back with the chunk results; the parent merges
(:meth:`Telemetry.merge_snapshot`). Snapshots are plain JSON-ready
dicts so they cross process and manifest boundaries unchanged.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import Dict, Iterator, List, Optional

__all__ = [
    "SPAN_STAGES",
    "Telemetry",
    "active",
    "capture",
    "count",
    "empty_snapshot",
    "enabled",
    "gauge_max",
    "merge_snapshots",
    "peak_rss_kb",
    "span",
    "start",
    "stop",
]

#: Canonical stage labels used by the instrumented layers. Other labels
#: are legal; these are the ones reports group and order by.
SPAN_STAGES = (
    "discovery",
    "oracle_exchange",
    "luby_coloring",
    "dissemination",
    "gemm",
    "chunk",
)

Snapshot = Dict[str, object]

# Span aggregate layout: [count, total_ns, max_ns].
_COUNT, _TOTAL, _MAX = 0, 1, 2


class Telemetry:
    """One recorder: span/counter/gauge aggregates plus optional trace.

    Not thread-safe; each worker process records into its own instance
    and the merge happens in the parent (the repo's pools are
    process-based, so this is the natural unit).
    """

    __slots__ = ("counters", "spans", "gauges", "trace", "events", "_depth")

    def __init__(self, trace: bool = False) -> None:
        self.counters: Dict[str, int] = {}
        self.spans: Dict[str, List[int]] = {}
        self.gauges: Dict[str, float] = {}
        self.trace = trace
        #: Raw span events (label/start_ns/dur_ns/depth), kept only in
        #: ``trace`` mode for Chrome trace-event export. Events do not
        #: participate in the commutativity contract — aggregates do.
        self.events: List[Dict[str, object]] = []
        self._depth = 0

    # -- recording -----------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def gauge_max(self, name: str, value: float) -> None:
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = float(value)

    @contextmanager
    def span(self, label: str) -> Iterator[None]:
        start_ns = time.perf_counter_ns()
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            dur = time.perf_counter_ns() - start_ns
            stat = self.spans.get(label)
            if stat is None:
                self.spans[label] = [1, dur, dur]
            else:
                stat[_COUNT] += 1
                stat[_TOTAL] += dur
                if dur > stat[_MAX]:
                    stat[_MAX] = dur
            if self.trace:
                self.events.append(
                    {
                        "label": label,
                        "start_ns": start_ns,
                        "dur_ns": dur,
                        "depth": self._depth,
                    }
                )

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> Snapshot:
        """JSON-ready copy of the aggregates (and trace events, if on)."""
        snap: Snapshot = {
            "counters": dict(self.counters),
            "spans": {
                label: {
                    "count": stat[_COUNT],
                    "total_ns": stat[_TOTAL],
                    "max_ns": stat[_MAX],
                }
                for label, stat in self.spans.items()
            },
            "gauges": dict(self.gauges),
        }
        if self.trace:
            snap["events"] = [dict(ev) for ev in self.events]
        return snap

    def merge_snapshot(self, snap: Optional[Snapshot]) -> None:
        """Fold a snapshot (e.g. from a pool worker) into this recorder.

        Counters and span counts/totals sum, span maxima and gauges take
        the max — all commutative and (for the integer fields) exactly
        associative, so worker completion order cannot change the
        result.
        """
        if not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.count(name, value)
        for label, stat in snap.get("spans", {}).items():
            mine = self.spans.get(label)
            if mine is None:
                self.spans[label] = [
                    int(stat["count"]),
                    int(stat["total_ns"]),
                    int(stat["max_ns"]),
                ]
            else:
                mine[_COUNT] += int(stat["count"])
                mine[_TOTAL] += int(stat["total_ns"])
                if int(stat["max_ns"]) > mine[_MAX]:
                    mine[_MAX] = int(stat["max_ns"])
        for name, value in snap.get("gauges", {}).items():
            self.gauge_max(name, value)
        if self.trace:
            self.events.extend(dict(ev) for ev in snap.get("events", ()))


# -- module-level collector (recorder stack) ---------------------------

_STACK: List[Telemetry] = []
_NULL = nullcontext()


def enabled() -> bool:
    """True while any recorder is active (telemetry is on)."""
    return bool(_STACK)


def active() -> Optional[Telemetry]:
    """The recorder currently receiving events, or None."""
    return _STACK[-1] if _STACK else None


def start(trace: bool = False) -> Telemetry:
    """Push a fresh recorder; instrumentation now writes to it."""
    tel = Telemetry(trace=trace)
    _STACK.append(tel)
    return tel


def stop() -> Snapshot:
    """Pop the current recorder, fold it into its parent, return it.

    Nesting gives scoped deltas for free: a campaign entry records
    under its own recorder, and on ``stop`` the entry's aggregates roll
    up into the session recorder that will produce the campaign totals.
    """
    if not _STACK:
        raise RuntimeError("telemetry stop() without a matching start()")
    tel = _STACK.pop()
    snap = tel.snapshot()
    if _STACK:
        _STACK[-1].merge_snapshot(snap)
    return snap


@contextmanager
def capture(trace: bool = False) -> Iterator[Telemetry]:
    """Record a block; read ``tel.snapshot()`` after (or inside) it."""
    tel = start(trace=trace)
    try:
        yield tel
    finally:
        # The recorder may have been popped early by a mismatched stop;
        # only pop if it is still ours.
        if _STACK and _STACK[-1] is tel:
            stop()


def span(label: str):
    """Timed region context manager; a shared no-op when disabled."""
    if _STACK:
        return _STACK[-1].span(label)
    return _NULL


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the active recorder; no-op when disabled."""
    if _STACK:
        _STACK[-1].count(name, n)


def gauge_max(name: str, value: float) -> None:
    """Raise a high-water gauge on the active recorder; no-op if off."""
    if _STACK:
        _STACK[-1].gauge_max(name, value)


# -- pure snapshot algebra ---------------------------------------------


def empty_snapshot() -> Snapshot:
    return {"counters": {}, "spans": {}, "gauges": {}}


def merge_snapshots(*snaps: Optional[Snapshot]) -> Snapshot:
    """Merge snapshots into a fresh one (commutative, associative).

    The pure-function face of :meth:`Telemetry.merge_snapshot`, used to
    roll per-entry manifest blocks up into campaign totals store-only.
    """
    acc = Telemetry()
    for snap in snaps:
        acc.merge_snapshot(snap)
    return acc.snapshot()


# -- cheap always-on vitals --------------------------------------------


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB, if knowable.

    Uses the stdlib ``resource`` module (``ru_maxrss`` is KiB on
    Linux, bytes on macOS — normalised here). Returns None on platforms
    without it; callers must treat the vital as optional.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        rss //= 1024
    return int(rss)
