"""Render telemetry snapshots: stage tables and Chrome trace JSON.

Two consumers: the CLI (``run-scenario --telemetry``, the ``telemetry``
command) and the campaign report ("## Telemetry" section). Both work
from plain snapshots, so they render live recorders and stored manifest
blocks identically — store-only rendering is the point.

Chrome trace output follows the Trace Event Format (``ph: "X"``
complete events, microsecond timestamps); load it at
``chrome://tracing`` or https://ui.perfetto.dev for a flame view. With
``--telemetry=chrome`` the recorder keeps raw events and the trace is
exact; from stored aggregates (no events) a synthetic trace is laid out
end-to-end per stage, preserving totals but not interleaving.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .telemetry import SPAN_STAGES, Snapshot

__all__ = [
    "chrome_trace_events",
    "render_telemetry",
    "stage_rows",
    "write_chrome_trace",
]


def _stage_order(label: str) -> Tuple[int, str]:
    try:
        return (SPAN_STAGES.index(label), label)
    except ValueError:
        return (len(SPAN_STAGES), label)


def stage_rows(snapshot: Snapshot) -> List[Dict[str, object]]:
    """Flatten a snapshot's spans into report rows (canonical order).

    Each row: ``stage``, ``calls``, ``total_s``, ``mean_ms``,
    ``max_ms``, ``share`` (fraction of the summed span time; nested
    spans overlap, so shares are per-stage weights, not a partition).
    """
    spans = snapshot.get("spans", {}) if snapshot else {}
    total_ns = sum(int(stat["total_ns"]) for stat in spans.values())
    rows = []
    for label in sorted(spans, key=_stage_order):
        stat = spans[label]
        calls = int(stat["count"])
        stage_ns = int(stat["total_ns"])
        rows.append(
            {
                "stage": label,
                "calls": calls,
                "total_s": stage_ns / 1e9,
                "mean_ms": (stage_ns / calls) / 1e6 if calls else 0.0,
                "max_ms": int(stat["max_ns"]) / 1e6,
                "share": stage_ns / total_ns if total_ns else 0.0,
            }
        )
    return rows


def render_telemetry(snapshot: Snapshot, heading: Optional[str] = None) -> str:
    """Markdown stage-breakdown table plus counters and gauges."""
    lines: List[str] = []
    if heading:
        lines += [heading, ""]
    rows = stage_rows(snapshot)
    if rows:
        lines += [
            "| stage | calls | total (s) | mean (ms) | max (ms) | share |",
            "| --- | ---: | ---: | ---: | ---: | ---: |",
        ]
        for row in rows:
            lines.append(
                "| {stage} | {calls} | {total_s:.4f} | {mean_ms:.3f} "
                "| {max_ms:.3f} | {share:.1%} |".format(**row)
            )
    else:
        lines.append("(no spans recorded)")
    counters = snapshot.get("counters", {}) if snapshot else {}
    if counters:
        lines += ["", "Counters:", ""]
        for name in sorted(counters):
            lines.append(f"- `{name}`: {counters[name]}")
    gauges = snapshot.get("gauges", {}) if snapshot else {}
    if gauges:
        lines += ["", "Gauges:", ""]
        for name in sorted(gauges):
            value = gauges[name]
            text = f"{value:g}" if value % 1 else f"{int(value)}"
            lines.append(f"- `{name}`: {text}")
    return "\n".join(lines)


def chrome_trace_events(
    snapshot: Snapshot, pid: int = 0, tid: int = 0, name: str = "repro"
) -> List[Dict[str, object]]:
    """Trace Event Format events for one snapshot.

    Prefers raw recorder events (``--telemetry=chrome``); falls back to
    a synthetic end-to-end layout of the per-stage aggregates so stored
    manifests — which keep only aggregates — still render a flame view
    with correct totals.
    """
    events = snapshot.get("events") if snapshot else None
    out: List[Dict[str, object]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": tid,
            "args": {"name": name},
        }
    ]
    if events:
        base = min(int(ev["start_ns"]) for ev in events)
        for ev in events:
            out.append(
                {
                    "ph": "X",
                    "name": str(ev["label"]),
                    "pid": pid,
                    "tid": tid,
                    "ts": (int(ev["start_ns"]) - base) / 1e3,
                    "dur": int(ev["dur_ns"]) / 1e3,
                    "args": {"depth": int(ev.get("depth", 0))},
                }
            )
        return out
    cursor_us = 0.0
    for row in stage_rows(snapshot):
        dur_us = row["total_s"] * 1e6
        out.append(
            {
                "ph": "X",
                "name": row["stage"],
                "pid": pid,
                "tid": tid,
                "ts": cursor_us,
                "dur": dur_us,
                "args": {"calls": row["calls"], "synthetic": True},
            }
        )
        cursor_us += dur_us
    return out


def write_chrome_trace(
    path: Path, snapshots: Sequence[Tuple[str, Snapshot]]
) -> Path:
    """Write one trace file; each named snapshot becomes a process row."""
    trace: List[Dict[str, object]] = []
    for pid, (name, snap) in enumerate(snapshots):
        trace.extend(chrome_trace_events(snap, pid=pid, name=name))
    path = Path(path)
    path.write_text(
        json.dumps({"traceEvents": trace, "displayTimeUnit": "ms"}, indent=2)
        + "\n"
    )
    return path
