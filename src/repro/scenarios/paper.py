"""The paper's experiments E1-E12 as registered scenario specs.

Each experiment is a plan-based :class:`~repro.scenarios.spec.ScenarioSpec`
whose plan yields the compiler's :class:`~repro.scenarios.compile.Point`
sequence. The plans preserve the original harness's per-point seeds,
seed-stream labels and trial semantics exactly, so every regenerated
table is row-identical to the pre-scenario implementation at a fixed
``(trials, seed)`` — pinned against golden tables in
``tests/test_scenarios_paper.py``. Batched execution routes through the
shared trial factories in :mod:`repro.scenarios.trials`.

The experiment *defaults* (trials per configuration) and the notes
interpreting each table against the paper's claim live here too; the
legacy entry points in :mod:`repro.harness.experiments` are thin
wrappers over these specs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

import numpy as np

from repro.analysis import (
    cgcast_bound,
    ckseek_bound,
    complete_game_floor,
    cseek_bound,
    fit_power_law,
    hitting_game_floor,
    naive_broadcast_bound,
    naive_discovery_bound,
    success_rate,
    summarize,
    zeng_discovery_bound,
)
from repro.baselines import (
    NaiveBroadcast,
    NaiveDiscovery,
    broadcast_floor,
    tree_broadcast_floor,
)
from repro.core import (
    CGCast,
    CGCastBatch,
    CKSeek,
    CSeek,
    LineGraph,
    LubyEdgeColoring,
    ProtocolConstants,
    count_schedule,
    is_valid_edge_coloring,
    redisseminate,
    redisseminate_batch,
    verify_discovery,
    verify_k_discovery,
)
from repro.graphs import (
    build_network,
    build_theorem14_tree,
    path_of_cliques,
    random_regular,
    star,
)
from repro.lowerbounds import (
    CSeekReductionPlayer,
    FreshRandomPlayer,
    HittingGame,
    UniformRandomPlayer,
    play,
)
from repro.model.errors import HarnessError
from repro.scenarios.compile import Point, Run, RunContext
from repro.scenarios.registry import register
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.trials import (
    broadcaster_star,
    cgcast_trial,
    count_trial,
    cseek_trial,
)
from repro.sim import MarkovTraffic

__all__ = ["PAPER_SPECS", "paper_spec"]

Row = Dict[str, object]


# ----------------------------------------------------------------------
# E1 — COUNT accuracy (Lemma 1)
# ----------------------------------------------------------------------
def _plan_e1(ctx: RunContext) -> Iterable[Point]:
    rules = [
        ("argmax", ProtocolConstants(count_rule="argmax", count_round_slots=8.0)),
        (
            "first_crossing",
            ProtocolConstants(
                count_rule="first_crossing", count_round_slots=192.0
            ),
        ),
    ]
    for rule_name, consts in rules:
        for m in (1, 2, 4, 8, 16, 32):
            adj, channels, tx_role = broadcaster_star(m)
            trial = count_trial(
                adj,
                channels,
                tx_role,
                max_count=32,
                log_n=5,
                constants=consts,
                postprocess=lambda est: float(est[0]),
            )
            rounds, length = count_schedule(32, 5, consts)

            def reduce(
                ctx, outcomes, rule_name=rule_name, m=m,
                slots=rounds * length,
            ) -> List[Row]:
                estimates = outcomes["count"]
                ratios = [e / m for e in estimates]
                in_band = [m / 4 <= e <= 4 * m for e in estimates]
                return [
                    {
                        "rule": rule_name,
                        "m": m,
                        "median_ratio": float(np.median(ratios)),
                        "band_rate(est in [m/4,4m])": success_rate(in_band),
                        "slots": slots,
                    }
                ]

            yield Point(
                [Run("count", trial, f"e1-{rule_name}-{m}", ctx.seed)],
                reduce,
            )


# ----------------------------------------------------------------------
# E2 — CSEEK scaling vs baselines (Theorem 4)
# ----------------------------------------------------------------------
def _discovery_runs(net, point_trials, seed, label) -> List[Run]:
    """The paired CSEEK + naive runs every E2 sweep point executes."""

    def summarize_result(result):
        report = verify_discovery(result, net)
        return report.success, report.completion_slot, result.total_slots

    cseek = cseek_trial(lambda s: CSeek(net, seed=s), summarize_result)

    def naive_trial(s: int):
        nd = NaiveDiscovery(net, seed=s)
        result = nd.run()
        report = nd.verify(result)
        return report.success, report.completion_slot, result.total_slots

    return [
        Run("cseek", cseek, f"{label}-cseek", seed, point_trials),
        Run("naive", naive_trial, f"{label}-naive", seed, point_trials),
    ]


def _discovery_stats(outcomes) -> Row:
    """Measured completion slots + success rates for CSEEK and naive."""
    cs, nv = outcomes["cseek"], outcomes["naive"]
    cs_done = [t for ok, t, _ in cs if ok and t is not None]
    nv_done = [t for ok, t, _ in nv if ok and t is not None]
    return {
        "cseek_success": success_rate([ok for ok, _, _ in cs]),
        "naive_success": success_rate([ok for ok, _, _ in nv]),
        "cseek_completion": (
            summarize(cs_done).mean if cs_done else None
        ),
        "naive_completion": (
            summarize(nv_done).mean if nv_done else None
        ),
        "cseek_schedule": cs[0][2],
        "naive_schedule": nv[0][2],
    }


def _plan_e2(ctx: RunContext) -> Iterable[Point]:
    trials, seed = ctx.trials, ctx.seed
    # --- (a) sweep c with k, Delta fixed (need Delta * k <= c) ------
    for c in (8, 12, 16, 20):
        graph = random_regular(20, 4, seed=seed + c)
        net = build_network(graph, c=c, k=2, seed=seed + c)
        kn = net.knowledge()

        def reduce(ctx, outcomes, c=c, kn=kn) -> List[Row]:
            return [
                {
                    "sweep": "c",
                    "x": c,
                    **_discovery_stats(outcomes),
                    "cseek_bound": cseek_bound(
                        kn.c, kn.k, kn.kmax, kn.max_degree
                    ),
                    "naive_bound": naive_discovery_bound(
                        kn.c, kn.k, kn.max_degree
                    ),
                    "zeng_bound": zeng_discovery_bound(
                        kn.c, kn.k, kn.max_degree
                    ),
                }
            ]

        yield Point(_discovery_runs(net, trials, seed + c, f"e2c{c}"), reduce)
    # --- (b) sweep Delta on crowded stars ---------------------------
    # Delta is the axis on which the bounds diverge (additive for CSEEK,
    # multiplicative for naive); the biggest point is capped at fewer
    # trials to keep the sweep laptop-sized.
    for delta in (8, 32, 128):
        net = build_network(
            star(delta + 1), c=8, k=2, seed=seed + delta, kind="global_core"
        )
        kn = net.knowledge()
        point_trials = trials if delta < 128 else min(trials, 2)

        def reduce(ctx, outcomes, delta=delta, kn=kn) -> List[Row]:
            return [
                {
                    "sweep": "Delta",
                    "x": delta,
                    **_discovery_stats(outcomes),
                    "cseek_bound": cseek_bound(
                        kn.c, kn.k, kn.kmax, kn.max_degree, n=kn.n
                    ),
                    "naive_bound": naive_discovery_bound(
                        kn.c, kn.k, kn.max_degree, n=kn.n
                    ),
                    "zeng_bound": zeng_discovery_bound(
                        kn.c, kn.k, kn.max_degree, n=kn.n
                    ),
                }
            ]

        yield Point(
            _discovery_runs(
                net, point_trials, seed + 100 + delta, f"e2d{delta}"
            ),
            reduce,
        )
    # --- (c) sweep k with c fixed -----------------------------------
    for k in (1, 2, 4):
        graph = random_regular(20, 4, seed=seed + 7)
        net = build_network(graph, c=16, k=k, seed=seed + k)
        kn = net.knowledge()

        def reduce(ctx, outcomes, k=k, kn=kn) -> List[Row]:
            return [
                {
                    "sweep": "k",
                    "x": k,
                    **_discovery_stats(outcomes),
                    "cseek_bound": cseek_bound(
                        kn.c, kn.k, kn.kmax, kn.max_degree
                    ),
                    "naive_bound": naive_discovery_bound(
                        kn.c, kn.k, kn.max_degree
                    ),
                    "zeng_bound": zeng_discovery_bound(
                        kn.c, kn.k, kn.max_degree
                    ),
                }
            ]

        yield Point(
            _discovery_runs(net, trials, seed + 200 + k, f"e2k{k}"), reduce
        )


def _notes_e2(rows: List[Row], ctx: RunContext) -> str:
    slope_note = ""
    c_rows = [r for r in rows if r["sweep"] == "c" and r["cseek_completion"]]
    if len(c_rows) >= 2:
        fit = fit_power_law(
            [r["x"] for r in c_rows], [r["cseek_completion"] for r in c_rows]
        )
        slope_note += (
            f" Measured CSEEK completion-vs-c log-log slope: "
            f"{fit.slope:.2f} (bound predicts ~2 once the c^2/k term "
            "dominates)."
        )
    d_rows = [
        r
        for r in rows
        if r["sweep"] == "Delta"
        and r["cseek_completion"]
        and r["naive_completion"]
    ]
    if len(d_rows) >= 2:
        cs_fit = fit_power_law(
            [r["x"] for r in d_rows], [r["cseek_completion"] for r in d_rows]
        )
        nv_fit = fit_power_law(
            [r["x"] for r in d_rows], [r["naive_completion"] for r in d_rows]
        )
        ratios = [
            r["naive_completion"] / r["cseek_completion"] for r in d_rows
        ]
        slope_note += (
            f" Delta-sweep slopes: CSEEK {cs_fit.slope:.2f} (additive "
            f"Delta term, sub-linear at these sizes), naive "
            f"{nv_fit.slope:.2f} (multiplicative Delta). Naive/CSEEK "
            f"completion ratio along the sweep: "
            + ", ".join(f"{r:.2f}" for r in ratios)
            + " — rising with Delta as the bounds predict. At laptop "
            "sizes the lg^2 n slots inside every COUNT step keep CSEEK's "
            "absolute numbers above naive's; the bound-side crossover "
            "(Delta >~ lg^2 n x constants) extrapolates to Delta in the "
            "several hundreds, beyond this sweep."
        )
    return (
        "Paper claim: CSEEK needs O~(c^2/k + (kmax/k) Delta) slots vs "
        "the naive strawman's O~((c^2/k) Delta); CSEEK's advantage "
        "grows with Delta (additive vs multiplicative) and both scale "
        "as c^2/k in c and 1/k in k." + slope_note
    )


# ----------------------------------------------------------------------
# E3 — part-one vs part-two discovery split (Lemmas 2 and 3)
# ----------------------------------------------------------------------
def _e3_fraction_found(result, truth, total_pairs, n):
    part1 = sum(
        len(result.discovered_part_one[u] & set(truth[u]))
        for u in range(n)
    )
    both = sum(
        len(result.discovered[u] & set(truth[u])) for u in range(n)
    )
    return part1 / total_pairs, both / total_pairs


def _plan_e3(ctx: RunContext) -> Iterable[Point]:
    seed = ctx.seed
    # (a) full budgets: Lemma 2 says part one alone already finds
    # everything when channels are un-crowded.
    cases = [
        (
            "full budget, sparse (exact k, regular)",
            build_network(
                random_regular(20, 4, seed=seed + 1), c=8, k=2, seed=seed + 1
            ),
        ),
        (
            "full budget, crowded (global core, star)",
            build_network(
                star(25), c=6, k=2, seed=seed + 2, kind="global_core"
            ),
        ),
    ]
    for name, net in cases:
        truth = net.true_neighbor_sets()
        total_pairs = sum(len(s) for s in truth)
        trial = cseek_trial(
            lambda s, net=net: CSeek(net, seed=s),
            lambda result, truth=truth, total_pairs=total_pairs, n=net.n: (
                _e3_fraction_found(result, truth, total_pairs, n)
            ),
        )

        def reduce(ctx, outcomes, name=name, total_pairs=total_pairs):
            results = outcomes["cseek"]
            return [
                {
                    "workload": name,
                    "part2_listener": "weighted",
                    "pairs": total_pairs,
                    "part1_fraction": summarize(
                        [a for a, _ in results]
                    ).mean,
                    "final_fraction": summarize(
                        [b for _, b in results]
                    ).mean,
                }
            ]

        yield Point([Run("cseek", trial, f"e3-{name}", seed)], reduce)
    # (b) starved part one on a heavily crowded star: part two must
    # rescue the remaining pairs, and its density-weighted listener is
    # what makes the rescue fast (Lemma 3's mechanism).
    net = build_network(
        star(65), c=6, k=2, seed=seed + 3, kind="global_core"
    )
    truth = net.true_neighbor_sets()
    total_pairs = sum(len(s) for s in truth)
    for policy in ("weighted", "uniform"):
        trial = cseek_trial(
            lambda s, policy=policy: CSeek(
                net,
                seed=s,
                part1_steps=40,
                part2_steps=150,
                part2_listener=policy,
            ),
            lambda result: _e3_fraction_found(
                result, truth, total_pairs, net.n
            ),
        )

        def reduce(ctx, outcomes, policy=policy, total_pairs=total_pairs):
            results = outcomes["cseek"]
            return [
                {
                    "workload": "starved part one, crowded star",
                    "part2_listener": policy,
                    "pairs": total_pairs,
                    "part1_fraction": summarize(
                        [a for a, _ in results]
                    ).mean,
                    "final_fraction": summarize(
                        [b for _, b in results]
                    ).mean,
                }
            ]

        yield Point(
            [Run("cseek", trial, f"e3b-{policy}", seed + 5)], reduce
        )


# ----------------------------------------------------------------------
# E4 — CKSEEK filter (Theorem 6)
# ----------------------------------------------------------------------
def _plan_e4(ctx: RunContext) -> Iterable[Point]:
    seed = ctx.seed
    graph = random_regular(20, 4, seed=seed + 3)
    net = build_network(
        graph, c=16, k=2, seed=seed + 3, kind="heterogeneous", kmax=4
    )
    kn = net.knowledge()
    for khat in range(kn.k, kn.kmax + 1):
        delta_khat = net.max_good_degree(khat)
        trial = cseek_trial(
            lambda s, khat=khat, delta_khat=delta_khat: CKSeek(
                net, khat=khat, delta_khat=delta_khat, seed=s
            ),
            lambda result, khat=khat: (
                verify_k_discovery(result, net, khat=khat).success,
                result.total_slots,
            ),
        )

        def reduce(ctx, outcomes, khat=khat, delta_khat=delta_khat):
            results = outcomes["ckseek"]
            return [
                {
                    "khat": khat,
                    "delta_khat": delta_khat,
                    "success": success_rate([ok for ok, _ in results]),
                    "schedule_slots": results[0][1],
                    "bound": ckseek_bound(
                        kn.c, khat, kn.kmax, delta_khat, kn.max_degree
                    ),
                }
            ]

        yield Point(
            [Run("ckseek", trial, f"e4-{khat}", seed + khat)], reduce
        )


# ----------------------------------------------------------------------
# E5 — Luby line-graph coloring (Lemma 8)
# ----------------------------------------------------------------------
def _plan_e5(ctx: RunContext) -> Iterable[Point]:
    seed = ctx.seed
    for n in (8, 16, 32, 64, 128):
        graph = random_regular(n, 4, seed=seed + n)
        net = build_network(graph, c=8, k=2, seed=seed + n)
        lg = LineGraph.from_edges(net.edges())
        kn = net.knowledge()

        def trial(s: int, lg=lg, kn=kn):
            result = LubyEdgeColoring(lg, kn, seed=s).run()
            valid = result.complete and is_valid_edge_coloring(
                result.colors, lg.edges
            )
            return valid, result.phases_used

        def reduce(ctx, outcomes, n=n, lg=lg):
            results = outcomes["coloring"]
            return [
                {
                    "n": n,
                    "edges": lg.num_virtual,
                    "valid_rate": success_rate([ok for ok, _ in results]),
                    "mean_phases": summarize(
                        [p for _, p in results]
                    ).mean,
                    "lg_n": math.ceil(math.log2(n)),
                }
            ]

        yield Point([Run("coloring", trial, f"e5-{n}", seed + n)], reduce)


def _notes_e5(rows: List[Row], ctx: RunContext) -> str:
    phase_fit = fit_power_law(
        [r["lg_n"] for r in rows], [max(r["mean_phases"], 0.5) for r in rows]
    )
    return (
        "Paper claim: the phased coloring 2*Delta-colors the line "
        "graph (hence properly edge-colors G, Fact 7) within O(lg n) "
        "phases w.h.p. Expect valid_rate 1.0 and mean_phases growing "
        f"at most like lg n (measured phases-vs-lg n slope: "
        f"{phase_fit.slope:.2f}; sub-linear growth in lg n is "
        "consistent with the bound's generous constant)."
    )


# ----------------------------------------------------------------------
# E6 — CGCAST scaling vs naive broadcast (Theorem 9)
# ----------------------------------------------------------------------
def _plan_e6(ctx: RunContext) -> Iterable[Point]:
    seed = ctx.seed
    for num_cliques in (2, 4, 8, 12):
        graph = path_of_cliques(num_cliques, 4)
        net = build_network(graph, c=8, k=1, seed=seed + num_cliques)
        kn = net.knowledge()

        cg = cgcast_trial(
            lambda s, discovery=None, net=net: CGCast(
                net, source=0, seed=s, discovery=discovery
            ),
            lambda result: (
                result.success,
                result.ledger.get("dissemination"),
                result.total_slots,
            ),
        )

        def nv_trial(s: int, net=net):
            result = NaiveBroadcast(net, source=0, seed=s).run()
            return result.success, result.completion_slot

        def reduce(ctx, outcomes, num_cliques=num_cliques, kn=kn):
            cg_out, nv_out = outcomes["cg"], outcomes["nv"]
            cg_diss = [d for ok, d, _ in cg_out if ok]
            nv_done = [t for ok, t in nv_out if ok and t is not None]
            cg_mean = summarize(cg_diss).mean if cg_diss else None
            nv_mean = summarize(nv_done).mean if nv_done else None
            return [
                {
                    "cliques": num_cliques,
                    "D": kn.diameter,
                    "Delta": kn.max_degree,
                    "cgcast_success": success_rate(
                        [ok for ok, _, _ in cg_out]
                    ),
                    "cgcast_dissemination": cg_mean,
                    "cgcast_per_hop": (
                        cg_mean / kn.diameter if cg_mean else None
                    ),
                    "cgcast_total": cg_out[0][2],
                    "naive_success": success_rate([ok for ok, _ in nv_out]),
                    "naive_completion": nv_mean,
                    "naive_per_hop": (
                        nv_mean / kn.diameter if nv_mean else None
                    ),
                    "cgcast_bound": cgcast_bound(
                        kn.c, kn.k, kn.kmax, kn.max_degree, kn.diameter
                    ),
                    "naive_bound": naive_broadcast_bound(
                        kn.c, kn.k, kn.diameter
                    ),
                }
            ]

        yield Point(
            [
                Run("cg", cg, "e6cg", seed + num_cliques),
                Run("nv", nv_trial, "e6nv", seed + num_cliques),
            ],
            reduce,
        )


def _notes_e6(rows: List[Row], ctx: RunContext) -> str:
    diss = [
        r for r in rows if r["cgcast_dissemination"] and r["naive_completion"]
    ]
    note = ""
    if len(diss) >= 2:
        cg_fit = fit_power_law(
            [r["D"] for r in diss], [r["cgcast_dissemination"] for r in diss]
        )
        nv_fit = fit_power_law(
            [r["D"] for r in diss], [r["naive_completion"] for r in diss]
        )
        note = (
            f" Dissemination-vs-D slopes: CGCAST {cg_fit.slope:.2f}, "
            f"naive {nv_fit.slope:.2f} (both ~linear in D, as the bounds "
            "predict); the naive curve carries the larger c^2/k per-hop "
            "constant, the CGCAST curve only Delta*polylog."
        )
    return (
        "Paper claim: CGCAST spends O~(c^2/k + (kmax/k) Delta) once "
        "on setup, then disseminates at O~(Delta) per hop; the naive "
        "strawman pays O~(c^2/k) per hop. On long thin networks "
        "(growing D) the per-hop comparison favors CGCAST whenever "
        "Delta << c^2/k (here Delta=4 vs c^2/k=64). The one-shot "
        "total still favors naive at these sizes because CGCAST's "
        "setup (discovery + coloring exchanges) is paid once — the "
        "paper's regime is a long-lived network where the schedule "
        "is reused across many broadcasts." + note
    )


# ----------------------------------------------------------------------
# E7 — hitting-game lower bounds (Lemmas 10 and 12)
# ----------------------------------------------------------------------
def _plan_e7(ctx: RunContext) -> Iterable[Point]:
    seed = ctx.seed
    for c in (8, 16, 32):
        for k in (1, 2, 4):
            for player_name, factory in (
                ("fresh", lambda s: FreshRandomPlayer(seed=s)),
                ("uniform", lambda s: UniformRandomPlayer(seed=s)),
            ):

                def trial(s: int, c=c, k=k, factory=factory) -> int:
                    game = HittingGame(c=c, k=k, seed=s)
                    transcript = play(
                        game, factory(s + 1), max_rounds=50 * c * c
                    )
                    if not transcript.won:
                        raise HarnessError(
                            "player failed within the generous cap"
                        )
                    return transcript.rounds

                def reduce(ctx, outcomes, c=c, k=k, player_name=player_name):
                    rounds = outcomes["game"]
                    floor = (
                        hitting_game_floor(c, k) if k <= c / 2 else None
                    )
                    return [
                        {
                            "c": c,
                            "k": k,
                            "player": player_name,
                            "mean_rounds": summarize(rounds).mean,
                            "median_rounds": summarize(rounds).median,
                            "floor(c^2/8k)": floor,
                            "c^2/k": c * c / k,
                        }
                    ]

                yield Point(
                    [
                        Run(
                            "game",
                            trial,
                            f"e7-{player_name}",
                            seed + c * 10 + k,
                        )
                    ],
                    reduce,
                )
    # Complete game (k = c): Lemma 12.
    for c in (9, 27):

        def trial(s: int, c=c) -> int:
            game = HittingGame(c=c, k=c, seed=s)
            transcript = play(game, FreshRandomPlayer(seed=s + 1))
            return transcript.rounds

        def reduce(ctx, outcomes, c=c):
            rounds = outcomes["game"]
            return [
                {
                    "c": c,
                    "k": c,
                    "player": "fresh(complete)",
                    "mean_rounds": summarize(rounds).mean,
                    "median_rounds": summarize(rounds).median,
                    "floor(c^2/8k)": complete_game_floor(c),
                    "c^2/k": float(c),
                }
            ]

        yield Point([Run("game", trial, "e7-complete", seed + c)], reduce)


# ----------------------------------------------------------------------
# E8 — the reduction and Theorem 13
# ----------------------------------------------------------------------
def _plan_e8(ctx: RunContext) -> Iterable[Point]:
    trials, seed = ctx.trials, ctx.seed
    for c in (8, 16, 32):
        k = 2

        def trial(s: int, c=c, k=k) -> int:
            player = CSeekReductionPlayer(k=k, seed=s)
            game = HittingGame(c=c, k=k, seed=s + 17)
            budget = 4 * player.schedule_slots(c)
            transcript = play(game, player, max_rounds=budget)
            if not transcript.won:
                raise HarnessError("reduction player failed to meet")
            return transcript.rounds

        def reduce(ctx, outcomes, c=c, k=k):
            rounds = outcomes["game"]
            player = CSeekReductionPlayer(k=k, seed=0)
            return [
                {
                    "case": "reduction(CSEEK)",
                    "x": c,
                    "mean_rounds_to_meet": summarize(rounds).mean,
                    "game_floor": hitting_game_floor(c, k),
                    "cseek_schedule": player.schedule_slots(c),
                }
            ]

        yield Point([Run("game", trial, f"e8-{c}", seed + c)], reduce)
    # Omega(Delta): discovery completion on stars is at least Delta.
    for delta in (4, 8, 16):
        net = build_network(
            star(delta + 1), c=8, k=2, seed=seed + delta, kind="global_core"
        )

        def star_outcome(result, net=net):
            report = verify_discovery(result, net)
            return report.success, report.completion_slot

        star_trial = cseek_trial(
            lambda s, net=net: CSeek(net, seed=s), star_outcome
        )

        def reduce(ctx, outcomes, delta=delta):
            results = outcomes["star"]
            done = [t for ok, t in results if ok and t is not None]
            return [
                {
                    "case": "star Omega(Delta)",
                    "x": delta,
                    "mean_rounds_to_meet": (
                        summarize(done).mean if done else None
                    ),
                    "game_floor": float(delta),
                    "cseek_schedule": None,
                }
            ]

        yield Point(
            [
                Run(
                    "star",
                    star_trial,
                    "e8-star",
                    seed + delta,
                    max(3, trials // 3),
                )
            ],
            reduce,
        )


# ----------------------------------------------------------------------
# E9 — broadcast lower bound on trees (Theorem 14)
# ----------------------------------------------------------------------
def _plan_e9(ctx: RunContext) -> Iterable[Point]:
    seed = ctx.seed
    c = 4
    for depth in (2, 3, 4):
        net = build_theorem14_tree(c=c, depth=depth, seed=seed + depth)
        kn = net.knowledge()
        floor = tree_broadcast_floor(c=c, delta=kn.max_degree, depth=depth)
        greedy = broadcast_floor(net, source=0)

        cg = cgcast_trial(
            lambda s, discovery=None, net=net: CGCast(
                net, source=0, seed=s, discovery=discovery
            ),
            lambda result: (
                result.success,
                result.ledger.get("dissemination"),
            ),
        )

        def nv_trial(s: int, net=net):
            result = NaiveBroadcast(net, source=0, seed=s).run()
            return result.success, result.completion_slot

        def reduce(
            ctx, outcomes, depth=depth, net=net, floor=floor, greedy=greedy
        ):
            cg_out, nv_out = outcomes["cg"], outcomes["nv"]
            cg_done = [d for ok, d in cg_out if ok]
            nv_done = [t for ok, t in nv_out if ok and t is not None]
            return [
                {
                    "depth": depth,
                    "n": net.n,
                    "analytic_floor": floor,
                    "greedy_oracle": greedy,
                    "cgcast_success": success_rate(
                        [ok for ok, _ in cg_out]
                    ),
                    "cgcast_dissemination": (
                        summarize(cg_done).mean if cg_done else None
                    ),
                    "naive_success": success_rate([ok for ok, _ in nv_out]),
                    "naive_completion": (
                        summarize(nv_done).mean if nv_done else None
                    ),
                }
            ]

        yield Point(
            [
                Run("cg", cg, "e9cg", seed + depth),
                Run("nv", nv_trial, "e9nv", seed + depth),
            ],
            reduce,
        )


# ----------------------------------------------------------------------
# E10 — heterogeneity + part-two ablation (Section 7)
# ----------------------------------------------------------------------
def _plan_e10(ctx: RunContext) -> Iterable[Point]:
    seed = ctx.seed
    # (a) under starved budgets, discovery probability splits by pair
    # class: high-overlap (k_uv = kmax) pairs are found far more often
    # than low-overlap (k_uv = k) pairs, and the gap widens with kmax/k.
    for kmax in (2, 4, 8):
        graph = random_regular(16, 3, seed=seed + 3)
        net = build_network(
            graph, c=32, k=1, seed=seed + kmax, kind="heterogeneous",
            kmax=kmax,
        )
        lo_pairs = [
            e for e in net.edges() if net.edge_overlap(*e) == 1
        ]
        hi_pairs = [
            e for e in net.edges() if net.edge_overlap(*e) == kmax
        ]

        def pair_rates(result, lo_pairs=lo_pairs, hi_pairs=hi_pairs):
            lo = sum(
                (v in result.discovered[u]) + (u in result.discovered[v])
                for u, v in lo_pairs
            ) / (2 * len(lo_pairs))
            hi = sum(
                (v in result.discovered[u]) + (u in result.discovered[v])
                for u, v in hi_pairs
            ) / (2 * len(hi_pairs))
            return lo, hi

        trial = cseek_trial(
            lambda s, net=net: CSeek(
                net, seed=s, part1_steps=300, part2_steps=400
            ),
            pair_rates,
        )

        def reduce(ctx, outcomes, kmax=kmax):
            results = outcomes["cseek"]
            lo_mean = summarize([a for a, _ in results]).mean
            hi_mean = summarize([b for _, b in results]).mean
            return [
                {
                    "case": f"starved budget, kmax/k={kmax}",
                    "low_overlap_found": lo_mean,
                    "high_overlap_found": hi_mean,
                    "bias(high/low)": (
                        hi_mean / lo_mean if lo_mean else None
                    ),
                    "success": None,
                    "schedule": None,
                }
            ]

        yield Point(
            [Run("cseek", trial, f"e10h{kmax}", seed + kmax)], reduce
        )
    # (b) full budgets: the schedule formula stretches with kmax/k and
    # full discovery still succeeds (Theorem 4's budget absorbs the gap).
    for kmax in (1, 2, 4):
        graph = random_regular(16, 3, seed=seed + 3)
        kind = "exact_uniform" if kmax == 1 else "heterogeneous"
        net = build_network(
            graph, c=16, k=1, seed=seed + kmax, kind=kind, kmax=kmax
        )

        full_trial = cseek_trial(
            lambda s, net=net: CSeek(net, seed=s),
            lambda result, net=net: (
                verify_discovery(result, net).success,
                result.total_slots,
            ),
        )

        def reduce(ctx, outcomes, kmax=kmax):
            results = outcomes["cseek"]
            return [
                {
                    "case": f"full budget, kmax/k={kmax}",
                    "low_overlap_found": None,
                    "high_overlap_found": None,
                    "bias(high/low)": None,
                    "success": success_rate([ok for ok, _ in results]),
                    "schedule": results[0][1],
                }
            ]

        yield Point(
            [Run("cseek", full_trial, f"e10f{kmax}", seed + 40 + kmax)],
            reduce,
        )


# ----------------------------------------------------------------------
# E11 — amortized repeated broadcast (extension; Theorem 9's regime)
# ----------------------------------------------------------------------
def _plan_e11(ctx: RunContext) -> Iterable[Point]:
    seed = ctx.seed
    # c^2/k = 256 >> Delta = 4: the regime where the per-hop advantage
    # of the colored schedule is unambiguous.
    graph = path_of_cliques(8, 4)
    net = build_network(graph, c=16, k=1, seed=seed + 1)
    kn = net.knowledge()
    num_messages = 16

    def trial(s: int):
        setup = CGCast(net, source=0, seed=s).run()
        if not setup.success:
            return None
        setup_slots = setup.total_slots - setup.ledger.get("dissemination")
        per_message = [setup.ledger.get("dissemination")]
        naive_per_message = []
        for msg in range(1, num_messages):
            source = (msg * 7) % net.n
            diss = redisseminate(net, setup, source=source, seed=s + msg)
            if not diss.success:
                return None
            per_message.append(diss.ledger.total)
            nv = NaiveBroadcast(
                net, source=source, seed=s + 100 + msg
            ).run()
            if not nv.success:
                return None
            naive_per_message.append(nv.completion_slot)
        nv0 = NaiveBroadcast(net, source=0, seed=s + 500).run()
        naive_per_message.insert(0, nv0.completion_slot)
        return setup_slots, per_message, naive_per_message

    def run_batch(seeds):
        # The whole amortized regime in lockstep: one CGCastBatch run
        # builds every trial's reusable schedule, then each message's
        # re-dissemination sweeps the surviving trials through
        # redisseminate_batch. Per trial all generator draws are those
        # of the serial closure above (NaiveBroadcast runs are
        # independent per seed), so outcomes are bit-identical.
        seeds = [int(s) for s in seeds]
        setups = CGCastBatch(net, source=0).run(seeds)
        state = {}
        for b, setup in enumerate(setups):
            if setup.success:
                diss0 = setup.ledger.get("dissemination")
                state[b] = (setup.total_slots - diss0, [diss0], [])
        for msg in range(1, num_messages):
            alive = sorted(state)
            if not alive:
                break
            source = (msg * 7) % net.n
            disses = redisseminate_batch(
                net,
                [setups[b] for b in alive],
                source,
                [seeds[b] + msg for b in alive],
            )
            for b, diss in zip(alive, disses):
                if not diss.success:
                    del state[b]
                    continue
                state[b][1].append(diss.ledger.total)
                nv = NaiveBroadcast(
                    net, source=source, seed=seeds[b] + 100 + msg
                ).run()
                if not nv.success:
                    del state[b]
                    continue
                state[b][2].append(nv.completion_slot)
        outcomes = [None] * len(seeds)
        for b, (setup_slots, per_message, naive_pm) in state.items():
            nv0 = NaiveBroadcast(net, source=0, seed=seeds[b] + 500).run()
            naive_pm.insert(0, nv0.completion_slot)
            outcomes[b] = (setup_slots, per_message, naive_pm)
        return outcomes

    trial.run_batch = run_batch

    def reduce(ctx, outcomes):
        ok = [o for o in outcomes["amortized"] if o]
        if not ok:
            raise HarnessError("no successful E11 trial")
        rows: List[Row] = []
        for budget in (1, 4, num_messages):
            cg_totals = []
            nv_totals = []
            for setup_slots, per_message, naive_pm in ok:
                cg_totals.append(setup_slots + sum(per_message[:budget]))
                nv_totals.append(sum(naive_pm[:budget]))
            cg_mean = summarize(cg_totals).mean
            nv_mean = summarize(nv_totals).mean
            rows.append(
                {
                    "messages": budget,
                    "cgcast_total": cg_mean,
                    "cgcast_per_message": cg_mean / budget,
                    "naive_total": nv_mean,
                    "naive_per_message": nv_mean / budget,
                    "ratio(cgcast/naive)": cg_mean / nv_mean,
                }
            )
        # Amortization point estimate for the notes:
        # setup / (naive per msg - diss per msg).
        ctx.extras["e11"] = {
            "setup_mean": summarize([o[0] for o in ok]).mean,
            "diss_pm": summarize(
                [sum(o[1][1:]) / max(1, len(o[1]) - 1) for o in ok]
            ).mean,
            "naive_pm": summarize(
                [sum(o[2]) / len(o[2]) for o in ok]
            ).mean,
            "diameter": net.knowledge().diameter,
            "max_degree": kn.max_degree,
            "c2k": kn.c * kn.c // kn.k,
        }
        return rows

    yield Point([Run("amortized", trial, "trials", seed)], reduce)


def _notes_e11(rows: List[Row], ctx: RunContext) -> str:
    stats = ctx.extras["e11"]
    setup_mean = stats["setup_mean"]
    diss_pm = stats["diss_pm"]
    naive_pm = stats["naive_pm"]
    if naive_pm > diss_pm:
        amortize = setup_mean / (naive_pm - diss_pm)
        amortize_note = (
            f" Per-message costs: re-dissemination {diss_pm:,.0f} vs "
            f"naive {naive_pm:,.0f} slots; the setup "
            f"({setup_mean:,.0f} slots) amortizes after "
            f"~{amortize:,.0f} messages."
        )
    else:
        amortize_note = (
            " At this size the re-dissemination cost does not undercut "
            "naive flooding, so the setup never amortizes — the "
            "asymptotic regime needs Delta*polylog << c^2/k."
        )
    return (
        "Extension experiment (not a numbered claim): the paper's "
        "CGCAST builds a reusable schedule — discovery, dedicated "
        "channels and the edge coloring survive across broadcasts. "
        "Re-dissemination costs only the O~(D Delta) stage, so the "
        "per-message cost collapses as messages accumulate while "
        "naive flooding pays O~((c^2/k) D) every time; the "
        "cgcast/naive ratio falls toward the pure dissemination "
        f"ratio (D={stats['diameter']}, Delta="
        f"{stats['max_degree']}, c^2/k={stats['c2k']})."
        + amortize_note
    )


# ----------------------------------------------------------------------
# E12 — primary-user interference robustness (extension)
# ----------------------------------------------------------------------
def _plan_e12(ctx: RunContext) -> Iterable[Point]:
    seed = ctx.seed
    graph = random_regular(20, 4, seed=seed + 7)
    net = build_network(graph, c=8, k=2, seed=seed + 11)
    all_channels = sorted(net.assignment.universe())
    cases = [("none", 0.0, 0.0)]
    for activity in (0.3, 0.6, 0.8):
        cases.append(("short bursts (dwell 4)", activity, 4.0))
        cases.append(("long bursts (dwell 500)", activity, 500.0))
    for name, activity, dwell in cases:
        # Stream seeds are trial_seed + 1000, exactly as the
        # pre-environment jammer factory seeded its per-trial
        # PrimaryUserTraffic — the golden E12 rows depend on it.
        environment = (
            MarkovTraffic(
                all_channels,
                activity=activity,
                mean_dwell=dwell,
                seed_offset=1000,
            )
            if activity > 0
            else None
        )

        def verify_outcome(result):
            report = verify_discovery(result, net)
            return report.success, report.completion_slot

        trial = cseek_trial(
            lambda s: CSeek(net, seed=s),
            verify_outcome,
            environment=environment,
        )

        def reduce(ctx, outcomes, name=name, activity=activity):
            results = outcomes["cseek"]
            done = [t for ok, t in results if ok and t is not None]
            return [
                {
                    "traffic": name,
                    "activity": activity,
                    "success": success_rate([ok for ok, _ in results]),
                    "mean_completion": (
                        summarize(done).mean if done else None
                    ),
                }
            ]

        yield Point(
            [
                Run(
                    "cseek",
                    trial,
                    f"e12-{name}",
                    seed + int(activity * 10),
                )
            ],
            reduce,
        )


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
PAPER_SPECS: Dict[str, ScenarioSpec] = {}


def _paper(spec: ScenarioSpec) -> ScenarioSpec:
    register(spec)
    PAPER_SPECS[spec.name] = spec
    return spec


def paper_spec(experiment_id: str) -> ScenarioSpec:
    """The registered spec for one paper experiment id (E1..E12)."""
    key = experiment_id.upper()
    if key not in PAPER_SPECS:
        raise HarnessError(
            f"unknown experiment {experiment_id!r}; valid: "
            f"{', '.join(PAPER_SPECS)}"
        )
    return PAPER_SPECS[key]


_paper(
    ScenarioSpec(
        name="E1",
        title="COUNT accuracy (Lemma 1)",
        description=(
            "Lemma 1: COUNT estimates the broadcaster count within "
            "constants; both estimation rules over an m sweep."
        ),
        trials=30,
        tags=("paper",),
        plan=_plan_e1,
        notes=(
            "Paper claim: COUNT returns an estimate within a constant "
            "factor of the true broadcaster count m, in O(lg^2 n) slots. "
            "Both rules should hold median ratios within [1/4, 4] across "
            "the m sweep; the paper-exact first-crossing rule needs the "
            "long rounds its hidden constant implies."
        ),
    )
)
_paper(
    ScenarioSpec(
        name="E2",
        title="CSEEK vs naive discovery scaling (Theorem 4)",
        description=(
            "Theorem 4: CSEEK's c-, Delta- and k-scaling against the "
            "naive baseline and the analytic bound curves."
        ),
        trials=5,
        tags=("paper",),
        plan=_plan_e2,
        notes=_notes_e2,
    )
)
_paper(
    ScenarioSpec(
        name="E3",
        title="Discovery split across CSEEK's parts (Lemmas 2-3)",
        description=(
            "Lemmas 2/3: part one suffices on un-crowded channels; on "
            "crowded channels part two's weighted listening rescues."
        ),
        trials=5,
        tags=("paper",),
        plan=_plan_e3,
        notes=(
            "Paper claims: (Lemma 2) part one alone finds neighbors on "
            "un-crowded channels — full-budget rows show part1_fraction "
            "~1.0; (Lemma 3) on crowded channels the part-two listener, "
            "by revisiting channels proportionally to sampled density, "
            "recovers the rest — in the starved rows the weighted "
            "listener's final_fraction beats the uniform ablation at the "
            "same slot budget."
        ),
    )
)
_paper(
    ScenarioSpec(
        name="E4",
        title="CKSEEK k-hat filter (Theorem 6)",
        description=(
            "Theorem 6: k-hat discovery gets strictly cheaper as k-hat "
            "grows."
        ),
        trials=5,
        tags=("paper",),
        plan=_plan_e4,
        notes=(
            "Paper claim: finding only neighbors sharing >= khat channels "
            "costs O~(c^2/khat + (kmax/khat) Delta_khat + Delta) — "
            "strictly less than full CSEEK once khat > k. Expect "
            "schedule_slots to fall monotonically with khat while success "
            "stays 1.0."
        ),
    )
)
_paper(
    ScenarioSpec(
        name="E5",
        title="Line-graph Luby coloring (Lemma 8, Fact 7)",
        description=(
            "Lemma 8: 2*Delta-coloring completes in O(lg n) phases, "
            "always proper."
        ),
        trials=8,
        tags=("paper",),
        plan=_plan_e5,
        notes=_notes_e5,
    )
)
_paper(
    ScenarioSpec(
        name="E6",
        title="CGCAST vs naive broadcast (Theorem 9)",
        description=(
            "Theorem 9: CGCAST's per-hop dissemination cost is "
            "O~(Delta) while naive broadcast pays O~(c^2/k) per hop."
        ),
        trials=3,
        tags=("paper",),
        plan=_plan_e6,
        notes=_notes_e6,
    )
)
_paper(
    ScenarioSpec(
        name="E7",
        title="Bipartite hitting games (Lemmas 10 and 12)",
        description=(
            "Lemmas 10/12: measured hitting times sit above the game "
            "floors."
        ),
        trials=30,
        tags=("paper",),
        plan=_plan_e7,
        notes=(
            "Paper claim: no player beats c^2/(8k) rounds (k <= c/2) or "
            "c/3 rounds (complete game) with probability 1/2. Expect "
            "every measured mean >= the floor, with the near-optimal "
            "fresh player within the constant-8 gap of c^2/k."
        ),
    )
)
_paper(
    ScenarioSpec(
        name="E8",
        title="Reduction to the game + Omega(Delta) (Lemma 11, Theorem 13)",
        description=(
            "Lemma 11 + Theorem 13: discovery algorithms, played through "
            "the reduction, respect the game floor; stars enforce the "
            "Omega(Delta) term."
        ),
        trials=15,
        tags=("paper",),
        plan=_plan_e8,
        notes=(
            "Paper claim: any discovery algorithm's first meeting, viewed "
            "through the Lemma 11 reduction, needs >= c^2/(8k) game "
            "rounds, and a star hub cannot finish before Delta receptions. "
            "Expect mean_rounds_to_meet >= game_floor in every row."
        ),
    )
)
_paper(
    ScenarioSpec(
        name="E9",
        title="Broadcast floor on channel-disjoint trees (Theorem 14)",
        description=(
            "Theorem 14: channel-disjoint trees force min(c, Delta)-1 "
            "slots per hop on any broadcast, CGCAST included."
        ),
        trials=3,
        tags=("paper",),
        plan=_plan_e9,
        notes=(
            "Paper claim: with siblings sharing no channels, every "
            "broadcast needs >= depth * (min(c, Delta) - 1) slots. Expect "
            "both protocols' measured times above the analytic floor and "
            "the greedy omniscient schedule to match it exactly "
            "(greedy_oracle >= analytic_floor, with equality up to the "
            "root's head start)."
        ),
    )
)
_paper(
    ScenarioSpec(
        name="E10",
        title="Heterogeneity bias in part two (Section 7)",
        description=(
            "Section 7: part two is biased toward strongly overlapping "
            "neighbors — the source of the upper/lower bound gap when "
            "kmax >> k."
        ),
        trials=5,
        tags=("paper",),
        plan=_plan_e10,
        notes=(
            "Paper discussion (Section 7): part two gives priority to "
            "crowded channels, so under a fixed (starved) budget, "
            "neighbors sharing kmax channels are discovered far more "
            "often than those sharing only k — the bias(high/low) column "
            "grows with kmax/k, which is exactly why the paper's upper "
            "and lower bounds diverge in this regime. Full-budget rows "
            "confirm Theorem 4's schedule (which stretches with kmax/k) "
            "still delivers complete discovery."
        ),
    )
)
_paper(
    ScenarioSpec(
        name="E11",
        title="Amortized repeated broadcast (extension of Theorem 9)",
        description=(
            "Extension: CGCAST's setup is reusable, so over repeated "
            "broadcasts its per-message cost drops to the dissemination "
            "stage while naive flooding pays full price every time."
        ),
        trials=3,
        tags=("paper",),
        plan=_plan_e11,
        notes=_notes_e11,
    )
)
_paper(
    ScenarioSpec(
        name="E12",
        title="Primary-user interference robustness (extension)",
        description=(
            "Extension: discovery under primary-user channel occupancy — "
            "short bursts absorbed, long bursts erase meetings."
        ),
        trials=4,
        tags=("paper",),
        plan=_plan_e12,
        notes=(
            "Extension experiment: COUNT's many-slots-per-step structure "
            "makes CSEEK nearly immune to short occupancy bursts (every "
            "meeting step offers many reception chances), while bursts "
            "longer than a step erase whole meetings — completion "
            "stretches with occupancy and discovery finally fails when "
            "most of the schedule is occupied. The paper's w.h.p. "
            "budget constants are what buy this slack."
        ),
    )
)
