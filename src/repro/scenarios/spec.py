"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one workload as data: a topology, a
channel-assignment regime, an optional primary-user interference
process, a protocol, a sweep grid, and the metric columns to report.
The compiler (:mod:`repro.scenarios.compile`) lowers any spec into the
trial closures the executor layer understands, so one spec runs
serially, on a process pool, or vectorized over the trial axis without
further code.

Specs come in two flavors:

* **Declarative** — every field is plain data (JSON-serializable via
  :func:`spec_to_dict` / :func:`spec_from_dict`), parameterized over the
  sweep axes through ``"$name"`` references. These are the specs users
  can write as ``.json`` files and tweak from the CLI with
  ``--set key=value``.
* **Plan-based** — the spec carries a ``plan`` callable producing the
  compiler's intermediate representation directly. The paper
  experiments E1-E12 (:mod:`repro.scenarios.paper`) use this escape
  hatch: their tables have bespoke columns, per-point seeds and fitted
  notes that predate the declarative layer and must stay row-identical.

Reference resolution: any string value ``"$x"`` inside ``params`` (or
the scalar fields of the assignment/interference specs) is replaced by
the sweep point's value for axis ``x``. Three built-ins are always in
scope: ``$seed`` (the master seed), ``$point`` (the 0-based sweep point
index) and ``$pseed`` (``seed + point`` — the conventional per-point
seed for topology/assignment randomness). For derived values, a
``{"$expr": "..."}`` object evaluates a simple arithmetic expression
over the same scope — ``{"$expr": "num_channels * 2"}`` doubles the
``num_channels`` axis value; see :func:`resolve` for the permitted
grammar.
"""

from __future__ import annotations

import ast
import hashlib
import json
import operator
from dataclasses import dataclass, field, fields, replace
from itertools import product
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.model.errors import HarnessError
from repro.sim.environment import ENVIRONMENT_MODELS

__all__ = [
    "AssignmentSpec",
    "InterferenceSpec",
    "PrecisionSpec",
    "ProtocolSpec",
    "ScenarioSpec",
    "SweepSpec",
    "TopologySpec",
    "apply_overrides",
    "resolve",
    "spec_digest",
    "spec_from_dict",
    "spec_to_dict",
]

TOPOLOGY_KINDS = (
    "star",
    "path",
    "cycle",
    "grid",
    "complete_tree",
    "path_of_cliques",
    "random_geometric",
    "erdos_renyi",
    "random_regular",
    "two_node",
)
ASSIGNMENT_KINDS = (
    "exact_uniform",
    "heterogeneous",
    "global_core",
    "random_subsets",
)
PROTOCOL_KINDS = (
    "count",
    "cseek",
    "ckseek",
    "cgcast",
    "naive_discovery",
    "naive_broadcast",
)


_EXPR_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
}
_EXPR_UNARYOPS = {ast.USub: operator.neg, ast.UAdd: operator.pos}
_EXPR_FUNCS = {"abs": abs, "int": int, "max": max, "min": min,
               "round": round}
# ** with an unbounded integer exponent can materialize astronomically
# large ints before any other guard fires; no legitimate scenario
# parameter needs exponents beyond this.
_EXPR_MAX_EXPONENT = 64


def _eval_expr(text: object, scope: Mapping[str, object]) -> object:
    """Evaluate a ``{"$expr": ...}`` arithmetic expression over a scope.

    The grammar is deliberately tiny: numeric literals, scope names,
    the binary operators ``+ - * / // % **``, unary ``+``/``-``,
    parentheses and calls to ``min``/``max``/``abs``/``int``/``round``.
    Anything else — attribute access, subscripts, comparisons, lambdas
    — is rejected, so a scenario file can compute derived parameters
    without becoming a code-execution vector.
    """
    if not isinstance(text, str):
        raise HarnessError(
            f"$expr expects an expression string, got {text!r}"
        )
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as exc:
        raise HarnessError(
            f"invalid $expr {text!r}: {exc.msg}"
        ) from None

    def ev(node: ast.AST) -> object:
        if isinstance(node, ast.Expression):
            return ev(node.body)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                return node.value
            raise HarnessError(
                f"$expr {text!r}: only numeric literals are allowed, "
                f"got {node.value!r}"
            )
        if isinstance(node, ast.Name):
            if node.id not in scope:
                raise HarnessError(
                    f"$expr {text!r}: unknown name {node.id!r}; in "
                    f"scope: {', '.join(sorted(scope))}"
                )
            return scope[node.id]
        if isinstance(node, ast.BinOp) and type(node.op) in _EXPR_BINOPS:
            left, right = ev(node.left), ev(node.right)
            if isinstance(node.op, ast.Pow) and (
                not isinstance(right, (int, float))
                or abs(right) > _EXPR_MAX_EXPONENT
            ):
                raise HarnessError(
                    f"$expr {text!r}: ** exponents are limited to "
                    f"|e| <= {_EXPR_MAX_EXPONENT}, got {right!r}"
                )
            return _EXPR_BINOPS[type(node.op)](left, right)
        if (
            isinstance(node, ast.UnaryOp)
            and type(node.op) in _EXPR_UNARYOPS
        ):
            return _EXPR_UNARYOPS[type(node.op)](ev(node.operand))
        if isinstance(node, ast.Call):
            if (
                not isinstance(node.func, ast.Name)
                or node.func.id not in _EXPR_FUNCS
                or node.keywords
            ):
                raise HarnessError(
                    f"$expr {text!r}: only "
                    f"{', '.join(sorted(_EXPR_FUNCS))} calls are "
                    "allowed"
                )
            return _EXPR_FUNCS[node.func.id](
                *(ev(arg) for arg in node.args)
            )
        raise HarnessError(
            f"$expr {text!r}: unsupported syntax "
            f"({type(node).__name__}); allowed: numbers, scope names, "
            "+ - * / // % **, parentheses, "
            f"{', '.join(sorted(_EXPR_FUNCS))}"
        )

    try:
        return ev(tree)
    except HarnessError:
        raise
    except (
        ZeroDivisionError,
        OverflowError,
        ValueError,
        TypeError,
    ) as exc:
        # Runtime arithmetic failures (division by zero, float
        # overflow, int() over a non-numeric axis value, ...) are spec
        # errors, not tracebacks.
        raise HarnessError(
            f"$expr {text!r} failed at this sweep point: {exc}"
        ) from None


def resolve(value: object, scope: Mapping[str, object]) -> object:
    """Substitute ``"$name"`` references against a sweep-point scope.

    Containers resolve recursively; non-reference values pass through.
    A mapping of the single key ``"$expr"`` evaluates its value as a
    small arithmetic expression over the scope (see :func:`_eval_expr`)
    — the DSL's escape hatch for derived parameters such as
    ``{"$expr": "num_channels * 2"}``.

    Raises:
        HarnessError: for a reference naming no axis or built-in, or an
            invalid ``$expr``.
    """
    if isinstance(value, str) and value.startswith("$"):
        name = value[1:]
        if name not in scope:
            raise HarnessError(
                f"unknown scenario reference {value!r}; in scope: "
                f"{', '.join(sorted(scope))}"
            )
        return scope[name]
    if isinstance(value, Mapping):
        if "$expr" in value:
            if set(value) != {"$expr"}:
                raise HarnessError(
                    "a $expr object must contain only the '$expr' key, "
                    f"got extra keys: "
                    f"{', '.join(sorted(set(value) - {'$expr'}))}"
                )
            return _eval_expr(value["$expr"], scope)
        return {k: resolve(v, scope) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [resolve(v, scope) for v in value]
    return value


@dataclass(frozen=True)
class SweepSpec:
    """The workload's parameter grid.

    Attributes:
        axes: Axis name -> list of values. Axis names become row
            columns and are referenceable as ``"$name"`` everywhere
            else in the spec.
        mode: ``"product"`` (the cartesian product, outer axes slowest)
            or ``"zip"`` (axes advance together; all must have equal
            length).
    """

    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    mode: str = "product"

    def __post_init__(self) -> None:
        if self.mode not in ("product", "zip"):
            raise HarnessError(
                f"sweep mode must be 'product' or 'zip', got {self.mode!r}"
            )
        for name, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise HarnessError(
                    f"sweep axis {name!r} needs a non-empty list of "
                    f"values, got {values!r}"
                )
        if self.mode == "zip" and self.axes:
            lengths = {len(v) for v in self.axes.values()}
            if len(lengths) > 1:
                raise HarnessError(
                    f"zip sweep axes must share one length, got {lengths}"
                )

    def points(self) -> list[Dict[str, object]]:
        """Expand the grid into ordered per-point parameter dicts."""
        if not self.axes:
            return [{}]
        names = list(self.axes)
        if self.mode == "zip":
            return [
                dict(zip(names, combo))
                for combo in zip(*(self.axes[n] for n in names))
            ]
        return [
            dict(zip(names, combo))
            for combo in product(*(self.axes[n] for n in names))
        ]


@dataclass(frozen=True)
class TopologySpec:
    """Connectivity graph: a generator from the topology zoo + params.

    ``params`` are handed to the generator after reference resolution;
    generators that take a ``seed`` default to ``$pseed`` when none is
    given.
    """

    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise HarnessError(
                f"unknown topology kind {self.kind!r}; valid: "
                f"{', '.join(TOPOLOGY_KINDS)}"
            )


@dataclass(frozen=True)
class AssignmentSpec:
    """Channel-assignment regime layered over (or inducing) the topology.

    The first three kinds mirror :func:`repro.graphs.builders.build_network`:
    every node gets ``c`` channels; edges overlap in at least ``k`` of
    them, per the regime. ``seed`` defaults to ``$pseed``.

    ``kind="random_subsets"`` is the white-space workload
    (:func:`repro.graphs.builders.build_random_subset_network`): ``n``
    nodes each sample ``c`` channels from a spectrum pool of
    ``pool_size``, and connectivity is *emergent* — two nodes are
    neighbors iff they share at least ``k`` channels (re-sampled up to
    ``max_tries`` times until connected). Because the assignment
    induces the graph, a ``random_subsets`` scenario must not carry a
    topology spec. ``n``, ``pool_size`` and ``max_tries`` resolve like
    every other field, so the pool size (or ``n``) can be a sweep axis.
    """

    kind: str = "exact_uniform"
    c: object = 8
    k: object = 1
    kmax: object = None
    high_fraction: object = 0.5
    seed: object = "$pseed"
    n: object = None
    pool_size: object = None
    max_tries: object = 64

    def __post_init__(self) -> None:
        if self.kind not in ASSIGNMENT_KINDS:
            raise HarnessError(
                f"unknown assignment kind {self.kind!r}; valid: "
                f"{', '.join(ASSIGNMENT_KINDS)}"
            )
        if self.kind == "random_subsets":
            if self.n is None or self.pool_size is None:
                raise HarnessError(
                    "assignment kind 'random_subsets' needs 'n' (node "
                    "count) and 'pool_size' (spectrum pool) parameters"
                )
            if self.kmax is not None or self.high_fraction != 0.5:
                raise HarnessError(
                    "assignment kind 'random_subsets' takes no "
                    "'kmax'/'high_fraction' parameters (they belong to "
                    "'heterogeneous'); overlap is emergent from the "
                    "sampled channel sets"
                )
        elif (
            self.n is not None
            or self.pool_size is not None
            or self.max_tries != 64
        ):
            raise HarnessError(
                f"assignment kind {self.kind!r} takes no 'n'/'pool_size'"
                "/'max_tries' parameters (they belong to "
                "'random_subsets')"
            )


@dataclass(frozen=True)
class InterferenceSpec:
    """Primary-user traffic over the network's channel universe.

    ``model`` selects the spectrum environment
    (:mod:`repro.sim.environment`): ``"markov"`` — bursty ON/OFF
    chains, the historical default — ``"poisson"`` — memoryless
    per-slot occupancy (``mean_dwell`` is ignored) — or ``"static"`` —
    a fixed ``blocked`` list of global channel ids (``activity``,
    ``mean_dwell`` and ``seed_offset`` are ignored). The model may be a
    ``"$axis"`` reference, making the traffic process itself a sweep
    axis.

    ``activity`` is a scalar occupancy target, or a list giving one
    target per channel of the network's (sorted) channel universe —
    heterogeneous licensed bands. Activity 0 (or an all-zero vector)
    disables the stochastic models at that sweep point (so an activity
    axis can include an interference-free control), as does an empty
    ``blocked`` set for ``static``. Per-trial traffic processes are
    seeded ``trial_seed + seed_offset`` to stay decorrelated from
    protocol coins.
    """

    model: object = "markov"
    activity: object = 0.0
    mean_dwell: object = 8.0
    seed_offset: object = 1000
    blocked: object = None

    def __post_init__(self) -> None:
        # Plain model names validate eagerly; "$axis" references (and
        # {"$expr": ...}) wait for sweep-point resolution, where
        # make_environment re-checks the resolved name.
        if (
            isinstance(self.model, str)
            and not self.model.startswith("$")
            and self.model.lower() not in ENVIRONMENT_MODELS
        ):
            raise HarnessError(
                f"unknown interference model {self.model!r}; valid: "
                f"{', '.join(ENVIRONMENT_MODELS)}"
            )


@dataclass(frozen=True)
class PrecisionSpec:
    """CI-targeted stopping: run trials until metrics resolve.

    A scenario carrying a precision spec runs through the *streaming*
    path (:func:`repro.scenarios.streaming.stream_scenario_spec`): each
    sweep point executes memory-capped chunks of trials, folding
    outcomes into online accumulators, until every targeted metric's
    confidence interval is narrower than its target — or ``max_trials``
    is reached.

    Attributes:
        targets: Metric name -> CI half-width target (a point stops
            once every achieved half-width is <= its target). Rate
            metrics (e.g.
            ``success``, ``band_rate``) use Wilson intervals; mean
            metrics (e.g. ``discovered_fraction``, ``mean_completion``)
            use t-based intervals. Median/quantile metrics are not
            targetable.
        confidence: Interval confidence level, in ``(0, 1)``.
        min_trials: Floor before the stopping rule may fire — guards
            against lucky early chunks deciding convergence.
        max_trials: Hard ceiling per sweep point.
        chunk: Trials resident per chunk (``0`` = the streaming
            executor's default). This is the memory cap's knob: peak
            state is ``O(chunk)``, never ``O(max_trials)``.
    """

    targets: Mapping[str, float] = field(default_factory=dict)
    confidence: float = 0.95
    min_trials: int = 32
    max_trials: int = 100_000
    chunk: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.targets, Mapping) or not self.targets:
            raise HarnessError(
                "precision needs a non-empty 'targets' mapping of "
                "metric -> CI half-width"
            )
        targets: Dict[str, float] = {}
        for metric, value in self.targets.items():
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not value > 0
            ):
                raise HarnessError(
                    f"precision target for {metric!r} must be a "
                    f"positive number, got {value!r}"
                )
            targets[str(metric)] = float(value)
        object.__setattr__(self, "targets", targets)
        if (
            isinstance(self.confidence, bool)
            or not isinstance(self.confidence, (int, float))
            or not 0.0 < self.confidence < 1.0
        ):
            raise HarnessError(
                f"precision confidence must lie in (0, 1), got "
                f"{self.confidence!r}"
            )
        object.__setattr__(self, "confidence", float(self.confidence))
        object.__setattr__(
            self,
            "min_trials",
            _as_int(self.min_trials, "precision min_trials"),
        )
        object.__setattr__(
            self,
            "max_trials",
            _as_int(self.max_trials, "precision max_trials"),
        )
        object.__setattr__(
            self, "chunk", _as_int(self.chunk, "precision chunk")
        )
        if self.min_trials < 1:
            raise HarnessError(
                f"precision min_trials must be >= 1, got {self.min_trials}"
            )
        if self.max_trials < self.min_trials:
            raise HarnessError(
                f"precision max_trials ({self.max_trials}) must be >= "
                f"min_trials ({self.min_trials})"
            )
        if self.chunk < 0:
            raise HarnessError(
                f"precision chunk must be >= 0, got {self.chunk}"
            )


@dataclass(frozen=True)
class ProtocolSpec:
    """The protocol under test plus its knobs.

    ``params`` go to the protocol constructor (after resolution):
    ``cseek`` accepts ``part1_steps``/``part2_steps``/``part2_listener``;
    ``ckseek`` additionally requires ``khat`` (``delta_khat`` defaults to
    the realized good-degree bound); ``cgcast``/``naive_broadcast``
    accept ``source``; ``count`` takes ``m`` (broadcaster count,
    required), ``max_count``, ``log_n``, ``rule`` and ``round_slots``.
    """

    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in PROTOCOL_KINDS:
            raise HarnessError(
                f"unknown protocol kind {self.kind!r}; valid: "
                f"{', '.join(PROTOCOL_KINDS)}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """One composable workload definition.

    Attributes:
        name: Registry id (case-insensitive, unique).
        title: Table headline.
        description: One-line summary for ``scenarios`` listings.
        trials: Default Monte Carlo trials per sweep point.
        experiment_id: Table id; defaults to ``name``.
        tags: Free-form labels (``"paper"`` marks E1-E12).
        sweep, topology, assignment, interference, protocol: The
            declarative core; see the respective spec classes.
        metrics: Optional subset of the protocol's stock metric columns
            to report (sweep-axis columns always appear).
        precision: Optional CI-targeted stopping contract
            (:class:`PrecisionSpec`). A spec carrying one runs through
            the streaming path; only declarative specs qualify (the
            plan-based paper specs stay pinned to fixed trial counts).
        notes: Table notes — a string, or a callable
            ``(rows, ctx) -> str`` for notes computed from results.
        columns: Optional explicit column order.
        plan: Escape hatch — ``plan(ctx) -> iterable of Points``
            (see :mod:`repro.scenarios.compile`). A spec with a plan
            ignores the declarative core and cannot be serialized.
    """

    name: str
    title: str
    description: str = ""
    trials: int = 5
    experiment_id: Optional[str] = None
    tags: Tuple[str, ...] = ()
    sweep: Optional[SweepSpec] = None
    topology: Optional[TopologySpec] = None
    assignment: Optional[AssignmentSpec] = None
    interference: Optional[InterferenceSpec] = None
    protocol: Optional[ProtocolSpec] = None
    metrics: Optional[Tuple[str, ...]] = None
    precision: Optional[PrecisionSpec] = None
    notes: "str | Callable[..., str]" = ""
    columns: Optional[Sequence[str]] = None
    plan: Optional[Callable] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise HarnessError("scenario name must be non-empty")
        if self.trials < 1:
            raise HarnessError(
                f"scenario trials must be >= 1, got {self.trials}"
            )
        if self.plan is None and self.protocol is None:
            raise HarnessError(
                f"scenario {self.name!r} needs a protocol spec or a plan"
            )
        if self.precision is not None and self.plan is not None:
            raise HarnessError(
                f"scenario {self.name!r} is code-defined (plan-based): "
                "CI-targeted stopping (precision) requires the "
                "declarative lowering; paper specs stay pinned to fixed "
                "trial counts"
            )
        induces_graph = (
            self.assignment is not None
            and self.assignment.kind == "random_subsets"
        )
        if induces_graph and self.topology is not None:
            raise HarnessError(
                f"scenario {self.name!r}: a 'random_subsets' assignment "
                "induces its own connectivity graph and cannot be "
                "combined with a topology spec"
            )
        if (
            self.plan is None
            and self.protocol is not None
            and self.protocol.kind != "count"
            and self.topology is None
            and not induces_graph
        ):
            raise HarnessError(
                f"scenario {self.name!r}: protocol {self.protocol.kind!r} "
                "needs a topology spec"
            )

    @property
    def table_id(self) -> str:
        return self.experiment_id or self.name

    @property
    def is_declarative(self) -> bool:
        return self.plan is None


# ----------------------------------------------------------------------
# Serialization (the declarative subset)
# ----------------------------------------------------------------------
def _sub_to_dict(obj) -> Dict[str, object]:
    out = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, Mapping):
            value = dict(value)
        out[f.name] = value
    return out


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, object]:
    """A JSON-ready dict for a declarative spec.

    Raises:
        HarnessError: for plan-based specs or callable notes — code
            cannot round-trip through JSON.
    """
    if spec.plan is not None:
        raise HarnessError(
            f"scenario {spec.name!r} is code-defined (plan-based) and "
            "cannot be serialized"
        )
    if callable(spec.notes):
        raise HarnessError(
            f"scenario {spec.name!r} has computed notes and cannot be "
            "serialized"
        )
    out: Dict[str, object] = {
        "name": spec.name,
        "title": spec.title,
        "description": spec.description,
        "trials": spec.trials,
    }
    if spec.experiment_id:
        out["experiment_id"] = spec.experiment_id
    if spec.tags:
        out["tags"] = list(spec.tags)
    if spec.sweep is not None:
        out["sweep"] = {
            "axes": {k: list(v) for k, v in spec.sweep.axes.items()},
            "mode": spec.sweep.mode,
        }
    if spec.topology is not None:
        out["topology"] = _sub_to_dict(spec.topology)
    if spec.assignment is not None:
        out["assignment"] = _sub_to_dict(spec.assignment)
    if spec.interference is not None:
        out["interference"] = _sub_to_dict(spec.interference)
    out["protocol"] = _sub_to_dict(spec.protocol)
    if spec.metrics is not None:
        out["metrics"] = list(spec.metrics)
    if spec.precision is not None:
        out["precision"] = _sub_to_dict(spec.precision)
    if spec.notes:
        out["notes"] = spec.notes
    if spec.columns is not None:
        out["columns"] = list(spec.columns)
    return out


def _as_int(value: object, where: str) -> int:
    """Coerce a spec/override value to int, failing as a spec error."""
    try:
        if isinstance(value, bool) or not isinstance(
            value, (int, float, str)
        ):
            raise ValueError(value)
        if isinstance(value, float) and not value.is_integer():
            raise ValueError(value)
        return int(value)
    except ValueError:
        raise HarnessError(
            f"{where} must be an integer, got {value!r}"
        ) from None


def _build_sub(cls, payload: object, where: str):
    if not isinstance(payload, Mapping):
        raise HarnessError(f"{where} must be an object, got {payload!r}")
    allowed = {f.name for f in fields(cls)}
    unknown = set(payload) - allowed
    if unknown:
        raise HarnessError(
            f"unknown {where} keys: {', '.join(sorted(unknown))}; "
            f"valid: {', '.join(sorted(allowed))}"
        )
    return cls(**payload)


def spec_from_dict(payload: Mapping[str, object]) -> ScenarioSpec:
    """Build a declarative spec from a dict (e.g. a parsed JSON file).

    Unknown keys raise — a typo in a scenario file or a ``--set`` path
    must fail loudly, not silently produce the default workload.
    """
    if not isinstance(payload, Mapping):
        raise HarnessError(
            f"scenario payload must be an object, got {payload!r}"
        )
    known = {
        "name",
        "title",
        "description",
        "trials",
        "experiment_id",
        "tags",
        "sweep",
        "topology",
        "assignment",
        "interference",
        "protocol",
        "metrics",
        "precision",
        "notes",
        "columns",
    }
    unknown = set(payload) - known
    if unknown:
        raise HarnessError(
            f"unknown scenario keys: {', '.join(sorted(unknown))}; "
            f"valid: {', '.join(sorted(known))}"
        )
    if "name" not in payload or "protocol" not in payload:
        raise HarnessError("a scenario needs at least 'name' and 'protocol'")
    sweep = None
    if "sweep" in payload:
        raw = payload["sweep"]
        if not isinstance(raw, Mapping) or set(raw) - {"axes", "mode"}:
            raise HarnessError(
                "sweep must be an object with 'axes' (and optional 'mode')"
            )
        sweep = SweepSpec(
            axes=dict(raw.get("axes", {})), mode=raw.get("mode", "product")
        )
    kwargs = dict(
        name=payload["name"],
        title=payload.get("title", payload["name"]),
        description=payload.get("description", ""),
        trials=_as_int(payload.get("trials", 5), "trials"),
        experiment_id=payload.get("experiment_id"),
        tags=tuple(payload.get("tags", ())),
        sweep=sweep,
        protocol=_build_sub(ProtocolSpec, payload["protocol"], "protocol"),
        notes=payload.get("notes", ""),
    )
    if "topology" in payload:
        kwargs["topology"] = _build_sub(
            TopologySpec, payload["topology"], "topology"
        )
    if "assignment" in payload:
        kwargs["assignment"] = _build_sub(
            AssignmentSpec, payload["assignment"], "assignment"
        )
    if "interference" in payload:
        kwargs["interference"] = _build_sub(
            InterferenceSpec, payload["interference"], "interference"
        )
    if "metrics" in payload:
        kwargs["metrics"] = tuple(payload["metrics"])
    if payload.get("precision") is not None:
        kwargs["precision"] = _build_sub(
            PrecisionSpec, payload["precision"], "precision"
        )
    if "columns" in payload:
        kwargs["columns"] = list(payload["columns"])
    return ScenarioSpec(**kwargs)


def spec_digest(spec: ScenarioSpec) -> str:
    """A short stable digest of the spec's *content*.

    Declarative specs digest their canonical JSON form, so any
    parameter change (a ``--set`` override included) changes the digest
    — callable notes are digested by name only, never at the cost of
    dropping the parameters. Plan-based specs digest their identity
    only: their behavior lives in code, which the result cache already
    folds in as the code version.
    """
    if spec.is_declarative:
        if callable(spec.notes):
            payload = spec_to_dict(replace(spec, notes=""))
            payload["notes_callable"] = getattr(
                spec.notes, "__qualname__", repr(spec.notes)
            )
        else:
            payload = spec_to_dict(spec)
    else:
        # Plan behavior lives in code (covered by the cache's code
        # version); the overridable data fields still belong in the
        # digest so --set variants never collide.
        payload = {
            "name": spec.name,
            "plan": getattr(spec.plan, "__qualname__", repr(spec.plan)),
            "trials": spec.trials,
            "title": spec.title,
            "description": spec.description,
            "experiment_id": spec.experiment_id,
            "tags": list(spec.tags),
            "notes": (
                getattr(spec.notes, "__qualname__", repr(spec.notes))
                if callable(spec.notes)
                else spec.notes
            ),
            "columns": (
                list(spec.columns) if spec.columns is not None else None
            ),
        }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# CLI overrides (--set key=value)
# ----------------------------------------------------------------------
def _set_path(tree: Dict[str, object], path: str, value: object) -> None:
    parts = path.split(".")
    node = tree
    for part in parts[:-1]:
        child = node.get(part)
        if child is None:
            child = {}
            node[part] = child
        if not isinstance(child, dict):
            raise HarnessError(
                f"--set path {path!r}: {part!r} is not an object"
            )
        node = child
    node[parts[-1]] = value


def _parse_override_value(raw: str) -> object:
    try:
        return json.loads(raw)
    except ValueError:
        return raw  # bare strings (e.g. part2_listener=uniform)


# The spec fields that remain plain data on a plan-based (paper)
# scenario: everything else about those specs lives in their plan code.
_PLAN_DATA_FIELDS = (
    "trials",
    "title",
    "description",
    "experiment_id",
    "tags",
    "notes",
    "columns",
)


def _apply_plan_overrides(
    spec: ScenarioSpec, overrides: Mapping[str, str]
) -> ScenarioSpec:
    """``--set`` on a plan-based spec: full dotted paths over its data.

    Reuses the declarative override machinery (:func:`_set_path` over a
    dict form, JSON value parsing) restricted to the fields that are
    data even when the workload itself is code — so
    ``--set trials=8``, ``--set experiment_id=E12-jammed`` or
    ``--set notes="..."`` work on E1-E12, while sweep/topology/
    protocol paths are rejected with an explanation instead of
    silently ignored.
    """
    tree: Dict[str, object] = {}
    for path in overrides:
        root = path.split(".", 1)[0]
        if root not in _PLAN_DATA_FIELDS:
            raise HarnessError(
                f"scenario {spec.name!r} is code-defined (plan-based): "
                f"--set path {path!r} addresses its plan, which is not "
                "overridable data. Plan-based scenarios accept: "
                f"{', '.join(_PLAN_DATA_FIELDS)}"
            )
        if root not in tree:
            value = getattr(spec, root)
            tree[root] = list(value) if isinstance(value, tuple) else value
    for path, raw in overrides.items():
        _set_path(tree, path, _parse_override_value(raw))
    if "trials" in tree:
        tree["trials"] = _as_int(tree["trials"], "trials")
    if "tags" in tree:
        if not isinstance(tree["tags"], (list, tuple)):
            raise HarnessError(
                f"tags must be a list, got {tree['tags']!r}"
            )
        tree["tags"] = tuple(tree["tags"])
    return replace(spec, **tree)


def apply_overrides(
    spec: ScenarioSpec, overrides: Mapping[str, str]
) -> ScenarioSpec:
    """Apply ``--set path=value`` overrides, returning a new spec.

    Values parse as JSON when possible (so ``--set
    sweep.axes.activity=[0.1,0.8]`` and ``--set assignment.c=16`` work)
    and fall back to bare strings. Paths address the spec's dict form
    (``protocol.params.part1_steps``, ``trials``, ...).

    Plan-based (paper) scenarios accept the same dotted-path syntax
    over their data fields only (``trials``, ``title``,
    ``description``, ``experiment_id``, ``tags``, ``notes``,
    ``columns``); paths into their plan-owned structure (sweep,
    topology, protocol, ...) are rejected with a clear error.
    """
    if not overrides:
        return spec
    if not spec.is_declarative:
        return _apply_plan_overrides(spec, overrides)
    tree = spec_to_dict(spec)
    for path, raw in overrides.items():
        _set_path(tree, path, _parse_override_value(raw))
    return spec_from_dict(tree)
