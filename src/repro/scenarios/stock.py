"""Stock non-paper scenarios: the diversity the monolith couldn't reach.

These are fully declarative — every one of them round-trips through
JSON (they double as exemplars for user scenario files) and accepts
``--set`` overrides on any field. They exercise workload corners the
paper's evaluation never visits: planar deployments under heavy
primary-user activity, broadcast over heterogeneous-overlap grids,
COUNT accuracy as interference rises, and listener/budget ablations on
Erdos-Renyi connectivity.
"""

from __future__ import annotations

from repro.scenarios.registry import register
from repro.scenarios.spec import (
    AssignmentSpec,
    InterferenceSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)

__all__ = ["STOCK_SPECS"]

STOCK_SPECS = [
    register(
        ScenarioSpec(
            name="pu-geo-cseek",
            title="CSEEK on random-geometric radios under primary users",
            description=(
                "Neighbor discovery on planar deployments (the paper's "
                "motivating 'radios scattered in the plane') as licensed "
                "primary-user activity and burst length grow."
            ),
            trials=4,
            tags=("stock", "interference", "geometric"),
            sweep=SweepSpec(
                axes={
                    "activity": [0.0, 0.4, 0.8],
                    "dwell": [4.0, 300.0],
                }
            ),
            topology=TopologySpec("random_geometric", {"n": 16}),
            assignment=AssignmentSpec(kind="global_core", c=8, k=2),
            interference=InterferenceSpec(
                activity="$activity", mean_dwell="$dwell"
            ),
            protocol=ProtocolSpec("cseek"),
            notes=(
                "Extension workload: each sweep point samples a fresh "
                "connected geometric graph, layers a shared k-channel "
                "core (the licensed-band scenario) and measures CSEEK "
                "discovery under ON/OFF primary-user traffic. Short "
                "bursts are absorbed by COUNT's within-step redundancy; "
                "long bursts at high activity erase whole meetings and "
                "push success below 1."
            ),
        )
    ),
    register(
        ScenarioSpec(
            name="grid-cgcast-hetero",
            title="CGCAST on grids with heterogeneous overlaps",
            description=(
                "Global broadcast over a 3x4 grid whose edges share k or "
                "kmax channels, sweeping the overlap gap and the "
                "fraction of strong edges."
            ),
            trials=3,
            tags=("stock", "broadcast", "heterogeneous"),
            sweep=SweepSpec(
                axes={
                    "kmax": [2, 4],
                    "high_fraction": [0.25, 0.75],
                }
            ),
            topology=TopologySpec("grid", {"rows": 3, "cols": 4}),
            assignment=AssignmentSpec(
                kind="heterogeneous",
                c=16,
                k=1,
                kmax="$kmax",
                high_fraction="$high_fraction",
            ),
            protocol=ProtocolSpec("cgcast"),
            notes=(
                "Extension workload: Section 7's kmax >> k regime on a "
                "topology the paper never evaluates. CGCAST's setup "
                "budget stretches with kmax/k while the dissemination "
                "stage rides Delta=4 only, so mean_dissemination should "
                "stay nearly flat across the sweep as schedule_slots "
                "grows."
            ),
        )
    ),
    register(
        ScenarioSpec(
            name="count-interference",
            title="COUNT accuracy under primary-user interference",
            description=(
                "Lemma 1's estimator as channel occupancy rises: a "
                "broadcaster-count x activity grid measuring estimate "
                "bias and band rate."
            ),
            trials=20,
            tags=("stock", "count", "interference"),
            sweep=SweepSpec(
                axes={
                    "m": [2, 8, 32],
                    "activity": [0.0, 0.3, 0.6],
                }
            ),
            interference=InterferenceSpec(
                activity="$activity", mean_dwell=4.0
            ),
            protocol=ProtocolSpec(
                "count",
                {
                    "m": "$m",
                    "max_count": 32,
                    "log_n": 5,
                    "rule": "argmax",
                    "round_slots": 8.0,
                },
            ),
            notes=(
                "Extension workload: occupancy deletes receptions "
                "uniformly across rounds, so the argmax rule's peak "
                "round is unchanged in expectation — median_ratio should "
                "hold near 1 while band_rate degrades only at high "
                "activity, where whole rounds go silent."
            ),
        )
    ),
    register(
        ScenarioSpec(
            name="er-cseek-ablation",
            title="CSEEK budget x listener ablation on Erdos-Renyi graphs",
            description=(
                "Starved part-one budgets crossed with the "
                "weighted/uniform part-two listener on sparse random "
                "connectivity."
            ),
            trials=4,
            tags=("stock", "ablation"),
            sweep=SweepSpec(
                axes={
                    "part1_steps": [20, 80],
                    "listener": ["weighted", "uniform"],
                }
            ),
            # Topology and assignment pin their seeds to $seed (not the
            # per-point $pseed) so every ablation cell runs on the same
            # graph — the listener comparison stays apples-to-apples.
            topology=TopologySpec("erdos_renyi", {"n": 18, "seed": "$seed"}),
            assignment=AssignmentSpec(
                kind="global_core", c=8, k=2, seed="$seed"
            ),
            protocol=ProtocolSpec(
                "cseek",
                {
                    "part1_steps": "$part1_steps",
                    "part2_steps": 150,
                    "part2_listener": "$listener",
                },
            ),
            notes=(
                "Extension workload: Lemma 3's mechanism off the paper's "
                "star worst case. With part one starved, the "
                "density-weighted listener should reach higher success "
                "at the same slot budget than the uniform ablation; the "
                "gap narrows as part1_steps grows."
            ),
        )
    ),
    register(
        ScenarioSpec(
            name="whitespace-cseek",
            title="CSEEK on white-space overlap-induced deployments",
            description=(
                "Dense deployments sampling c channels from a finite "
                "spectrum pool: connectivity is emergent from channel "
                "overlap, swept over the pool size."
            ),
            trials=4,
            tags=("stock", "whitespace"),
            sweep=SweepSpec(axes={"pool_size": [12, 20, 28]}),
            # No topology spec: random_subsets induces the graph from
            # the sampled channel sets (>= k shared channels <=> edge).
            assignment=AssignmentSpec(
                kind="random_subsets",
                n=14,
                c=6,
                k=2,
                pool_size="$pool_size",
            ),
            protocol=ProtocolSpec("cseek"),
            notes=(
                "Extension workload: the introduction's white-space "
                "setting, where nodes do not choose overlaps — they "
                "sample from whatever spectrum is locally free. Small "
                "pools make overlap (and contention) heavy; larger "
                "pools thin both the induced graph and the per-edge "
                "overlap toward the k=2 threshold, so discovery slows "
                "as pool_size grows even though the protocol budget is "
                "unchanged."
            ),
        )
    ),
    register(
        ScenarioSpec(
            name="markov-vs-poisson",
            title="Markov vs Poisson primary-user traffic on CSEEK",
            description=(
                "The same stationary occupancy delivered as bursty "
                "ON/OFF chains vs memoryless per-slot losses: the "
                "traffic model itself is a sweep axis."
            ),
            trials=4,
            tags=("stock", "interference", "environment"),
            sweep=SweepSpec(
                axes={
                    "model": ["markov", "poisson"],
                    "activity": [0.3, 0.6, 0.85],
                }
            ),
            # Graph and assignment pin their seeds to $seed so every
            # (model, activity) cell runs on the same network — only
            # the traffic process differs.
            topology=TopologySpec(
                "random_regular", {"n": 16, "d": 3, "seed": "$seed"}
            ),
            assignment=AssignmentSpec(
                kind="global_core", c=8, k=2, seed="$seed"
            ),
            interference=InterferenceSpec(
                model="$model", activity="$activity", mean_dwell=24.0
            ),
            protocol=ProtocolSpec("cseek"),
            notes=(
                "Extension workload: at matched occupancy, Poisson "
                "losses are spread uniformly over slots, so COUNT's "
                "within-step redundancy absorbs them and success "
                "degrades only at extreme activity; Markov traffic "
                "concentrates the same loss budget into dwell-24 "
                "bursts that can erase whole meeting steps, breaking "
                "discovery earlier. The gap between the two rows at "
                "equal activity isolates burstiness — not raw "
                "occupancy — as what CSEEK's w.h.p. slack buys "
                "protection against."
            ),
        )
    ),
]
