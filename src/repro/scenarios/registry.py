"""Scenario registry + the top-level ``run_scenario`` entry point.

Stock scenarios register at import time (:mod:`repro.scenarios.paper`
for E1-E12, :mod:`repro.scenarios.stock` for the non-paper workloads);
user scenarios arrive as JSON files via :func:`load_scenario_file`.
Lookup is case-insensitive; listing preserves registration order so
paper experiments lead.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.harness.cache import load_table, store_table
from repro.harness.executor import Executor
from repro.harness.runner import ExperimentTable
from repro.model.errors import HarnessError
from repro.scenarios.compile import run_scenario_spec
from repro.scenarios.spec import (
    ScenarioSpec,
    apply_overrides,
    spec_digest,
    spec_from_dict,
)
from repro.scenarios.streaming import stream_scenario_spec

__all__ = [
    "cache_extra",
    "get_scenario",
    "iter_scenarios",
    "load_scenario_file",
    "register",
    "resolve_scenario",
    "run_scenario",
    "scenario_ids",
]

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Register a spec under its (case-insensitive) name."""
    key = spec.name.lower()
    if key in _REGISTRY:
        raise HarnessError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[key] = spec
    return spec


def scenario_ids() -> List[str]:
    """Registered scenario names, in registration order."""
    return [spec.name for spec in _REGISTRY.values()]


def iter_scenarios() -> List[ScenarioSpec]:
    """Registered specs, in registration order."""
    return list(_REGISTRY.values())


def get_scenario(name: str) -> ScenarioSpec:
    """Look a registered scenario up by name (case-insensitive)."""
    spec = _REGISTRY.get(name.lower())
    if spec is None:
        raise HarnessError(
            f"unknown scenario {name!r}; valid: "
            f"{', '.join(scenario_ids())} (or a path to a .json "
            "scenario file)"
        )
    return spec


def load_scenario_file(path: "str | Path") -> ScenarioSpec:
    """Parse a JSON scenario file into a declarative spec."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise HarnessError(f"cannot read scenario file {path}: {exc}")
    except ValueError as exc:
        raise HarnessError(f"scenario file {path} is not valid JSON: {exc}")
    return spec_from_dict(payload)


def resolve_scenario(
    scenario: "str | ScenarioSpec",
    overrides: Optional[Mapping[str, str]] = None,
) -> ScenarioSpec:
    """Resolve a name / file path / spec into an effective spec.

    The single lookup used by :func:`run_scenario` and the campaign
    layer: a registered name, a path to a ``.json`` scenario file
    (anything containing a path separator or ending in ``.json``), or
    an already-built spec — with ``--set``-style ``overrides`` applied
    on top. Resolution never executes anything, so campaign planning
    can compute spec digests and store keys up front.
    """
    if isinstance(scenario, ScenarioSpec):
        spec = scenario
    elif "/" in scenario or scenario.endswith(".json"):
        spec = load_scenario_file(scenario)
    else:
        spec = get_scenario(scenario)
    if overrides:
        spec = apply_overrides(spec, overrides)
    return spec


def cache_extra(spec: ScenarioSpec) -> Dict[str, object]:
    """The extra identity a scenario run folds into its cache key.

    Shared with the campaign run store, whose entry keys must match
    what :func:`run_scenario` would use — that is what lets a campaign
    resume skip completed entries bit-identically.
    """
    return {"scenario": spec.name.lower(), "digest": spec_digest(spec)}


def run_scenario(
    scenario: "str | ScenarioSpec",
    trials: Optional[int] = None,
    seed: int = 0,
    jobs: "int | str | Executor | None" = None,
    overrides: Optional[Mapping[str, str]] = None,
    cache: bool = False,
    cache_dir: "str | Path | None" = None,
) -> ExperimentTable:
    """Run a scenario by name, file path, or spec.

    Args:
        scenario: A registered name, a path to a ``.json`` scenario
            file (anything containing a path separator or ending in
            ``.json``), or a :class:`ScenarioSpec`.
        trials: Trials per sweep point (None = the spec's default).
        seed: Master seed.
        jobs: Execution strategy; never changes rows.
        overrides: ``--set``-style path->value overrides applied to the
            spec before running (see
            :func:`repro.scenarios.spec.apply_overrides`).
        cache: Consult/populate the deterministic result cache. The key
            includes the spec digest, so overridden runs never collide
            with default-parameter entries.
        cache_dir: Cache location override.

    A spec carrying a ``precision`` contract routes through the
    streaming path (:func:`repro.scenarios.streaming.
    stream_scenario_spec`): memory-capped chunks with CI-targeted
    stopping instead of a fixed trial count. ``trials`` is ignored
    there — the contract's ``min_trials``/``max_trials`` govern — and
    the cache keys on ``max_trials`` plus the spec digest (which covers
    the whole precision block), so streamed results never collide with
    fixed-trials entries.
    """
    spec = resolve_scenario(scenario, overrides)
    if spec.precision is not None:
        effective_trials = spec.precision.max_trials
    else:
        effective_trials = trials if trials is not None else spec.trials
    extra = cache_extra(spec)
    if cache:
        cached = load_table(
            spec.table_id,
            effective_trials,
            seed,
            cache_dir=cache_dir,
            extra=extra,
        )
        if cached is not None:
            return cached
    if spec.precision is not None:
        table = stream_scenario_spec(spec, seed=seed, jobs=jobs)
    else:
        table = run_scenario_spec(
            spec, trials=effective_trials, seed=seed, jobs=jobs
        )
    if cache:
        try:
            store_table(
                table,
                effective_trials,
                seed,
                cache_dir=cache_dir,
                extra=extra,
            )
        except OSError as exc:
            warnings.warn(
                f"could not store scenario {spec.name!r} in the result "
                f"cache: {exc}",
                stacklevel=2,
            )
    return table
