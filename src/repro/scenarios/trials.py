"""Trial-closure factories — the one place ``run_batch`` is generated.

Every experiment ultimately hands :func:`repro.harness.runner.run_trials`
a callable of one trial seed. To ride the vectorized
:class:`~repro.harness.executor.BatchedExecutor`, that callable must
also carry a ``run_batch(seeds)`` attribute routing the whole seed list
through the sim layer's batched primitives. The harness used to
hand-roll that pairing per experiment; these factories build it once
per protocol family, with the serial path as the reference semantics
the batched path must reproduce bit-for-bit:

* :func:`cseek_trial` — full CSEEK/CKSEEK executions, batched through
  :class:`repro.core.cseek_batch.CSeekBatch`.
* :func:`cgcast_trial` — full CGCAST executions, batched end-to-end
  through :class:`repro.core.cgcast_batch.CGCastBatch`.
* :func:`count_trial` — single COUNT steps, batched through
  :func:`repro.core.count.run_count_step_batch`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core import (
    CGCast,
    CGCastBatch,
    CGCastXBatch,
    CSeek,
    CSeekBatch,
    CSeekXBatch,
    CountXBatch,
    ProtocolConstants,
    count_schedule,
    run_count_step,
    run_count_step_batch,
)

__all__ = [
    "broadcaster_star",
    "cgcast_trial",
    "count_trial",
    "cseek_trial",
]


def cseek_trial(
    make_protocol: Callable[[int], CSeek],
    postprocess: Callable[..., object],
    jammer_factory: Callable[[int], object] | None = None,
    environment=None,
) -> Callable[[int], object]:
    """A full-protocol CSEEK/CKSEEK trial with a vectorized trial axis.

    The serial path constructs and runs one protocol per seed (the
    reference semantics every executor must reproduce). The ``run_batch``
    attribute — picked up by the ``jobs="batch"`` executor — routes the
    whole seed list through :class:`repro.core.cseek_batch.CSeekBatch`
    instead, so each part-one step and part-two window of *all* trials
    resolves as one batched engine call; per-trial results are
    bit-identical to the serial path. ``make_protocol`` must be
    homogeneous in the seed (same network/budgets/policy every call).
    Primary-user traffic comes from ``environment`` (a
    :class:`~repro.sim.environment.SpectrumEnvironment`, jammed in one
    batched gather per step) or the deprecated per-trial
    ``jammer_factory``.
    """

    def trial(s: int):
        proto = make_protocol(s)
        if jammer_factory is not None:
            proto.jammer = jammer_factory(s)
        elif environment is not None:
            proto.environment = environment
        return postprocess(proto.run())

    def run_batch(seeds):
        batch = CSeekBatch.from_serial(
            make_protocol(0),
            jammer_factory=jammer_factory,
            environment=environment,
        )
        return [postprocess(r) for r in batch.run(seeds)]

    trial.run_batch = run_batch
    # Cross-point grouping descriptor (jobs="xbatch"): points whose
    # signatures match run as one lockstep execution.
    trial.xbatch = CSeekXBatch(
        make_protocol=make_protocol,
        postprocess=postprocess,
        jammer_factory=jammer_factory,
        environment=environment,
    )
    return trial


def cgcast_trial(
    make_protocol: Callable[..., CGCast],
    postprocess: Callable[..., object],
    environment=None,
) -> Callable[[int], object]:
    """A full-pipeline CGCAST trial with a vectorized trial axis.

    ``make_protocol(seed, discovery=None)`` must build the protocol
    homogeneously in the seed. Serially each trial runs the whole
    pipeline; under ``jobs="batch"`` the entire execution — discovery,
    exchanges, coloring, dissemination — of all trials runs in lockstep
    via :class:`repro.core.cgcast_batch.CGCastBatch`, bit-identical per
    trial to the serial path. When the protocol is built with a
    spectrum environment, pass the same ``environment`` here so the
    batched discovery jams identically.
    """

    def trial(s: int, discovery=None):
        return postprocess(make_protocol(s, discovery=discovery).run())

    def run_batch(seeds):
        batch = CGCastBatch.from_serial(
            make_protocol(0), environment=environment
        )
        return [postprocess(r) for r in batch.run(seeds)]

    trial.run_batch = run_batch
    # Cross-point grouping descriptor (jobs="xbatch"): points whose
    # signatures match run as one lockstep execution.
    trial.xbatch = CGCastXBatch(
        make_protocol=make_protocol,
        postprocess=postprocess,
        environment=environment,
    )
    return trial


def broadcaster_star(m: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The COUNT test rig: one listener facing ``m`` broadcasters.

    Returns ``(adjacency, channels, tx_role)`` for a star whose hub
    (node 0) listens on channel 0 while all ``m`` leaves broadcast.
    """
    n = m + 1
    adj = np.zeros((n, n), dtype=bool)
    adj[0, 1:] = True
    adj[1:, 0] = True
    channels = np.zeros(n, dtype=np.int64)
    tx_role = np.ones(n, dtype=bool)
    tx_role[0] = False
    return adj, channels, tx_role


def count_trial(
    adj: np.ndarray,
    channels: np.ndarray,
    tx_role: np.ndarray,
    max_count: int,
    log_n: int,
    constants: ProtocolConstants,
    postprocess: Callable[[np.ndarray], object],
    jammer_factory: Callable[[int], object] | None = None,
    environment=None,
) -> Callable[[int], object]:
    """A single-COUNT-step trial with a vectorized trial axis.

    ``postprocess`` receives the ``(n,)`` listener-estimate vector of
    one trial. Under ``jobs="batch"`` the whole trial axis resolves
    through :func:`run_count_step_batch` in one engine call; per-trial
    coins are drawn exactly as the serial path draws them, and a
    spectrum ``environment`` jams the whole axis with one batched
    gather (``jammer_factory`` is the deprecated per-trial
    alternative).
    """
    rounds, round_length = count_schedule(max_count, log_n, constants)
    total_slots = rounds * round_length

    def _jam(s: int) -> Optional[np.ndarray]:
        if jammer_factory is not None:
            return jammer_factory(s).jam_mask(channels, total_slots)
        if environment is not None:
            return environment.stream(s).jam_mask(channels, total_slots)
        return None

    def trial(s: int):
        out = run_count_step(
            adj,
            channels,
            tx_role,
            max_count=max_count,
            log_n=log_n,
            constants=constants,
            rng=np.random.default_rng(s),
            jam=_jam(s),
        )
        return postprocess(out.estimates)

    def run_batch(seeds: Sequence[int]):
        jam = None
        if environment is not None:
            jam = environment.streams(seeds).jam_mask(
                channels, total_slots
            )
        elif jammer_factory is not None:
            jam = np.stack([_jam(s) for s in seeds])
        out = run_count_step_batch(
            adj,
            channels,
            tx_role,
            max_count=max_count,
            log_n=log_n,
            constants=constants,
            rngs=[np.random.default_rng(s) for s in seeds],
            jam=jam,
        )
        return [postprocess(row) for row in out.estimates]

    trial.run_batch = run_batch
    trial.xbatch = CountXBatch(
        adj=adj,
        channels=channels,
        tx_role=tx_role,
        max_count=max_count,
        log_n=log_n,
        constants=constants,
        postprocess=postprocess,
        jammer_factory=jammer_factory,
        environment=environment,
    )
    return trial
