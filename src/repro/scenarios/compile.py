"""The scenario compiler: specs -> executable experiment plans.

A compiled scenario is a sequence of :class:`Point` objects, one per
sweep point. Each point names one or more :class:`Run` entries (one
``run_trials`` invocation each — trial callable, seed-stream label,
master seed, trial count) plus a reducer turning the collected outcomes
into table rows. :func:`run_scenario_spec` walks the plan with one
shared executor, so a scenario runs serially, on a process pool
(``jobs=N``) or vectorized over the trial axis (``jobs="batch"``)
without the spec knowing — and produces identical rows either way,
because per-trial seeds derive up front.

Declarative specs are lowered here too: the topology and assignment
specs build the network, the interference spec becomes a spectrum
environment (:mod:`repro.sim.environment` — Markov, Poisson or static
primary-user traffic), the protocol spec picks a trial factory from
:mod:`repro.scenarios.trials` (the single home of ``run_batch``
generation), and a stock reducer computes the protocol family's metric
columns. Plan-based specs (the paper experiments) skip the lowering and
supply Points directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis import success_rate, summarize
from repro.baselines import NaiveBroadcast, NaiveDiscovery
from repro.core import (
    CGCast,
    CKSeek,
    CSeek,
    ProtocolConstants,
    count_schedule,
    run_group,
    verify_discovery,
    verify_k_discovery,
)
from repro.graphs import builders, topologies
from repro.harness.executor import Executor, XBatchExecutor, get_executor
from repro.harness.runner import ExperimentTable, run_trials
from repro.model.errors import HarnessError
from repro.model.spec import ceil_log2
from repro.scenarios.spec import ScenarioSpec, resolve
from repro.sim.rng import RngHub
from repro.scenarios.trials import (
    broadcaster_star,
    cgcast_trial,
    count_trial,
    cseek_trial,
)
from repro.sim import SpectrumEnvironment, make_environment

__all__ = [
    "LoweredPoint",
    "Point",
    "Run",
    "RunContext",
    "lower_points",
    "run_scenario_spec",
    "scenario_plan",
]

Row = Dict[str, object]
Jobs = int | str | Executor | None


@dataclass
class Run:
    """One ``run_trials`` invocation inside a sweep point.

    Attributes:
        key: Name under which the outcome list reaches the reducer.
        trial: The trial callable (with ``run_batch`` when batchable).
        label: Seed-stream label (decorrelates runs sharing a seed).
        seed: Master seed for this run's trial-seed derivation.
        trials: Optional trial-count override (default: the context's).
    """

    key: str
    trial: Callable[[int], object]
    label: str
    seed: int
    trials: Optional[int] = None


@dataclass
class Point:
    """One sweep point: runs to execute + a reducer producing rows.

    ``reduce(ctx, outcomes)`` receives the per-run outcome lists keyed
    by run name and returns the point's table rows (several experiments
    emit more than one row per set of trials). Reducers may stash
    derived values in ``ctx.extras`` for computed notes.
    """

    runs: Sequence[Run]
    reduce: Callable[["RunContext", Dict[str, list]], List[Row]]


@dataclass
class RunContext:
    """Per-invocation knobs handed to plans, reducers and notes."""

    trials: int
    seed: int
    extras: Dict[str, object] = field(default_factory=dict)


@dataclass
class LoweredPoint:
    """One declarative sweep point, lowered for both execution paths.

    The fixed-trials path consumes :attr:`point` (whose reducer is the
    reference arithmetic golden tables pin). The streaming path
    (:mod:`repro.scenarios.streaming`) consumes the rest: the same
    trial callable and seed-stream label, plus the metadata its online
    accumulators need to reproduce the reducer's columns chunk by
    chunk — the metric ``family`` names the outcome shape, ``static``
    carries the point's constant columns (e.g. ``khat``), and
    ``context`` carries family constants (e.g. the true broadcaster
    count ``m`` the COUNT metrics normalize by).
    """

    point: Point
    key: str
    trial: Callable[[int], object]
    label: str
    params: Row
    family: str
    static: Row = field(default_factory=dict)
    context: Row = field(default_factory=dict)


def scenario_plan(spec: ScenarioSpec, ctx: RunContext) -> Iterable[Point]:
    """The spec's point sequence (declarative lowering or its plan)."""
    if spec.plan is not None:
        return spec.plan(ctx)
    return _declarative_plan(spec, ctx)


def run_scenario_spec(
    spec: ScenarioSpec,
    trials: Optional[int] = None,
    seed: int = 0,
    jobs: Jobs = None,
) -> ExperimentTable:
    """Compile and execute a scenario; return its table.

    Args:
        spec: The scenario to run.
        trials: Trials per sweep point (None = the spec's default).
        seed: Master seed.
        jobs: Execution strategy (see
            :func:`repro.harness.executor.get_executor`); never changes
            rows, only wall-clock. ``jobs="xbatch"`` additionally
            groups declarative sweep points with matching cross-point
            signatures into single lockstep executions.
    """
    executor = get_executor(jobs)
    ctx = RunContext(
        trials=trials if trials is not None else spec.trials, seed=seed
    )
    if isinstance(executor, XBatchExecutor) and spec.plan is None:
        rows = _xbatch_rows(spec, ctx, executor)
    else:
        rows = []
        for point in scenario_plan(spec, ctx):
            outcomes: Dict[str, list] = {}
            for run in point.runs:
                outcomes[run.key] = run_trials(
                    run.trial,
                    run.trials if run.trials is not None else ctx.trials,
                    run.seed,
                    label=run.label,
                    executor=executor,
                )
            rows.extend(point.reduce(ctx, outcomes))
    notes = spec.notes(rows, ctx) if callable(spec.notes) else spec.notes
    return ExperimentTable(
        experiment_id=spec.table_id,
        title=spec.title,
        rows=rows,
        notes=notes,
        columns=spec.columns,
    )


def _xbatch_rows(
    spec: ScenarioSpec, ctx: RunContext, executor: XBatchExecutor
) -> List[Row]:
    """Execute a declarative spec with cross-point lockstep grouping.

    Runs whose trial factories publish matching
    :meth:`~repro.core.xbatch.XBatchable.signature` descriptors are
    concatenated along one trial axis and executed through
    :func:`repro.core.run_group` — one engine call per protocol step
    for the whole compatibility group, instead of one per sweep point.
    Runs without a descriptor fall back to the executor's inherited
    per-run batch path. Per-trial seeds derive exactly as
    :func:`~repro.harness.runner.run_trials` derives them, so rows are
    byte-identical to every other ``jobs`` value; reducers still see
    outcomes per point, in sweep order.
    """
    lowered = list(lower_points(spec, ctx))
    entries: List[Run] = []  # flattened (point, run) pairs
    by_point: List[List[int]] = []  # entry indices per lowered point
    groups: Dict[tuple, List[int]] = {}
    for lp in lowered:
        idxs: List[int] = []
        for run in lp.point.runs:
            e = len(entries)
            entries.append(run)
            idxs.append(e)
            xb = getattr(run.trial, "xbatch", None)
            if xb is not None:
                groups.setdefault(xb.signature(), []).append(e)
        by_point.append(idxs)

    def run_seeds(run: Run) -> List[int]:
        count = run.trials if run.trials is not None else ctx.trials
        return RngHub(run.seed).spawn_seeds(count, name=run.label)

    grouped: Dict[int, list] = {}
    for members in groups.values():
        xs = [entries[e].trial.xbatch for e in members]
        seed_lists = [run_seeds(entries[e]) for e in members]
        for e, outs in zip(
            members, run_group(xs, seed_lists, executor.batch_size)
        ):
            grouped[e] = outs

    rows: List[Row] = []
    for lp, idxs in zip(lowered, by_point):
        outcomes: Dict[str, list] = {}
        for e in idxs:
            run = entries[e]
            if e in grouped:
                outcomes[run.key] = grouped[e]
            else:
                outcomes[run.key] = run_trials(
                    run.trial,
                    run.trials if run.trials is not None else ctx.trials,
                    run.seed,
                    label=run.label,
                    executor=executor,
                )
        rows.extend(lp.point.reduce(ctx, outcomes))
    return rows


# ----------------------------------------------------------------------
# Declarative lowering
# ----------------------------------------------------------------------
_TOPOLOGY_BUILDERS: Dict[str, Callable] = {
    "star": topologies.star,
    "path": topologies.path,
    "cycle": topologies.cycle,
    "grid": topologies.grid,
    "complete_tree": topologies.complete_tree,
    "path_of_cliques": topologies.path_of_cliques,
    "random_geometric": topologies.random_geometric,
    "erdos_renyi": topologies.erdos_renyi_connected,
    "random_regular": topologies.random_regular,
    "two_node": topologies.two_node,
}
# Generators that take a `seed` argument (defaulted to $pseed).
_SEEDED_TOPOLOGIES = {"random_geometric", "erdos_renyi", "random_regular"}


def _build_net(spec: ScenarioSpec, scope: Dict[str, object]):
    assignment = spec.assignment
    if assignment is None:
        raise HarnessError(
            f"scenario {spec.name!r} needs an assignment spec for "
            f"protocol {spec.protocol.kind!r}"
        )
    if assignment.kind == "random_subsets":
        # White-space lowering: the assignment induces the graph, so
        # there is no topology to build (the spec layer enforces that).
        return builders.build_random_subset_network(
            n=int(resolve(assignment.n, scope)),
            c=int(resolve(assignment.c, scope)),
            k=int(resolve(assignment.k, scope)),
            pool_size=int(resolve(assignment.pool_size, scope)),
            seed=int(resolve(assignment.seed, scope)),
            max_tries=int(resolve(assignment.max_tries, scope)),
        )
    params = dict(resolve(dict(spec.topology.params), scope))
    if spec.topology.kind in _SEEDED_TOPOLOGIES:
        params.setdefault("seed", scope["pseed"])
    graph = _TOPOLOGY_BUILDERS[spec.topology.kind](**params)
    return builders.build_network(
        graph,
        c=int(resolve(assignment.c, scope)),
        k=int(resolve(assignment.k, scope)),
        seed=int(resolve(assignment.seed, scope)),
        kind=assignment.kind,
        kmax=(
            None
            if assignment.kmax is None
            else int(resolve(assignment.kmax, scope))
        ),
        high_fraction=float(resolve(assignment.high_fraction, scope)),
    )


def _environment(
    spec: ScenarioSpec,
    scope: Dict[str, object],
    channel_ids: Sequence[int],
) -> Optional[SpectrumEnvironment]:
    """Lower the interference spec into a spectrum environment.

    Returns None when the sweep point disables interference (zero
    activity, or an empty blocked set for the static model), so
    downstream trial factories skip jam masks entirely. Invalid
    resolved model names fail here with the environment layer's error.
    """
    inter = spec.interference
    if inter is None:
        return None
    blocked = resolve(inter.blocked, scope)
    # A list activity is a per-channel vector (aligned with the sorted
    # channel universe); scalars keep the homogeneous behavior.
    activity = resolve(inter.activity, scope)
    if isinstance(activity, (list, tuple)):
        activity = [float(a) for a in activity]
    else:
        activity = float(activity)
    return make_environment(
        str(resolve(inter.model, scope)),
        sorted(channel_ids),
        activity=activity,
        mean_dwell=float(resolve(inter.mean_dwell, scope)),
        seed_offset=int(resolve(inter.seed_offset, scope)),
        blocked=None if blocked is None else list(blocked),
    )


def _filter_metrics(
    spec: ScenarioSpec, params: Row, metrics: Row
) -> List[Row]:
    if spec.metrics is not None:
        unknown = set(spec.metrics) - set(metrics)
        if unknown:
            raise HarnessError(
                f"scenario {spec.name!r} requests unknown metrics: "
                f"{', '.join(sorted(unknown))}; available: "
                f"{', '.join(metrics)}"
            )
        metrics = {k: metrics[k] for k in spec.metrics}
    return [{**params, **metrics}]


def _discovered_fraction(result, truth) -> float:
    """Fraction of true (listener, neighbor) pairs the run discovered."""
    total = sum(len(s) for s in truth)
    if total == 0:
        return 1.0
    found = sum(
        len(result.discovered[u] & set(truth[u]))
        for u in range(len(truth))
    )
    return found / total


def _discovery_metrics(outcomes: list) -> Row:
    """Stock columns for discovery trials.

    Each outcome is ``(success, completion_slot, total_slots,
    discovered_fraction)``; the fraction keeps starved-budget ablations
    informative where binary success saturates at 0 or 1.
    """
    done = [t for ok, t, _, _ in outcomes if ok and t is not None]
    return {
        "success": success_rate([ok for ok, _, _, _ in outcomes]),
        "discovered_fraction": summarize(
            [f for _, _, _, f in outcomes]
        ).mean,
        "mean_completion": summarize(done).mean if done else None,
        "schedule_slots": outcomes[0][2],
    }


def _lower_point(
    spec: ScenarioSpec, ctx: RunContext, idx: int, params: Row
) -> LoweredPoint:
    scope: Dict[str, object] = dict(params)
    scope.update(seed=ctx.seed, point=idx, pseed=ctx.seed + idx)
    kind = spec.protocol.kind
    proto_params = dict(resolve(dict(spec.protocol.params), scope))
    label = f"{spec.name}[{idx}]"

    if kind == "count":
        if "m" not in proto_params:
            raise HarnessError(
                f"scenario {spec.name!r}: count protocol needs an 'm' "
                "parameter (broadcaster count)"
            )
        m = int(proto_params["m"])
        max_count = int(proto_params.get("max_count", m))
        log_n = int(proto_params.get("log_n", ceil_log2(m + 1)))
        consts_kwargs = {"count_rule": proto_params.get("rule", "argmax")}
        if "round_slots" in proto_params:
            consts_kwargs["count_round_slots"] = float(
                proto_params["round_slots"]
            )
        constants = ProtocolConstants(**consts_kwargs)
        adj, channels, tx_role = broadcaster_star(m)
        trial = count_trial(
            adj,
            channels,
            tx_role,
            max_count=max_count,
            log_n=log_n,
            constants=constants,
            postprocess=lambda est: float(est[0]),
            environment=_environment(spec, scope, [0]),
        )
        rounds, length = count_schedule(max_count, log_n, constants)

        def reduce_count(ctx, outcomes, m=m, slots=rounds * length):
            estimates = outcomes["count"]
            metrics = {
                "median_ratio": float(np.median([e / m for e in estimates])),
                "band_rate": success_rate(
                    [m / 4 <= e <= 4 * m for e in estimates]
                ),
                "slots": slots,
            }
            return _filter_metrics(spec, params, metrics)

        return LoweredPoint(
            point=Point(
                runs=[Run("count", trial, label, ctx.seed)],
                reduce=reduce_count,
            ),
            key="count",
            trial=trial,
            label=label,
            params=params,
            family="count",
            static={"slots": rounds * length},
            context={"m": m},
        )

    net = _build_net(spec, scope)
    environment = _environment(
        spec, scope, sorted(net.assignment.universe())
    )

    if kind in ("cseek", "ckseek"):
        if kind == "ckseek":
            if "khat" not in proto_params:
                raise HarnessError(
                    f"scenario {spec.name!r}: ckseek needs a 'khat' "
                    "parameter"
                )
            khat = int(proto_params.pop("khat"))
            delta_khat = proto_params.pop("delta_khat", "auto")
            if delta_khat == "auto":
                delta_khat = net.max_good_degree(khat)
            truth = net.good_neighbor_sets(khat)

            def make_protocol(s, net=net, khat=khat, dk=delta_khat):
                return CKSeek(
                    net, khat=khat, delta_khat=dk, seed=s, **proto_params
                )

            def postprocess(result, net=net, khat=khat, truth=truth):
                report = verify_k_discovery(result, net, khat=khat)
                return (
                    report.success,
                    report.completion_slot,
                    result.total_slots,
                    _discovered_fraction(result, truth),
                )

            extra_cols = {"khat": khat, "delta_khat": delta_khat}
        else:
            truth = net.true_neighbor_sets()

            def make_protocol(s, net=net):
                return CSeek(net, seed=s, **proto_params)

            def postprocess(result, net=net, truth=truth):
                report = verify_discovery(result, net)
                return (
                    report.success,
                    report.completion_slot,
                    result.total_slots,
                    _discovered_fraction(result, truth),
                )

            extra_cols = {}
        trial = cseek_trial(
            make_protocol, postprocess, environment=environment
        )

        def reduce_discovery(ctx, outcomes, extra_cols=extra_cols):
            metrics = {**extra_cols, **_discovery_metrics(outcomes[kind])}
            return _filter_metrics(spec, params, metrics)

        return LoweredPoint(
            point=Point(
                runs=[Run(kind, trial, label, ctx.seed)],
                reduce=reduce_discovery,
            ),
            key=kind,
            trial=trial,
            label=label,
            params=params,
            family="discovery",
            static=dict(extra_cols),
        )

    if kind == "cgcast":
        source = int(proto_params.pop("source", 0))

        def make_cgcast(
            s, discovery=None, net=net, source=source, env=environment
        ):
            return CGCast(
                net, source=source, seed=s, discovery=discovery,
                environment=env, **proto_params,
            )

        def cg_outcome(result):
            return (
                result.success,
                result.ledger.get("dissemination"),
                result.total_slots,
            )

        trial = cgcast_trial(
            make_cgcast, cg_outcome, environment=environment
        )

        def reduce_cgcast(ctx, outcomes):
            cg = outcomes["cgcast"]
            diss = [d for ok, d, _ in cg if ok and d is not None]
            metrics = {
                "success": success_rate([ok for ok, _, _ in cg]),
                "mean_dissemination": (
                    summarize(diss).mean if diss else None
                ),
                "schedule_slots": cg[0][2],
            }
            return _filter_metrics(spec, params, metrics)

        return LoweredPoint(
            point=Point(
                runs=[Run("cgcast", trial, label, ctx.seed)],
                reduce=reduce_cgcast,
            ),
            key="cgcast",
            trial=trial,
            label=label,
            params=params,
            family="cgcast",
        )

    if kind == "naive_discovery":
        nd_truth = net.true_neighbor_sets()
        if "max_slots" in proto_params:
            proto_params["max_slots"] = int(proto_params["max_slots"])

        def nd_trial(s, net=net, truth=nd_truth, params=proto_params):
            nd = NaiveDiscovery(
                net, seed=s, environment=environment, **params
            )
            result = nd.run()
            report = nd.verify(result)
            return (
                report.success,
                report.completion_slot,
                result.total_slots,
                _discovered_fraction(result, truth),
            )

        def reduce_nd(ctx, outcomes):
            return _filter_metrics(
                spec, params, _discovery_metrics(outcomes["naive_discovery"])
            )

        return LoweredPoint(
            point=Point(
                runs=[Run("naive_discovery", nd_trial, label, ctx.seed)],
                reduce=reduce_nd,
            ),
            key="naive_discovery",
            trial=nd_trial,
            label=label,
            params=params,
            family="discovery",
        )

    # naive_broadcast
    source = int(proto_params.pop("source", 0))

    def nb_trial(s, net=net, source=source):
        result = NaiveBroadcast(net, source=source, seed=s).run()
        return result.success, result.completion_slot

    def reduce_nb(ctx, outcomes):
        nv = outcomes["naive_broadcast"]
        done = [t for ok, t in nv if ok and t is not None]
        metrics = {
            "success": success_rate([ok for ok, _ in nv]),
            "mean_completion": summarize(done).mean if done else None,
        }
        return _filter_metrics(spec, params, metrics)

    return LoweredPoint(
        point=Point(
            runs=[Run("naive_broadcast", nb_trial, label, ctx.seed)],
            reduce=reduce_nb,
        ),
        key="naive_broadcast",
        trial=nb_trial,
        label=label,
        params=params,
        family="broadcast",
    )


def lower_points(
    spec: ScenarioSpec, ctx: RunContext
) -> Iterable[LoweredPoint]:
    """Lower a declarative spec's sweep into :class:`LoweredPoint`\\ s.

    The streaming path's entry into the lowering — same trial
    construction as the fixed path (both come from one
    :func:`_lower_point` call per sweep point), so the two paths run
    identical workloads and differ only in how outcomes aggregate.

    Raises:
        HarnessError: for plan-based specs, which have no declarative
            lowering.
    """
    if spec.plan is not None:
        raise HarnessError(
            f"scenario {spec.name!r} is code-defined (plan-based) and "
            "has no declarative lowering"
        )
    points = spec.sweep.points() if spec.sweep is not None else [{}]
    for idx, params in enumerate(points):
        yield _lower_point(spec, ctx, idx, params)


def _declarative_plan(
    spec: ScenarioSpec, ctx: RunContext
) -> Iterable[Point]:
    points = spec.sweep.points() if spec.sweep is not None else [{}]
    for idx, params in enumerate(points):
        yield _lower_point(spec, ctx, idx, params).point
