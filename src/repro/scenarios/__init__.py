"""Declarative scenario subsystem.

Layering: :mod:`~repro.scenarios.spec` defines the composable
:class:`ScenarioSpec` (topology x assignment x interference x protocol
x sweep x metrics) and its JSON form; :mod:`~repro.scenarios.trials`
builds the trial closures (the single home of ``run_batch``
generation); :mod:`~repro.scenarios.compile` lowers specs into
executable plans over the harness's executor layer;
:mod:`~repro.scenarios.registry` names them.
:mod:`~repro.scenarios.paper` registers E1-E12 and
:mod:`~repro.scenarios.stock` the non-paper workloads, so importing
this package yields a fully populated registry.
"""

from repro.scenarios.compile import (
    Point,
    Run,
    RunContext,
    run_scenario_spec,
    scenario_plan,
)
from repro.scenarios.registry import (
    cache_extra,
    get_scenario,
    iter_scenarios,
    load_scenario_file,
    register,
    resolve_scenario,
    run_scenario,
    scenario_ids,
)
from repro.scenarios.spec import (
    AssignmentSpec,
    InterferenceSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    apply_overrides,
    spec_digest,
    spec_from_dict,
    spec_to_dict,
)
from repro.scenarios import paper as _paper  # noqa: F401 — registration
from repro.scenarios import stock as _stock  # noqa: F401 — registration
from repro.scenarios.paper import PAPER_SPECS, paper_spec
from repro.scenarios.stock import STOCK_SPECS

__all__ = [
    "AssignmentSpec",
    "InterferenceSpec",
    "PAPER_SPECS",
    "Point",
    "ProtocolSpec",
    "Run",
    "RunContext",
    "STOCK_SPECS",
    "ScenarioSpec",
    "SweepSpec",
    "TopologySpec",
    "apply_overrides",
    "cache_extra",
    "get_scenario",
    "iter_scenarios",
    "load_scenario_file",
    "paper_spec",
    "register",
    "resolve_scenario",
    "run_scenario",
    "run_scenario_spec",
    "scenario_ids",
    "scenario_plan",
    "spec_digest",
    "spec_from_dict",
    "spec_to_dict",
]
