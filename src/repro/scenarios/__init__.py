"""Declarative scenario subsystem.

Layering: :mod:`~repro.scenarios.spec` defines the composable
:class:`ScenarioSpec` (topology x assignment x interference x protocol
x sweep x metrics) and its JSON form; :mod:`~repro.scenarios.trials`
builds the trial closures (the single home of ``run_batch``
generation); :mod:`~repro.scenarios.compile` lowers specs into
executable plans over the harness's executor layer;
:mod:`~repro.scenarios.registry` names them.
:mod:`~repro.scenarios.paper` registers E1-E12 and
:mod:`~repro.scenarios.stock` the non-paper workloads, so importing
this package yields a fully populated registry.
"""

from repro.scenarios.compile import (
    LoweredPoint,
    Point,
    Run,
    RunContext,
    lower_points,
    run_scenario_spec,
    scenario_plan,
)
from repro.scenarios.registry import (
    cache_extra,
    get_scenario,
    iter_scenarios,
    load_scenario_file,
    register,
    resolve_scenario,
    run_scenario,
    scenario_ids,
)
from repro.scenarios.spec import (
    AssignmentSpec,
    InterferenceSpec,
    PrecisionSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    apply_overrides,
    spec_digest,
    spec_from_dict,
    spec_to_dict,
)
from repro.scenarios.streaming import stream_scenario_spec
from repro.scenarios import paper as _paper  # noqa: F401 — registration
from repro.scenarios import stock as _stock  # noqa: F401 — registration
from repro.scenarios.paper import PAPER_SPECS, paper_spec
from repro.scenarios.stock import STOCK_SPECS

__all__ = [
    "AssignmentSpec",
    "InterferenceSpec",
    "LoweredPoint",
    "PAPER_SPECS",
    "Point",
    "PrecisionSpec",
    "ProtocolSpec",
    "Run",
    "RunContext",
    "STOCK_SPECS",
    "ScenarioSpec",
    "SweepSpec",
    "TopologySpec",
    "apply_overrides",
    "cache_extra",
    "get_scenario",
    "iter_scenarios",
    "load_scenario_file",
    "lower_points",
    "paper_spec",
    "register",
    "resolve_scenario",
    "run_scenario",
    "run_scenario_spec",
    "scenario_ids",
    "scenario_plan",
    "spec_digest",
    "spec_from_dict",
    "spec_to_dict",
    "stream_scenario_spec",
]
