"""CI-targeted streaming execution of declarative scenarios.

The fixed-trials path (:func:`repro.scenarios.compile.run_scenario_spec`)
materializes every trial outcome and reduces at the end — the reference
semantics golden tables pin. This module is the scalable counterpart:
:func:`stream_scenario_spec` runs each sweep point in memory-capped
chunks (:func:`repro.harness.runner.stream_trials`), folds outcomes into
online accumulators (:mod:`repro.analysis.stats`), and stops as soon as
every metric named by the spec's :class:`~repro.scenarios.spec.
PrecisionSpec` has a confidence interval narrower than its target —
Wilson for rates, t-based for means. Easy points stop at ``min_trials``;
hard points run until ``max_trials``; peak memory is ``O(chunk)``
throughout, so a million-trial point costs no more resident state than a
thousand-trial one.

Both paths share one lowering (:func:`repro.scenarios.compile.
lower_points`): the same trial closures, seeds and seed-stream labels,
so trial ``i`` of a streaming run is bit-identical to trial ``i`` of a
fixed run — only the aggregation differs (exactly for counts, means and
extrema; via the P² sketch for the median-family columns).

Each streamed row carries, beyond the fixed path's columns: ``trials``
(how many the point actually ran), ``converged`` (whether every target
was met before ``max_trials``) and one ``ci_<metric>`` column per
target (the achieved half-width) — the provenance campaign manifests
record as achieved precision.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.stats import (
    P2Quantile,
    StreamingMoments,
    StreamingRate,
    mean_halfwidth,
)
from repro.core import run_group
from repro.harness.executor import (
    Executor,
    StreamingExecutor,
    XBatchExecutor,
    get_executor,
)
from repro.harness.runner import ExperimentTable, stream_trials
from repro.model.errors import HarnessError
from repro.scenarios.compile import (
    LoweredPoint,
    RunContext,
    _filter_metrics,
    lower_points,
)
from repro.scenarios.spec import PrecisionSpec, ScenarioSpec
from repro.sim.rng import RngHub

__all__ = ["PointAccumulator", "make_accumulator", "stream_scenario_spec"]

Row = Dict[str, object]
Jobs = "int | str | Executor | None"


class PointAccumulator:
    """Online metric state for one sweep point.

    Subclasses mirror one reducer family from
    :mod:`repro.scenarios.compile`: :meth:`consume` folds a chunk of
    trial outcomes in, :meth:`metrics` reports the family's columns
    (same names, same order as the fixed path), and :meth:`halfwidth`
    gives the achieved CI half-width for any targetable metric.
    """

    #: metric name -> "rate" (Wilson interval) or "mean" (t interval).
    targetable: Dict[str, str] = {}

    def __init__(self, lowered: LoweredPoint) -> None:
        self.static = dict(lowered.static)
        self.count = 0

    def consume(self, outcomes: list) -> None:
        """Fold one chunk of trial outcomes into the accumulator."""
        raise NotImplementedError

    def metrics(self) -> Row:
        """The point's metric columns (fixed-path names and order)."""
        raise NotImplementedError

    def halfwidth(self, metric: str, confidence: float) -> float:
        """Achieved CI half-width for a targetable metric.

        ``math.inf`` while the metric is not yet resolvable (no
        outcomes, or a conditional mean with fewer than two samples).

        Raises:
            HarnessError: for a metric this family cannot target.
        """
        kind = self.targetable.get(metric)
        if kind is None:
            raise HarnessError(
                f"metric {metric!r} is not CI-targetable here; "
                f"targetable: {', '.join(sorted(self.targetable))}"
            )
        if kind == "rate":
            return self._rate(metric).halfwidth(confidence)
        moments = self._moments(metric)
        return mean_halfwidth(moments.count, moments.std, confidence)

    def _rate(self, metric: str) -> StreamingRate:
        raise NotImplementedError

    def _moments(self, metric: str) -> StreamingMoments:
        raise NotImplementedError


class CountAccumulator(PointAccumulator):
    """COUNT estimates: ``median_ratio`` / ``band_rate`` / ``slots``.

    ``band_rate`` (the fraction of estimates within a factor 4 of the
    true broadcaster count) is the targetable rate; ``median_ratio``
    is a median and therefore reported via the P² sketch but never
    targeted.
    """

    targetable = {"band_rate": "rate"}

    def __init__(self, lowered: LoweredPoint) -> None:
        super().__init__(lowered)
        self._m = float(lowered.context["m"])
        self._ratio = P2Quantile(0.5)
        self._band = StreamingRate()

    def consume(self, outcomes: list) -> None:
        m = self._m
        self.count += len(outcomes)
        self._ratio.update([e / m for e in outcomes])
        self._band.update([m / 4 <= e <= 4 * m for e in outcomes])

    def metrics(self) -> Row:
        return {
            "median_ratio": self._ratio.value(),
            "band_rate": self._band.rate(),
            "slots": self.static["slots"],
        }

    def _rate(self, metric: str) -> StreamingRate:
        return self._band


class DiscoveryAccumulator(PointAccumulator):
    """Discovery outcomes ``(ok, completion, total_slots, fraction)``.

    Covers cseek, ckseek and naive_discovery; static columns
    (``khat``/``delta_khat``) pass through ahead of the metrics, as in
    the fixed reducer.
    """

    targetable = {
        "success": "rate",
        "discovered_fraction": "mean",
        "mean_completion": "mean",
    }

    def __init__(self, lowered: LoweredPoint) -> None:
        super().__init__(lowered)
        self._success = StreamingRate()
        self._fraction = StreamingMoments()
        self._completion = StreamingMoments()
        self._slots: Optional[object] = None

    def consume(self, outcomes: list) -> None:
        self.count += len(outcomes)
        if self._slots is None and outcomes:
            self._slots = outcomes[0][2]
        self._success.update([ok for ok, _, _, _ in outcomes])
        self._fraction.update([f for _, _, _, f in outcomes])
        self._completion.update(
            [t for ok, t, _, _ in outcomes if ok and t is not None]
        )

    def metrics(self) -> Row:
        return {
            **self.static,
            "success": self._success.rate(),
            "discovered_fraction": self._fraction.mean,
            "mean_completion": (
                self._completion.mean if self._completion.count else None
            ),
            "schedule_slots": self._slots,
        }

    def _rate(self, metric: str) -> StreamingRate:
        return self._success

    def _moments(self, metric: str) -> StreamingMoments:
        if metric == "discovered_fraction":
            return self._fraction
        return self._completion


class CGCastAccumulator(PointAccumulator):
    """CGCAST outcomes ``(ok, dissemination, total_slots)``."""

    targetable = {"success": "rate", "mean_dissemination": "mean"}

    def __init__(self, lowered: LoweredPoint) -> None:
        super().__init__(lowered)
        self._success = StreamingRate()
        self._dissemination = StreamingMoments()
        self._slots: Optional[object] = None

    def consume(self, outcomes: list) -> None:
        self.count += len(outcomes)
        if self._slots is None and outcomes:
            self._slots = outcomes[0][2]
        self._success.update([ok for ok, _, _ in outcomes])
        self._dissemination.update(
            [d for ok, d, _ in outcomes if ok and d is not None]
        )

    def metrics(self) -> Row:
        return {
            "success": self._success.rate(),
            "mean_dissemination": (
                self._dissemination.mean
                if self._dissemination.count
                else None
            ),
            "schedule_slots": self._slots,
        }

    def _rate(self, metric: str) -> StreamingRate:
        return self._success

    def _moments(self, metric: str) -> StreamingMoments:
        return self._dissemination


class BroadcastAccumulator(PointAccumulator):
    """Naive-broadcast outcomes ``(ok, completion_slot)``."""

    targetable = {"success": "rate", "mean_completion": "mean"}

    def __init__(self, lowered: LoweredPoint) -> None:
        super().__init__(lowered)
        self._success = StreamingRate()
        self._completion = StreamingMoments()

    def consume(self, outcomes: list) -> None:
        self.count += len(outcomes)
        self._success.update([ok for ok, _ in outcomes])
        self._completion.update(
            [t for ok, t in outcomes if ok and t is not None]
        )

    def metrics(self) -> Row:
        return {
            "success": self._success.rate(),
            "mean_completion": (
                self._completion.mean if self._completion.count else None
            ),
        }

    def _rate(self, metric: str) -> StreamingRate:
        return self._success

    def _moments(self, metric: str) -> StreamingMoments:
        return self._completion


_FAMILIES = {
    "count": CountAccumulator,
    "discovery": DiscoveryAccumulator,
    "cgcast": CGCastAccumulator,
    "broadcast": BroadcastAccumulator,
}


def make_accumulator(lowered: LoweredPoint) -> PointAccumulator:
    """The accumulator matching a lowered point's metric family."""
    try:
        cls = _FAMILIES[lowered.family]
    except KeyError:
        raise HarnessError(
            f"no streaming accumulator for metric family "
            f"{lowered.family!r}"
        ) from None
    return cls(lowered)


#: First chunk size of the scenario streaming path; chunks double per
#: round toward the cap while a point (or group) remains unconverged,
#: so easy points stop within a few trials of their convergence point
#: instead of overshooting by a whole fixed-size chunk.
ADAPTIVE_START = 64


def _streaming_executor(
    jobs: Jobs, precision: PrecisionSpec
) -> StreamingExecutor:
    """Coerce the jobs knob into a streaming executor.

    Non-streaming values become the per-chunk inner strategy
    (vectorized batch when unspecified). ``precision.chunk`` overrides
    the chunk size when set — it is the spec's declared memory cap.
    Chunks start at :data:`ADAPTIVE_START` trials and grow
    geometrically toward the cap, unless the caller hands a ready-made
    :class:`StreamingExecutor` instance, whose settings (including a
    fixed chunk schedule) are respected.
    """
    if isinstance(jobs, StreamingExecutor):
        streaming = jobs
    elif jobs is None:
        streaming = StreamingExecutor(initial_chunk=ADAPTIVE_START)
    else:
        resolved = get_executor(jobs)
        if isinstance(resolved, StreamingExecutor):
            streaming = StreamingExecutor(
                chunk_size=resolved.chunk_size,
                inner=resolved.inner,
                initial_chunk=resolved.initial_chunk or ADAPTIVE_START,
            )
        else:
            streaming = StreamingExecutor(
                inner=resolved, initial_chunk=ADAPTIVE_START
            )
    if precision.chunk and precision.chunk != streaming.chunk_size:
        streaming = StreamingExecutor(
            chunk_size=precision.chunk,
            inner=streaming.inner,
            initial_chunk=streaming.initial_chunk,
        )
    return streaming


def _validate_targets(
    spec: ScenarioSpec,
    precision: PrecisionSpec,
    acc: PointAccumulator,
    lowered: LoweredPoint,
) -> None:
    for metric in precision.targets:
        if metric not in acc.targetable:
            raise HarnessError(
                f"scenario {spec.name!r}: precision target "
                f"{metric!r} is not CI-targetable for protocol "
                f"family {lowered.family!r}; targetable: "
                f"{', '.join(sorted(acc.targetable)) or 'none'}"
            )


def _targets_met(acc: PointAccumulator, precision: PrecisionSpec) -> bool:
    return all(
        acc.halfwidth(metric, precision.confidence) <= target
        for metric, target in precision.targets.items()
    )


def _finish_row(
    spec: ScenarioSpec,
    precision: PrecisionSpec,
    lowered: LoweredPoint,
    acc: PointAccumulator,
    ran: int,
) -> Row:
    row = _filter_metrics(spec, lowered.params, acc.metrics())[0]
    row["trials"] = ran
    row["converged"] = _targets_met(acc, precision)
    for metric in precision.targets:
        row[f"ci_{metric}"] = acc.halfwidth(metric, precision.confidence)
    return row


def _stream_xbatch_rows(
    spec: ScenarioSpec,
    precision: PrecisionSpec,
    executor: StreamingExecutor,
    lowered: List[LoweredPoint],
) -> List[Row]:
    """Stream a sweep with chunks interleaved across compatible points.

    The cross-point counterpart of the per-point streaming loop: points
    whose trial factories publish matching
    :meth:`~repro.core.xbatch.XBatchable.signature` descriptors draw
    their next chunk of seeds together and execute it as one lockstep
    group per round (:func:`repro.core.run_group`, capped at the
    executor's chunk size), so per-step engine overhead amortizes over
    every still-unconverged point instead of one. A point leaves its
    group's rotation as soon as its targets are met (past
    ``min_trials``) or it exhausts ``max_trials``; chunks start at the
    executor's ``initial_chunk`` and double per round toward the cap.
    Seeds come from each point's own prefix-stable stream, so trial
    ``i`` of every point is bit-identical to the per-point paths; only
    chunk boundaries (and therefore stopping granularity) differ.
    Points without a cross-point descriptor fall back to the per-point
    streaming loop.
    """
    states = []
    for lp in lowered:
        acc = make_accumulator(lp)
        _validate_targets(spec, precision, acc, lp)
        run = lp.point.runs[0]
        states.append(
            {
                "lp": lp,
                "acc": acc,
                "done": 0,
                "stopped": False,
                "stream": RngHub(run.seed).seed_stream(name=run.label),
                "xb": getattr(lp.trial, "xbatch", None),
            }
        )
    groups: Dict[tuple, list] = {}
    for st in states:
        if st["xb"] is not None:
            groups.setdefault(st["xb"].signature(), []).append(st)
    for members in groups.values():
        chunk = executor.initial_chunk or executor.chunk_size
        while True:
            active = [st for st in members if not st["stopped"]]
            if not active:
                break
            seed_lists = [
                st["stream"].take(
                    min(chunk, precision.max_trials - st["done"])
                )
                for st in active
            ]
            group_outs = run_group(
                [st["xb"] for st in active],
                seed_lists,
                executor.chunk_size,
            )
            for st, outcomes in zip(active, group_outs):
                st["acc"].consume(outcomes)
                st["done"] += len(outcomes)
                if st["done"] >= precision.max_trials or (
                    st["done"] >= precision.min_trials
                    and _targets_met(st["acc"], precision)
                ):
                    st["stopped"] = True
            chunk = min(chunk * 2, executor.chunk_size)
    rows: List[Row] = []
    for st in states:
        lp, acc = st["lp"], st["acc"]
        if st["xb"] is None:
            st["done"] = _stream_point(
                spec, precision, executor, lp, acc
            )
        rows.append(_finish_row(spec, precision, lp, acc, st["done"]))
    return rows


def _stream_point(
    spec: ScenarioSpec,
    precision: PrecisionSpec,
    executor: StreamingExecutor,
    lowered: LoweredPoint,
    acc: PointAccumulator,
) -> int:
    """Stream one point through ``stream_trials``; return trials run."""

    def consume(outcomes: list, total: int) -> bool:
        acc.consume(outcomes)
        if total < precision.min_trials:
            return False
        return _targets_met(acc, precision)

    return stream_trials(
        lowered.trial,
        lowered.point.runs[0].seed,
        consume,
        max_trials=precision.max_trials,
        label=lowered.label,
        executor=executor,
    )


def stream_scenario_spec(
    spec: ScenarioSpec,
    seed: int = 0,
    jobs: Jobs = None,
    precision: Optional[PrecisionSpec] = None,
) -> ExperimentTable:
    """Execute a declarative scenario through the streaming path.

    Args:
        spec: The scenario; must be declarative.
        seed: Master seed — trial ``i`` of every point sees the same
            seed the fixed path would derive.
        jobs: Execution strategy for each chunk (default: vectorized
            batch); a ``"stream:N"`` value sets the chunk size too,
            and ``"xbatch"`` interleaves chunks across sweep points
            with matching cross-point signatures (see
            :func:`_stream_xbatch_rows`).
        precision: The stopping contract; defaults to the spec's own
            ``precision`` field.

    Returns:
        The scenario's table, one row per sweep point, with ``trials``,
        ``converged`` and ``ci_<metric>`` provenance columns appended.

    Raises:
        HarnessError: when no precision contract is available, the spec
            is plan-based, or a target names a metric its protocol
            family cannot CI-target.
    """
    precision = precision if precision is not None else spec.precision
    if precision is None:
        raise HarnessError(
            f"scenario {spec.name!r} has no precision contract; set one "
            "on the spec (or pass precision=) to stream with "
            "CI-targeted stopping"
        )
    executor = _streaming_executor(jobs, precision)
    ctx = RunContext(trials=precision.max_trials, seed=seed)
    if isinstance(executor.inner, XBatchExecutor):
        lowered_points = list(lower_points(spec, ctx))
        rows = _stream_xbatch_rows(
            spec, precision, executor, lowered_points
        )
    else:
        rows = []
        for lowered in lower_points(spec, ctx):
            acc = make_accumulator(lowered)
            _validate_targets(spec, precision, acc, lowered)
            ran = _stream_point(spec, precision, executor, lowered, acc)
            rows.append(_finish_row(spec, precision, lowered, acc, ran))
    notes = spec.notes(rows, ctx) if callable(spec.notes) else spec.notes
    return ExperimentTable(
        experiment_id=spec.table_id,
        title=spec.title,
        rows=rows,
        notes=notes,
        columns=spec.columns,
    )
