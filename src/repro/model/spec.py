"""Model specifications for cognitive radio networks.

The paper (Section 3) parameterizes a network by:

* ``n``    — number of nodes, each with a unique identity;
* ``c``    — number of channels each transceiver can access (sets differ
  between nodes, and labels are local — there is no global numbering);
* ``k``    — minimum number of channels shared by every neighboring pair
  (``k >= 1``);
* ``kmax`` — maximum number of channels shared by any neighboring pair
  (``kmax <= c``);
* ``Delta`` (max degree) and ``D`` (diameter) of the connectivity graph.

Two dataclasses carry these parameters:

:class:`NetworkSpec`
    The *generator-facing* description used to build synthetic networks.
:class:`ModelKnowledge`
    The *algorithm-facing* a-priori knowledge. Per the paper, nodes know
    the global parameters (``n, c, k, kmax, Delta`` and, for CGCAST's
    phase count, ``D``) but never the topology, neighbor identities, or
    the channel-overlap pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.errors import SpecError

__all__ = ["NetworkSpec", "ModelKnowledge", "ceil_log2"]


def ceil_log2(x: int) -> int:
    """Return ``ceil(log2(x))`` for a positive integer, with ``x = 1 -> 1``.

    The paper's schedules use ``lg Delta`` rounds/slots with the implicit
    convention that at least one round always runs; we adopt the same
    convention so that degenerate parameters (``Delta = 1``) still yield
    non-empty schedules.
    """
    if x < 1:
        raise SpecError(f"ceil_log2 requires x >= 1, got {x}")
    return max(1, math.ceil(math.log2(x)))


@dataclass(frozen=True)
class NetworkSpec:
    """Validated generator-facing parameters of a cognitive radio network.

    Attributes:
        n: Number of nodes (``n >= 2``; the network must be connected).
        c: Channels accessible per transceiver (``c >= 1``).
        k: Minimum pairwise channel overlap between neighbors
            (``1 <= k <= kmax``).
        kmax: Maximum pairwise channel overlap (``k <= kmax <= c``).
    """

    n: int
    c: int
    k: int
    kmax: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise SpecError(f"need at least two nodes, got n={self.n}")
        if self.c < 1:
            raise SpecError(f"need at least one channel, got c={self.c}")
        if not 1 <= self.k <= self.kmax <= self.c:
            raise SpecError(
                "overlap bounds must satisfy 1 <= k <= kmax <= c, got "
                f"k={self.k}, kmax={self.kmax}, c={self.c}"
            )

    @property
    def log_n(self) -> int:
        """``ceil(lg n)``, the paper's ubiquitous ``lg n`` factor."""
        return ceil_log2(self.n)

    def knowledge(self, max_degree: int, diameter: int) -> "ModelKnowledge":
        """Bundle this spec with realized graph parameters for algorithms."""
        return ModelKnowledge(
            n=self.n,
            c=self.c,
            k=self.k,
            kmax=self.kmax,
            max_degree=max_degree,
            diameter=diameter,
        )


@dataclass(frozen=True)
class ModelKnowledge:
    """The a-priori knowledge available to every node.

    The paper's algorithms use the global parameters to size their
    schedules (e.g. CSEEK part one runs ``Theta((c^2/k) lg n)`` steps).
    They never see the topology or channel-overlap pattern — that is the
    whole point of neighbor discovery.

    Attributes:
        n: Number of nodes in the network.
        c: Channels per transceiver.
        k: Minimum pairwise neighbor overlap.
        kmax: Maximum pairwise neighbor overlap.
        max_degree: Upper bound ``Delta`` on the number of neighbors.
        diameter: Upper bound ``D`` on the graph diameter (used only by
            CGCAST's dissemination stage; discovery algorithms ignore it).
    """

    n: int
    c: int
    k: int
    kmax: int
    max_degree: int
    diameter: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise SpecError(f"need at least two nodes, got n={self.n}")
        if self.c < 1:
            raise SpecError(f"need at least one channel, got c={self.c}")
        if not 1 <= self.k <= self.kmax <= self.c:
            raise SpecError(
                "overlap bounds must satisfy 1 <= k <= kmax <= c, got "
                f"k={self.k}, kmax={self.kmax}, c={self.c}"
            )
        if self.max_degree < 1:
            raise SpecError(f"max_degree must be >= 1, got {self.max_degree}")
        if self.max_degree > self.n - 1:
            raise SpecError(
                f"max_degree {self.max_degree} exceeds n-1 = {self.n - 1}"
            )
        if self.diameter < 1:
            raise SpecError(f"diameter must be >= 1, got {self.diameter}")

    @property
    def log_n(self) -> int:
        """``ceil(lg n)``."""
        return ceil_log2(self.n)

    @property
    def log_delta(self) -> int:
        """``ceil(lg Delta)``, the paper's back-off window length."""
        return ceil_log2(self.max_degree)

    @property
    def spec(self) -> NetworkSpec:
        """The generator-facing projection of this knowledge."""
        return NetworkSpec(n=self.n, c=self.c, k=self.k, kmax=self.kmax)

    def with_khat(self, khat: int) -> "ModelKnowledge":
        """Validate a CKSEEK threshold ``khat`` against this knowledge.

        Returns ``self`` unchanged (``khat`` travels separately); raises
        :class:`SpecError` if ``khat`` is outside ``[k, kmax]``.
        """
        if not self.k <= khat <= self.kmax:
            raise SpecError(
                f"khat must lie in [k, kmax] = [{self.k}, {self.kmax}], "
                f"got {khat}"
            )
        return self
