"""Model layer: network specifications, channel assignments, errors."""

from repro.model.channels import ChannelAssignment
from repro.model.errors import (
    AssignmentError,
    GameError,
    HarnessError,
    ProtocolError,
    ReproError,
    SpecError,
    TopologyError,
)
from repro.model.spec import ModelKnowledge, NetworkSpec, ceil_log2

__all__ = [
    "AssignmentError",
    "ChannelAssignment",
    "GameError",
    "HarnessError",
    "ModelKnowledge",
    "NetworkSpec",
    "ProtocolError",
    "ReproError",
    "SpecError",
    "TopologyError",
    "ceil_log2",
]
