"""Channel assignments with local labels.

A :class:`ChannelAssignment` records, for each node, the ordered list of
``c`` *global* channel ids the node's transceiver can tune to. The order
of a node's list is that node's private, local labeling: algorithms refer
to "my channel 0 .. c-1" and never observe global ids (paper, Section 3:
"we do not assume a global channel label exists"). Generators shuffle each
row independently so no information leaks through label order.

Global channel ids exist only so the simulation engine can decide whether
two transceivers are physically tuned to the same frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from repro.model.errors import AssignmentError

__all__ = ["ChannelAssignment"]


@dataclass
class ChannelAssignment:
    """Per-node channel sets with local labeling.

    Attributes:
        table: Integer array of shape ``(n, c)``. ``table[u, j]`` is the
            global id of node ``u``'s local channel ``j``. Each row must
            contain ``c`` distinct non-negative ids.
    """

    table: np.ndarray
    _sets: List[FrozenSet[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        table = np.asarray(self.table, dtype=np.int64)
        if table.ndim != 2:
            raise AssignmentError(
                f"channel table must be 2-D (n, c), got shape {table.shape}"
            )
        if table.size == 0:
            raise AssignmentError("channel table must be non-empty")
        if (table < 0).any():
            raise AssignmentError("global channel ids must be non-negative")
        self.table = table
        self._sets = [frozenset(int(g) for g in row) for row in table]
        for u, chs in enumerate(self._sets):
            if len(chs) != table.shape[1]:
                raise AssignmentError(
                    f"node {u} has duplicate channels in its row: "
                    f"{sorted(table[u].tolist())}"
                )

    # ------------------------------------------------------------------
    # Basic shape queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.table.shape[0])

    @property
    def c(self) -> int:
        """Channels per node."""
        return int(self.table.shape[1])

    @property
    def universe_size(self) -> int:
        """Number of distinct global channel ids in use."""
        return int(np.unique(self.table).size)

    def universe(self) -> FrozenSet[int]:
        """The set of all global channel ids appearing in the table."""
        return frozenset(int(g) for g in np.unique(self.table))

    # ------------------------------------------------------------------
    # Per-node queries
    # ------------------------------------------------------------------
    def channels_of(self, u: int) -> FrozenSet[int]:
        """Global channel ids node ``u`` can access (order-free)."""
        return self._sets[u]

    def local_row(self, u: int) -> Tuple[int, ...]:
        """Node ``u``'s channels in local-label order (index = label)."""
        return tuple(int(g) for g in self.table[u])

    def local_label_of(self, u: int, global_id: int) -> int:
        """Node ``u``'s local label for a global channel id.

        Raises:
            AssignmentError: if ``u`` cannot access ``global_id``.
        """
        matches = np.nonzero(self.table[u] == global_id)[0]
        if matches.size == 0:
            raise AssignmentError(
                f"node {u} has no access to global channel {global_id}"
            )
        return int(matches[0])

    def global_id_of(self, u: int, local_label: int) -> int:
        """Global channel id behind node ``u``'s ``local_label``."""
        if not 0 <= local_label < self.c:
            raise AssignmentError(
                f"local label {local_label} out of range [0, {self.c})"
            )
        return int(self.table[u, local_label])

    # ------------------------------------------------------------------
    # Pairwise overlap queries
    # ------------------------------------------------------------------
    def overlap(self, u: int, v: int) -> FrozenSet[int]:
        """Global ids of the channels shared by ``u`` and ``v``."""
        return self._sets[u] & self._sets[v]

    def overlap_size(self, u: int, v: int) -> int:
        """Number of channels shared by ``u`` and ``v`` (the paper's
        ``k_{u,v}``)."""
        return len(self._sets[u] & self._sets[v])

    def overlap_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` matrix of pairwise overlap sizes.

        Entry ``[u, v]`` is ``|C_u intersect C_v|``; the diagonal is ``c``.
        Intended for analysis and generator validation, not for algorithm
        use (algorithms must discover overlaps themselves).
        """
        n, _ = self.table.shape
        out = np.zeros((n, n), dtype=np.int64)
        # One-hot encode rows over a compacted universe, then take the
        # Gram matrix: entry (u, v) counts shared channels.
        ids = np.unique(self.table)
        remap = {int(g): i for i, g in enumerate(ids)}
        onehot = np.zeros((n, ids.size), dtype=np.int64)
        for u in range(n):
            for g in self.table[u]:
                onehot[u, remap[int(g)]] = 1
        out = onehot @ onehot.T
        return out

    # ------------------------------------------------------------------
    # Validation against a topology
    # ------------------------------------------------------------------
    def realized_overlap_bounds(
        self, edges: Iterable[Tuple[int, int]]
    ) -> Tuple[int, int]:
        """Return ``(min, max)`` overlap over the given edges.

        Raises:
            AssignmentError: if the edge iterable is empty.
        """
        sizes = [self.overlap_size(u, v) for u, v in edges]
        if not sizes:
            raise AssignmentError("cannot compute overlap bounds of no edges")
        return min(sizes), max(sizes)

    def validate_edges(
        self, edges: Iterable[Tuple[int, int]], k: int, kmax: int
    ) -> None:
        """Check every edge shares between ``k`` and ``kmax`` channels.

        Raises:
            AssignmentError: naming the first offending edge.
        """
        for u, v in edges:
            size = self.overlap_size(u, v)
            if size < k:
                raise AssignmentError(
                    f"edge ({u}, {v}) shares {size} < k = {k} channels"
                )
            if size > kmax:
                raise AssignmentError(
                    f"edge ({u}, {v}) shares {size} > kmax = {kmax} channels"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_sets(
        cls,
        sets: Sequence[Iterable[int]],
        rng: np.random.Generator | None = None,
    ) -> "ChannelAssignment":
        """Build an assignment from per-node channel sets.

        Each node's local labeling is a fresh random permutation of its
        set when ``rng`` is given, otherwise sorted order (deterministic,
        useful in tests).

        Raises:
            AssignmentError: if set sizes differ between nodes.
        """
        rows: List[List[int]] = [sorted(int(g) for g in s) for s in sets]
        if not rows:
            raise AssignmentError("need at least one node")
        width = len(rows[0])
        for u, row in enumerate(rows):
            if len(row) != width:
                raise AssignmentError(
                    f"node {u} has {len(row)} channels, expected {width}"
                )
        table = np.array(rows, dtype=np.int64)
        if rng is not None:
            for u in range(table.shape[0]):
                rng.shuffle(table[u])
        return cls(table=table)

    def relabel_locally(self, rng: np.random.Generator) -> "ChannelAssignment":
        """Return a copy with every node's local labels re-shuffled."""
        table = self.table.copy()
        for u in range(table.shape[0]):
            rng.shuffle(table[u])
        return ChannelAssignment(table=table)

    def membership_map(self) -> Dict[int, List[int]]:
        """Map each global channel id to the sorted list of nodes on it."""
        out: Dict[int, List[int]] = {}
        for u, chs in enumerate(self._sets):
            for g in chs:
                out.setdefault(g, []).append(u)
        for g in out:
            out[g].sort()
        return out
