"""Exception hierarchy for the cognitive-radio-network reproduction.

All library errors derive from :class:`ReproError` so callers can catch
everything originating in this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SpecError(ReproError):
    """A model specification is internally inconsistent.

    Raised, for example, when ``k > kmax`` or ``kmax > c`` in a
    :class:`repro.model.spec.NetworkSpec`.
    """


class AssignmentError(ReproError):
    """A channel assignment violates the model constraints.

    Raised when a generated (or user-supplied) channel assignment does not
    satisfy the paper's model: every node owns exactly ``c`` distinct
    channels and every neighboring pair shares between ``k`` and ``kmax``
    channels.
    """


class TopologyError(ReproError):
    """A topology request is infeasible or malformed.

    Raised, for example, when a generator is asked for a connected graph
    with incompatible parameters (``n < 2`` for a path, a non-square grid
    size, a tree fanout that cannot reach the requested node count, ...).
    """


class ProtocolError(ReproError):
    """A protocol was driven with invalid inputs or in an invalid order.

    Raised, for example, when CGCAST's dissemination stage is started
    before edge coloring has completed, or when a protocol is handed
    knowledge inconsistent with the network it runs on.
    """


class GameError(ReproError):
    """A lower-bound hitting game was used incorrectly.

    Raised, for example, when a player proposes an edge outside the
    bipartite graph, or when a referee is asked for a matching larger than
    the channel count.
    """


class HarnessError(ReproError):
    """An experiment-harness request is malformed.

    Raised for unknown experiment ids, empty sweeps, or invalid repetition
    counts.
    """


class StoreError(HarnessError):
    """A run store is internally inconsistent (corrupted on disk).

    Raised when stored state contradicts itself — e.g. an entry manifest
    claims ``status: done`` but its ``rows.json`` is missing, unreadable,
    or empty. Distinct from a plain :class:`HarnessError` (a bad request)
    so callers can map corruption to a distinct exit code: the fix is to
    re-run or repair the store, not to change the command line.
    """
