"""Command-line entry point: regenerate experiment and scenario tables.

Usage::

    python -m repro list
    python -m repro run E2 --trials 5 --seed 0 --out results/
    python -m repro run E2 --trials 64 --jobs 4          # process pool
    python -m repro run E1 --trials 64 --jobs batch      # vectorized
    python -m repro run all --out results/ --cache       # skip re-runs
    python -m repro scenarios                            # list + metadata
    python -m repro run-scenario pu-geo-cseek --jobs batch
    python -m repro run-scenario count-interference \\
        --set sweep.axes.activity=[0.1,0.9] --set trials=8
    python -m repro run-scenario my_workload.json --cache
    python -m repro campaigns                            # list studies
    python -m repro run-campaign paper-suite --jobs batch
    python -m repro run-campaign my_study.json --campaign-jobs 4
    python -m repro report traffic-models --out report/
    python -m repro diff-runs traffic-models:markov \\
        traffic-models:poisson
    python -m repro run-campaign cseek-vs-naive --gate  # science CI
    python -m repro gate cseek-vs-naive                 # re-judge store
    python -m repro run-scenario pu-geo-cseek --telemetry
    python -m repro run-campaign paper-suite --telemetry --store runs/
    python -m repro telemetry paper-suite --out tel/    # store-only

``--jobs`` selects the trial execution strategy (serial by default; an
int fans trials out to that many worker processes, ``batch`` vectorizes
homogeneous trial axes) and never changes the produced rows — per-trial
seeds derive up front from the master seed. ``--cache`` consults the
deterministic result cache in ``.repro_cache/`` (keyed on experiment,
trials, seed and code version — scenario runs additionally key on their
spec digest, so ``--set`` overrides never collide with default runs).

``run-scenario`` accepts a registered scenario name (see ``scenarios``)
or a path to a JSON scenario file (see ``repro.scenarios.spec``);
``--set path=value`` overrides any declarative spec field, with values
parsed as JSON when possible (``--set assignment.c=16``,
``--set sweep.axes.m=[2,4]``, ``--set interference.model=poisson``).
Paper scenarios (plan-based) accept the same dotted paths over their
data fields — ``trials``, ``title``, ``description``,
``experiment_id``, ``tags``, ``notes``, ``columns`` — and reject
plan-owned paths with a clear error.

``run-campaign`` executes a whole study — a registered campaign (see
``campaigns``) or a JSON campaign file: an ordered list of scenario
entries with per-entry overrides. Every entry's manifest and rows land
in the persistent run store (default ``.repro_runs/``, ``--store`` to
move it); re-running the same campaign resumes, skipping entries whose
manifests prove their stored rows are bit-identical to a fresh run.
``--campaign-jobs N`` runs entries concurrently on a process pool *on
top of* the per-trial ``--jobs`` strategy. ``report`` renders a stored
run as markdown (``--out`` also writes ``report.md``/``summary.csv``)
and ``diff-runs`` compares two stored runs or entries
(``campaign[@run][:entry]`` references, or store paths) without
re-executing anything; its exit status is diff-like — 0 identical, 1
different, 2 trouble.

Gated campaigns (entries with ``role: baseline``/``variant`` and a
``success_delta`` rule) are judged store-only: ``gate <ref>``
re-evaluates a stored run's declared comparisons, and ``run-campaign
--gate`` runs then judges in one command. Both exit 0 when every rule
passes, 1 on a gate failure, and 2 when the comparison cannot be
evaluated — and both append the verdict table to
``$GITHUB_STEP_SUMMARY`` when that variable is set, so a CI job gets
the science verdict in its summary for free.

``crn-repro`` (the console script declared in ``pyproject.toml``) is
equivalent when the package is installed through a regular ``pip
install``; legacy ``setup.py develop`` installs may expose only the
``python -m repro`` form.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs
from repro.campaigns import (
    GateReport,
    RunStore,
    campaign_report,
    diff_refs,
    entry_report,
    evaluate_run,
    gate_exit_code,
    iter_campaigns,
    load_ref,
    run_campaign,
    verdict_table,
    write_report,
)
from repro.harness import experiment_ids, run_experiment
from repro.harness.executor import get_executor
from repro.model.errors import HarnessError, ReproError, StoreError
from repro.scenarios import iter_scenarios, run_scenario
from repro.sim.backend import BACKEND_ENV, set_backend

__all__ = ["main", "build_parser"]


def _parse_jobs(value: str) -> "int | str":
    """``--jobs`` values: an int, or the strategy names.

    Validation delegates to :func:`repro.harness.executor.get_executor`
    — the single authority on what a jobs value means — so the CLI can
    never accept a value the harness rejects or vice versa.
    """
    name = value.strip().lower()
    try:
        get_executor(name)
    except HarnessError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return int(name) if name.isdigit() else name


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=("numpy", "numba"),
        default=None,
        help=(
            "array-compute backend for the engine's hot path (default: "
            "numpy, or $REPRO_BACKEND); 'numba' JIT-compiles the step "
            "products and requires numba to be installed; results are "
            "bit-identical either way"
        ),
    )


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const="json",
        choices=("json", "chrome"),
        default=None,
        help=(
            "record stage spans, counters and gauges while running "
            "(off by default; never changes rows). 'json' (the default "
            "when the flag is given bare) keeps aggregates; 'chrome' "
            "additionally keeps raw span events for a Chrome "
            "trace-event file"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="crn-repro",
        description=(
            "Reproduction of 'Communication Primitives in Cognitive "
            "Radio Networks' (PODC 2017) — experiment regeneration."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help="experiment id (E1..E10) or 'all'",
    )
    run.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trials per configuration (default: experiment-specific)",
    )
    run.add_argument("--seed", type=int, default=0, help="master seed")
    run.add_argument(
        "--out",
        default=None,
        help="directory for <id>.md and <id>.csv outputs",
    )
    run.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=None,
        help=(
            "trial execution strategy: an int for that many worker "
            "processes (0 = one per CPU), 'batch' for vectorized trial "
            "axes ('batch:N' bounds the chunk size), 'xbatch' to also "
            "batch across compatible sweep points, 'serial' (default); "
            "results are identical either way"
        ),
    )
    _add_backend_arg(run)
    run.add_argument(
        "--cache",
        action="store_true",
        help=(
            "reuse cached tables (and store fresh ones) keyed on "
            "experiment id + trials + seed + code version"
        ),
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default .repro_cache/)",
    )

    sub.add_parser(
        "scenarios",
        help="list registered scenarios (paper + stock) with metadata",
    )

    run_scn = sub.add_parser(
        "run-scenario",
        help="run a registered scenario or a JSON scenario file",
    )
    run_scn.add_argument(
        "scenario",
        help="scenario name (see 'scenarios') or path to a .json file",
    )
    run_scn.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trials per sweep point (default: scenario-specific)",
    )
    run_scn.add_argument("--seed", type=int, default=0, help="master seed")
    run_scn.add_argument(
        "--out",
        default=None,
        help="directory for <id>.md and <id>.csv outputs",
    )
    run_scn.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=None,
        help=(
            "trial execution strategy (int / 'batch' / 'batch:N' / "
            "'xbatch' / 'serial'); results are identical either way"
        ),
    )
    _add_backend_arg(run_scn)
    run_scn.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="PATH=VALUE",
        help=(
            "override a spec field (repeatable): --set assignment.c=16, "
            "--set sweep.axes.m=[2,4], --set interference.model=poisson, "
            "--set trials=8; values parse as JSON when possible (paper "
            "scenarios accept their data fields only)"
        ),
    )
    run_scn.add_argument(
        "--precision",
        action="append",
        default=[],
        metavar="METRIC=HALFWIDTH",
        help=(
            "CI-targeted stopping (repeatable): stream memory-capped "
            "trial chunks until METRIC's confidence interval half-width "
            "is <= HALFWIDTH (Wilson for rates, t-based for means), "
            "e.g. --precision success=0.01 (a leading '±' on the value "
            "is accepted)"
        ),
    )
    run_scn.add_argument(
        "--confidence",
        type=float,
        default=None,
        help="precision confidence level (default 0.95)",
    )
    run_scn.add_argument(
        "--min-trials",
        type=int,
        default=None,
        help="precision floor before the stopping rule may fire",
    )
    run_scn.add_argument(
        "--max-trials",
        type=int,
        default=None,
        help="precision ceiling per sweep point",
    )
    run_scn.add_argument(
        "--chunk",
        type=int,
        default=None,
        help=(
            "trials resident per streaming chunk — the memory cap's "
            "knob (default: the streaming executor's)"
        ),
    )
    run_scn.add_argument(
        "--cache",
        action="store_true",
        help=(
            "reuse cached tables keyed on scenario, trials, seed, code "
            "version and the spec digest (overrides included)"
        ),
    )
    run_scn.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default .repro_cache/)",
    )
    _add_telemetry_arg(run_scn)

    sub.add_parser(
        "campaigns",
        help="list registered campaigns (multi-scenario studies)",
    )

    run_cmp = sub.add_parser(
        "run-campaign",
        help=(
            "run (or resume) a registered campaign or a JSON campaign "
            "file into the persistent run store"
        ),
    )
    run_cmp.add_argument(
        "campaign",
        help="campaign name (see 'campaigns') or path to a .json file",
    )
    run_cmp.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trials override for every entry (smoke runs)",
    )
    run_cmp.add_argument(
        "--seed",
        type=int,
        default=None,
        help="master seed for every entry (default: the campaign's)",
    )
    run_cmp.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=None,
        help=(
            "per-trial execution strategy inside each entry (int / "
            "'batch' / 'batch:N' / 'xbatch' / 'serial'); never "
            "changes rows"
        ),
    )
    _add_backend_arg(run_cmp)
    run_cmp.add_argument(
        "--campaign-jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "entries executed concurrently on a process pool "
            "(default 1: in order)"
        ),
    )
    run_cmp.add_argument(
        "--store",
        default=None,
        help="run store directory (default .repro_runs/)",
    )
    run_cmp.add_argument(
        "--cache",
        action="store_true",
        help=(
            "additionally consult/populate the .repro_cache result "
            "cache inside each entry"
        ),
    )
    run_cmp.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default .repro_cache/)",
    )
    run_cmp.add_argument(
        "--gate",
        action="store_true",
        help=(
            "after running, judge the campaign's declared "
            "success_delta gates from the store; exit 0 pass, 1 gate "
            "failure, 2 not evaluable"
        ),
    )
    _add_telemetry_arg(run_cmp)

    gate = sub.add_parser(
        "gate",
        help=(
            "judge a stored run's declared acceptance gates, from the "
            "store alone (exit 0 pass, 1 gate failure, 2 not evaluable)"
        ),
    )
    gate.add_argument(
        "ref",
        help=(
            "run reference: campaign[@run_id] (defaults to the latest "
            "stored run) or a path to a run directory"
        ),
    )
    gate.add_argument(
        "--store",
        default=None,
        help="run store directory (default .repro_runs/)",
    )

    report = sub.add_parser(
        "report",
        help=(
            "render a stored campaign run as markdown, from the store "
            "alone (no re-execution)"
        ),
    )
    report.add_argument(
        "ref",
        help=(
            "reference: campaign[@run_id][:entry] (run defaults to the "
            "latest stored one; with :entry, reports that entry alone) "
            "or a path into a store"
        ),
    )
    report.add_argument(
        "--store",
        default=None,
        help="run store directory (default .repro_runs/)",
    )
    report.add_argument(
        "--out",
        default=None,
        help="also write report.md and summary.csv into this directory",
    )

    diff = sub.add_parser(
        "diff-runs",
        help=(
            "diff two stored runs or entries (exit 0 identical, 1 "
            "different, 2 trouble)"
        ),
    )
    diff.add_argument(
        "ref_a",
        help="first reference: campaign[@run_id][:entry] or a path",
    )
    diff.add_argument("ref_b", help="second reference")
    diff.add_argument(
        "--store",
        default=None,
        help="run store directory (default .repro_runs/)",
    )

    tel = sub.add_parser(
        "telemetry",
        help=(
            "render a stored run's telemetry (stage breakdowns per "
            "entry) from the store alone; requires the run to have "
            "been recorded with --telemetry"
        ),
    )
    tel.add_argument(
        "ref",
        help=(
            "reference: campaign[@run_id][:entry] (run defaults to the "
            "latest stored one) or a path into a store"
        ),
    )
    tel.add_argument(
        "--store",
        default=None,
        help="run store directory (default .repro_runs/)",
    )
    tel.add_argument(
        "--out",
        default=None,
        help=(
            "also write telemetry.md and trace.json (Chrome trace-"
            "event format; synthetic layout from stored aggregates) "
            "into this directory"
        ),
    )
    return parser


def _write_step_summary(markdown: str) -> None:
    """Append markdown to ``$GITHUB_STEP_SUMMARY`` when CI set it."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(markdown.rstrip() + "\n\n")
    except OSError as exc:  # pragma: no cover — CI filesystem trouble
        print(f"warning: cannot write step summary: {exc}", file=sys.stderr)


def _emit_gate_report(report: GateReport) -> None:
    """Print (and step-summarize) a gate report's verdict table."""
    table = verdict_table(report)
    heading = f"Gate — {report.campaign}@{report.run_id}"
    print(f"# {heading}")
    print()
    print(table)
    print()
    print(f"Gate verdict: {report.status.upper()}")
    _write_step_summary(
        f"## {heading}\n\n{table}\n\n"
        f"Gate verdict: **{report.status.upper()}**"
    )


def _precision_overrides(args) -> Dict[str, str]:
    """Lower the precision flags into ``--set``-style override paths.

    Routing through :func:`repro.scenarios.spec.apply_overrides` (not a
    side channel) keeps the spec digest, the result cache and campaign
    per-entry overrides all seeing one precision representation.
    """
    overrides: Dict[str, str] = {}
    for pair in args.precision:
        metric, sep, value = pair.partition("=")
        metric = metric.strip()
        # "±0.01" reads naturally in docs; accept it as "0.01".
        value = value.strip().lstrip("±")
        if not sep or not metric or not value:
            raise HarnessError(
                f"bad --precision value {pair!r}; expected "
                "METRIC=HALFWIDTH (e.g. success=0.01)"
            )
        overrides[f"precision.targets.{metric}"] = value
    for flag, path in (
        ("confidence", "precision.confidence"),
        ("min_trials", "precision.min_trials"),
        ("max_trials", "precision.max_trials"),
        ("chunk", "precision.chunk"),
    ):
        value = getattr(args, flag)
        if value is not None:
            overrides[path] = str(value)
    return overrides


def _parse_overrides(pairs: List[str]) -> Dict[str, str]:
    overrides: Dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise HarnessError(
                f"bad --set value {pair!r}; expected PATH=VALUE"
            )
        path, _, value = pair.partition("=")
        if not path:
            raise HarnessError(
                f"bad --set value {pair!r}; empty path"
            )
        overrides[path] = value
    return overrides


def _print_listing(specs, describe) -> None:
    """Two-line name + description listing shared by every registry."""
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        print(f"{spec.name:<{width}}  {describe(spec)}")
        if spec.description:
            print(f"{'':<{width}}  {spec.description}")


def _list_scenarios() -> None:
    def describe(spec) -> str:
        kind = "paper" if "paper" in spec.tags else "stock"
        points = (
            str(len(spec.sweep.points()))
            if spec.is_declarative and spec.sweep is not None
            else ("1" if spec.is_declarative else "-")
        )
        return (
            f"[{kind}]  trials={spec.trials:<3} points={points:<3} "
            f"{spec.title}"
        )

    _print_listing(iter_scenarios(), describe)


def _list_campaigns() -> None:
    _print_listing(
        iter_campaigns(),
        lambda spec: f"entries={len(spec.entries):<3} {spec.title}",
    )


def _run_one(
    experiment_id: str,
    trials: Optional[int],
    seed: int,
    out: Optional[str],
    jobs: "int | str | None" = None,
    cache: bool = False,
    cache_dir: Optional[str] = None,
) -> None:
    start = time.time()
    table = run_experiment(
        experiment_id,
        trials=trials,
        seed=seed,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
    )
    elapsed = time.time() - start
    print(table.to_markdown())
    print(f"\n[{table.experiment_id} finished in {elapsed:.1f}s]")
    if out is not None:
        paths = table.save(out)
        print(f"[written: {paths['markdown']}, {paths['csv']}]")
    print()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "backend", None) is not None:
        # The env var (not just the in-process install) so process-pool
        # workers (--jobs N, --campaign-jobs N) inherit the choice.
        os.environ[BACKEND_ENV] = args.backend
        try:
            set_backend(args.backend)
        except HarnessError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "scenarios":
        _list_scenarios()
        return 0
    if args.command == "campaigns":
        _list_campaigns()
        return 0
    if args.command == "run-campaign":
        try:
            result = run_campaign(
                args.campaign,
                seed=args.seed,
                trials=args.trials,
                jobs=args.jobs,
                campaign_jobs=args.campaign_jobs,
                store=args.store,
                cache=args.cache,
                cache_dir=args.cache_dir,
                telemetry=args.telemetry,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2 if args.gate else 1
        except Exception as exc:  # noqa: BLE001
            # Malformed campaign files must fail with a clean error,
            # matching the report/diff-runs guards on the same surface.
            print(f"error: {exc!r}", file=sys.stderr)
            return 2 if args.gate else 1
        if args.gate:
            if result.gates is None:
                print(
                    "error: campaign declares no gates (no variant "
                    "entry with a success_delta rule)",
                    file=sys.stderr,
                )
                return 2
            _emit_gate_report(result.gates)
            return gate_exit_code(result.gates)
        return 0 if not result.failed else 1
    if args.command == "gate":
        try:
            ref = load_ref(RunStore(args.store), args.ref)
            if ref.entry_id is not None:
                raise HarnessError(
                    "gate judges a whole run; drop the :entry suffix "
                    f"from {args.ref!r}"
                )
            report = evaluate_run(ref.run)
            if not report.verdicts:
                raise HarnessError(
                    f"campaign {ref.run.campaign!r} declares no gates "
                    "(no variant entry with a success_delta rule)"
                )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except Exception as exc:  # noqa: BLE001
            # Same surface as diff-runs: a hand-edited store must mean
            # exit 2 "not evaluable", never a traceback.
            print(f"error: {exc!r}", file=sys.stderr)
            return 2
        _emit_gate_report(report)
        return gate_exit_code(report)
    if args.command == "report":
        try:
            ref = load_ref(RunStore(args.store), args.ref)
            if ref.entry_id is not None:
                print(entry_report(ref.run, ref.entry_id), end="")
            else:
                print(campaign_report(ref.run), end="")
            if args.out is not None:
                paths = write_report(
                    ref.run, args.out, entry_id=ref.entry_id
                )
                written = ", ".join(
                    str(p) for p in paths.values()
                )
                print(f"[written: {written}]")
        except StoreError as exc:
            # Corruption (done manifests with missing/empty rows) is
            # exit 2 — "the store needs repair", distinct from a plain
            # bad reference (exit 1).
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except Exception as exc:  # noqa: BLE001
            # Hand-edited store entries must fail with a clean error,
            # exactly as diff-runs guards the same surface.
            print(f"error: {exc!r}", file=sys.stderr)
            return 1
        return 0
    if args.command == "diff-runs":
        try:
            markdown, identical = diff_refs(
                RunStore(args.store), args.ref_a, args.ref_b
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except Exception as exc:  # noqa: BLE001
            # The exit contract is diff-like: 2 means trouble. An
            # unexpected failure (e.g. a hand-edited store entry) must
            # not exit 1 and masquerade as "runs differ".
            print(f"error: {exc!r}", file=sys.stderr)
            return 2
        print(markdown, end="")
        return 0 if identical else 1
    if args.command == "run-scenario":
        snapshot: "Optional[dict]" = None
        try:
            start = time.time()
            overrides = {
                **_parse_overrides(args.overrides),
                **_precision_overrides(args),
            }
            # Telemetry wraps the run but never touches RNG streams,
            # so the produced rows are byte-identical with it on or off.
            recorder = (
                obs.start(trace=args.telemetry == "chrome")
                if args.telemetry
                else None
            )
            try:
                table = run_scenario(
                    args.scenario,
                    trials=args.trials,
                    seed=args.seed,
                    jobs=args.jobs,
                    overrides=overrides,
                    cache=args.cache,
                    cache_dir=args.cache_dir,
                )
            finally:
                if recorder is not None:
                    snapshot = obs.stop()
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        elapsed = time.time() - start
        print(table.to_markdown())
        print(f"\n[{table.experiment_id} finished in {elapsed:.1f}s]")
        if snapshot is not None:
            print()
            print(obs.render_telemetry(snapshot, heading="## Telemetry"))
        if args.out is not None:
            paths = table.save(args.out)
            written = [paths["markdown"], paths["csv"]]
            if snapshot is not None:
                out_dir = Path(args.out)
                tel_path = out_dir / f"{table.experiment_id}.telemetry.json"
                tel_path.write_text(
                    json.dumps(snapshot, indent=2) + "\n", encoding="utf-8"
                )
                written.append(tel_path)
                if args.telemetry == "chrome":
                    written.append(
                        obs.write_chrome_trace(
                            out_dir / f"{table.experiment_id}.trace.json",
                            [(table.experiment_id, snapshot)],
                        )
                    )
            print(f"[written: {', '.join(str(p) for p in written)}]")
        return 0
    if args.command == "telemetry":
        try:
            ref = load_ref(RunStore(args.store), args.ref)
            entry_ids = (
                [ref.entry_id] if ref.entry_id else ref.run.entry_ids()
            )
            snaps = []
            for entry_id in entry_ids:
                manifest = ref.run.entry_manifest(entry_id) or {}
                snap = manifest.get("telemetry")
                if isinstance(snap, dict):
                    snaps.append((entry_id, snap))
            if not snaps:
                raise HarnessError(
                    f"run {ref.run.campaign}@{ref.run.run_id} has no "
                    "stored telemetry; record one with run-campaign "
                    "--telemetry"
                )
            lines = [f"# Telemetry — {ref.label}", ""]
            for entry_id, snap in snaps:
                lines += [
                    obs.render_telemetry(snap, heading=f"## {entry_id}"),
                    "",
                ]
            if len(snaps) > 1:
                merged = obs.merge_snapshots(*(s for _, s in snaps))
                lines += [
                    obs.render_telemetry(
                        merged, heading="## Campaign totals"
                    ),
                    "",
                ]
            markdown = "\n".join(lines).rstrip() + "\n"
            print(markdown, end="")
            if args.out is not None:
                out_dir = Path(args.out)
                out_dir.mkdir(parents=True, exist_ok=True)
                md_path = out_dir / "telemetry.md"
                md_path.write_text(markdown, encoding="utf-8")
                trace_path = obs.write_chrome_trace(
                    out_dir / "trace.json", snaps
                )
                print(f"[written: {md_path}, {trace_path}]")
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except Exception as exc:  # noqa: BLE001
            # A hand-edited store must mean a clean error, as with
            # report/diff-runs on the same surface.
            print(f"error: {exc!r}", file=sys.stderr)
            return 1
        return 0
    # command == "run"
    targets = (
        experiment_ids()
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    try:
        for experiment_id in targets:
            _run_one(
                experiment_id,
                args.trials,
                args.seed,
                args.out,
                jobs=args.jobs,
                cache=args.cache,
                cache_dir=args.cache_dir,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
