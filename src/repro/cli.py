"""Command-line entry point: regenerate any experiment table.

Usage::

    python -m repro list
    python -m repro run E2 --trials 5 --seed 0 --out results/
    python -m repro run E2 --trials 64 --jobs 4          # process pool
    python -m repro run E1 --trials 64 --jobs batch      # vectorized
    python -m repro run all --out results/ --cache       # skip re-runs

``--jobs`` selects the trial execution strategy (serial by default; an
int fans trials out to that many worker processes, ``batch`` vectorizes
homogeneous trial axes) and never changes the produced rows — per-trial
seeds derive up front from the master seed. ``--cache`` consults the
deterministic result cache in ``.repro_cache/`` (keyed on experiment,
trials, seed and code version) before running anything.

``crn-repro`` (the console script declared in ``pyproject.toml``) is
equivalent when the package is installed through a regular ``pip
install``; legacy ``setup.py develop`` installs may expose only the
``python -m repro`` form.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness import experiment_ids, run_experiment
from repro.harness.executor import get_executor
from repro.model.errors import HarnessError, ReproError

__all__ = ["main", "build_parser"]


def _parse_jobs(value: str) -> "int | str":
    """``--jobs`` values: an int, or the strategy names.

    Validation delegates to :func:`repro.harness.executor.get_executor`
    — the single authority on what a jobs value means — so the CLI can
    never accept a value the harness rejects or vice versa.
    """
    name = value.strip().lower()
    try:
        get_executor(name)
    except HarnessError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return int(name) if name.isdigit() else name


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="crn-repro",
        description=(
            "Reproduction of 'Communication Primitives in Cognitive "
            "Radio Networks' (PODC 2017) — experiment regeneration."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help="experiment id (E1..E10) or 'all'",
    )
    run.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trials per configuration (default: experiment-specific)",
    )
    run.add_argument("--seed", type=int, default=0, help="master seed")
    run.add_argument(
        "--out",
        default=None,
        help="directory for <id>.md and <id>.csv outputs",
    )
    run.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=None,
        help=(
            "trial execution strategy: an int for that many worker "
            "processes (0 = one per CPU), 'batch' for vectorized trial "
            "axes ('batch:N' bounds the chunk size), 'serial' "
            "(default); results are identical either way"
        ),
    )
    run.add_argument(
        "--cache",
        action="store_true",
        help=(
            "reuse cached tables (and store fresh ones) keyed on "
            "experiment id + trials + seed + code version"
        ),
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default .repro_cache/)",
    )
    return parser


def _run_one(
    experiment_id: str,
    trials: Optional[int],
    seed: int,
    out: Optional[str],
    jobs: "int | str | None" = None,
    cache: bool = False,
    cache_dir: Optional[str] = None,
) -> None:
    start = time.time()
    table = run_experiment(
        experiment_id,
        trials=trials,
        seed=seed,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
    )
    elapsed = time.time() - start
    print(table.to_markdown())
    print(f"\n[{table.experiment_id} finished in {elapsed:.1f}s]")
    if out is not None:
        paths = table.save(out)
        print(f"[written: {paths['markdown']}, {paths['csv']}]")
    print()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    # command == "run"
    targets = (
        experiment_ids()
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    try:
        for experiment_id in targets:
            _run_one(
                experiment_id,
                args.trials,
                args.seed,
                args.out,
                jobs=args.jobs,
                cache=args.cache,
                cache_dir=args.cache_dir,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
