"""Command-line entry point: regenerate experiment and scenario tables.

Usage::

    python -m repro list
    python -m repro run E2 --trials 5 --seed 0 --out results/
    python -m repro run E2 --trials 64 --jobs 4          # process pool
    python -m repro run E1 --trials 64 --jobs batch      # vectorized
    python -m repro run all --out results/ --cache       # skip re-runs
    python -m repro scenarios                            # list + metadata
    python -m repro run-scenario pu-geo-cseek --jobs batch
    python -m repro run-scenario count-interference \\
        --set sweep.axes.activity=[0.1,0.9] --set trials=8
    python -m repro run-scenario my_workload.json --cache

``--jobs`` selects the trial execution strategy (serial by default; an
int fans trials out to that many worker processes, ``batch`` vectorizes
homogeneous trial axes) and never changes the produced rows — per-trial
seeds derive up front from the master seed. ``--cache`` consults the
deterministic result cache in ``.repro_cache/`` (keyed on experiment,
trials, seed and code version — scenario runs additionally key on their
spec digest, so ``--set`` overrides never collide with default runs).

``run-scenario`` accepts a registered scenario name (see ``scenarios``)
or a path to a JSON scenario file (see ``repro.scenarios.spec``);
``--set path=value`` overrides any declarative spec field, with values
parsed as JSON when possible (``--set assignment.c=16``,
``--set sweep.axes.m=[2,4]``, ``--set interference.model=poisson``).
Paper scenarios (plan-based) accept the same dotted paths over their
data fields — ``trials``, ``title``, ``description``,
``experiment_id``, ``tags``, ``notes``, ``columns`` — and reject
plan-owned paths with a clear error.

``crn-repro`` (the console script declared in ``pyproject.toml``) is
equivalent when the package is installed through a regular ``pip
install``; legacy ``setup.py develop`` installs may expose only the
``python -m repro`` form.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.harness import experiment_ids, run_experiment
from repro.harness.executor import get_executor
from repro.model.errors import HarnessError, ReproError
from repro.scenarios import iter_scenarios, run_scenario

__all__ = ["main", "build_parser"]


def _parse_jobs(value: str) -> "int | str":
    """``--jobs`` values: an int, or the strategy names.

    Validation delegates to :func:`repro.harness.executor.get_executor`
    — the single authority on what a jobs value means — so the CLI can
    never accept a value the harness rejects or vice versa.
    """
    name = value.strip().lower()
    try:
        get_executor(name)
    except HarnessError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return int(name) if name.isdigit() else name


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="crn-repro",
        description=(
            "Reproduction of 'Communication Primitives in Cognitive "
            "Radio Networks' (PODC 2017) — experiment regeneration."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help="experiment id (E1..E10) or 'all'",
    )
    run.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trials per configuration (default: experiment-specific)",
    )
    run.add_argument("--seed", type=int, default=0, help="master seed")
    run.add_argument(
        "--out",
        default=None,
        help="directory for <id>.md and <id>.csv outputs",
    )
    run.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=None,
        help=(
            "trial execution strategy: an int for that many worker "
            "processes (0 = one per CPU), 'batch' for vectorized trial "
            "axes ('batch:N' bounds the chunk size), 'serial' "
            "(default); results are identical either way"
        ),
    )
    run.add_argument(
        "--cache",
        action="store_true",
        help=(
            "reuse cached tables (and store fresh ones) keyed on "
            "experiment id + trials + seed + code version"
        ),
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default .repro_cache/)",
    )

    sub.add_parser(
        "scenarios",
        help="list registered scenarios (paper + stock) with metadata",
    )

    run_scn = sub.add_parser(
        "run-scenario",
        help="run a registered scenario or a JSON scenario file",
    )
    run_scn.add_argument(
        "scenario",
        help="scenario name (see 'scenarios') or path to a .json file",
    )
    run_scn.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trials per sweep point (default: scenario-specific)",
    )
    run_scn.add_argument("--seed", type=int, default=0, help="master seed")
    run_scn.add_argument(
        "--out",
        default=None,
        help="directory for <id>.md and <id>.csv outputs",
    )
    run_scn.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=None,
        help=(
            "trial execution strategy (int / 'batch' / 'batch:N' / "
            "'serial'); results are identical either way"
        ),
    )
    run_scn.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="PATH=VALUE",
        help=(
            "override a spec field (repeatable): --set assignment.c=16, "
            "--set sweep.axes.m=[2,4], --set interference.model=poisson, "
            "--set trials=8; values parse as JSON when possible (paper "
            "scenarios accept their data fields only)"
        ),
    )
    run_scn.add_argument(
        "--cache",
        action="store_true",
        help=(
            "reuse cached tables keyed on scenario, trials, seed, code "
            "version and the spec digest (overrides included)"
        ),
    )
    run_scn.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default .repro_cache/)",
    )
    return parser


def _parse_overrides(pairs: List[str]) -> Dict[str, str]:
    overrides: Dict[str, str] = {}
    for pair in pairs:
        if "=" not in pair:
            raise HarnessError(
                f"bad --set value {pair!r}; expected PATH=VALUE"
            )
        path, _, value = pair.partition("=")
        if not path:
            raise HarnessError(
                f"bad --set value {pair!r}; empty path"
            )
        overrides[path] = value
    return overrides


def _list_scenarios() -> None:
    specs = iter_scenarios()
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        kind = "paper" if "paper" in spec.tags else "stock"
        points = (
            str(len(spec.sweep.points()))
            if spec.is_declarative and spec.sweep is not None
            else ("1" if spec.is_declarative else "-")
        )
        print(
            f"{spec.name:<{width}}  [{kind}]  trials={spec.trials:<3} "
            f"points={points:<3} {spec.title}"
        )
        if spec.description:
            print(f"{'':<{width}}  {spec.description}")


def _run_one(
    experiment_id: str,
    trials: Optional[int],
    seed: int,
    out: Optional[str],
    jobs: "int | str | None" = None,
    cache: bool = False,
    cache_dir: Optional[str] = None,
) -> None:
    start = time.time()
    table = run_experiment(
        experiment_id,
        trials=trials,
        seed=seed,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
    )
    elapsed = time.time() - start
    print(table.to_markdown())
    print(f"\n[{table.experiment_id} finished in {elapsed:.1f}s]")
    if out is not None:
        paths = table.save(out)
        print(f"[written: {paths['markdown']}, {paths['csv']}]")
    print()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "scenarios":
        _list_scenarios()
        return 0
    if args.command == "run-scenario":
        try:
            start = time.time()
            table = run_scenario(
                args.scenario,
                trials=args.trials,
                seed=args.seed,
                jobs=args.jobs,
                overrides=_parse_overrides(args.overrides),
                cache=args.cache,
                cache_dir=args.cache_dir,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        elapsed = time.time() - start
        print(table.to_markdown())
        print(f"\n[{table.experiment_id} finished in {elapsed:.1f}s]")
        if args.out is not None:
            paths = table.save(args.out)
            print(f"[written: {paths['markdown']}, {paths['csv']}]")
        return 0
    # command == "run"
    targets = (
        experiment_ids()
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    try:
        for experiment_id in targets:
            _run_one(
                experiment_id,
                args.trials,
                args.seed,
                args.out,
                jobs=args.jobs,
                cache=args.cache,
                cache_dir=args.cache_dir,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
