"""Experiment harness: runners, executors, cache, and E1-E12 definitions.

Layering: :mod:`~repro.harness.runner` owns seeded repetition
(:func:`run_trials`), :mod:`~repro.harness.executor` owns execution
strategy (serial / process-parallel / vectorized-batch, all
bit-identical for a given master seed), :mod:`~repro.harness.cache` owns
the deterministic result cache, and :mod:`~repro.harness.experiments`
defines the experiments and :func:`run_experiment`.
"""

from repro.harness.cache import (
    DEFAULT_CACHE_DIR,
    cache_key,
    code_version,
    load_table,
    store_table,
)
from repro.harness.executor import (
    BatchedExecutor,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    StreamingExecutor,
    get_executor,
)
from repro.harness.experiments import (
    EXPERIMENTS,
    experiment_ids,
    run_experiment,
)
from repro.harness.runner import ExperimentTable, run_trials, stream_trials
from repro.harness.tables import render_markdown, write_csv

__all__ = [
    "BatchedExecutor",
    "DEFAULT_CACHE_DIR",
    "EXPERIMENTS",
    "Executor",
    "ExperimentTable",
    "ParallelExecutor",
    "SerialExecutor",
    "StreamingExecutor",
    "cache_key",
    "code_version",
    "experiment_ids",
    "get_executor",
    "load_table",
    "render_markdown",
    "run_experiment",
    "run_trials",
    "store_table",
    "stream_trials",
    "write_csv",
]
