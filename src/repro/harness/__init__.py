"""Experiment harness: runners, tables, and E1-E10 definitions."""

from repro.harness.experiments import (
    EXPERIMENTS,
    experiment_ids,
    run_experiment,
)
from repro.harness.runner import ExperimentTable, run_trials
from repro.harness.tables import render_markdown, write_csv

__all__ = [
    "EXPERIMENTS",
    "ExperimentTable",
    "experiment_ids",
    "render_markdown",
    "run_experiment",
    "run_trials",
    "write_csv",
]
