"""Result-table rendering: markdown and CSV.

Experiments produce lists of flat dict rows; these helpers render them
into the tables recorded in EXPERIMENTS.md and into CSV files under
``results/`` for downstream plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.model.errors import HarnessError

__all__ = ["render_markdown", "write_csv", "format_value"]

Row = Dict[str, object]


def format_value(value: object) -> str:
    """Human-friendly cell formatting (floats to 3 significant digits)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    if value is None:
        return "-"
    return str(value)


def _columns(rows: Sequence[Row], columns: Optional[Sequence[str]]) -> List[str]:
    if not rows:
        raise HarnessError("cannot render a table of zero rows")
    if columns is not None:
        missing = [c for c in columns if c not in rows[0]]
        if missing:
            raise HarnessError(f"columns not in rows: {missing}")
        return list(columns)
    cols: List[str] = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    return cols


def render_markdown(
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as a GitHub-flavored markdown table."""
    cols = _columns(rows, columns)
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(cols) + " |")
    lines.append("| " + " | ".join("---" for _ in cols) + " |")
    for row in rows:
        cells = [format_value(row.get(c)) for c in cols]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def write_csv(
    path: str | Path,
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
) -> Path:
    """Write rows to CSV, creating parent directories.

    Returns:
        The resolved output path.
    """
    cols = _columns(rows, columns)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c) for c in cols})
    return out
