"""Deterministic experiment-table result cache.

Every experiment is a pure function of ``(experiment id, trials, seed,
code)`` — the executor layer guarantees the execution strategy does not
perturb rows — so a finished table can be keyed by exactly those inputs
and replayed from disk. Re-runs of a sweep (and CI benchmark jobs that
regenerate tables on every push) then skip completed work.

The cache key folds in a *code version*: a digest over the ``repro``
package's source files. Any source change invalidates every entry, which
is deliberately coarse — correctness over cleverness; stale tables must
never survive an algorithm change.

Entries live under ``.repro_cache/`` (override via ``cache_dir`` or the
``REPRO_CACHE_DIR`` environment variable) as one JSON file per table.
The ``jobs`` knob is deliberately *not* part of the key: serial,
parallel and batched execution produce bit-identical rows.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Mapping, Optional

from repro.harness.runner import ExperimentTable

__all__ = [
    "DEFAULT_CACHE_DIR",
    "cache_key",
    "code_version",
    "json_default",
    "load_table",
    "store_table",
]

DEFAULT_CACHE_DIR = Path(".repro_cache")

_code_version: Optional[str] = None


def code_version() -> str:
    """Digest of the ``repro`` package's source tree (cached per process)."""
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def cache_key(
    experiment_id: str,
    trials: Optional[int],
    seed: int,
    extra: "Mapping[str, object] | None" = None,
) -> str:
    """Stable key for one table: experiment + params + code version.

    ``extra`` folds additional identity into the key — the scenario
    layer passes its spec digest (which covers every ``--set``
    override), so an overridden scenario run can never collide with a
    default-parameter cache entry. Omitting ``extra`` reproduces the
    pre-scenario key exactly.
    """
    fields: dict = {
        "experiment": experiment_id.upper(),
        "trials": trials,
        "seed": seed,
        "code": code_version(),
    }
    if extra:
        fields["extra"] = dict(extra)
    payload = json.dumps(fields, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def _resolve_dir(cache_dir: "str | Path | None") -> Path:
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else DEFAULT_CACHE_DIR


def _entry_path(
    experiment_id: str,
    trials: Optional[int],
    seed: int,
    cache_dir: "str | Path | None",
    extra: "Mapping[str, object] | None" = None,
) -> Path:
    key = cache_key(experiment_id, trials, seed, extra=extra)
    safe_id = "".join(
        ch if ch.isalnum() or ch in "-_" else "_"
        for ch in experiment_id.lower()
    )
    return _resolve_dir(cache_dir) / f"{safe_id}-{key}.json"


def json_default(value: object) -> object:
    """``json.dumps`` default coercing numpy scalars losslessly.

    Shared by the result cache and the campaign run store so every
    persisted row survives a round-trip with plain-Python values.
    """
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"unserializable cache value: {value!r}")


def store_table(
    table: ExperimentTable,
    trials: Optional[int],
    seed: int,
    cache_dir: "str | Path | None" = None,
    extra: "Mapping[str, object] | None" = None,
) -> Path:
    """Persist a finished table; returns the entry path."""
    path = _entry_path(table.experiment_id, trials, seed, cache_dir, extra)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        **table.to_payload(),
        "trials": trials,
        "seed": seed,
        "code": code_version(),
    }
    if extra:
        payload["extra"] = dict(extra)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(
        json.dumps(payload, default=json_default, indent=1),
        encoding="utf-8",
    )
    tmp.replace(path)
    return path


def load_table(
    experiment_id: str,
    trials: Optional[int],
    seed: int,
    cache_dir: "str | Path | None" = None,
    extra: "Mapping[str, object] | None" = None,
) -> Optional[ExperimentTable]:
    """Return the cached table for these inputs, or None.

    Unreadable or corrupt entries are treated as misses (the caller
    recomputes and overwrites), never as errors.
    """
    path = _entry_path(experiment_id, trials, seed, cache_dir, extra)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    try:
        return ExperimentTable.from_payload(payload)
    except (KeyError, ValueError):
        return None
