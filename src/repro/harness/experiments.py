"""Experiment definitions E1-E10 (see DESIGN.md §4).

Each function regenerates one of the paper's claims as an empirical
table. The paper is a theory paper — its "figures" are theorems — so a
reproduction here means: run the algorithm the theorem describes, verify
its guarantee (success frequency across seeds), and check the *shape* of
its bound (scaling along sweeps, ratios and crossovers against
baselines). Absolute constants are ours, not the paper's; shapes are
comparable.

All experiments take a ``trials`` knob (statistical confidence vs
runtime), a master ``seed``, and a ``jobs`` knob selecting the execution
strategy for their Monte Carlo trials (see
:mod:`repro.harness.executor`: ``None``/1 serial, ``>= 2`` process
workers, ``"batch"`` vectorized where the trial is homogeneous), and
return an :class:`~repro.harness.runner.ExperimentTable`. Strategy never
changes rows — per-trial seeds are derived up front, so serial, parallel
and batched runs of the same master seed are bit-identical.
:func:`run_experiment` additionally offers a deterministic result cache
(see :mod:`repro.harness.cache`).
"""

from __future__ import annotations

import math
import warnings
from typing import Callable, Dict, List

import numpy as np

from repro.analysis import (
    cgcast_bound,
    ckseek_bound,
    complete_game_floor,
    cseek_bound,
    fit_power_law,
    hitting_game_floor,
    naive_broadcast_bound,
    naive_discovery_bound,
    success_rate,
    summarize,
    zeng_discovery_bound,
)
from repro.baselines import (
    NaiveBroadcast,
    NaiveDiscovery,
    broadcast_floor,
    tree_broadcast_floor,
)
from repro.core import (
    CGCast,
    CKSeek,
    CSeek,
    CSeekBatch,
    LineGraph,
    LubyEdgeColoring,
    ProtocolConstants,
    batched_discovery,
    is_valid_edge_coloring,
    run_count_step,
    verify_discovery,
    verify_k_discovery,
)
from repro.graphs import (
    build_network,
    build_theorem14_tree,
    path_of_cliques,
    random_regular,
    star,
)
from repro.harness.cache import load_table, store_table
from repro.harness.executor import Executor, get_executor
from repro.harness.runner import ExperimentTable, run_trials
from repro.model.errors import HarnessError

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

Row = Dict[str, object]

Jobs = int | str | Executor | None


def _batched_cseek_trial(
    make_protocol: Callable[[int], CSeek],
    postprocess: Callable[..., object],
    jammer_factory: Callable[[int], object] | None = None,
) -> Callable[[int], object]:
    """A full-protocol trial callable with a vectorized trial axis.

    The serial path constructs and runs one protocol per seed (the
    reference semantics every executor must reproduce). The ``run_batch``
    attribute — picked up by the ``jobs="batch"`` executor — routes the
    whole seed list through :class:`repro.core.cseek_batch.CSeekBatch`
    instead, so each part-one step and part-two window of *all* trials
    resolves as one batched engine call; per-trial results are
    bit-identical to the serial path. ``make_protocol`` must be
    homogeneous in the seed (same network/budgets/policy every call);
    per-trial jammers come from ``jammer_factory``.
    """

    def trial(s: int):
        proto = make_protocol(s)
        if jammer_factory is not None:
            proto.jammer = jammer_factory(s)
        return postprocess(proto.run())

    def run_batch(seeds):
        batch = CSeekBatch.from_serial(
            make_protocol(0), jammer_factory=jammer_factory
        )
        return [postprocess(r) for r in batch.run(seeds)]

    trial.run_batch = run_batch
    return trial


# ----------------------------------------------------------------------
# E1 — COUNT accuracy (Lemma 1)
# ----------------------------------------------------------------------
def experiment_e1(
    trials: int = 30, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Lemma 1: COUNT estimates the broadcaster count within constants.

    One listener faces ``m`` broadcasters on a single channel; both
    estimation rules run over independent trials. The paper's guarantee
    is an estimate in ``[m, 4m]``; we report the median estimate/m ratio
    and the frequency of landing within a factor-4 band.

    The trials at each sweep point are homogeneous (one topology, only
    coins vary), so under ``jobs="batch"`` the whole trial axis resolves
    through :func:`repro.core.count.run_count_step_batch` in one shot.
    """
    executor = get_executor(jobs)
    rows: List[Row] = []
    rules = [
        ("argmax", ProtocolConstants(count_rule="argmax", count_round_slots=8.0)),
        (
            "first_crossing",
            ProtocolConstants(
                count_rule="first_crossing", count_round_slots=192.0
            ),
        ),
    ]
    for rule_name, consts in rules:
        for m in (1, 2, 4, 8, 16, 32):
            n = m + 1
            adj = np.zeros((n, n), dtype=bool)
            adj[0, 1:] = True
            adj[1:, 0] = True
            channels = np.zeros(n, dtype=np.int64)
            tx_role = np.ones(n, dtype=bool)
            tx_role[0] = False

            def trial(s: int, consts=consts, adj=adj, channels=channels,
                      tx_role=tx_role) -> float:
                rng = np.random.default_rng(s)
                out = run_count_step(
                    adj,
                    channels,
                    tx_role,
                    max_count=32,
                    log_n=5,
                    constants=consts,
                    rng=rng,
                )
                return float(out.estimates[0])

            def trial_batch(seeds, consts=consts, adj=adj,
                            channels=channels, tx_role=tx_role):
                from repro.core import run_count_step_batch

                out = run_count_step_batch(
                    adj,
                    channels,
                    tx_role,
                    max_count=32,
                    log_n=5,
                    constants=consts,
                    rngs=[np.random.default_rng(s) for s in seeds],
                )
                return [float(e) for e in out.estimates[:, 0]]

            trial.run_batch = trial_batch
            estimates = run_trials(
                trial,
                trials,
                seed,
                label=f"e1-{rule_name}-{m}",
                executor=executor,
            )
            ratios = [e / m for e in estimates]
            in_band = [m / 4 <= e <= 4 * m for e in estimates]
            from repro.core import count_schedule

            rounds, length = count_schedule(32, 5, consts)
            rows.append(
                {
                    "rule": rule_name,
                    "m": m,
                    "median_ratio": float(np.median(ratios)),
                    "band_rate(est in [m/4,4m])": success_rate(in_band),
                    "slots": rounds * length,
                }
            )
    return ExperimentTable(
        experiment_id="E1",
        title="COUNT accuracy (Lemma 1)",
        rows=rows,
        notes=(
            "Paper claim: COUNT returns an estimate within a constant "
            "factor of the true broadcaster count m, in O(lg^2 n) slots. "
            "Both rules should hold median ratios within [1/4, 4] across "
            "the m sweep; the paper-exact first-crossing rule needs the "
            "long rounds its hidden constant implies."
        ),
    )


# ----------------------------------------------------------------------
# E2 — CSEEK scaling vs baselines (Theorem 4)
# ----------------------------------------------------------------------
def _discovery_times(
    net, trials: int, seed: int, label: str,
    executor: Executor | None = None,
) -> Dict[str, object]:
    """Measured completion slots + success rates for CSEEK and naive."""

    def summarize_result(result):
        report = verify_discovery(result, net)
        return report.success, report.completion_slot, result.total_slots

    cseek_trial = _batched_cseek_trial(
        lambda s: CSeek(net, seed=s), summarize_result
    )

    def naive_trial(s: int):
        nd = NaiveDiscovery(net, seed=s)
        result = nd.run()
        report = nd.verify(result)
        return report.success, report.completion_slot, result.total_slots

    cs = run_trials(
        cseek_trial, trials, seed, label=f"{label}-cseek", executor=executor
    )
    nv = run_trials(
        naive_trial, trials, seed, label=f"{label}-naive", executor=executor
    )
    cs_done = [t for ok, t, _ in cs if ok and t is not None]
    nv_done = [t for ok, t, _ in nv if ok and t is not None]
    return {
        "cseek_success": success_rate([ok for ok, _, _ in cs]),
        "naive_success": success_rate([ok for ok, _, _ in nv]),
        "cseek_completion": (
            summarize(cs_done).mean if cs_done else None
        ),
        "naive_completion": (
            summarize(nv_done).mean if nv_done else None
        ),
        "cseek_schedule": cs[0][2],
        "naive_schedule": nv[0][2],
    }


def experiment_e2(
    trials: int = 5, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Theorem 4: CSEEK's c-, Delta- and k-scaling against the naive
    baseline and the analytic bound curves."""
    executor = get_executor(jobs)
    rows: List[Row] = []
    # --- (a) sweep c with k, Delta fixed (need Delta * k <= c) ------
    for c in (8, 12, 16, 20):
        graph = random_regular(20, 4, seed=seed + c)
        net = build_network(graph, c=c, k=2, seed=seed + c)
        kn = net.knowledge()
        stats = _discovery_times(
            net, trials, seed + c, f"e2c{c}", executor=executor
        )
        rows.append(
            {
                "sweep": "c",
                "x": c,
                **stats,
                "cseek_bound": cseek_bound(kn.c, kn.k, kn.kmax, kn.max_degree),
                "naive_bound": naive_discovery_bound(kn.c, kn.k, kn.max_degree),
                "zeng_bound": zeng_discovery_bound(kn.c, kn.k, kn.max_degree),
            }
        )
    # --- (b) sweep Delta on crowded stars ---------------------------
    # Delta is the axis on which the bounds diverge (additive for CSEEK,
    # multiplicative for naive); the biggest point is capped at fewer
    # trials to keep the sweep laptop-sized.
    for delta in (8, 32, 128):
        net = build_network(
            star(delta + 1), c=8, k=2, seed=seed + delta, kind="global_core"
        )
        kn = net.knowledge()
        point_trials = trials if delta < 128 else min(trials, 2)
        stats = _discovery_times(
            net, point_trials, seed + 100 + delta, f"e2d{delta}",
            executor=executor,
        )
        rows.append(
            {
                "sweep": "Delta",
                "x": delta,
                **stats,
                "cseek_bound": cseek_bound(
                    kn.c, kn.k, kn.kmax, kn.max_degree, n=kn.n
                ),
                "naive_bound": naive_discovery_bound(
                    kn.c, kn.k, kn.max_degree, n=kn.n
                ),
                "zeng_bound": zeng_discovery_bound(
                    kn.c, kn.k, kn.max_degree, n=kn.n
                ),
            }
        )
    # --- (c) sweep k with c fixed -----------------------------------
    for k in (1, 2, 4):
        graph = random_regular(20, 4, seed=seed + 7)
        net = build_network(graph, c=16, k=k, seed=seed + k)
        kn = net.knowledge()
        stats = _discovery_times(
            net, trials, seed + 200 + k, f"e2k{k}", executor=executor
        )
        rows.append(
            {
                "sweep": "k",
                "x": k,
                **stats,
                "cseek_bound": cseek_bound(kn.c, kn.k, kn.kmax, kn.max_degree),
                "naive_bound": naive_discovery_bound(kn.c, kn.k, kn.max_degree),
                "zeng_bound": zeng_discovery_bound(kn.c, kn.k, kn.max_degree),
            }
        )
    slope_note = ""
    c_rows = [r for r in rows if r["sweep"] == "c" and r["cseek_completion"]]
    if len(c_rows) >= 2:
        fit = fit_power_law(
            [r["x"] for r in c_rows], [r["cseek_completion"] for r in c_rows]
        )
        slope_note += (
            f" Measured CSEEK completion-vs-c log-log slope: "
            f"{fit.slope:.2f} (bound predicts ~2 once the c^2/k term "
            "dominates)."
        )
    d_rows = [
        r
        for r in rows
        if r["sweep"] == "Delta"
        and r["cseek_completion"]
        and r["naive_completion"]
    ]
    if len(d_rows) >= 2:
        cs_fit = fit_power_law(
            [r["x"] for r in d_rows], [r["cseek_completion"] for r in d_rows]
        )
        nv_fit = fit_power_law(
            [r["x"] for r in d_rows], [r["naive_completion"] for r in d_rows]
        )
        ratios = [
            r["naive_completion"] / r["cseek_completion"] for r in d_rows
        ]
        slope_note += (
            f" Delta-sweep slopes: CSEEK {cs_fit.slope:.2f} (additive "
            f"Delta term, sub-linear at these sizes), naive "
            f"{nv_fit.slope:.2f} (multiplicative Delta). Naive/CSEEK "
            f"completion ratio along the sweep: "
            + ", ".join(f"{r:.2f}" for r in ratios)
            + " — rising with Delta as the bounds predict. At laptop "
            "sizes the lg^2 n slots inside every COUNT step keep CSEEK's "
            "absolute numbers above naive's; the bound-side crossover "
            "(Delta >~ lg^2 n x constants) extrapolates to Delta in the "
            "several hundreds, beyond this sweep."
        )
    return ExperimentTable(
        experiment_id="E2",
        title="CSEEK vs naive discovery scaling (Theorem 4)",
        rows=rows,
        notes=(
            "Paper claim: CSEEK needs O~(c^2/k + (kmax/k) Delta) slots vs "
            "the naive strawman's O~((c^2/k) Delta); CSEEK's advantage "
            "grows with Delta (additive vs multiplicative) and both scale "
            "as c^2/k in c and 1/k in k." + slope_note
        ),
    )


# ----------------------------------------------------------------------
# E3 — part-one vs part-two discovery split (Lemmas 2 and 3)
# ----------------------------------------------------------------------
def experiment_e3(
    trials: int = 5, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Lemma 2/3: part one suffices on un-crowded channels; on crowded
    channels part two's density-weighted listening does the work."""
    executor = get_executor(jobs)
    rows: List[Row] = []
    # (a) full budgets: Lemma 2 says part one alone already finds
    # everything when channels are un-crowded.
    cases = [
        (
            "full budget, sparse (exact k, regular)",
            build_network(
                random_regular(20, 4, seed=seed + 1), c=8, k=2, seed=seed + 1
            ),
        ),
        (
            "full budget, crowded (global core, star)",
            build_network(
                star(25), c=6, k=2, seed=seed + 2, kind="global_core"
            ),
        ),
    ]
    def fraction_found(result, truth, total_pairs, n):
        part1 = sum(
            len(result.discovered_part_one[u] & set(truth[u]))
            for u in range(n)
        )
        both = sum(
            len(result.discovered[u] & set(truth[u])) for u in range(n)
        )
        return part1 / total_pairs, both / total_pairs

    for name, net in cases:
        truth = net.true_neighbor_sets()
        total_pairs = sum(len(s) for s in truth)

        trial = _batched_cseek_trial(
            lambda s, net=net: CSeek(net, seed=s),
            lambda result, truth=truth, total_pairs=total_pairs, n=net.n: (
                fraction_found(result, truth, total_pairs, n)
            ),
        )
        outcomes = run_trials(
            trial, trials, seed, label=f"e3-{name}", executor=executor
        )
        rows.append(
            {
                "workload": name,
                "part2_listener": "weighted",
                "pairs": total_pairs,
                "part1_fraction": summarize([a for a, _ in outcomes]).mean,
                "final_fraction": summarize([b for _, b in outcomes]).mean,
            }
        )
    # (b) starved part one on a heavily crowded star: part two must
    # rescue the remaining pairs, and its density-weighted listener is
    # what makes the rescue fast (Lemma 3's mechanism).
    net = build_network(
        star(65), c=6, k=2, seed=seed + 3, kind="global_core"
    )
    truth = net.true_neighbor_sets()
    total_pairs = sum(len(s) for s in truth)
    for policy in ("weighted", "uniform"):

        trial = _batched_cseek_trial(
            lambda s, policy=policy: CSeek(
                net,
                seed=s,
                part1_steps=40,
                part2_steps=150,
                part2_listener=policy,
            ),
            lambda result: fraction_found(
                result, truth, total_pairs, net.n
            ),
        )
        outcomes = run_trials(
            trial, trials, seed + 5, label=f"e3b-{policy}", executor=executor
        )
        rows.append(
            {
                "workload": "starved part one, crowded star",
                "part2_listener": policy,
                "pairs": total_pairs,
                "part1_fraction": summarize([a for a, _ in outcomes]).mean,
                "final_fraction": summarize([b for _, b in outcomes]).mean,
            }
        )
    return ExperimentTable(
        experiment_id="E3",
        title="Discovery split across CSEEK's parts (Lemmas 2-3)",
        rows=rows,
        notes=(
            "Paper claims: (Lemma 2) part one alone finds neighbors on "
            "un-crowded channels — full-budget rows show part1_fraction "
            "~1.0; (Lemma 3) on crowded channels the part-two listener, "
            "by revisiting channels proportionally to sampled density, "
            "recovers the rest — in the starved rows the weighted "
            "listener's final_fraction beats the uniform ablation at the "
            "same slot budget."
        ),
    )


# ----------------------------------------------------------------------
# E4 — CKSEEK filter (Theorem 6)
# ----------------------------------------------------------------------
def experiment_e4(
    trials: int = 5, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Theorem 6: k-hat discovery gets strictly cheaper as k-hat grows."""
    executor = get_executor(jobs)
    graph = random_regular(20, 4, seed=seed + 3)
    net = build_network(
        graph, c=16, k=2, seed=seed + 3, kind="heterogeneous", kmax=4
    )
    kn = net.knowledge()
    rows: List[Row] = []
    for khat in range(kn.k, kn.kmax + 1):
        delta_khat = net.max_good_degree(khat)

        trial = _batched_cseek_trial(
            lambda s, khat=khat, delta_khat=delta_khat: CKSeek(
                net, khat=khat, delta_khat=delta_khat, seed=s
            ),
            lambda result, khat=khat: (
                verify_k_discovery(result, net, khat=khat).success,
                result.total_slots,
            ),
        )
        outcomes = run_trials(
            trial, trials, seed + khat, label=f"e4-{khat}", executor=executor
        )
        rows.append(
            {
                "khat": khat,
                "delta_khat": delta_khat,
                "success": success_rate([ok for ok, _ in outcomes]),
                "schedule_slots": outcomes[0][1],
                "bound": ckseek_bound(
                    kn.c, khat, kn.kmax, delta_khat, kn.max_degree
                ),
            }
        )
    return ExperimentTable(
        experiment_id="E4",
        title="CKSEEK k-hat filter (Theorem 6)",
        rows=rows,
        notes=(
            "Paper claim: finding only neighbors sharing >= khat channels "
            "costs O~(c^2/khat + (kmax/khat) Delta_khat + Delta) — "
            "strictly less than full CSEEK once khat > k. Expect "
            "schedule_slots to fall monotonically with khat while success "
            "stays 1.0."
        ),
    )


# ----------------------------------------------------------------------
# E5 — Luby line-graph coloring (Lemma 8)
# ----------------------------------------------------------------------
def experiment_e5(
    trials: int = 8, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Lemma 8: 2*Delta-coloring completes in O(lg n) phases, always
    proper."""
    executor = get_executor(jobs)
    rows: List[Row] = []
    for n in (8, 16, 32, 64, 128):
        graph = random_regular(n, 4, seed=seed + n)
        net = build_network(graph, c=8, k=2, seed=seed + n)
        lg = LineGraph.from_edges(net.edges())
        kn = net.knowledge()

        def trial(s: int):
            result = LubyEdgeColoring(lg, kn, seed=s).run()
            valid = result.complete and is_valid_edge_coloring(
                result.colors, lg.edges
            )
            return valid, result.phases_used

        outcomes = run_trials(
            trial, trials, seed + n, label=f"e5-{n}", executor=executor
        )
        rows.append(
            {
                "n": n,
                "edges": lg.num_virtual,
                "valid_rate": success_rate([ok for ok, _ in outcomes]),
                "mean_phases": summarize(
                    [p for _, p in outcomes]
                ).mean,
                "lg_n": math.ceil(math.log2(n)),
            }
        )
    phase_fit = fit_power_law(
        [r["lg_n"] for r in rows], [max(r["mean_phases"], 0.5) for r in rows]
    )
    return ExperimentTable(
        experiment_id="E5",
        title="Line-graph Luby coloring (Lemma 8, Fact 7)",
        rows=rows,
        notes=(
            "Paper claim: the phased coloring 2*Delta-colors the line "
            "graph (hence properly edge-colors G, Fact 7) within O(lg n) "
            "phases w.h.p. Expect valid_rate 1.0 and mean_phases growing "
            f"at most like lg n (measured phases-vs-lg n slope: "
            f"{phase_fit.slope:.2f}; sub-linear growth in lg n is "
            "consistent with the bound's generous constant)."
        ),
    )


# ----------------------------------------------------------------------
# E6 — CGCAST scaling vs naive broadcast (Theorem 9)
# ----------------------------------------------------------------------
def experiment_e6(
    trials: int = 3, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Theorem 9: CGCAST's per-hop dissemination cost is O~(Delta) while
    naive broadcast pays O~(c^2/k) per hop."""
    executor = get_executor(jobs)
    rows: List[Row] = []
    for num_cliques in (2, 4, 8, 12):
        graph = path_of_cliques(num_cliques, 4)
        net = build_network(graph, c=8, k=1, seed=seed + num_cliques)
        kn = net.knowledge()

        def cg_trial(s: int, net=net, discovery=None):
            result = CGCast(
                net, source=0, seed=s, discovery=discovery
            ).run()
            return (
                result.success,
                result.ledger.get("dissemination"),
                result.total_slots,
            )

        def cg_run_batch(seeds, net=net):
            # Batch the (dominant) discovery phase across the trial
            # axis, then feed each trial its bit-identical CSEEK result;
            # the heterogeneous exchange/coloring stages stay serial.
            discoveries = batched_discovery(net, seeds)
            return [
                cg_trial(s, net=net, discovery=d)
                for s, d in zip(seeds, discoveries)
            ]

        cg_trial.run_batch = cg_run_batch

        def nv_trial(s: int):
            result = NaiveBroadcast(net, source=0, seed=s).run()
            return result.success, result.completion_slot

        cg = run_trials(
            cg_trial, trials, seed + num_cliques, label="e6cg",
            executor=executor,
        )
        nv = run_trials(
            nv_trial, trials, seed + num_cliques, label="e6nv",
            executor=executor,
        )
        cg_diss = [d for ok, d, _ in cg if ok]
        nv_done = [t for ok, t in nv if ok and t is not None]
        cg_mean = summarize(cg_diss).mean if cg_diss else None
        nv_mean = summarize(nv_done).mean if nv_done else None
        rows.append(
            {
                "cliques": num_cliques,
                "D": kn.diameter,
                "Delta": kn.max_degree,
                "cgcast_success": success_rate([ok for ok, _, _ in cg]),
                "cgcast_dissemination": cg_mean,
                "cgcast_per_hop": (
                    cg_mean / kn.diameter if cg_mean else None
                ),
                "cgcast_total": cg[0][2],
                "naive_success": success_rate([ok for ok, _ in nv]),
                "naive_completion": nv_mean,
                "naive_per_hop": (
                    nv_mean / kn.diameter if nv_mean else None
                ),
                "cgcast_bound": cgcast_bound(
                    kn.c, kn.k, kn.kmax, kn.max_degree, kn.diameter
                ),
                "naive_bound": naive_broadcast_bound(
                    kn.c, kn.k, kn.diameter
                ),
            }
        )
    diss = [
        r for r in rows if r["cgcast_dissemination"] and r["naive_completion"]
    ]
    note = ""
    if len(diss) >= 2:
        cg_fit = fit_power_law(
            [r["D"] for r in diss], [r["cgcast_dissemination"] for r in diss]
        )
        nv_fit = fit_power_law(
            [r["D"] for r in diss], [r["naive_completion"] for r in diss]
        )
        note = (
            f" Dissemination-vs-D slopes: CGCAST {cg_fit.slope:.2f}, "
            f"naive {nv_fit.slope:.2f} (both ~linear in D, as the bounds "
            "predict); the naive curve carries the larger c^2/k per-hop "
            "constant, the CGCAST curve only Delta*polylog."
        )
    return ExperimentTable(
        experiment_id="E6",
        title="CGCAST vs naive broadcast (Theorem 9)",
        rows=rows,
        notes=(
            "Paper claim: CGCAST spends O~(c^2/k + (kmax/k) Delta) once "
            "on setup, then disseminates at O~(Delta) per hop; the naive "
            "strawman pays O~(c^2/k) per hop. On long thin networks "
            "(growing D) the per-hop comparison favors CGCAST whenever "
            "Delta << c^2/k (here Delta=4 vs c^2/k=64). The one-shot "
            "total still favors naive at these sizes because CGCAST's "
            "setup (discovery + coloring exchanges) is paid once — the "
            "paper's regime is a long-lived network where the schedule "
            "is reused across many broadcasts." + note
        ),
    )


# ----------------------------------------------------------------------
# E7 — hitting-game lower bounds (Lemmas 10 and 12)
# ----------------------------------------------------------------------
def experiment_e7(
    trials: int = 30, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Lemmas 10/12: measured hitting times sit above the game floors."""
    from repro.lowerbounds import (
        FreshRandomPlayer,
        HittingGame,
        UniformRandomPlayer,
        play,
    )

    executor = get_executor(jobs)
    rows: List[Row] = []
    for c in (8, 16, 32):
        for k in (1, 2, 4):
            for player_name, factory in (
                ("fresh", lambda s: FreshRandomPlayer(seed=s)),
                ("uniform", lambda s: UniformRandomPlayer(seed=s)),
            ):

                def trial(s: int) -> int:
                    game = HittingGame(c=c, k=k, seed=s)
                    transcript = play(
                        game, factory(s + 1), max_rounds=50 * c * c
                    )
                    if not transcript.won:
                        raise HarnessError(
                            "player failed within the generous cap"
                        )
                    return transcript.rounds

                rounds = run_trials(
                    trial,
                    trials,
                    seed + c * 10 + k,
                    label=f"e7-{player_name}",
                    executor=executor,
                )
                floor = hitting_game_floor(c, k) if k <= c / 2 else None
                rows.append(
                    {
                        "c": c,
                        "k": k,
                        "player": player_name,
                        "mean_rounds": summarize(rounds).mean,
                        "median_rounds": summarize(rounds).median,
                        "floor(c^2/8k)": floor,
                        "c^2/k": c * c / k,
                    }
                )
    # Complete game (k = c): Lemma 12.
    from repro.lowerbounds import FreshRandomPlayer as _FRP

    for c in (9, 27):

        def trial(s: int) -> int:
            game = HittingGame(c=c, k=c, seed=s)
            transcript = play(game, _FRP(seed=s + 1))
            return transcript.rounds

        rounds = run_trials(
            trial, trials, seed + c, label="e7-complete", executor=executor
        )
        rows.append(
            {
                "c": c,
                "k": c,
                "player": "fresh(complete)",
                "mean_rounds": summarize(rounds).mean,
                "median_rounds": summarize(rounds).median,
                "floor(c^2/8k)": complete_game_floor(c),
                "c^2/k": float(c),
            }
        )
    return ExperimentTable(
        experiment_id="E7",
        title="Bipartite hitting games (Lemmas 10 and 12)",
        rows=rows,
        notes=(
            "Paper claim: no player beats c^2/(8k) rounds (k <= c/2) or "
            "c/3 rounds (complete game) with probability 1/2. Expect "
            "every measured mean >= the floor, with the near-optimal "
            "fresh player within the constant-8 gap of c^2/k."
        ),
    )


# ----------------------------------------------------------------------
# E8 — the reduction and Theorem 13
# ----------------------------------------------------------------------
def experiment_e8(
    trials: int = 15, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Lemma 11 + Theorem 13: discovery algorithms, played through the
    reduction, respect the game floor; stars enforce the Omega(Delta)
    term."""
    from repro.lowerbounds import CSeekReductionPlayer, HittingGame, play

    executor = get_executor(jobs)
    rows: List[Row] = []
    for c in (8, 16, 32):
        k = 2

        def trial(s: int) -> int:
            player = CSeekReductionPlayer(k=k, seed=s)
            game = HittingGame(c=c, k=k, seed=s + 17)
            budget = 4 * player.schedule_slots(c)
            transcript = play(game, player, max_rounds=budget)
            if not transcript.won:
                raise HarnessError("reduction player failed to meet")
            return transcript.rounds

        rounds = run_trials(
            trial, trials, seed + c, label=f"e8-{c}", executor=executor
        )
        player = CSeekReductionPlayer(k=k, seed=0)
        rows.append(
            {
                "case": "reduction(CSEEK)",
                "x": c,
                "mean_rounds_to_meet": summarize(rounds).mean,
                "game_floor": hitting_game_floor(c, k),
                "cseek_schedule": player.schedule_slots(c),
            }
        )
    # Omega(Delta): discovery completion on stars is at least Delta.
    for delta in (4, 8, 16):
        net = build_network(
            star(delta + 1), c=8, k=2, seed=seed + delta, kind="global_core"
        )

        def star_outcome(result, net=net):
            report = verify_discovery(result, net)
            return report.success, report.completion_slot

        star_trial = _batched_cseek_trial(
            lambda s, net=net: CSeek(net, seed=s), star_outcome
        )
        outcomes = run_trials(
            star_trial,
            max(3, trials // 3),
            seed + delta,
            label="e8-star",
            executor=executor,
        )
        done = [t for ok, t in outcomes if ok and t is not None]
        rows.append(
            {
                "case": "star Omega(Delta)",
                "x": delta,
                "mean_rounds_to_meet": summarize(done).mean if done else None,
                "game_floor": float(delta),
                "cseek_schedule": None,
            }
        )
    return ExperimentTable(
        experiment_id="E8",
        title="Reduction to the game + Omega(Delta) (Lemma 11, Theorem 13)",
        rows=rows,
        notes=(
            "Paper claim: any discovery algorithm's first meeting, viewed "
            "through the Lemma 11 reduction, needs >= c^2/(8k) game "
            "rounds, and a star hub cannot finish before Delta receptions. "
            "Expect mean_rounds_to_meet >= game_floor in every row."
        ),
    )


# ----------------------------------------------------------------------
# E9 — broadcast lower bound on trees (Theorem 14)
# ----------------------------------------------------------------------
def experiment_e9(
    trials: int = 3, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Theorem 14: channel-disjoint trees force min(c, Delta)-1 slots per
    hop on any broadcast, CGCAST included."""
    executor = get_executor(jobs)
    rows: List[Row] = []
    c = 4
    for depth in (2, 3, 4):
        net = build_theorem14_tree(c=c, depth=depth, seed=seed + depth)
        kn = net.knowledge()
        floor = tree_broadcast_floor(c=c, delta=kn.max_degree, depth=depth)
        greedy = broadcast_floor(net, source=0)

        def cg_trial(s: int):
            result = CGCast(net, source=0, seed=s).run()
            return result.success, result.ledger.get("dissemination")

        def nv_trial(s: int):
            result = NaiveBroadcast(net, source=0, seed=s).run()
            return result.success, result.completion_slot

        cg = run_trials(
            cg_trial, trials, seed + depth, label="e9cg", executor=executor
        )
        nv = run_trials(
            nv_trial, trials, seed + depth, label="e9nv", executor=executor
        )
        cg_done = [d for ok, d in cg if ok]
        nv_done = [t for ok, t in nv if ok and t is not None]
        rows.append(
            {
                "depth": depth,
                "n": net.n,
                "analytic_floor": floor,
                "greedy_oracle": greedy,
                "cgcast_success": success_rate([ok for ok, _ in cg]),
                "cgcast_dissemination": (
                    summarize(cg_done).mean if cg_done else None
                ),
                "naive_success": success_rate([ok for ok, _ in nv]),
                "naive_completion": (
                    summarize(nv_done).mean if nv_done else None
                ),
            }
        )
    return ExperimentTable(
        experiment_id="E9",
        title="Broadcast floor on channel-disjoint trees (Theorem 14)",
        rows=rows,
        notes=(
            "Paper claim: with siblings sharing no channels, every "
            "broadcast needs >= depth * (min(c, Delta) - 1) slots. Expect "
            "both protocols' measured times above the analytic floor and "
            "the greedy omniscient schedule to match it exactly "
            "(greedy_oracle >= analytic_floor, with equality up to the "
            "root's head start)."
        ),
    )


# ----------------------------------------------------------------------
# E10 — heterogeneity + part-two ablation (Section 7)
# ----------------------------------------------------------------------
def experiment_e10(
    trials: int = 5, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Section 7: CSEEK's part two is biased toward strongly overlapping
    neighbors — the source of the upper/lower bound gap when
    kmax >> k."""
    executor = get_executor(jobs)
    rows: List[Row] = []
    # (a) under starved budgets, discovery probability splits by pair
    # class: high-overlap (k_uv = kmax) pairs are found far more often
    # than low-overlap (k_uv = k) pairs, and the gap widens with kmax/k.
    for kmax in (2, 4, 8):
        graph = random_regular(16, 3, seed=seed + 3)
        net = build_network(
            graph, c=32, k=1, seed=seed + kmax, kind="heterogeneous",
            kmax=kmax,
        )
        lo_pairs = [
            e for e in net.edges() if net.edge_overlap(*e) == 1
        ]
        hi_pairs = [
            e for e in net.edges() if net.edge_overlap(*e) == kmax
        ]

        def pair_rates(result, lo_pairs=lo_pairs, hi_pairs=hi_pairs):
            lo = sum(
                (v in result.discovered[u]) + (u in result.discovered[v])
                for u, v in lo_pairs
            ) / (2 * len(lo_pairs))
            hi = sum(
                (v in result.discovered[u]) + (u in result.discovered[v])
                for u, v in hi_pairs
            ) / (2 * len(hi_pairs))
            return lo, hi

        trial = _batched_cseek_trial(
            lambda s, net=net: CSeek(
                net, seed=s, part1_steps=300, part2_steps=400
            ),
            pair_rates,
        )
        outcomes = run_trials(
            trial, trials, seed + kmax, label=f"e10h{kmax}", executor=executor
        )
        lo_mean = summarize([a for a, _ in outcomes]).mean
        hi_mean = summarize([b for _, b in outcomes]).mean
        rows.append(
            {
                "case": f"starved budget, kmax/k={kmax}",
                "low_overlap_found": lo_mean,
                "high_overlap_found": hi_mean,
                "bias(high/low)": hi_mean / lo_mean if lo_mean else None,
                "success": None,
                "schedule": None,
            }
        )
    # (b) full budgets: the schedule formula stretches with kmax/k and
    # full discovery still succeeds (Theorem 4's budget absorbs the gap).
    for kmax in (1, 2, 4):
        graph = random_regular(16, 3, seed=seed + 3)
        kind = "exact_uniform" if kmax == 1 else "heterogeneous"
        net = build_network(
            graph, c=16, k=1, seed=seed + kmax, kind=kind, kmax=kmax
        )

        full_trial = _batched_cseek_trial(
            lambda s, net=net: CSeek(net, seed=s),
            lambda result, net=net: (
                verify_discovery(result, net).success,
                result.total_slots,
            ),
        )
        outcomes = run_trials(
            full_trial,
            trials,
            seed + 40 + kmax,
            label=f"e10f{kmax}",
            executor=executor,
        )
        rows.append(
            {
                "case": f"full budget, kmax/k={kmax}",
                "low_overlap_found": None,
                "high_overlap_found": None,
                "bias(high/low)": None,
                "success": success_rate([ok for ok, _ in outcomes]),
                "schedule": outcomes[0][1],
            }
        )
    return ExperimentTable(
        experiment_id="E10",
        title="Heterogeneity bias in part two (Section 7)",
        rows=rows,
        notes=(
            "Paper discussion (Section 7): part two gives priority to "
            "crowded channels, so under a fixed (starved) budget, "
            "neighbors sharing kmax channels are discovered far more "
            "often than those sharing only k — the bias(high/low) column "
            "grows with kmax/k, which is exactly why the paper's upper "
            "and lower bounds diverge in this regime. Full-budget rows "
            "confirm Theorem 4's schedule (which stretches with kmax/k) "
            "still delivers complete discovery."
        ),
    )


# ----------------------------------------------------------------------
# E11 — amortized repeated broadcast (extension; Theorem 9's regime)
# ----------------------------------------------------------------------
def experiment_e11(
    trials: int = 3, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Extension: CGCAST's setup is reusable, so over repeated
    broadcasts its per-message cost drops to the dissemination stage
    while naive flooding pays full price every time."""
    from repro.core import redisseminate

    executor = get_executor(jobs)
    # c^2/k = 256 >> Delta = 4: the regime where the per-hop advantage
    # of the colored schedule is unambiguous.
    graph = path_of_cliques(8, 4)
    net = build_network(graph, c=16, k=1, seed=seed + 1)
    kn = net.knowledge()
    num_messages = 16

    def trial(s: int):
        setup = CGCast(net, source=0, seed=s).run()
        if not setup.success:
            return None
        setup_slots = setup.total_slots - setup.ledger.get("dissemination")
        per_message = [setup.ledger.get("dissemination")]
        naive_per_message = []
        for msg in range(1, num_messages):
            source = (msg * 7) % net.n
            diss = redisseminate(net, setup, source=source, seed=s + msg)
            if not diss.success:
                return None
            per_message.append(diss.ledger.total)
            nv = NaiveBroadcast(
                net, source=source, seed=s + 100 + msg
            ).run()
            if not nv.success:
                return None
            naive_per_message.append(nv.completion_slot)
        nv0 = NaiveBroadcast(net, source=0, seed=s + 500).run()
        naive_per_message.insert(0, nv0.completion_slot)
        return setup_slots, per_message, naive_per_message

    outcomes = [
        o for o in run_trials(trial, trials, seed, executor=executor) if o
    ]
    if not outcomes:
        raise HarnessError("no successful E11 trial")
    rows: List[Row] = []
    for budget in (1, 4, num_messages):
        cg_totals = []
        nv_totals = []
        for setup_slots, per_message, naive_pm in outcomes:
            cg_totals.append(setup_slots + sum(per_message[:budget]))
            nv_totals.append(sum(naive_pm[:budget]))
        cg_mean = summarize(cg_totals).mean
        nv_mean = summarize(nv_totals).mean
        rows.append(
            {
                "messages": budget,
                "cgcast_total": cg_mean,
                "cgcast_per_message": cg_mean / budget,
                "naive_total": nv_mean,
                "naive_per_message": nv_mean / budget,
                "ratio(cgcast/naive)": cg_mean / nv_mean,
            }
        )
    # Amortization point estimate: setup / (naive per msg - diss per msg).
    setup_mean = summarize([o[0] for o in outcomes]).mean
    diss_pm = summarize(
        [sum(o[1][1:]) / max(1, len(o[1]) - 1) for o in outcomes]
    ).mean
    naive_pm = summarize(
        [sum(o[2]) / len(o[2]) for o in outcomes]
    ).mean
    if naive_pm > diss_pm:
        amortize = setup_mean / (naive_pm - diss_pm)
        amortize_note = (
            f" Per-message costs: re-dissemination {diss_pm:,.0f} vs "
            f"naive {naive_pm:,.0f} slots; the setup "
            f"({setup_mean:,.0f} slots) amortizes after "
            f"~{amortize:,.0f} messages."
        )
    else:
        amortize_note = (
            " At this size the re-dissemination cost does not undercut "
            "naive flooding, so the setup never amortizes — the "
            "asymptotic regime needs Delta*polylog << c^2/k."
        )
    return ExperimentTable(
        experiment_id="E11",
        title="Amortized repeated broadcast (extension of Theorem 9)",
        rows=rows,
        notes=(
            "Extension experiment (not a numbered claim): the paper's "
            "CGCAST builds a reusable schedule — discovery, dedicated "
            "channels and the edge coloring survive across broadcasts. "
            "Re-dissemination costs only the O~(D Delta) stage, so the "
            "per-message cost collapses as messages accumulate while "
            "naive flooding pays O~((c^2/k) D) every time; the "
            "cgcast/naive ratio falls toward the pure dissemination "
            f"ratio (D={net.knowledge().diameter}, Delta="
            f"{kn.max_degree}, c^2/k={kn.c * kn.c // kn.k})."
            + amortize_note
        ),
    )


# ----------------------------------------------------------------------
# E12 — primary-user interference robustness (extension)
# ----------------------------------------------------------------------
def experiment_e12(
    trials: int = 4, seed: int = 0, jobs: Jobs = None
) -> ExperimentTable:
    """Extension: discovery under primary-user channel occupancy.

    The paper motivates heterogeneous availability with licensed
    primary users but analyzes a static, interference-free model; this
    experiment measures how much of CSEEK's w.h.p. schedule slack
    survives dynamic occupancy, for short bursts (absorbed by COUNT's
    within-step redundancy) and long bursts (whole meetings lost).
    """
    from repro.sim import PrimaryUserTraffic

    executor = get_executor(jobs)
    graph = random_regular(20, 4, seed=seed + 7)
    net = build_network(graph, c=8, k=2, seed=seed + 11)
    all_channels = sorted(net.assignment.universe())
    rows: List[Row] = []
    cases = [("none", 0.0, 0.0)]
    for activity in (0.3, 0.6, 0.8):
        cases.append(("short bursts (dwell 4)", activity, 4.0))
        cases.append(("long bursts (dwell 500)", activity, 500.0))
    for name, activity, dwell in cases:

        jammer_factory = (
            (
                lambda s, activity=activity, dwell=dwell: PrimaryUserTraffic(
                    all_channels,
                    activity=activity,
                    mean_dwell=dwell,
                    seed=s + 1000,
                )
            )
            if activity > 0
            else None
        )
        def verify_outcome(result):
            report = verify_discovery(result, net)
            return report.success, report.completion_slot

        trial = _batched_cseek_trial(
            lambda s: CSeek(net, seed=s),
            verify_outcome,
            jammer_factory=jammer_factory,
        )
        outcomes = run_trials(
            trial,
            trials,
            seed + int(activity * 10),
            label=f"e12-{name}",
            executor=executor,
        )
        done = [t for ok, t in outcomes if ok and t is not None]
        rows.append(
            {
                "traffic": name,
                "activity": activity,
                "success": success_rate([ok for ok, _ in outcomes]),
                "mean_completion": summarize(done).mean if done else None,
            }
        )
    return ExperimentTable(
        experiment_id="E12",
        title="Primary-user interference robustness (extension)",
        rows=rows,
        notes=(
            "Extension experiment: COUNT's many-slots-per-step structure "
            "makes CSEEK nearly immune to short occupancy bursts (every "
            "meeting step offers many reception chances), while bursts "
            "longer than a step erase whole meetings — completion "
            "stretches with occupancy and discovery finally fails when "
            "most of the schedule is occupied. The paper's w.h.p. "
            "budget constants are what buy this slack."
        ),
    )


EXPERIMENTS: Dict[str, Callable[..., ExperimentTable]] = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8": experiment_e8,
    "E9": experiment_e9,
    "E10": experiment_e10,
    "E11": experiment_e11,
    "E12": experiment_e12,
}


def experiment_ids() -> List[str]:
    """All experiment ids in DESIGN.md order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    trials: int | None = None,
    seed: int = 0,
    jobs: Jobs = None,
    cache: bool = False,
    cache_dir: str | None = None,
) -> ExperimentTable:
    """Run one experiment by id.

    Args:
        experiment_id: DESIGN.md index id (case-insensitive).
        trials: Trials per configuration (None = experiment default).
        seed: Master seed.
        jobs: Execution strategy for the Monte Carlo trials (see
            :func:`repro.harness.executor.get_executor`); never changes
            the produced rows, only wall-clock.
        cache: When True, look the table up in (and store it into) the
            deterministic result cache — keyed on experiment id, trials,
            seed and code version, *not* on ``jobs``.
        cache_dir: Cache location override (default ``.repro_cache/``).

    Raises:
        HarnessError: for unknown ids.
    """
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise HarnessError(
            f"unknown experiment {experiment_id!r}; valid: "
            f"{', '.join(EXPERIMENTS)}"
        )
    if cache:
        cached = load_table(key, trials, seed, cache_dir=cache_dir)
        if cached is not None:
            return cached
    kwargs: Dict[str, object] = {"seed": seed}
    if trials is not None:
        kwargs["trials"] = trials
    if jobs is not None:
        kwargs["jobs"] = jobs
    table = EXPERIMENTS[key](**kwargs)
    if cache:
        try:
            store_table(table, trials, seed, cache_dir=cache_dir)
        except OSError as exc:
            # The cache is an optimization; never lose a computed table
            # to an unwritable cache location.
            warnings.warn(
                f"could not store {key} in the result cache: {exc}",
                stacklevel=2,
            )
    return table
