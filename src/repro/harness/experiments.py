"""Experiment entry points E1-E12 — thin wrappers over the scenario layer.

The experiment definitions themselves live in
:mod:`repro.scenarios.paper` as registered
:class:`~repro.scenarios.spec.ScenarioSpec` objects compiled by
:mod:`repro.scenarios.compile`; what remains here is the legacy calling
surface (``experiment_eN`` functions, the ``EXPERIMENTS`` registry and
:func:`run_experiment` with its result cache) that tests, benchmarks
and the CLI's ``run`` command rely on.

All experiments take a ``trials`` knob (statistical confidence vs
runtime), a master ``seed``, and a ``jobs`` knob selecting the execution
strategy for their Monte Carlo trials (see
:mod:`repro.harness.executor`: ``None``/1 serial, ``>= 2`` process
workers, ``"batch"`` vectorized where the trial is homogeneous), and
return an :class:`~repro.harness.runner.ExperimentTable`. Strategy never
changes rows — per-trial seeds are derived up front, so serial, parallel
and batched runs of the same master seed are bit-identical.
:func:`run_experiment` additionally offers a deterministic result cache
(see :mod:`repro.harness.cache`).
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional

from repro.harness.cache import load_table, store_table
from repro.harness.executor import Executor
from repro.harness.runner import ExperimentTable
from repro.model.errors import HarnessError

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

Jobs = int | str | Executor | None

_EXPERIMENT_IDS = [f"E{i}" for i in range(1, 13)]


def _scenario_table(
    experiment_id: str, trials: Optional[int], seed: int, jobs: Jobs
) -> ExperimentTable:
    # Deferred import: repro.scenarios builds on the harness's runner /
    # executor / cache modules, and this module is imported by the
    # repro.harness package init — a top-level import here would close
    # that cycle while both packages are half-initialized. The import
    # runs once per experiment call (not per trial), so it costs
    # nothing measurable.
    from repro.scenarios import paper_spec, run_scenario_spec

    return run_scenario_spec(
        paper_spec(experiment_id), trials=trials, seed=seed, jobs=jobs
    )


def _make_experiment(experiment_id: str) -> Callable[..., ExperimentTable]:
    def experiment(
        trials: Optional[int] = None, seed: int = 0, jobs: Jobs = None
    ) -> ExperimentTable:
        return _scenario_table(experiment_id, trials, seed, jobs)

    experiment.__name__ = f"experiment_{experiment_id.lower()}"
    experiment.__qualname__ = experiment.__name__
    experiment.__doc__ = (
        f"Regenerate {experiment_id}'s table through the scenario layer "
        f"(see repro.scenarios.paper); ``trials=None`` uses the "
        "experiment's default."
    )
    return experiment


EXPERIMENTS: Dict[str, Callable[..., ExperimentTable]] = {
    experiment_id: _make_experiment(experiment_id)
    for experiment_id in _EXPERIMENT_IDS
}

# Named aliases for the historical import surface
# (``from repro.harness.experiments import experiment_e2``).
experiment_e1 = EXPERIMENTS["E1"]
experiment_e2 = EXPERIMENTS["E2"]
experiment_e3 = EXPERIMENTS["E3"]
experiment_e4 = EXPERIMENTS["E4"]
experiment_e5 = EXPERIMENTS["E5"]
experiment_e6 = EXPERIMENTS["E6"]
experiment_e7 = EXPERIMENTS["E7"]
experiment_e8 = EXPERIMENTS["E8"]
experiment_e9 = EXPERIMENTS["E9"]
experiment_e10 = EXPERIMENTS["E10"]
experiment_e11 = EXPERIMENTS["E11"]
experiment_e12 = EXPERIMENTS["E12"]


def experiment_ids() -> List[str]:
    """All experiment ids in DESIGN.md order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    trials: int | None = None,
    seed: int = 0,
    jobs: Jobs = None,
    cache: bool = False,
    cache_dir: str | None = None,
) -> ExperimentTable:
    """Run one experiment by id.

    Args:
        experiment_id: DESIGN.md index id (case-insensitive).
        trials: Trials per configuration (None = experiment default).
        seed: Master seed.
        jobs: Execution strategy for the Monte Carlo trials (see
            :func:`repro.harness.executor.get_executor`); never changes
            the produced rows, only wall-clock.
        cache: When True, look the table up in (and store it into) the
            deterministic result cache — keyed on experiment id, trials,
            seed and code version, *not* on ``jobs``.
        cache_dir: Cache location override (default ``.repro_cache/``).

    Raises:
        HarnessError: for unknown ids.
    """
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise HarnessError(
            f"unknown experiment {experiment_id!r}; valid: "
            f"{', '.join(EXPERIMENTS)}"
        )
    if cache:
        cached = load_table(key, trials, seed, cache_dir=cache_dir)
        if cached is not None:
            return cached
    table = EXPERIMENTS[key](trials=trials, seed=seed, jobs=jobs)
    if cache:
        try:
            store_table(table, trials, seed, cache_dir=cache_dir)
        except OSError as exc:
            # The cache is an optimization; never lose a computed table
            # to an unwritable cache location.
            warnings.warn(
                f"could not store {key} in the result cache: {exc}",
                stacklevel=2,
            )
    return table
