"""Experiment execution scaffolding.

An :class:`ExperimentTable` is the standard deliverable of every
experiment: an id (matching DESIGN.md's index), a title, flat dict rows,
and free-text notes interpreting the rows against the paper's claim.
:func:`run_trials` standardizes seeded repetition: per-trial seeds are
derived up front from the master seed, then handed to a pluggable
:class:`~repro.harness.executor.Executor` (serial, process-parallel, or
vectorized-batch — see :mod:`repro.harness.executor`). Because each
trial is a pure function of its seed, every strategy yields bit-identical
results; ``jobs``/executor choice is throughput only.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.harness.executor import Executor, StreamingExecutor, get_executor
from repro.harness.tables import render_markdown, write_csv
from repro.model.errors import HarnessError
from repro.sim.rng import RngHub

__all__ = ["ExperimentTable", "run_trials", "stream_trials"]

T = TypeVar("T")
Row = Dict[str, object]


@dataclass
class ExperimentTable:
    """One experiment's regenerated table.

    Attributes:
        experiment_id: DESIGN.md index id, e.g. ``"E2"``.
        title: Human-readable claim summary.
        rows: Flat result rows (consistent keys per experiment).
        notes: Interpretation against the paper's claim.
        columns: Optional explicit column order.
    """

    experiment_id: str
    title: str
    rows: List[Row]
    notes: str = ""
    columns: Optional[Sequence[str]] = None

    def to_markdown(self) -> str:
        """Render the table (with title and notes) as markdown."""
        body = render_markdown(
            self.rows,
            columns=self.columns,
            title=f"{self.experiment_id} — {self.title}",
        )
        if self.notes:
            body += f"\n\n{self.notes.strip()}\n"
        return body

    def save(self, directory: str | Path) -> Dict[str, Path]:
        """Write ``<id>.md`` and ``<id>.csv`` into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        md_path = directory / f"{self.experiment_id.lower()}.md"
        md_path.write_text(self.to_markdown() + "\n")
        csv_path = write_csv(
            directory / f"{self.experiment_id.lower()}.csv",
            self.rows,
            columns=self.columns,
        )
        return {"markdown": md_path, "csv": csv_path}

    def to_payload(self) -> Dict[str, object]:
        """A JSON-ready dict of the table's full content.

        The single serialized form shared by the result cache and the
        campaign run store, so a table persisted by either layer loads
        back through :meth:`from_payload` without translation.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": self.rows,
            "notes": self.notes,
            "columns": list(self.columns) if self.columns else None,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ExperimentTable":
        """Rebuild a table from :meth:`to_payload` output.

        Raises:
            KeyError: when the payload misses a required field.
            ValueError: when ``rows`` is not a list of flat dicts —
                a hand-edited or corrupt persisted table. Callers (the
                result cache, the campaign run store) treat both as a
                miss and recompute.
        """
        rows = payload["rows"]
        if not isinstance(rows, list) or not all(
            isinstance(row, dict) for row in rows
        ):
            raise ValueError(
                "malformed table payload: rows must be a list of objects"
            )
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            rows=rows,
            notes=payload.get("notes", ""),
            columns=payload.get("columns"),
        )


def run_trials(
    trial: Callable[[int], T],
    trials: int,
    seed: int,
    label: str = "trials",
    executor: "Executor | int | str | None" = None,
) -> List[T]:
    """Run ``trial`` with ``trials`` independent derived seeds.

    Args:
        trial: Callable taking a trial seed. A ``run_batch`` attribute
            (``run_batch(seeds) -> results``) opts the trial into
            vectorized execution under a batched executor.
        trials: Number of repetitions (``>= 1``).
        seed: Master seed; per-trial seeds derive deterministically.
        label: Seed-stream label (vary to decorrelate phases).
        executor: Execution strategy — an
            :class:`~repro.harness.executor.Executor` or any ``jobs``
            value :func:`~repro.harness.executor.get_executor` accepts
            (default: serial). Strategy never changes results, only
            wall-clock.

    Returns:
        The list of per-trial results, in trial order.

    Raises:
        HarnessError: eagerly, naming the trial seed, when any trial
            raises mid-sweep.
    """
    if trials < 1:
        raise HarnessError(f"trials must be >= 1, got {trials}")
    seeds = RngHub(seed).spawn_seeds(trials, name=label)
    return get_executor(executor).run(trial, seeds)


def stream_trials(
    trial: Callable[[int], T],
    seed: int,
    consume: Callable[[List[T], int], bool],
    max_trials: int,
    label: str = "trials",
    executor: "Executor | int | str | None" = None,
) -> int:
    """Run ``trial`` in memory-capped chunks until ``consume`` says stop.

    The streaming counterpart of :func:`run_trials`: per-trial seeds
    come from the *same* derivation
    (:meth:`~repro.sim.rng.RngHub.seed_stream` is prefix-stable with
    ``spawn_seeds``), but are drawn lazily chunk by chunk, and each
    chunk's results are handed to ``consume`` instead of accumulating
    in a list. Trial ``i`` therefore sees exactly the seed a fixed
    ``run_trials(trial, i + 1, seed, label)`` run would give it,
    regardless of chunk size.

    Args:
        trial: Callable taking a trial seed (``run_batch`` opt-in as in
            :func:`run_trials`; chunks ride the vectorized batch by
            default).
        seed: Master seed; per-trial seeds derive deterministically.
        consume: Called after every chunk with ``(results, total_so_
            far)``; folds the chunk into online accumulators and
            returns ``True`` to stop early (e.g. a precision target
            met).
        max_trials: Hard ceiling on total trials.
        label: Seed-stream label (vary to decorrelate phases).
        executor: A :class:`~repro.harness.executor.StreamingExecutor`,
            or any ``jobs`` value — non-streaming values become the
            *inner* per-chunk strategy of a default-size streaming
            executor.

    Returns:
        The total number of trials actually run.

    Raises:
        HarnessError: if ``max_trials < 1``, or eagerly when any trial
            raises mid-chunk.
    """
    if isinstance(executor, StreamingExecutor):
        streaming = executor
    elif executor is None:
        streaming = StreamingExecutor()
    else:
        resolved = get_executor(executor)
        if isinstance(resolved, StreamingExecutor):
            streaming = resolved
        else:
            streaming = StreamingExecutor(inner=resolved)
    stream = RngHub(seed).seed_stream(name=label)
    done = 0
    for results in streaming.iter_chunks(trial, stream, max_trials):
        done += len(results)
        if consume(results, done):
            break
    return done
