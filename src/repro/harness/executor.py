"""Pluggable trial executors — the harness's throughput layer.

Every experiment reduces to "run this pure function of a seed N times"
(:func:`repro.harness.runner.run_trials`). The per-trial seeds are
derived *up front* from the master seed via
:meth:`repro.sim.rng.RngHub.spawn_seeds`, so execution strategy is a
pure throughput decision: the same master seed must produce bit-identical
results whether trials run serially, across worker processes, or as one
vectorized batch. The strategies:

:class:`SerialExecutor`
    The reference strategy: an in-process loop, one trial at a time.
:class:`ParallelExecutor`
    Fans trial chunks out to a fork-based process pool. Fork start is
    required because experiment trials are closures over network objects;
    forked workers inherit them without pickling, and only seeds and
    results cross process boundaries. Falls back to serial where fork is
    unavailable (non-POSIX platforms).
:class:`BatchedExecutor`
    Runs the whole trial axis as one vectorized call when the trial
    callable advertises one (a ``run_batch`` attribute taking the seed
    list — see :func:`repro.sim.engine.resolve_step_batch` and
    :func:`repro.core.count.run_count_step_batch` for the sim-layer
    primitives this rides on); falls back to serial otherwise.
:class:`XBatchExecutor`
    The cross-point strategy (``jobs="xbatch"``): per run it behaves
    exactly like :class:`BatchedExecutor`, but scenario-level drivers
    (:func:`repro.scenarios.compile.run_scenario_spec`, the streaming
    path) recognize it and batch *across* sweep points — every point
    whose trial advertises a matching ``xbatch`` compatibility
    signature joins one lockstep execution
    (:func:`repro.core.xbatch.run_group`).
:class:`StreamingExecutor`
    Memory-capped chunked execution: splits the trial axis into
    fixed-size chunks and delegates each to an inner strategy (the
    vectorized batch by default), so resident state is bounded by the
    chunk size rather than the trial count. Beyond the plain ``run``
    contract it exposes :meth:`StreamingExecutor.iter_chunks`, which
    pulls seeds lazily from a :class:`repro.sim.rng.SeedStream` and
    yields one result chunk at a time — the entry point
    :func:`repro.harness.runner.stream_trials` and CI-targeted stopping
    ride on (results never materialize as one list).

All strategies validate trial results eagerly: a raising trial surfaces
as a :class:`~repro.model.errors.HarnessError` naming the trial seed
that failed, so a failure deep inside a sweep is reproducible in
isolation.

:func:`get_executor` maps the user-facing ``jobs`` knob (CLI ``--jobs``,
the ``jobs`` parameter on every experiment function) to a strategy.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import traceback
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
    runtime_checkable,
)

from repro import obs
from repro.model.errors import HarnessError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (rng is sim-side)
    from repro.sim.rng import SeedStream

__all__ = [
    "BatchedExecutor",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "StreamingExecutor",
    "XBatchExecutor",
    "get_executor",
]

T = TypeVar("T")


def call_trial(trial: Callable[[int], T], seed: int) -> T:
    """Run one trial, wrapping any failure with its seed context."""
    try:
        return trial(seed)
    except HarnessError as exc:
        raise HarnessError(f"trial failed (seed={seed}): {exc}") from exc
    except Exception as exc:  # noqa: BLE001 — seed context must survive
        raise HarnessError(f"trial failed (seed={seed}): {exc!r}") from exc


@runtime_checkable
class Executor(Protocol):
    """Strategy for running one trial function over many seeds.

    Implementations must preserve seed order in the returned list and
    must not perturb results relative to :class:`SerialExecutor` — the
    determinism contract every equivalence test in ``tests/test_harness``
    pins down.
    """

    def run(
        self, trial: Callable[[int], T], seeds: Sequence[int]
    ) -> List[T]:
        """Return ``[trial(s) for s in seeds]``, by whatever means."""
        ...


class SerialExecutor:
    """The reference in-process strategy (``jobs=1``)."""

    def run(
        self, trial: Callable[[int], T], seeds: Sequence[int]
    ) -> List[T]:
        obs.count("executor.trials", len(seeds))
        return [call_trial(trial, s) for s in seeds]


# ----------------------------------------------------------------------
# Process-parallel execution
# ----------------------------------------------------------------------
# Worker-side state: the trial closure, inherited through fork at pool
# creation (closures over network objects are not picklable, so it can
# not travel through the task queue).
_worker_trial: Callable[[int], object] | None = None


def _worker_init(trial: Callable[[int], object]) -> None:
    global _worker_trial
    _worker_trial = trial


def _worker_chunk(
    seeds: List[int],
) -> Tuple[List[tuple], Optional[dict]]:
    """Run a chunk of seeds in a pool worker.

    Returns per-seed ``(ok, payload)`` pairs plus the chunk's telemetry
    snapshot (None while telemetry is off). Workers inherit the
    enabled-state through fork; each chunk records under a fresh
    recorder, and the parent merges the shipped snapshots — integer
    aggregates, so pool completion order cannot change the totals.
    """
    tel = obs.start() if obs.enabled() else None
    start_ns = time.perf_counter_ns()
    results = []
    for seed in seeds:
        try:
            results.append((True, _worker_trial(seed)))
        except Exception as exc:  # noqa: BLE001 — re-raised parent-side
            results.append(
                (False, (seed, f"{exc!r}\n{traceback.format_exc()}"))
            )
    snapshot = None
    if tel is not None:
        tel.count("worker.chunks")
        tel.count("worker.wall_ns", time.perf_counter_ns() - start_ns)
        rss = obs.peak_rss_kb()
        if rss is not None:
            tel.gauge_max("worker.peak_rss_kb", rss)
        snapshot = obs.stop()
    return results, snapshot


class ParallelExecutor:
    """Chunked fan-out over a fork-based process pool (``jobs>=2``).

    Args:
        jobs: Worker process count; ``0`` means one per CPU.
        chunk_size: Seeds per submitted task; default sizes chunks so
            each worker sees ~4 tasks (amortizing IPC while keeping the
            pool load-balanced across uneven trial durations).
    """

    def __init__(self, jobs: int = 0, chunk_size: int | None = None) -> None:
        if jobs < 0:
            raise HarnessError(f"jobs must be >= 0, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise HarnessError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.jobs = jobs or (os.cpu_count() or 1)
        self.chunk_size = chunk_size

    def run(
        self, trial: Callable[[int], T], seeds: Sequence[int]
    ) -> List[T]:
        seeds = list(seeds)
        if len(seeds) <= 1 or self.jobs <= 1:
            return SerialExecutor().run(trial, seeds)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX fallback
            return SerialExecutor().run(trial, seeds)
        jobs = min(self.jobs, len(seeds))
        chunk = self.chunk_size or max(
            1, math.ceil(len(seeds) / (jobs * 4))
        )
        chunks = [
            seeds[i : i + chunk] for i in range(0, len(seeds), chunk)
        ]
        obs.count("executor.trials", len(seeds))
        collector = obs.active()
        results: List[T] = []
        with ctx.Pool(
            jobs, initializer=_worker_init, initargs=(trial,)
        ) as pool:
            # imap preserves chunk order and surfaces a failed chunk as
            # soon as it completes, instead of after the whole sweep.
            for part, snapshot in pool.imap(_worker_chunk, chunks):
                if collector is not None:
                    collector.merge_snapshot(snapshot)
                for ok, payload in part:
                    if not ok:
                        seed, detail = payload
                        raise HarnessError(
                            f"trial failed (seed={seed}): {detail}"
                        )
                    results.append(payload)
        return results


class BatchedExecutor:
    """Vectorized trial-axis execution (``jobs='batch'``).

    A trial callable opts in by carrying a ``run_batch`` attribute —
    ``run_batch(seeds) -> list of per-seed results`` — implemented on
    the sim layer's batched resolvers (micro-trials like a single COUNT
    step) or on the protocol layer's trial-batched runner
    (:class:`repro.core.cseek_batch.CSeekBatch`, which carries whole
    CSEEK/CKSEEK executions through the batch). Trials without one fall
    back to the serial reference strategy, so a batched executor is
    always safe to pass to heterogeneous experiments.

    Args:
        batch_size: Maximum seeds per ``run_batch`` call; ``None`` runs
            the whole trial axis in one batch. Batched engine state is
            ``O(B * T * n)``, so a bound keeps huge sweeps
            memory-resident (``jobs="batch:64"`` on the CLI). Per-trial
            results are unaffected — seeds derive up front, so chunking
            is invisible to the determinism contract.
    """

    def __init__(self, batch_size: int | None = None) -> None:
        if batch_size is not None and batch_size < 1:
            raise HarnessError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.batch_size = batch_size

    def run(
        self, trial: Callable[[int], T], seeds: Sequence[int]
    ) -> List[T]:
        seeds = list(seeds)
        run_batch = getattr(trial, "run_batch", None)
        if run_batch is None:
            return SerialExecutor().run(trial, seeds)
        obs.count("executor.trials", len(seeds))
        size = self.batch_size or max(1, len(seeds))
        results: List[T] = []
        for i in range(0, len(seeds), size):
            chunk = seeds[i : i + size]
            obs.count("executor.batches")
            try:
                part = list(run_batch(chunk))
            except HarnessError:
                raise
            except Exception as exc:  # noqa: BLE001 — seed context
                raise HarnessError(
                    f"batched trial failed (seeds={chunk}): {exc!r}"
                ) from exc
            if len(part) != len(chunk):
                raise HarnessError(
                    f"batched trial returned {len(part)} results for "
                    f"{len(chunk)} seeds"
                )
            results.extend(part)
        return results


class XBatchExecutor(BatchedExecutor):
    """Cross-point vectorized execution (``jobs='xbatch'``).

    For a single ``run`` call this *is* the batched strategy (same
    contract, same results). Its extra meaning lives one layer up:
    scenario drivers that see an ``XBatchExecutor`` group the sweep's
    points by their trials' ``xbatch`` compatibility signatures and
    run each group as one lockstep execution spanning every member
    point, so a whole sweep resolves in a handful of giant engine
    calls instead of one batch per point. Points that cannot group
    (no ``xbatch`` descriptor, or a unique signature) degrade to
    per-point batching — never an error.

    ``batch_size`` (``jobs="xbatch:N"``) caps trials per lockstep
    execution in both roles, bounding the ``O(B * T * n)`` (and, for
    mixed-network groups, ``O(B * n^2)``) engine state.
    """


#: Default trials resident per streaming chunk. Large enough that the
#: per-chunk batch setup amortizes, small enough that batched engine
#: state (``O(chunk * slots * nodes)``) stays in tens of megabytes for
#: the stock scenarios.
DEFAULT_STREAM_CHUNK = 4096


class StreamingExecutor:
    """Memory-capped chunked execution (``jobs='stream'``).

    Splits the trial axis into chunks of at most ``chunk_size`` seeds
    and delegates each chunk to an inner strategy — the vectorized
    batch by default, so protocol trials still ride
    :class:`repro.core.cseek_batch.CSeekBatch` /
    :func:`repro.core.count.run_count_step_batch` within a chunk.
    Resident simulation state is bounded by the chunk, not the trial
    count, which is what lets a million-trial axis run under a fixed
    memory cap.

    ``run`` satisfies the :class:`Executor` protocol (and is
    bit-identical to the inner strategy, since seeds derive up front);
    :meth:`iter_chunks` is the genuinely streaming entry — seeds are
    drawn lazily and results are yielded chunk by chunk, so a consumer
    folding them into online accumulators (and possibly stopping
    early) never holds more than one chunk.

    Args:
        chunk_size: Trials resident per chunk (default
            ``DEFAULT_STREAM_CHUNK``). Always the *cap* — adaptive
            growth never exceeds it.
        inner: Strategy for each chunk — any ``jobs`` value
            :func:`get_executor` accepts (default: vectorized batch).
        initial_chunk: When set (``0 < initial_chunk < chunk_size``),
            :meth:`iter_chunks` grows the chunk geometrically — the
            first chunk has ``initial_chunk`` trials, each subsequent
            chunk doubles, capped at ``chunk_size``. Easy points (a
            CI-targeted consumer that stops after a few hundred
            trials) then never pay for a full-size chunk, while hard
            points quickly reach the cap and amortize per-chunk
            overhead. The schedule is deterministic, and seeds are
            prefix-stable under any chunking, so per-trial results
            never depend on it. ``0`` (default) keeps fixed-size
            chunks. ``run`` ignores it — the trial count is already
            known there, so there is nothing to probe.
    """

    def __init__(
        self,
        chunk_size: int = 0,
        inner: "int | str | Executor | None" = None,
        initial_chunk: int = 0,
    ) -> None:
        if chunk_size < 0:
            raise HarnessError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if initial_chunk < 0:
            raise HarnessError(
                f"initial_chunk must be >= 0, got {initial_chunk}"
            )
        self.chunk_size = chunk_size or DEFAULT_STREAM_CHUNK
        self.initial_chunk = min(initial_chunk, self.chunk_size)
        self.inner: Executor = (
            BatchedExecutor() if inner is None else get_executor(inner)
        )
        if isinstance(self.inner, StreamingExecutor):
            raise HarnessError(
                "a StreamingExecutor cannot nest another one"
            )

    def run(
        self, trial: Callable[[int], T], seeds: Sequence[int]
    ) -> List[T]:
        seeds = list(seeds)
        results: List[T] = []
        for i in range(0, len(seeds), self.chunk_size):
            obs.count("stream.chunks")
            with obs.span("chunk"):
                results.extend(
                    self.inner.run(trial, seeds[i : i + self.chunk_size])
                )
        return results

    def iter_chunks(
        self,
        trial: Callable[[int], T],
        stream: "SeedStream",
        max_trials: int,
    ) -> Iterator[List[T]]:
        """Yield result chunks, drawing seeds lazily from ``stream``.

        Stops after ``max_trials`` total trials; a consumer that breaks
        out earlier leaves the stream positioned after the last chunk
        it received, so the seeds consumed are always a prefix of the
        one-shot derivation. With ``initial_chunk`` set, chunk sizes
        grow geometrically (doubling) from it up to ``chunk_size``.

        Raises:
            HarnessError: if ``max_trials < 1``.
        """
        if max_trials < 1:
            raise HarnessError(
                f"max_trials must be >= 1, got {max_trials}"
            )
        chunk = self.initial_chunk or self.chunk_size
        done = 0
        while done < max_trials:
            count = min(chunk, max_trials - done)
            obs.count("stream.chunks")
            with obs.span("chunk"):
                part = self.inner.run(trial, stream.take(count))
            yield part
            done += count
            chunk = min(chunk * 2, self.chunk_size)


def get_executor(jobs: "int | str | Executor | None" = None) -> Executor:
    """Map a ``jobs`` knob value to an executor.

    Accepts ``None``/``1``/``"serial"`` (serial), an int ``>= 2``
    (process pool of that size), ``0`` (one worker per CPU),
    ``"batch"``/``"batched"`` (vectorized trial axis, one batch),
    ``"batch:N"`` (vectorized in chunks of at most ``N`` trials),
    ``"xbatch"``/``"xbatch:N"`` (vectorized *across* sweep points with
    compatible shapes; per-run it equals ``"batch"``),
    ``"stream"``/``"stream:N"`` (memory-capped chunks of at most ``N``
    trials, each chunk vectorized), or an existing :class:`Executor`
    instance (returned as-is, so experiment functions can thread one
    executor through every ``run_trials`` call).
    """
    if jobs is None:
        return SerialExecutor()
    if isinstance(jobs, str):
        name = jobs.strip().lower()
        if name == "serial":
            return SerialExecutor()
        if name in ("batch", "batched"):
            return BatchedExecutor()
        if name == "xbatch":
            return XBatchExecutor()
        if name in ("stream", "streaming"):
            return StreamingExecutor()
        for prefix, make in (
            ("batch:", BatchedExecutor),
            ("batched:", BatchedExecutor),
            ("xbatch:", XBatchExecutor),
            ("stream:", StreamingExecutor),
            ("streaming:", StreamingExecutor),
        ):
            if name.startswith(prefix):
                size = name[len(prefix):]
                if not size.isdigit() or int(size) < 1:
                    raise HarnessError(
                        f"bad chunk size in jobs value {jobs!r}; "
                        f"expected '{prefix}<positive int>'"
                    )
                return make(int(size))
        if name.isdigit():
            return get_executor(int(name))
        raise HarnessError(
            f"unknown jobs value {jobs!r}; expected an int, 'serial', "
            "'batch', 'batch:N', 'xbatch', 'xbatch:N', 'stream', or "
            "'stream:N'"
        )
    if isinstance(jobs, int) and not isinstance(jobs, bool):
        if jobs < 0:
            raise HarnessError(f"jobs must be >= 0, got {jobs}")
        if jobs == 1:
            return SerialExecutor()
        return ParallelExecutor(jobs=jobs)
    if isinstance(jobs, Executor):
        return jobs
    raise HarnessError(f"unknown jobs value {jobs!r}")
