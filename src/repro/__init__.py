"""repro — reproduction of *Communication Primitives in Cognitive Radio
Networks* (Gilbert, Kuhn, Zheng; PODC 2017, arXiv:1703.06130).

The package provides:

* a slot-accurate synchronous multi-channel radio simulator
  (:mod:`repro.sim`) implementing the paper's model,
* the paper's algorithms — COUNT, CSEEK, CKSEEK, CGCAST
  (:mod:`repro.core`),
* the naive baselines from the paper's introduction and omniscient
  floors (:mod:`repro.baselines`),
* the Section 6 lower-bound games and reductions
  (:mod:`repro.lowerbounds`),
* bound curves, scaling fits and trial statistics
  (:mod:`repro.analysis`), and
* the experiment harness regenerating every claim
  (:mod:`repro.harness`, ``python -m repro``).

Quickstart::

    from repro.graphs import build_network, random_regular
    from repro.core import CSeek, verify_discovery

    net = build_network(random_regular(20, 4, seed=1), c=8, k=2, seed=2)
    result = CSeek(net, seed=3).run()
    report = verify_discovery(result, net)
    assert report.success
"""

from repro.baselines import NaiveBroadcast, NaiveDiscovery
from repro.core import (
    CGCast,
    CKSeek,
    CSeek,
    ProtocolConstants,
    verify_discovery,
    verify_k_discovery,
)
from repro.graphs import (
    build_network,
    build_random_subset_network,
    build_theorem14_tree,
    build_two_node_network,
)
from repro.model import ModelKnowledge, NetworkSpec, ReproError
from repro.sim import CRNetwork

__version__ = "1.0.0"

__all__ = [
    "CGCast",
    "CKSeek",
    "CRNetwork",
    "CSeek",
    "ModelKnowledge",
    "NaiveBroadcast",
    "NaiveDiscovery",
    "NetworkSpec",
    "ProtocolConstants",
    "ReproError",
    "build_network",
    "build_random_subset_network",
    "build_theorem14_tree",
    "build_two_node_network",
    "verify_discovery",
    "verify_k_discovery",
    "__version__",
]
