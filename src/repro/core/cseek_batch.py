"""Trial-batched CSEEK execution (the harness's protocol fast path).

:class:`~repro.core.cseek.CSeek` resolves each part-one COUNT step and
each part-two back-off window with one engine call — but a Monte Carlo
sweep still pays that call (plus generator draws, trace scans and
bookkeeping) once per step *per trial*. Homogeneous trials — one
network, one configuration, only the seed varying, which is the shape of
every sweep point in experiments E2/E3/E4/E10/E12 — admit a much better
schedule: run all ``B`` trials in lockstep, so each part-one step is a
single :func:`repro.core.count.run_count_step_batch` call and each
part-two window a single
:func:`repro.core.cseek.resolve_backoff_batch` call over the whole
``(B, T, n)`` trial axis.

Bit-exactness contract: trial ``b`` draws from its *own* generators
(``RngHub(seed_b).child(rng_label)``) in exactly the order
:meth:`CSeek.run` draws them — labels, roles, then engine coins per
step; per-trial jammers advance their own streams — so
``CSeekBatch.run(seeds)[b] == CSeek(seed=seeds[b]).run()`` field for
field. Batching is a pure throughput decision, which is what lets the
``jobs="batch"`` executor strategy route whole protocol runs through
this module without perturbing any experiment table.

The same runner serves CKSEEK (different budgets, same machinery — build
it from a :class:`~repro.core.ckseek.CKSeek` prototype via
:meth:`CSeek.batch` / :meth:`CSeekBatch.from_serial`) and CGCAST's
discovery phase (:func:`batched_discovery` + the ``discovery=``
injection parameter on :class:`~repro.core.cgcast.CGCast`).

Cross-point batching: :func:`run_cseek_lockstep` is the general form —
it locksteps trials of *several* :class:`CSeekBatch` members at once
(one per sweep point), provided they share a compatibility signature
(:func:`lockstep_signature`: node/channel counts, step budgets,
listener policy, rng namespace, knowledge, constants). Member networks
may differ: the engine resolves against a per-trial ``(B, n, n)``
adjacency stack when they do. The trial axis is the plain concatenation
of every member's seeds, so ragged per-point trial counts need no
padding — each trial draws from its own generators either way, which is
also why per-trial bit-identity to the serial protocol is preserved
member by member. :meth:`CSeekBatch.run` is the single-member special
case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.constants import ProtocolConstants
from repro.core.count import count_schedule, run_count_step_batch
from repro.core.cseek import (
    CSeek,
    CSeekResult,
    ListenerPolicy,
    choose_part2_labels,
    resolve_backoff_batch,
)
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.environment import SpectrumEnvironment
from repro.sim.interference import PrimaryUserTraffic
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork
from repro.sim.rng import RngHub
from repro.sim.trace import TraceRecorder, record_step_batch

__all__ = [
    "CSeekBatch",
    "JammerFactory",
    "LockstepMember",
    "batched_discovery",
    "lockstep_signature",
    "run_cseek_lockstep",
]

JammerFactory = Callable[[int], Optional[PrimaryUserTraffic]]


class _PerTrialTraffic:
    """Batched jam-mask view over independent per-trial jammer objects.

    The legacy ``jammer_factory`` compatibility path: each trial's
    sequential process advances on its own (a Python loop over trials),
    presented behind the same ``jam_mask(channels, num_slots)``
    interface a :class:`~repro.sim.environment.TrafficStream` offers so
    :meth:`CSeekBatch.run` needs no per-path branching.
    """

    def __init__(
        self, jammers: List[Optional[PrimaryUserTraffic]]
    ) -> None:
        self._jammers = jammers

    def jam_mask(
        self, channels: np.ndarray, num_slots: int
    ) -> np.ndarray:
        num_trials, n = channels.shape
        jam = np.zeros((num_trials, num_slots, n), dtype=bool)
        for b, jammer in enumerate(self._jammers):
            if jammer is not None:
                jam[b] = jammer.jam_mask(channels[b], num_slots)
        return jam


class CSeekBatch:
    """Run many homogeneous CSEEK trials in lockstep across the trial axis.

    All trials share the network, knowledge, constants, step budgets and
    listener policy; only the per-trial seed (and, through
    ``jammer_factory``, the per-trial primary-user traffic) varies.
    Heterogeneous sweeps belong on the serial or process-pool executors.

    Args:
        network: Ground-truth network shared by every trial.
        knowledge: Global parameters handed to nodes; defaults to the
            network's realized parameters.
        constants: Schedule constants; defaults to
            :meth:`ProtocolConstants.fast`.
        part1_steps: Override the part-one step budget (CKSEEK budgets
            enter here); default per ``constants.part1_steps``.
        part2_steps: Override the part-two step budget; default per
            ``constants.part2_steps``.
        part2_listener: ``"weighted"`` (paper) or ``"uniform"``
            (ablation) — the E10 ablation path batches like any other.
        rng_label: Randomness namespace, as on :class:`CSeek` (CGCAST's
            embedded discovery uses ``"cgcast.discovery"``).
        environment: Optional spectrum environment
            (:class:`~repro.sim.environment.SpectrumEnvironment`); one
            batched traffic stream covers all trials, so every
            protocol step jams the whole trial axis with a single call
            — this is what removed the per-trial Markov loop from the
            batched hot path. Per trial, occupancy is bit-identical to
            the serial ``CSeek(..., environment=...)`` execution.
        jammer_factory: Deprecated per-trial-seed factory for
            :class:`~repro.sim.interference.PrimaryUserTraffic` (the
            pre-environment interface; jam masks then fall back to a
            per-trial loop). Mutually exclusive with ``environment``.
    """

    def __init__(
        self,
        network: CRNetwork,
        knowledge: Optional[ModelKnowledge] = None,
        constants: Optional[ProtocolConstants] = None,
        part1_steps: Optional[int] = None,
        part2_steps: Optional[int] = None,
        part2_listener: ListenerPolicy = "weighted",
        rng_label: str = "cseek",
        jammer_factory: Optional[JammerFactory] = None,
        environment: Optional[SpectrumEnvironment] = None,
    ) -> None:
        # Delegate validation and budget resolution to the serial
        # protocol: one source of truth for schedule sizing.
        self._proto = CSeek(
            network,
            knowledge=knowledge,
            constants=constants,
            seed=0,
            part1_steps=part1_steps,
            part2_steps=part2_steps,
            part2_listener=part2_listener,
            rng_label=rng_label,
        )
        if jammer_factory is not None and environment is not None:
            raise ProtocolError(
                "pass either environment= or the deprecated "
                "jammer_factory= alias, not both"
            )
        self.jammer_factory = jammer_factory
        self.environment = environment

    @classmethod
    def from_serial(
        cls,
        proto: CSeek,
        jammer_factory: Optional[JammerFactory] = None,
        environment: Optional[SpectrumEnvironment] = None,
    ) -> "CSeekBatch":
        """A batch runner with a serial protocol's resolved configuration.

        Works for any :class:`CSeek` instance, including subclasses that
        only reparameterize budgets (:class:`~repro.core.ckseek.CKSeek`):
        the *resolved* step budgets, listener policy and rng namespace
        are copied, so the prototype's seed is irrelevant. The
        prototype's ``environment`` carries over unless an explicit
        ``environment`` or ``jammer_factory`` is given; its ``jammer``
        is deliberately not copied — a single pre-seeded jammer
        instance cannot serve independent trials.
        """
        if environment is None and jammer_factory is None:
            environment = proto.environment
        return cls(
            proto.network,
            knowledge=proto.knowledge,
            constants=proto.constants,
            part1_steps=proto.part1_step_budget,
            part2_steps=proto.part2_step_budget,
            part2_listener=proto.part2_listener,
            rng_label=proto.rng_label,
            jammer_factory=jammer_factory,
            environment=environment,
        )

    # Mirror the serial protocol's introspection surface.
    @property
    def network(self) -> CRNetwork:
        return self._proto.network

    @property
    def part1_step_budget(self) -> int:
        return self._proto.part1_step_budget

    @property
    def part2_step_budget(self) -> int:
        return self._proto.part2_step_budget

    @property
    def part2_listener(self) -> ListenerPolicy:
        return self._proto.part2_listener

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, seeds: Sequence[int]) -> List[CSeekResult]:
        """Execute one full CSEEK trial per seed, in lockstep.

        Returns per-trial :class:`CSeekResult` objects, in seed order,
        each bit-identical to ``CSeek(..., seed=seeds[b]).run()``.
        The single-member special case of :func:`run_cseek_lockstep`.
        """
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ProtocolError("seeds must name at least one trial")
        return run_cseek_lockstep([LockstepMember(self, seeds)])[0]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _open_traffic(self, seeds: Sequence[int]):
        """One batched traffic handle for this run, or None when unjammed.

        An environment opens a single batched stream (one jam-mask
        gather per protocol step, no per-trial loop); a legacy
        jammer factory falls back to per-trial sequential processes
        wrapped behind the same ``jam_mask`` interface. Either way,
        trial ``b`` consumes occupancy exactly as its serial
        counterpart would.
        """
        if self.environment is not None:
            return self.environment.streams(seeds)
        if self.jammer_factory is not None:
            jammers = [self.jammer_factory(s) for s in seeds]
            if any(j is not None for j in jammers):
                return _PerTrialTraffic(jammers)
        return None


@dataclass
class LockstepMember:
    """One sweep point's contribution to a cross-point lockstep run.

    Attributes:
        batch: The point's configured :class:`CSeekBatch` (network,
            budgets, environment).
        seeds: The point's trial seeds — any count; the cross-point
            trial axis is the concatenation of every member's seeds, so
            ragged per-point counts need no padding.
    """

    batch: CSeekBatch
    seeds: Sequence[int]


def lockstep_signature(batch: CSeekBatch) -> tuple:
    """The compatibility key members of one lockstep run must share.

    Everything that shapes the lockstep schedule: node and channel
    counts, resolved step budgets, listener policy, rng namespace, the
    knowledge values the schedule derives from, and the constants
    profile. Networks are deliberately *not* part of the key — trials
    from different graphs resolve against a per-trial adjacency stack.
    Environments differ freely too (each member opens its own streams).
    """
    proto = batch._proto
    net = proto.network
    kn = proto.knowledge
    return (
        net.n,
        net.c,
        proto.part1_step_budget,
        proto.part2_step_budget,
        proto.part2_listener,
        proto.rng_label,
        kn.max_degree,
        kn.log_n,
        kn.log_delta,
        proto.constants,
    )


def run_cseek_lockstep(
    members: Sequence[LockstepMember],
) -> List[List[CSeekResult]]:
    """Run every member's trials in one cross-point lockstep execution.

    All members must share :func:`lockstep_signature`; their networks
    and environments may differ. Each part-one step and part-two window
    resolves as *one* engine call over the concatenated trial axis —
    with a shared adjacency when every member's network coincides (the
    single-point case), or a per-trial ``(B, n, n)`` stack otherwise.
    Per trial, generator draws, jam masks and bookkeeping are exactly
    those of a per-member :meth:`CSeekBatch.run`, so results are
    bit-identical to the per-point path (and hence to serial
    :meth:`CSeek.run`) member by member.

    Returns:
        One result list per member, in member order, each in the
        member's seed order.
    """
    if not members:
        raise ProtocolError("lockstep run needs at least one member")
    signature = lockstep_signature(members[0].batch)
    for member in members[1:]:
        other = lockstep_signature(member.batch)
        if other != signature:
            raise ProtocolError(
                "lockstep members must share a compatibility signature "
                "(n, c, budgets, policy, rng label, knowledge, "
                f"constants); got {other} vs {signature}"
            )
    seed_lists = [[int(s) for s in m.seeds] for m in members]
    if any(not seeds for seeds in seed_lists):
        raise ProtocolError("seeds must name at least one trial")

    proto = members[0].batch._proto
    # Telemetry stage: plain CSEEK/CKSEEK runs and CGCAST's discovery
    # stage are "discovery"; the runner is also reused for simulated
    # meeting-time/color exchanges, which report as "oracle_exchange".
    stage = (
        "discovery"
        if proto.rng_label == "cseek"
        or proto.rng_label.endswith("discovery")
        else "oracle_exchange"
    )
    kn = proto.knowledge
    n, c = proto.network.n, proto.network.c
    per_member = [len(seeds) for seeds in seed_lists]
    num_trials = sum(per_member)
    offsets = np.concatenate([[0], np.cumsum(per_member)])
    slices = [
        slice(int(offsets[j]), int(offsets[j + 1]))
        for j in range(len(members))
    ]
    tables = [m.batch.network.channel_table() for m in members]
    adjacencies = [m.batch.network.adjacency for m in members]
    if all(
        a is adjacencies[0] or np.array_equal(a, adjacencies[0])
        for a in adjacencies[1:]
    ):
        # One shared graph (always true for a single member): keep the
        # 2-D adjacency so the engine's shared-mask path applies.
        adjacency = adjacencies[0]
    else:
        adjacency = np.concatenate(
            [
                np.broadcast_to(adj, (cnt, n, n))
                for adj, cnt in zip(adjacencies, per_member)
            ]
        )
    rows = np.arange(n)

    hubs = [
        RngHub(s).child(proto.rng_label)
        for seeds in seed_lists
        for s in seeds
    ]
    traffics = [
        m.batch._open_traffic(seeds)
        for m, seeds in zip(members, seed_lists)
    ]

    def gather_jam(channels: np.ndarray, num_slots: int):
        """Per-member jam gathers assembled over the full trial axis.

        Unjammed members contribute zeros, which the engine treats
        exactly like the no-jam path — so mixing jammed and unjammed
        points in one group perturbs nothing.
        """
        if all(t is None for t in traffics):
            return None
        jam = np.zeros((num_trials, num_slots, n), dtype=bool)
        for sl, traffic in zip(slices, traffics):
            if traffic is not None:
                jam[sl] = traffic.jam_mask(channels[sl], num_slots)
        return jam

    counts = np.zeros((num_trials, n, c), dtype=np.float64)
    traces = [TraceRecorder() for _ in range(num_trials)]
    ledgers = [SlotLedger() for _ in range(num_trials)]
    step_starts: List[int] = []
    # Per-step (B, n) channel snapshots, re-sliced per trial at the end.
    step_channels: List[np.ndarray] = []
    slot_cursor = 0

    count_rounds, count_round_len = count_schedule(
        kn.max_degree, kn.log_n, proto.constants
    )
    count_slots = count_rounds * count_round_len

    rng1 = [hub.generator("part1") for hub in hubs]
    with obs.span(stage):
        for _ in range(proto.part1_step_budget):
            labels = np.empty((num_trials, n), dtype=np.int64)
            tx_role = np.empty((num_trials, n), dtype=bool)
            for b in range(num_trials):
                labels[b] = rng1[b].integers(0, c, size=n)
                tx_role[b] = rng1[b].random(n) < 0.5
            channels = np.empty((num_trials, n), dtype=np.int64)
            for sl, table in zip(slices, tables):
                channels[sl] = table[rows[None, :], labels[sl]]
            jam = gather_jam(channels, count_slots)
            outcome = run_count_step_batch(
                adjacency,
                channels,
                tx_role,
                max_count=kn.max_degree,
                log_n=kn.log_n,
                constants=proto.constants,
                rngs=rng1,
                jam=jam,
            )
            listeners = ~tx_role
            b_idx, u_idx = np.nonzero(listeners)
            # (b, u) pairs are unique, so plain fancy-index
            # accumulation matches the serial += exactly.
            counts[b_idx, u_idx, labels[b_idx, u_idx]] += (
                outcome.estimates[b_idx, u_idx]
            )
            record_step_batch(
                traces, outcome.step, slot_cursor, "cseek.part1",
                channels=channels,
            )
            step_starts.append(slot_cursor)
            step_channels.append(channels)
            slot_cursor += outcome.num_slots
            for ledger in ledgers:
                ledger.charge("part1", outcome.num_slots)

    discovered_part_one = [
        [set(trace.heard_by(u)) for u in range(n)] for trace in traces
    ]

    rng2 = [hub.generator("part2") for hub in hubs]
    backoff_len = kn.log_delta
    with obs.span(stage):
        for _ in range(proto.part2_step_budget):
            labels = np.empty((num_trials, n), dtype=np.int64)
            tx_role = np.empty((num_trials, n), dtype=bool)
            for b in range(num_trials):
                tx_role[b] = rng2[b].random(n) < 0.5
                labels[b] = choose_part2_labels(
                    rng2[b], tx_role[b], counts[b],
                    policy=proto.part2_listener,
                )
            channels = np.empty((num_trials, n), dtype=np.int64)
            for sl, table in zip(slices, tables):
                channels[sl] = table[rows[None, :], labels[sl]]
            jam = gather_jam(channels, backoff_len)
            outcome = resolve_backoff_batch(
                adjacency, channels, tx_role, backoff_len, rng2, jam=jam
            )
            record_step_batch(
                traces, outcome, slot_cursor, "cseek.part2",
                channels=channels,
            )
            step_starts.append(slot_cursor)
            step_channels.append(channels)
            slot_cursor += backoff_len
            for ledger in ledgers:
                ledger.charge("part2", backoff_len)

    # (S, B, n) -> per-trial (S, n) slices, matching serial vstack.
    all_channels = (
        np.stack(step_channels)
        if step_channels
        else np.zeros((0, num_trials, n), dtype=np.int64)
    )
    step_start_arr = np.array(step_starts, dtype=np.int64)
    results: List[List[CSeekResult]] = []
    for sl in slices:
        member_results: List[CSeekResult] = []
        for b in range(sl.start, sl.stop):
            member_results.append(
                CSeekResult(
                    discovered=[
                        set(traces[b].heard_by(u)) for u in range(n)
                    ],
                    discovered_part_one=discovered_part_one[b],
                    counts=counts[b].copy(),
                    trace=traces[b],
                    ledger=ledgers[b],
                    step_start_slots=step_start_arr,
                    step_channels=np.ascontiguousarray(
                        all_channels[:, b, :]
                    ),
                    total_slots=slot_cursor,
                )
            )
        results.append(member_results)
    return results


def batched_discovery(
    network: CRNetwork,
    seeds: Sequence[int],
    knowledge: Optional[ModelKnowledge] = None,
    constants: Optional[ProtocolConstants] = None,
    environment: Optional[SpectrumEnvironment] = None,
) -> List[CSeekResult]:
    """Batch CGCAST's discovery phase across trial seeds.

    Returns one :class:`CSeekResult` per seed, bit-identical to the
    CSEEK execution :meth:`repro.core.cgcast.CGCast.run` performs
    internally for that seed (``environment`` must match the CGCAST
    instance's) — hand result ``b`` to
    ``CGCast(..., seed=seeds[b], discovery=results[b])`` and the rest of
    the pipeline proceeds unchanged. This is how E6-style sweeps ride
    the trial axis through their most expensive phase without batching
    the (heterogeneous) exchange/coloring stages.
    """
    batch = CSeekBatch(
        network,
        knowledge=knowledge,
        constants=constants,
        rng_label="cgcast.discovery",
        environment=environment,
    )
    return batch.run(seeds)
