"""The paper's algorithms: COUNT, CSEEK, CKSEEK, CGCAST and parts."""

from repro.core.cgcast import CGCast, CGCastResult, redisseminate
from repro.core.ckseek import CKSeek, verify_k_discovery
from repro.core.coloring import (
    ColoringResult,
    LubyEdgeColoring,
    is_valid_edge_coloring,
)
from repro.core.constants import ProtocolConstants
from repro.core.count import (
    CountBatchOutcome,
    CountOutcome,
    count_schedule,
    run_count_step,
    run_count_step_batch,
)
from repro.core.cseek import (
    CSeek,
    CSeekResult,
    DiscoveryReport,
    choose_part2_labels,
    resolve_backoff_batch,
    verify_discovery,
)
from repro.core.cseek_batch import (
    CSeekBatch,
    LockstepMember,
    batched_discovery,
    lockstep_signature,
    run_cseek_lockstep,
)
from repro.core.dedicated import agree_dedicated_channels, first_heard_payloads
from repro.core.dissemination import DisseminationResult, run_dissemination
from repro.core.exchange import (
    exchange_slot_cost,
    oracle_exchange,
    simulated_exchange,
)
from repro.core.linegraph import LineGraph, edges_from_discovery
from repro.core.xbatch import (
    CountXBatch,
    CSeekXBatch,
    XBatchable,
    run_group,
)

__all__ = [
    "CGCast",
    "CGCastResult",
    "CKSeek",
    "CSeek",
    "CSeekBatch",
    "CSeekResult",
    "ColoringResult",
    "CSeekXBatch",
    "CountBatchOutcome",
    "CountOutcome",
    "CountXBatch",
    "DiscoveryReport",
    "DisseminationResult",
    "LineGraph",
    "LockstepMember",
    "LubyEdgeColoring",
    "ProtocolConstants",
    "XBatchable",
    "agree_dedicated_channels",
    "batched_discovery",
    "choose_part2_labels",
    "count_schedule",
    "edges_from_discovery",
    "exchange_slot_cost",
    "first_heard_payloads",
    "is_valid_edge_coloring",
    "lockstep_signature",
    "oracle_exchange",
    "redisseminate",
    "resolve_backoff_batch",
    "run_cseek_lockstep",
    "run_group",
    "run_count_step",
    "run_count_step_batch",
    "run_dissemination",
    "simulated_exchange",
    "verify_discovery",
    "verify_k_discovery",
]
