"""The paper's algorithms: COUNT, CSEEK, CKSEEK, CGCAST and parts."""

from repro.core.cgcast import CGCast, CGCastResult, redisseminate
from repro.core.cgcast_batch import (
    CGCastBatch,
    CGCastMember,
    cgcast_lockstep_signature,
    redisseminate_batch,
    run_cgcast_lockstep,
)
from repro.core.ckseek import CKSeek, verify_k_discovery
from repro.core.coloring import (
    ColoringResult,
    LubyEdgeColoring,
    is_valid_edge_coloring,
)
from repro.core.constants import ProtocolConstants
from repro.core.count import (
    CountBatchOutcome,
    CountOutcome,
    count_schedule,
    run_count_step,
    run_count_step_batch,
)
from repro.core.cseek import (
    CSeek,
    CSeekResult,
    DiscoveryReport,
    choose_part2_labels,
    resolve_backoff_batch,
    verify_discovery,
)
from repro.core.cseek_batch import (
    CSeekBatch,
    LockstepMember,
    batched_discovery,
    lockstep_signature,
    run_cseek_lockstep,
)
from repro.core.dedicated import agree_dedicated_channels, first_heard_payloads
from repro.core.dissemination import (
    DisseminationResult,
    build_color_channels,
    run_dissemination,
    run_dissemination_batch,
)
from repro.core.exchange import (
    exchange_slot_cost,
    oracle_exchange,
    simulated_exchange,
)
from repro.core.linegraph import LineGraph, edges_from_discovery
from repro.core.xbatch import (
    CGCastXBatch,
    CountXBatch,
    CSeekXBatch,
    XBatchable,
    run_group,
)

__all__ = [
    "CGCast",
    "CGCastBatch",
    "CGCastMember",
    "CGCastResult",
    "CGCastXBatch",
    "CKSeek",
    "CSeek",
    "CSeekBatch",
    "CSeekResult",
    "ColoringResult",
    "CSeekXBatch",
    "CountBatchOutcome",
    "CountOutcome",
    "CountXBatch",
    "DiscoveryReport",
    "DisseminationResult",
    "LineGraph",
    "LockstepMember",
    "LubyEdgeColoring",
    "ProtocolConstants",
    "XBatchable",
    "agree_dedicated_channels",
    "batched_discovery",
    "build_color_channels",
    "cgcast_lockstep_signature",
    "choose_part2_labels",
    "count_schedule",
    "edges_from_discovery",
    "exchange_slot_cost",
    "first_heard_payloads",
    "is_valid_edge_coloring",
    "lockstep_signature",
    "oracle_exchange",
    "redisseminate",
    "redisseminate_batch",
    "resolve_backoff_batch",
    "run_cgcast_lockstep",
    "run_cseek_lockstep",
    "run_group",
    "run_count_step",
    "run_count_step_batch",
    "run_dissemination",
    "run_dissemination_batch",
    "simulated_exchange",
    "verify_discovery",
    "verify_k_discovery",
]
