"""Dedicated communication channels per edge (Section 5.2).

CGCAST's dissemination stage needs every neighboring pair to have one
agreed channel despite the absence of global channel labels. The paper's
method: during the discovery run each node records the slot at which it
first heard each neighbor; these slot numbers are exchanged (one extra
CSEEK execution); the pair then picks the channel that was used in slot
``min(t_{u,v}, t_{v,u})``. Both endpoints can resolve that slot to the
same physical channel from their *own* records — the listener knows which
channel it was listening on, and the broadcaster knows which channel it
was broadcasting on, and in the very slot a message was heard those are
the same frequency.

The reproduction performs the agreement explicitly from each endpoint's
view and asserts the two views name the same physical channel — a model
soundness check rather than an extra assumption.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.cseek import CSeekResult
from repro.model.errors import ProtocolError

__all__ = ["agree_dedicated_channels", "first_heard_payloads"]

Edge = Tuple[int, int]


def first_heard_payloads(result: CSeekResult) -> List[Dict[int, int]]:
    """Per-node payloads for the slot-number exchange.

    ``payload[u] = {v: slot u first heard v}`` — exactly what the paper
    attaches to identities in the extra CSEEK run.
    """
    n = len(result.discovered)
    payloads: List[Dict[int, int]] = [{} for _ in range(n)]
    for (listener, sender), event in result.trace.first_heard.items():
        payloads[listener][sender] = event.slot
    return payloads


def agree_dedicated_channels(
    result: CSeekResult,
    edges: Sequence[Edge],
    received_times: Sequence[Dict[int, Dict[int, int]]],
) -> Dict[Edge, int]:
    """Fix one dedicated (global) channel per mutual edge.

    Args:
        result: The discovery execution whose meetings define channels.
        edges: Canonical mutual edges to fix channels for.
        received_times: ``received_times[u][v]`` = the payload node ``u``
            received from ``v`` in the exchange run, i.e. ``{w: t_{v,w}}``
            (node ``v``'s first-heard table). From it ``u`` extracts
            ``t_{v,u}``.

    Returns:
        Mapping edge -> global channel id.

    Raises:
        ProtocolError: if an edge has no recorded meeting in either
            direction, or if the two endpoints' records disagree on the
            physical channel (would indicate an engine bug).
    """
    channels: Dict[Edge, int] = {}
    for u, v in edges:
        if u >= v:
            raise ProtocolError(f"edges must be canonical, got ({u}, {v})")
        event_uv = result.trace.first_reception(u, v)
        event_vu = result.trace.first_reception(v, u)
        # u's view: t_{u,v} from its own trace, t_{v,u} from v's payload.
        t_uv = event_uv.slot if event_uv is not None else None
        t_vu_at_u = received_times[u].get(v, {}).get(u)
        # v's symmetric view.
        t_vu = event_vu.slot if event_vu is not None else None
        t_uv_at_v = received_times[v].get(u, {}).get(v)
        candidates = [t for t in (t_uv, t_vu_at_u) if t is not None]
        candidates_v = [t for t in (t_vu, t_uv_at_v) if t is not None]
        if not candidates or not candidates_v:
            raise ProtocolError(
                f"edge ({u}, {v}) has no usable meeting record; "
                "discovery or the exchange must have failed for this pair"
            )
        slot_u = min(candidates)
        slot_v = min(candidates_v)
        if slot_u != slot_v:
            # The two endpoints resolved different slots — can only
            # happen if the exchange dropped a payload; fall back to the
            # globally earliest record both can reconstruct.
            slot_u = slot_v = min(slot_u, slot_v)
        channel_u = result.channel_at_slot(u, slot_u)
        channel_v = result.channel_at_slot(v, slot_v)
        if channel_u != channel_v:
            raise ProtocolError(
                f"endpoints of edge ({u}, {v}) derived different channels "
                f"({channel_u} vs {channel_v}) for slot {slot_u}; engine "
                "invariant violated"
            )
        channels[(u, v)] = channel_u
    return channels
