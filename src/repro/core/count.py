"""COUNT — the broadcaster-counting procedure (Lemma 1, Appendix A).

Problem: on a channel there is one listener and an unknown number
``m <= Delta`` of broadcasters; the listener wants a constant-factor
estimate of ``m``.

Structure (paper, Appendix A): ``lg Delta`` rounds of ``Theta(lg n)``
slots. In round ``i`` the working estimate is ``2^(i-1)``; every
broadcaster transmits its identity with probability ``1 / 2^(i-1)`` per
slot, and the listener counts clear receptions. The reception rate
``m * p * (1-p)^(m-1)`` is unimodal in ``p`` and peaks when ``p ~ 1/m``,
which is what both estimation rules exploit:

* ``first_crossing`` (the paper's rule): accept the first round whose
  clear-reception fraction exceeds ``(1 + delta) * 8 e^{-7}``; the
  estimate is ``2^(i+1)`` and lands in ``[m, 4m]`` w.h.p. when rounds are
  long enough.
* ``argmax`` (robust variant for short rounds): accept the round with
  the most clear receptions; the estimate ``2^(i-1)`` lands within a
  small constant factor of ``m``.

This module runs COUNT for the *whole network at once*: every listener
concurrently runs the procedure on its own channel while every
broadcaster follows the round schedule. That is exactly how CSEEK part
one invokes it (one COUNT execution per part-one step).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.constants import ProtocolConstants
from repro.model.errors import ProtocolError
from repro.model.spec import ceil_log2
from repro.sim.engine import (
    BatchStepOutcome,
    StepOutcome,
    resolve_step,
    resolve_step_batch,
)

__all__ = [
    "CountBatchOutcome",
    "CountOutcome",
    "count_schedule",
    "run_count_step",
    "run_count_step_batch",
]


@dataclass(frozen=True)
class CountOutcome:
    """Result of one network-wide COUNT execution.

    Attributes:
        estimates: ``(n,)`` float array; listener ``u``'s broadcaster
            estimate for its channel (0.0 when nothing was ever heard, or
            when ``u`` was a broadcaster/idle).
        step: The raw engine outcome (``heard_from`` has shape
            ``(rounds * round_length, n)``), for identity harvesting and
            tracing by the caller.
        round_receptions: ``(rounds, n)`` int array of per-round clear
            reception counts (diagnostic).
        num_slots: Total slots consumed (``rounds * round_length``).
    """

    estimates: np.ndarray
    step: StepOutcome
    round_receptions: np.ndarray
    num_slots: int


@dataclass(frozen=True)
class CountBatchOutcome:
    """Result of ``B`` independent COUNT trials on one topology.

    Attributes:
        estimates: ``(B, n)`` float array; trial ``b``'s listener
            estimates (see :class:`CountOutcome`).
        step: The batched engine outcome (``heard_from`` has shape
            ``(B, rounds * round_length, n)``).
        round_receptions: ``(B, rounds, n)`` per-trial per-round clear
            reception counts.
        num_slots: Slots consumed *per trial*.
    """

    estimates: np.ndarray
    step: BatchStepOutcome
    round_receptions: np.ndarray
    num_slots: int

    @property
    def num_trials(self) -> int:
        return int(self.estimates.shape[0])

    def trial(self, b: int) -> CountOutcome:
        """Trial ``b``'s slice as a plain :class:`CountOutcome`."""
        return CountOutcome(
            estimates=self.estimates[b],
            step=self.step.trial(b),
            round_receptions=self.round_receptions[b],
            num_slots=self.num_slots,
        )


def count_schedule(
    max_count: int, log_n: int, constants: ProtocolConstants
) -> tuple[int, int]:
    """Return ``(rounds, round_length)`` for a COUNT execution.

    ``rounds = ceil(lg max_count) + 1`` so the probe probabilities
    ``1/2^(i-1)`` sweep down to ``~1/max_count`` (the paper's ``lg Delta``
    with its hidden constant made explicit); ``round_length =
    ceil(a * lg n)``.
    """
    if max_count < 1:
        raise ProtocolError(f"max_count must be >= 1, got {max_count}")
    rounds = ceil_log2(max_count) + 1
    return rounds, constants.count_round_length(log_n)


def _estimate_first_crossing(
    round_receptions: np.ndarray, round_length: int, threshold: float
) -> np.ndarray:
    """Paper rule: first round whose clear fraction exceeds the threshold.

    The estimate is ``2^(i+1)`` for 1-based round ``i`` (Appendix A); a
    listener that never crosses reports 0. Accepts ``(rounds, n)`` or a
    batched ``(B, rounds, n)`` — the rounds axis is always ``-2``.
    """
    # Required receptions; at least one message is always required.
    needed = max(1.0, threshold * round_length)
    crossed = round_receptions > needed
    any_crossed = crossed.any(axis=-2)
    first = np.argmax(crossed, axis=-2)  # 0-based round index
    estimates = np.where(any_crossed, 2.0 ** (first.astype(float) + 2.0), 0.0)
    return estimates


def _estimate_argmax(round_receptions: np.ndarray) -> np.ndarray:
    """Robust rule: the round with the most receptions names the estimate.

    The estimate is that round's probe value ``2^(i-1)``; ties resolve to
    the earliest round (the smaller estimate). Listeners that heard
    nothing report 0. Accepts ``(rounds, n)`` or a batched
    ``(B, rounds, n)`` — the rounds axis is always ``-2``.
    """
    heard_any = round_receptions.sum(axis=-2) > 0
    best = np.argmax(round_receptions, axis=-2)  # first max wins ties
    estimates = np.where(heard_any, 2.0 ** best.astype(float), 0.0)
    return estimates


def run_count_step(
    adjacency: np.ndarray,
    channels: np.ndarray,
    tx_role: np.ndarray,
    max_count: int,
    log_n: int,
    constants: ProtocolConstants,
    rng: np.random.Generator,
    jam: np.ndarray | None = None,
) -> CountOutcome:
    """Execute COUNT once, network-wide, on fixed channels and roles.

    Args:
        adjacency: ``(n, n)`` boolean adjacency matrix.
        channels: ``(n,)`` global channel per node (``-1`` idle), fixed
            for the whole execution.
        tx_role: ``(n,)`` boolean; True = broadcaster for the execution.
        max_count: A-priori bound on the broadcaster count (the paper
            uses the degree bound ``Delta``).
        log_n: ``ceil(lg n)`` for round sizing.
        constants: Schedule constants and estimation rule.
        rng: Randomness for broadcaster coins.
        jam: Optional ``(total_slots, n)`` primary-user reception-kill
            mask (see :mod:`repro.sim.interference`).

    Returns:
        A :class:`CountOutcome`; ``estimates[u] > 0`` only for listeners
        that heard at least one clear message.
    """
    n = adjacency.shape[0]
    rounds, round_length = count_schedule(max_count, log_n, constants)
    total_slots = rounds * round_length
    # Per-slot transmission probability: 1/2^(i-1) in (1-based) round i.
    probs = np.repeat(
        2.0 ** -np.arange(rounds, dtype=float), round_length
    )
    coins = rng.random((total_slots, n)) < probs[:, None]
    step = resolve_step(adjacency, channels, tx_role, coins, jam=jam)
    received = (step.heard_from >= 0).astype(np.int64)
    round_receptions = received.reshape(rounds, round_length, n).sum(axis=1)
    if constants.count_rule == "first_crossing":
        estimates = _estimate_first_crossing(
            round_receptions, round_length, constants.count_threshold()
        )
    else:
        estimates = _estimate_argmax(round_receptions)
    return CountOutcome(
        estimates=estimates,
        step=step,
        round_receptions=round_receptions,
        num_slots=total_slots,
    )


def run_count_step_batch(
    adjacency: np.ndarray,
    channels: np.ndarray,
    tx_role: np.ndarray,
    max_count: int,
    log_n: int,
    constants: ProtocolConstants,
    rngs: list[np.random.Generator],
    jam: np.ndarray | None = None,
) -> CountBatchOutcome:
    """Execute ``B`` independent COUNT trials as one batched resolve.

    The trials share the topology and the schedule and differ in their
    broadcaster coins — and, optionally, in per-trial channels and roles
    (2-D inputs), which is how CSEEK's trial-batched part-one steps ride
    this primitive: every trial tunes its own way, but all resolve in
    one engine call. Each trial's coins are drawn from its own generator
    exactly as :func:`run_count_step` would draw them, so trial ``b`` of
    the result is bit-identical to a serial call with ``rngs[b]`` —
    batching is a pure throughput decision.

    Args:
        adjacency: ``(n, n)`` shared or ``(B, n, n)`` per-trial boolean
            adjacency (the cross-point batching path).
        channels: ``(n,)`` shared or ``(B, n)`` per-trial global channel
            per node (``-1`` idle).
        tx_role: ``(n,)`` shared or ``(B, n)`` per-trial broadcaster
            roles.
        max_count: A-priori bound on the broadcaster count.
        log_n: ``ceil(lg n)`` for round sizing.
        constants: Schedule constants and estimation rule.
        rngs: One generator per trial (length ``B``).
        jam: Optional ``(B, total_slots, n)`` per-trial reception-kill
            mask.

    Returns:
        A :class:`CountBatchOutcome` over all ``B`` trials.
    """
    if not rngs:
        raise ProtocolError("rngs must name at least one trial generator")
    n = adjacency.shape[-1]
    rounds, round_length = count_schedule(max_count, log_n, constants)
    total_slots = rounds * round_length
    probs = np.repeat(
        2.0 ** -np.arange(rounds, dtype=float), round_length
    )
    coins = np.stack(
        [rng.random((total_slots, n)) < probs[:, None] for rng in rngs]
    )
    step = resolve_step_batch(adjacency, channels, tx_role, coins, jam=jam)
    received = (step.heard_from >= 0).astype(np.int64)
    round_receptions = received.reshape(
        len(rngs), rounds, round_length, n
    ).sum(axis=2)
    if constants.count_rule == "first_crossing":
        estimates = _estimate_first_crossing(
            round_receptions, round_length, constants.count_threshold()
        )
    else:
        estimates = _estimate_argmax(round_receptions)
    return CountBatchOutcome(
        estimates=estimates,
        step=step,
        round_receptions=round_receptions,
        num_slots=total_slots,
    )
