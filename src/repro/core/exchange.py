"""CSEEK as a pairwise-exchange primitive (Section 5.1).

The paper's observation: "if we can solve neighbor discovery in ``T``
time, then we can use the same algorithm to allow each pair of neighbors
to exchange one message in ``T`` time" — a node that hears a neighbor's
identity equally hears any payload attached to it.

Two implementations:

:func:`simulated_exchange`
    Actually runs CSEEK and maps every heard identity to the sender's
    payload. Faithful but expensive (a full CSEEK execution per call).

:func:`oracle_exchange`
    Delivers payloads along *already-discovered* neighbor pairs and
    charges the CSEEK schedule length to the ledger without simulating
    the slots. This is the black-box reading of the primitive used by
    CGCAST's coloring loop (see DESIGN.md); integration tests check it
    against :func:`simulated_exchange` on small instances.

Both return per-node dictionaries ``{sender: payload}``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.constants import ProtocolConstants
from repro.core.cseek import CSeek
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork

__all__ = [
    "exchange_slot_cost",
    "oracle_exchange",
    "simulated_exchange",
]


def exchange_slot_cost(
    knowledge: ModelKnowledge, constants: ProtocolConstants
) -> int:
    """Slot cost of one CSEEK-based exchange (the ``T`` of Section 5.1)."""
    kn = knowledge
    rounds_per_step = kn.log_delta  # back-off window in part two
    from repro.core.count import count_schedule

    count_rounds, round_len = count_schedule(
        kn.max_degree, kn.log_n, constants
    )
    part1 = constants.part1_steps(kn.c, kn.k, kn.log_n) * (
        count_rounds * round_len
    )
    part2 = (
        constants.part2_steps(kn.kmax, kn.k, kn.max_degree, kn.log_n)
        * rounds_per_step
    )
    return part1 + part2


def simulated_exchange(
    network: CRNetwork,
    payloads: Sequence[object],
    knowledge: Optional[ModelKnowledge] = None,
    constants: Optional[ProtocolConstants] = None,
    seed: int = 0,
    rng_label: str = "exchange",
    ledger: Optional[SlotLedger] = None,
) -> List[Dict[int, object]]:
    """Run CSEEK once so each neighbor pair exchanges one payload.

    Args:
        network: Ground-truth network.
        payloads: ``payloads[v]`` is the message node ``v`` attaches to
            its identity for this execution.
        knowledge, constants, seed, rng_label: As in :class:`CSeek`.
        ledger: Optional ledger to charge the slots to (phase
            ``"exchange"``).

    Returns:
        Per-node dict mapping heard sender to that sender's payload.
    """
    if len(payloads) != network.n:
        raise ProtocolError(
            f"need one payload per node ({network.n}), got {len(payloads)}"
        )
    cseek = CSeek(
        network,
        knowledge=knowledge,
        constants=constants,
        seed=seed,
        rng_label=rng_label,
    )
    result = cseek.run()
    if ledger is not None:
        ledger.charge("exchange", result.total_slots)
    return [
        {v: payloads[v] for v in sorted(result.discovered[u])}
        for u in range(network.n)
    ]


def oracle_exchange(
    neighbor_sets: Sequence[Set[int]],
    payloads: Sequence[object],
    knowledge: ModelKnowledge,
    constants: ProtocolConstants,
    ledger: Optional[SlotLedger] = None,
) -> List[Dict[int, object]]:
    """Deliver payloads along known neighbor pairs, charging CSEEK's cost.

    The black-box reading of the exchange primitive: discovery has
    already happened, so a CSEEK re-run succeeds between every discovered
    pair w.h.p.; we deliver deterministically and charge
    :func:`exchange_slot_cost` slots.

    Args:
        neighbor_sets: ``neighbor_sets[u]`` = identities ``u`` knows
            (from a prior discovery run). Delivery happens for ordered
            pairs where the *listener* knows the sender.
        payloads: ``payloads[v]`` = node ``v``'s message.
        knowledge: Global parameters (for the slot cost).
        constants: Schedule constants (for the slot cost).
        ledger: Optional ledger to charge (phase ``"exchange"``).

    Returns:
        Per-node dict mapping sender to payload.
    """
    n = len(neighbor_sets)
    if len(payloads) != n:
        raise ProtocolError(
            f"need one payload per node ({n}), got {len(payloads)}"
        )
    if ledger is not None:
        ledger.charge("exchange", exchange_slot_cost(knowledge, constants))
    return [
        {v: payloads[v] for v in sorted(neighbor_sets[u])} for u in range(n)
    ]
