"""CKSEEK — the ``khat``-neighbor-discovery filter (Section 4.4).

Sometimes only *well-connected* neighbors matter: the
``khat``-neighbor-discovery problem asks each node to find (at least) all
neighbors sharing at least ``khat >= k`` channels with it ("good"
neighbors). CKSEEK is CSEEK with shorter schedules:

* part one runs ``Theta((c^2/khat) lg n)`` steps, and
* part two runs ``Theta(((kmax/khat) Delta_khat + Delta + c) lg n)``
  steps, where ``Delta_khat`` bounds the number of good neighbors; when
  no such estimate exists the paper substitutes ``Delta`` (making the
  budget ``Theta(((kmax/khat) Delta + c) lg n)``).

Theorem 6: for ``khat > k`` this is *strictly faster* than full CSEEK —
the filter is cheaper than full discovery. Nodes discovered beyond the
good set are a bonus, not a violation; verification only requires the
good neighbors.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import ProtocolConstants
from repro.core.cseek import CSeek, CSeekResult, DiscoveryReport, verify_discovery
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.network import CRNetwork

__all__ = ["CKSeek", "verify_k_discovery"]


class CKSeek(CSeek):
    """CSEEK with the Section 4.4 step budgets.

    Args:
        network: Ground-truth network.
        khat: Overlap threshold defining good neighbors
            (``k <= khat <= kmax``).
        delta_khat: Optional a-priori bound on the number of good
            neighbors (``Delta_khat``); when None the paper's fallback
            (``Delta``) is used in the part-two budget.
        knowledge, constants, seed, part2_listener, rng_label,
        environment, jammer: As in :class:`~repro.core.cseek.CSeek`
            (``jammer`` is the deprecated alias for a pre-seeded
            sequential traffic process).
    """

    def __init__(
        self,
        network: CRNetwork,
        khat: int,
        delta_khat: Optional[int] = None,
        knowledge: Optional[ModelKnowledge] = None,
        constants: Optional[ProtocolConstants] = None,
        seed: int = 0,
        part2_listener: str = "weighted",
        rng_label: str = "ckseek",
        jammer=None,
        environment=None,
    ) -> None:
        kn = knowledge or network.knowledge()
        kn.with_khat(khat)
        consts = constants or ProtocolConstants.fast()
        if delta_khat is not None and not 0 <= delta_khat <= kn.max_degree:
            raise ProtocolError(
                f"delta_khat must be in [0, Delta] = [0, {kn.max_degree}], "
                f"got {delta_khat}"
            )
        effective_dk = delta_khat if delta_khat is not None else kn.max_degree
        part1 = consts.ckseek_part1_steps(kn.c, khat, kn.log_n)
        part2 = consts.ckseek_part2_steps(
            kn.kmax,
            khat,
            max(1, effective_dk),
            kn.max_degree,
            kn.c,
            kn.log_n,
        )
        super().__init__(
            network,
            knowledge=kn,
            constants=consts,
            seed=seed,
            part1_steps=part1,
            part2_steps=part2,
            part2_listener=part2_listener,  # type: ignore[arg-type]
            rng_label=rng_label,
            jammer=jammer,
            environment=environment,
        )
        self.khat = khat
        self.delta_khat = delta_khat


def verify_k_discovery(
    result: CSeekResult, network: CRNetwork, khat: int
) -> DiscoveryReport:
    """Verify that every node found all its good neighbors.

    Good neighbors are those sharing at least ``khat`` channels;
    discovering additional neighbors is allowed (CKSEEK "finds *at
    least* all good neighbors").
    """
    required = [set(s) for s in network.good_neighbor_sets(khat)]
    return verify_discovery(result, network, required=required)
