"""Protocol constants: the multipliers inside the paper's Theta(.)s.

Every schedule length in the paper is stated asymptotically — e.g. CSEEK
part one runs ``Theta((c^2/k) * lg n)`` steps of ``O(lg^2 n)`` slots. To
execute the algorithms we must pick the hidden constants. They are
gathered here as an explicit, validated dataclass so that

* experiments can state exactly what was run,
* the *shape* claims (scaling slopes, crossovers) can be verified
  independently of constant choices, and
* a "faithful" profile (large constants, paper-exact COUNT rule) and a
  "fast" profile (small constants, robust COUNT rule) can be swapped
  without touching algorithm code.

COUNT estimation rules
----------------------
``first_crossing`` is the paper's rule (Appendix A): accept the first
round whose heard-fraction exceeds ``(1 + delta) * 8 e^{-7}``. The rule
only separates signal from noise when rounds contain hundreds of slots
(the paper's ``Theta(lg n)`` hides a constant of several hundred), so it
is used by the faithful profile and exercised standalone in experiment
E1. ``argmax`` accepts the round with the most receptions — the heard
count peaks when the estimate matches the true broadcaster count (the
same unimodality the paper's analysis relies on, see the ``f(x)``
derivative argument in Appendix A) — and stays within a constant factor
even with short rounds, so the fast profile uses it inside full protocol
runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Literal

from repro.model.errors import SpecError

__all__ = ["ProtocolConstants", "CountRule"]

CountRule = Literal["first_crossing", "argmax"]

# The paper's Appendix A threshold: a listener accepts round i once the
# fraction of slots with a clear message exceeds (1 + delta) * 8 e^{-7}.
PAPER_COUNT_THRESHOLD = 8.0 * math.exp(-7.0)


@dataclass(frozen=True)
class ProtocolConstants:
    """Hidden-constant choices for every schedule in the reproduction.

    Attributes:
        count_round_slots: Constant ``a`` in COUNT's round length
            ``ceil(a * lg n)`` slots.
        count_rule: COUNT estimation rule (see module docstring).
        count_delta: The paper's ``delta`` in the first-crossing
            threshold ``(1 + delta) * 8 e^{-7}``.
        part1_factor: CSEEK part-one steps = ``ceil(part1_factor *
            (c^2/k) * lg n)``.
        part2_factor: CSEEK part-two steps = ``ceil(part2_factor *
            (kmax/k) * Delta * lg n)``.
        coloring_phase_factor: Luby coloring phases =
            ``ceil(coloring_phase_factor * lg n)`` (more phases may run if
            nodes remain active; experiments record the realized count).
        dissemination_round_factor: Rounds per dissemination step =
            ``ceil(dissemination_round_factor * lg n)``.
        naive_factor: Naive-baseline schedule stretch (applied to the
            baselines' own bounds).
    """

    count_round_slots: float = 4.0
    count_rule: CountRule = "argmax"
    count_delta: float = 0.5
    part1_factor: float = 8.0
    part2_factor: float = 8.0
    coloring_phase_factor: float = 4.0
    dissemination_round_factor: float = 2.0
    naive_factor: float = 8.0

    def __post_init__(self) -> None:
        positive = {
            "count_round_slots": self.count_round_slots,
            "part1_factor": self.part1_factor,
            "part2_factor": self.part2_factor,
            "coloring_phase_factor": self.coloring_phase_factor,
            "dissemination_round_factor": self.dissemination_round_factor,
            "naive_factor": self.naive_factor,
        }
        for name, value in positive.items():
            if value <= 0:
                raise SpecError(f"{name} must be positive, got {value}")
        if self.count_rule not in ("first_crossing", "argmax"):
            raise SpecError(f"unknown count rule: {self.count_rule!r}")
        if not 0.0 < self.count_delta < 1.0:
            raise SpecError(
                f"count_delta must be in (0, 1), got {self.count_delta}"
            )

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    @classmethod
    def fast(cls) -> "ProtocolConstants":
        """Sweep profile: robust argmax COUNT, short rounds.

        The part factors are calibrated empirically (see EXPERIMENTS.md):
        a directed pair meets with the roles right in a part-one step
        with probability ``k_uv / (4 c^2)``, so ``part1_factor = 8``
        yields ``~2 lg n`` expected meetings per pair — enough for
        per-network w.h.p. discovery while staying laptop-fast.
        """
        return cls(
            count_round_slots=3.0,
            count_rule="argmax",
            part1_factor=8.0,
            part2_factor=8.0,
            coloring_phase_factor=4.0,
            dissemination_round_factor=2.0,
            naive_factor=8.0,
        )

    @classmethod
    def faithful(cls) -> "ProtocolConstants":
        """Paper-exact COUNT rule with rounds long enough for it to work.

        The first-crossing threshold ``~8e-7 * 8`` only exceeds one
        message per round once rounds have several hundred slots; see
        module docstring. Use for validation, not sweeps.
        """
        return cls(
            count_round_slots=96.0,
            count_rule="first_crossing",
            part1_factor=10.0,
            part2_factor=10.0,
            coloring_phase_factor=6.0,
            dissemination_round_factor=3.0,
            naive_factor=10.0,
        )

    def with_rule(self, rule: CountRule) -> "ProtocolConstants":
        """Copy with a different COUNT estimation rule."""
        return replace(self, count_rule=rule)

    # ------------------------------------------------------------------
    # Derived schedule sizes
    # ------------------------------------------------------------------
    def count_round_length(self, log_n: int) -> int:
        """Slots per COUNT round: ``ceil(a * lg n)``."""
        return max(1, math.ceil(self.count_round_slots * log_n))

    def count_threshold(self) -> float:
        """The first-crossing acceptance fraction ``(1+delta) * 8e^-7``."""
        return (1.0 + self.count_delta) * PAPER_COUNT_THRESHOLD

    def part1_steps(self, c: int, k: int, log_n: int) -> int:
        """CSEEK part-one step count ``ceil(f1 * (c^2/k) * lg n)``."""
        return max(1, math.ceil(self.part1_factor * (c * c / k) * log_n))

    def part2_steps(
        self, kmax: int, k: int, max_degree: int, log_n: int
    ) -> int:
        """CSEEK part-two step count ``ceil(f2 * (kmax/k) * Delta * lg n)``."""
        return max(
            1,
            math.ceil(self.part2_factor * (kmax / k) * max_degree * log_n),
        )

    def ckseek_part1_steps(self, c: int, khat: int, log_n: int) -> int:
        """CKSEEK part-one step count ``ceil(f1 * (c^2/khat) * lg n)``."""
        return max(
            1, math.ceil(self.part1_factor * (c * c / khat) * log_n)
        )

    def ckseek_part2_steps(
        self,
        kmax: int,
        khat: int,
        delta_khat: int,
        max_degree: int,
        c: int,
        log_n: int,
    ) -> int:
        """CKSEEK part-two steps.

        ``ceil(f2 * ((kmax/khat) * Delta_khat + Delta + c) * lg n)`` per
        Section 4.4. When no estimate of ``Delta_khat`` is available,
        pass ``delta_khat = max_degree`` (the paper's fallback).
        """
        load = (kmax / khat) * delta_khat + max_degree + c
        return max(1, math.ceil(self.part2_factor * load * log_n))

    def coloring_phases(self, log_n: int) -> int:
        """Scheduled Luby phases ``ceil(f * lg n)``."""
        return max(1, math.ceil(self.coloring_phase_factor * log_n))

    def dissemination_rounds(self, log_n: int) -> int:
        """Rounds per dissemination step ``ceil(f * lg n)``."""
        return max(1, math.ceil(self.dissemination_round_factor * log_n))
