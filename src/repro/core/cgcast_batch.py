"""Trial-batched CGCAST execution (the whole-pipeline fast path).

PR 2's :class:`~repro.core.cseek_batch.CSeekBatch` batched CGCAST's
discovery phase; everything after it — meeting-time exchange, dedicated
channels, Luby coloring, color announcement, dissemination — still ran
one trial at a time in pure Python, so CGCAST sweeps (E6/E9/E11) were
bottlenecked on their cheapest stages. This module locksteps the tail
too: ``B`` homogeneous CGCAST trials execute end-to-end with

* discovery through :func:`~repro.core.cseek_batch.run_cseek_lockstep`
  (one engine call per protocol step for the whole trial axis);
* the oracle meeting-time exchange and color announcement reduced to
  their deterministic ledger charges, with mutual-edge extraction and
  dedicated-channel agreement as array ops over each trial's ragged
  first-reception list (:func:`_oracle_pairings`) instead of per-trial
  dict loops;
* the Luby edge coloring serial per trial (its phase count is
  data-dependent, so there is no lockstep schedule to share — and it is
  pure Python over the tiny line graph);
* dissemination through
  :func:`~repro.core.dissemination.run_dissemination_batch` — one
  :func:`~repro.sim.engine.resolve_step_batch` call per (phase, color)
  step with per-trial channel vectors, an active-trial mask for
  per-trial ``early_stop``, and per-trial back-off streams.

Bit-exactness contract: trial ``b`` draws from its own generators
(``RngHub(seed_b)`` children ``cgcast.discovery``, ``coloring``,
``dissemination`` — plus ``cgcast.times``/``cgcast.colors`` in
simulated exchange mode) in exactly the order :meth:`CGCast.run` draws
them, so ``CGCastBatch.run(seeds)[b] == CGCast(seed=seeds[b]).run()``
field for field — including ``informed_slot``, the per-phase ledger,
``edge_colors`` and ``dedicated``. Batching is a pure throughput
decision.

In ``exchange_mode="simulated"`` the two fixed exchange executions
(meeting times, color announcement) are themselves CSEEK runs with
per-trial seeds and fixed rng labels, so they lockstep through
:class:`CSeekBatch`; payload delivery, dedicated agreement and edge
assembly then fall back to the serial per-trial implementations
(payloads may be lost, so the dense oracle shortcuts do not apply).

Cross-point batching: :func:`run_cgcast_lockstep` is the general form —
it locksteps trials of several :class:`CGCastBatch` members (one per
sweep point) that share :func:`cgcast_lockstep_signature`; member
networks may differ, in which case dissemination resolves against a
per-trial ``(B, n, n)`` adjacency stack just like discovery does.
:func:`redisseminate_batch` batches the amortized regime the same way:
one message re-disseminated over many trials' reusable schedules in
lockstep (experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cgcast import CGCast, CGCastResult, ExchangeMode
from repro import obs
from repro.core.coloring import LubyEdgeColoring, is_valid_edge_coloring
from repro.core.constants import ProtocolConstants
from repro.core.cseek import CSeekResult
from repro.core.cseek_batch import (
    CSeekBatch,
    LockstepMember,
    lockstep_signature,
    run_cseek_lockstep,
)
from repro.core.dedicated import (
    agree_dedicated_channels,
    first_heard_payloads,
)
from repro.core.dissemination import (
    DisseminationResult,
    run_dissemination_batch,
)
from repro.core.exchange import exchange_slot_cost
from repro.core.linegraph import LineGraph
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.environment import SpectrumEnvironment
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork

__all__ = [
    "CGCastBatch",
    "CGCastMember",
    "cgcast_lockstep_signature",
    "redisseminate_batch",
    "run_cgcast_lockstep",
]

Edge = Tuple[int, int]


class CGCastBatch:
    """Run many homogeneous CGCAST trials in lockstep across the trial axis.

    All trials share the network, source, knowledge, constants, exchange
    mode, loss rate and early-stop policy; only the per-trial seed (and,
    through ``environment``, the per-trial primary-user occupancy of the
    discovery phase) varies. Heterogeneous sweeps belong on the serial
    or process-pool executors.

    Args:
        network: Ground-truth network shared by every trial.
        source: The node holding the message initially.
        knowledge: Global parameters; defaults to realized values.
        constants: Schedule constants; defaults to
            :meth:`ProtocolConstants.fast`.
        exchange_mode: ``"oracle"`` or ``"simulated"``, as on
            :class:`CGCast`.
        coloring_loss_rate: Exchange-loss injection inside the coloring
            loop.
        early_stop: Stop each trial's dissemination once everyone is
            informed.
        environment: Optional spectrum environment applied to the
            discovery phase, batched as in :class:`CSeekBatch`.
    """

    def __init__(
        self,
        network: CRNetwork,
        source: int = 0,
        knowledge: Optional[ModelKnowledge] = None,
        constants: Optional[ProtocolConstants] = None,
        exchange_mode: ExchangeMode = "oracle",
        coloring_loss_rate: float = 0.0,
        early_stop: bool = True,
        environment: Optional[SpectrumEnvironment] = None,
    ) -> None:
        # Delegate validation and configuration resolution to the serial
        # protocol: one source of truth for pipeline parameters.
        self._proto = CGCast(
            network,
            source=source,
            knowledge=knowledge,
            constants=constants,
            seed=0,
            exchange_mode=exchange_mode,
            coloring_loss_rate=coloring_loss_rate,
            early_stop=early_stop,
            environment=environment,
        )

    @classmethod
    def from_serial(
        cls,
        proto: CGCast,
        environment: Optional[SpectrumEnvironment] = None,
    ) -> "CGCastBatch":
        """A batch runner with a serial protocol's resolved configuration.

        The prototype's seed (and any injected per-trial ``discovery=``
        result) is irrelevant; its ``environment`` carries over unless
        an explicit one is given.
        """
        if environment is None:
            environment = proto.environment
        return cls(
            proto.network,
            source=proto.source,
            knowledge=proto.knowledge,
            constants=proto.constants,
            exchange_mode=proto.exchange_mode,
            coloring_loss_rate=proto.coloring_loss_rate,
            early_stop=proto.early_stop,
            environment=environment,
        )

    # Mirror the serial protocol's introspection surface.
    @property
    def network(self) -> CRNetwork:
        return self._proto.network

    @property
    def source(self) -> int:
        return self._proto.source

    @property
    def knowledge(self) -> ModelKnowledge:
        return self._proto.knowledge

    @property
    def constants(self) -> ProtocolConstants:
        return self._proto.constants

    @property
    def exchange_mode(self) -> ExchangeMode:
        return self._proto.exchange_mode

    @property
    def environment(self) -> Optional[SpectrumEnvironment]:
        return self._proto.environment

    # ------------------------------------------------------------------
    def run(
        self,
        seeds: Sequence[int],
        discoveries: Optional[Sequence[CSeekResult]] = None,
    ) -> List[CGCastResult]:
        """Execute one full CGCAST trial per seed, in lockstep.

        Args:
            seeds: Per-trial seeds.
            discoveries: Optional precomputed per-trial CSEEK results to
                use as phase 1 — must be the executions this batch would
                run itself (which is what
                :func:`~repro.core.cseek_batch.batched_discovery`
                produces for this network/environment).

        Returns:
            Per-trial :class:`CGCastResult` objects, in seed order, each
            bit-identical to ``CGCast(..., seed=seeds[b]).run()``. The
            single-member special case of :func:`run_cgcast_lockstep`.
        """
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ProtocolError("seeds must name at least one trial")
        return run_cgcast_lockstep(
            [CGCastMember(self, seeds, discoveries=discoveries)]
        )[0]

    # ------------------------------------------------------------------
    def _discovery_batch(self) -> CSeekBatch:
        """The lockstep runner of this batch's embedded discovery phase."""
        return CSeekBatch(
            self.network,
            knowledge=self.knowledge,
            constants=self.constants,
            rng_label="cgcast.discovery",
            environment=self.environment,
        )

    def _exchange_batch(self, rng_label: str) -> CSeekBatch:
        """The lockstep runner of one simulated-exchange execution.

        Mirrors :func:`repro.core.exchange.simulated_exchange`, which
        runs a plain unjammed CSEEK under the exchange's rng label.
        """
        return CSeekBatch(
            self.network,
            knowledge=self.knowledge,
            constants=self.constants,
            rng_label=rng_label,
        )


@dataclass
class CGCastMember:
    """One sweep point's contribution to a cross-point CGCAST lockstep run.

    Attributes:
        batch: The point's configured :class:`CGCastBatch`.
        seeds: The point's trial seeds (ragged counts welcome — the
            cross-point trial axis is the concatenation of every
            member's seeds).
        discoveries: Optional precomputed per-seed discovery results
            (see :meth:`CGCastBatch.run`).
    """

    batch: CGCastBatch
    seeds: Sequence[int]
    discoveries: Optional[Sequence[CSeekResult]] = None


def cgcast_lockstep_signature(batch: CGCastBatch) -> tuple:
    """The compatibility key members of one CGCAST lockstep run must share.

    Everything that shapes the lockstep schedule: the embedded discovery
    phase's own lockstep signature, the source, the exchange mode, the
    loss rate, the early-stop policy, and the full knowledge (the
    dissemination phase count ``D`` and the oracle exchange cost derive
    from fields the discovery signature does not pin). Networks are
    deliberately not part of the key — trials from different graphs
    resolve against per-trial adjacency stacks in both discovery and
    dissemination.
    """
    proto = batch._proto
    return (
        lockstep_signature(batch._discovery_batch()),
        proto.source,
        proto.exchange_mode,
        proto.coloring_loss_rate,
        proto.early_stop,
        proto.knowledge,
    )


def _oracle_pairings(
    result: CSeekResult,
) -> Tuple[List[Edge], Dict[Edge, int]]:
    """Mutual edges and dedicated channels of one trial, vectorized.

    Under the oracle exchange both directions of every mutual edge have
    recorded meetings and payload delivery is reliable, so the serial
    agreement (:func:`~repro.core.dedicated.agree_dedicated_channels`)
    reduces to ``slot = min(t_uv, t_vu)`` resolved against each
    endpoint's channel history. This helper performs that reduction as
    array ops over the trial's ragged first-reception list: one sort +
    searchsorted finds the mutual pairs, one gather resolves both
    endpoints' channels, and the endpoint-consistency check (an engine
    invariant, not an assumption) vectorizes into a single comparison.
    Returns the canonical sorted edge list and the dedicated map in that
    order — exactly ``CGCast._mutual_edges`` + the serial agreement.
    """
    n = len(result.discovered)
    first_heard = result.trace.first_heard
    if not first_heard:
        return [], {}
    pairs = np.array(list(first_heard.keys()), dtype=np.int64)
    slots = np.fromiter(
        (event.slot for event in first_heard.values()),
        dtype=np.int64,
        count=len(first_heard),
    )
    code = pairs[:, 0] * n + pairs[:, 1]
    order = np.argsort(code)
    sorted_code = code[order]
    sorted_slot = slots[order]
    reverse = pairs[:, 1] * n + pairs[:, 0]
    pos = np.minimum(
        np.searchsorted(sorted_code, reverse), sorted_code.size - 1
    )
    mutual = (pairs[:, 0] < pairs[:, 1]) & (sorted_code[pos] == reverse)
    if not mutual.any():
        return [], {}
    edge_u = pairs[mutual, 0]
    edge_v = pairs[mutual, 1]
    t_uv = slots[mutual]
    t_vu = sorted_slot[pos[mutual]]
    # Canonical order (sorted by (u, v)), matching _mutual_edges.
    rank = np.lexsort((edge_v, edge_u))
    edge_u, edge_v = edge_u[rank], edge_v[rank]
    slot = np.minimum(t_uv, t_vu)[rank]
    step = (
        np.searchsorted(result.step_start_slots, slot, side="right") - 1
    )
    channel_u = result.step_channels[step, edge_u]
    channel_v = result.step_channels[step, edge_v]
    bad = np.nonzero(channel_u != channel_v)[0]
    if bad.size:
        i = int(bad[0])
        raise ProtocolError(
            f"endpoints of edge ({int(edge_u[i])}, {int(edge_v[i])}) "
            f"derived different channels ({int(channel_u[i])} vs "
            f"{int(channel_v[i])}) for slot {int(slot[i])}; engine "
            "invariant violated"
        )
    edges = list(zip(edge_u.tolist(), edge_v.tolist()))
    dedicated = dict(zip(edges, channel_u.tolist()))
    return edges, dedicated


def _simulated_payload_maps(
    results: Sequence[CSeekResult],
    payloads_per_trial: Sequence[Sequence[object]],
) -> List[List[Dict[int, object]]]:
    """Per-trial exchange deliveries, as simulated_exchange maps them."""
    out: List[List[Dict[int, object]]] = []
    for result, payloads in zip(results, payloads_per_trial):
        out.append(
            [
                {v: payloads[v] for v in sorted(result.discovered[u])}
                for u in range(len(result.discovered))
            ]
        )
    return out


def run_cgcast_lockstep(
    members: Sequence[CGCastMember],
) -> List[List[CGCastResult]]:
    """Run every member's CGCAST trials in one cross-point lockstep run.

    All members must share :func:`cgcast_lockstep_signature`; their
    networks and environments may differ. Discovery resolves through
    :func:`run_cseek_lockstep` over the concatenated trial axis, and
    dissemination through :func:`run_dissemination_batch` — against a
    shared adjacency when every member's network coincides (the
    single-point case) or a per-trial ``(B, n, n)`` stack otherwise.
    Per trial, generator draws and bookkeeping are exactly those of
    :meth:`CGCast.run`, so results are bit-identical to the serial
    protocol member by member.

    Returns:
        One result list per member, in member order, each in the
        member's seed order.
    """
    if not members:
        raise ProtocolError("lockstep run needs at least one member")
    signature = cgcast_lockstep_signature(members[0].batch)
    for member in members[1:]:
        other = cgcast_lockstep_signature(member.batch)
        if other != signature:
            raise ProtocolError(
                "lockstep members must share a compatibility signature "
                "(discovery schedule, source, exchange mode, loss rate, "
                f"early stop, knowledge); got {other} vs {signature}"
            )
    seed_lists = [[int(s) for s in m.seeds] for m in members]
    if any(not seeds for seeds in seed_lists):
        raise ProtocolError("seeds must name at least one trial")

    proto = members[0].batch._proto
    kn = proto.knowledge
    consts = proto.constants
    mode = proto.exchange_mode
    n = proto.network.n
    per_member = [len(seeds) for seeds in seed_lists]
    num_trials = sum(per_member)
    offsets = np.concatenate([[0], np.cumsum(per_member)])
    slices = [
        slice(int(offsets[j]), int(offsets[j + 1]))
        for j in range(len(members))
    ]

    # 1. Discovery ----------------------------------------------------
    # Members with precomputed results use them; the rest run as one
    # cross-point CSEEK lockstep (they share the discovery signature by
    # construction — it is part of the CGCAST signature).
    discoveries: List[Optional[List[CSeekResult]]] = []
    for member, seeds in zip(members, seed_lists):
        if member.discoveries is None:
            discoveries.append(None)
            continue
        provided = list(member.discoveries)
        if len(provided) != len(seeds):
            raise ProtocolError(
                f"need one precomputed discovery per seed "
                f"({len(seeds)}), got {len(provided)}"
            )
        discoveries.append(provided)
    pending = [j for j, d in enumerate(discoveries) if d is None]
    if pending:
        ran = run_cseek_lockstep(
            [
                LockstepMember(
                    members[j].batch._discovery_batch(), seed_lists[j]
                )
                for j in pending
            ]
        )
        for j, member_results in zip(pending, ran):
            discoveries[j] = member_results
    flat_discovery: List[CSeekResult] = [
        result for member_results in discoveries for result in member_results
    ]
    flat_seeds: List[int] = [s for seeds in seed_lists for s in seeds]

    ledgers = [SlotLedger() for _ in range(num_trials)]
    for ledger, discovery in zip(ledgers, flat_discovery):
        ledger.merge(discovery.ledger, prefix="discovery.")

    # 2. Meeting-time exchange + dedicated channels -------------------
    mutual_edges: List[List[Edge]] = []
    dedicated: List[Dict[Edge, int]] = []
    if mode == "oracle":
        # The oracle exchange is deterministic, reliable delivery along
        # discovered pairs: nothing to simulate, only the slot charge —
        # and with both directions' meetings present, the per-edge
        # agreement collapses to the vectorized pairing. (The simulated
        # branch records its span inside the relabelled CSEEK runner.)
        with obs.span("oracle_exchange"):
            cost = exchange_slot_cost(kn, consts)
            for ledger in ledgers:
                ledger.charge("exchange", cost)
            for discovery in flat_discovery:
                edges, channels = _oracle_pairings(discovery)
                mutual_edges.append(edges)
                dedicated.append(channels)
    else:
        times_results = _run_exchange_lockstep(
            members, seed_lists, "cgcast.times"
        )
        payloads = [first_heard_payloads(d) for d in flat_discovery]
        received_times = _simulated_payload_maps(times_results, payloads)
        for ledger, result in zip(ledgers, times_results):
            ledger.charge("exchange", result.total_slots)
        for b, discovery in enumerate(flat_discovery):
            edges = CGCast._mutual_edges(discovery.discovered)
            mutual_edges.append(edges)
            dedicated.append(
                agree_dedicated_channels(
                    discovery, edges, received_times[b]
                )
            )

    # 3. Edge coloring (serial per trial: phase counts are
    # data-dependent, so there is no shared lockstep schedule) --------
    colorings = []
    with obs.span("luby_coloring"):
        for b, (seed, edges) in enumerate(zip(flat_seeds, mutual_edges)):
            net_b = _member_network(members, slices, b)
            coloring = LubyEdgeColoring(
                LineGraph.from_edges(edges),
                kn,
                constants=consts,
                seed=seed,
                loss_rate=proto.coloring_loss_rate,
                exchange_mode=mode,
                network=net_b if mode == "simulated" else None,
            ).run()
            ledgers[b].merge(coloring.ledger)
            colorings.append(coloring)

    # 4. Color announcement -------------------------------------------
    edge_colors_list: List[Dict[Edge, int]] = []
    if mode == "oracle":
        # Reliable delivery means the far endpoint of every colored
        # edge learns its color, so assembly is the identity on the
        # simulator-held colors; only the exchange cost remains.
        with obs.span("oracle_exchange"):
            cost = exchange_slot_cost(kn, consts)
            for ledger in ledgers:
                ledger.charge("exchange", cost)
            for coloring in colorings:
                edge_colors_list.append(dict(coloring.colors))
    else:
        color_results = _run_exchange_lockstep(
            members, seed_lists, "cgcast.colors"
        )
        color_payloads: List[List[Dict[Edge, int]]] = []
        for coloring in colorings:
            per_node: List[Dict[Edge, int]] = [{} for _ in range(n)]
            for edge, color in coloring.colors.items():
                per_node[min(edge)][edge] = color
            color_payloads.append(per_node)
        announced = _simulated_payload_maps(color_results, color_payloads)
        for b, (ledger, result) in enumerate(
            zip(ledgers, color_results)
        ):
            ledger.charge("exchange", result.total_slots)
            edge_colors_list.append(
                CGCast._assemble_edge_colors(
                    colorings[b].colors, announced[b], n
                )
            )
    coloring_valid = [
        is_valid_edge_coloring(edge_colors, edges)
        for edge_colors, edges in zip(edge_colors_list, mutual_edges)
    ]

    # 5. Dissemination ------------------------------------------------
    pre_slots = [ledger.total for ledger in ledgers]
    adjacency = _stacked_adjacency(members, per_member)
    dissemination = run_dissemination_batch(
        adjacency,
        proto.source,
        edge_colors_list,
        dedicated,
        knowledge=kn,
        constants=consts,
        seeds=flat_seeds,
        early_stop=proto.early_stop,
    )

    results: List[List[CGCastResult]] = []
    for j, sl in enumerate(slices):
        member_results: List[CGCastResult] = []
        for b in range(sl.start, sl.stop):
            ledgers[b].merge(dissemination[b].ledger)
            informed_slot = dissemination[b].informed_slot.copy()
            informed_slot[informed_slot >= 0] += pre_slots[b]
            informed_slot[proto.source] = 0
            member_results.append(
                CGCastResult(
                    informed=dissemination[b].informed,
                    informed_slot=informed_slot,
                    ledger=ledgers[b],
                    discovery=flat_discovery[b],
                    coloring=colorings[b],
                    coloring_valid=coloring_valid[b],
                    dissemination=dissemination[b],
                    edge_colors=edge_colors_list[b],
                    dedicated=dedicated[b],
                )
            )
        results.append(member_results)
    return results


def _member_network(
    members: Sequence[CGCastMember],
    slices: Sequence[slice],
    b: int,
) -> CRNetwork:
    """The network trial ``b`` of the concatenated axis belongs to."""
    for member, sl in zip(members, slices):
        if sl.start <= b < sl.stop:
            return member.batch.network
    raise ProtocolError(f"trial index {b} outside the lockstep axis")


def _stacked_adjacency(
    members: Sequence[CGCastMember], per_member: Sequence[int]
) -> np.ndarray:
    """Shared ``(n, n)`` adjacency, or a ``(B, n, n)`` per-trial stack."""
    adjacencies = [m.batch.network.adjacency for m in members]
    if all(
        a is adjacencies[0] or np.array_equal(a, adjacencies[0])
        for a in adjacencies[1:]
    ):
        return adjacencies[0]
    n = adjacencies[0].shape[0]
    return np.concatenate(
        [
            np.broadcast_to(adj, (cnt, n, n))
            for adj, cnt in zip(adjacencies, per_member)
        ]
    )


def _run_exchange_lockstep(
    members: Sequence[CGCastMember],
    seed_lists: Sequence[List[int]],
    rng_label: str,
) -> List[CSeekResult]:
    """One simulated-exchange CSEEK execution per trial, locksteped.

    Returns results over the concatenated trial axis, each bit-identical
    to the CSEEK run :func:`~repro.core.exchange.simulated_exchange`
    performs for that trial's seed under ``rng_label``.
    """
    raw = run_cseek_lockstep(
        [
            LockstepMember(m.batch._exchange_batch(rng_label), seeds)
            for m, seeds in zip(members, seed_lists)
        ]
    )
    return [result for member_results in raw for result in member_results]


def redisseminate_batch(
    network: CRNetwork,
    setups: Sequence[CGCastResult],
    sources: Union[int, Sequence[int]],
    seeds: Sequence[int],
    knowledge: Optional[ModelKnowledge] = None,
    constants: Optional[ProtocolConstants] = None,
    early_stop: bool = True,
) -> List[DisseminationResult]:
    """Broadcast another message over many existing CGCAST schedules.

    The batched counterpart of :func:`repro.core.cgcast.redisseminate`:
    trial ``b`` re-disseminates over ``setups[b]``'s reusable artifacts
    with seed ``seeds[b]``, and all trials run in lockstep through
    :func:`~repro.core.dissemination.run_dissemination_batch` — the
    amortized regime of experiment E11, swept across the trial axis.
    Result ``b`` is bit-identical to the serial ``redisseminate`` call
    with the same arguments.

    Raises:
        ProtocolError: if any setup's coloring was not proper (a broken
            schedule must not be silently reused).
    """
    for setup in setups:
        if not setup.coloring_valid:
            raise ProtocolError(
                "cannot reuse a CGCAST setup whose coloring was invalid"
            )
    if len(setups) != len(seeds):
        raise ProtocolError(
            f"need one setup per seed ({len(seeds)}), got {len(setups)}"
        )
    kn = knowledge or network.knowledge()
    return run_dissemination_batch(
        network.adjacency,
        sources,
        [setup.edge_colors for setup in setups],
        [setup.dedicated for setup in setups],
        knowledge=kn,
        constants=constants,
        seeds=seeds,
        early_stop=early_stop,
    )
