"""CGCAST — global broadcast (Section 5, Theorem 9).

Pipeline (paper, Section 5.2):

1. **Discovery** — run CSEEK so every node learns its neighbors
   (``Õ(c²/k + (kmax/k)·Δ)`` slots).
2. **Meeting-time exchange** — run the exchange primitive once so every
   pair learns each other's first-meeting slots, from which both fix a
   dedicated communication channel (no global labels needed).
3. **Edge coloring** — color the line graph of the discovered graph with
   ``2Δ`` colors via Luby phases, each phase exchanging tentative and
   final colors (``Õ((c²/k + (kmax/k)·Δ) · lg n)`` slots).
4. **Color announcement** — one more exchange so both endpoints of every
   edge know its color.
5. **Dissemination** — ``D`` phases of ``2Δ`` color-steps push the
   message one hop per phase (``Õ(D·Δ)`` slots).

The ``exchange_mode`` knob selects whether steps 2-4 *simulate* their
CSEEK executions slot-by-slot (``"simulated"``) or deliver messages along
discovered pairs while charging the CSEEK slot cost (``"oracle"``, the
black-box reading used for large sweeps — see DESIGN.md §2). Dissemination
is always simulated at slot level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.coloring import (
    ColoringResult,
    LubyEdgeColoring,
    is_valid_edge_coloring,
)
from repro.core.constants import ProtocolConstants
from repro.core.cseek import CSeek, CSeekResult
from repro.core.dedicated import agree_dedicated_channels, first_heard_payloads
from repro.core.dissemination import DisseminationResult, run_dissemination
from repro.core.exchange import oracle_exchange, simulated_exchange
from repro.core.linegraph import LineGraph
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork

__all__ = ["CGCast", "CGCastResult", "redisseminate"]

Edge = Tuple[int, int]
ExchangeMode = Literal["oracle", "simulated"]


@dataclass
class CGCastResult:
    """Outcome of a CGCAST execution.

    Attributes:
        informed: ``(n,)`` boolean; who holds the message.
        informed_slot: ``(n,)`` global slot of first reception (source 0,
            uninformed -1), offset by all pre-dissemination phases.
        ledger: Slots per phase: ``discovery``, ``exchange`` (meeting
            times + color announcement), ``coloring``, ``dissemination``.
        discovery: The underlying CSEEK result.
        coloring: The underlying coloring result.
        coloring_valid: Whether the produced edge coloring was proper.
        dissemination: The underlying dissemination result.
        edge_colors: The announced proper edge coloring (reusable).
        dedicated: The agreed per-edge dedicated channels (reusable).
        success: True iff every node was informed.

    The ``edge_colors`` / ``dedicated`` artifacts are the amortizable
    part of CGCAST: once built they schedule *any* number of later
    broadcasts at dissemination-only cost (see
    :func:`redisseminate`).
    """

    informed: np.ndarray
    informed_slot: np.ndarray
    ledger: SlotLedger
    discovery: CSeekResult
    coloring: ColoringResult
    coloring_valid: bool
    dissemination: DisseminationResult
    edge_colors: Dict[Edge, int]
    dedicated: Dict[Edge, int]

    @property
    def success(self) -> bool:
        return bool(self.informed.all())

    @property
    def total_slots(self) -> int:
        """Total slots charged across all phases."""
        return self.ledger.total

    @property
    def completion_slot(self) -> Optional[int]:
        """Global slot when the last node became informed."""
        if not self.success:
            return None
        return int(self.informed_slot.max())


class CGCast:
    """One CGCAST execution.

    Args:
        network: Ground-truth network.
        source: The node holding the message initially.
        knowledge: Global parameters; defaults to realized values.
        constants: Schedule constants; defaults to
            :meth:`ProtocolConstants.fast`.
        seed: Experiment seed.
        exchange_mode: ``"oracle"`` (charge CSEEK cost, deliver along
            discovered pairs) or ``"simulated"`` (slot-level CSEEK runs
            for the exchanges).
        coloring_loss_rate: Exchange-loss injection inside the coloring
            loop (failure-mode experiments).
        early_stop: Stop dissemination phases once everyone is informed.
        discovery: Optional precomputed CSEEK result to use as phase 1.
            Must be the execution this instance would run itself (same
            network/knowledge/constants/environment,
            ``rng_label="cgcast.discovery"``, this seed) for results to
            stay bit-identical — which is exactly what
            :func:`repro.core.cseek_batch.batched_discovery`
            produces, letting Monte Carlo sweeps batch CGCAST's most
            expensive phase across the trial axis.
        environment: Optional spectrum environment
            (:class:`repro.sim.environment.SpectrumEnvironment`)
            applied to the discovery phase — the one phase that runs
            CSEEK slot-for-slot under the default oracle exchange
            mode. Primary users erode the discovered graph, which the
            later phases (and the success metric) then inherit.
    """

    def __init__(
        self,
        network: CRNetwork,
        source: int = 0,
        knowledge: Optional[ModelKnowledge] = None,
        constants: Optional[ProtocolConstants] = None,
        seed: int = 0,
        exchange_mode: ExchangeMode = "oracle",
        coloring_loss_rate: float = 0.0,
        early_stop: bool = True,
        discovery: Optional[CSeekResult] = None,
        environment=None,
    ) -> None:
        if exchange_mode not in ("oracle", "simulated"):
            raise ProtocolError(f"unknown exchange mode: {exchange_mode!r}")
        if not 0 <= source < network.n:
            raise ProtocolError(
                f"source {source} out of range [0, {network.n})"
            )
        self.network = network
        self.source = source
        self.knowledge = knowledge or network.knowledge()
        self.constants = constants or ProtocolConstants.fast()
        self.seed = seed
        self.exchange_mode = exchange_mode
        self.coloring_loss_rate = coloring_loss_rate
        self.early_stop = early_stop
        self.precomputed_discovery = discovery
        self.environment = environment

    # ------------------------------------------------------------------
    def run(self) -> CGCastResult:
        """Execute the full pipeline; see module docstring."""
        net = self.network
        kn = self.knowledge
        ledger = SlotLedger()

        # 1. Discovery ------------------------------------------------
        discovery = self.precomputed_discovery
        if discovery is None:
            discovery = CSeek(
                net,
                knowledge=kn,
                constants=self.constants,
                seed=self.seed,
                rng_label="cgcast.discovery",
                environment=self.environment,
            ).run()
        ledger.merge(discovery.ledger, prefix="discovery.")

        # 2. Meeting-time exchange + dedicated channels ----------------
        payloads = first_heard_payloads(discovery)
        received_times = self._exchange(
            discovery.discovered, payloads, "cgcast.times", ledger
        )
        mutual_edges = self._mutual_edges(discovery.discovered)
        dedicated = agree_dedicated_channels(
            discovery, mutual_edges, received_times
        )

        # 3. Edge coloring ---------------------------------------------
        line_graph = LineGraph.from_edges(mutual_edges)
        with obs.span("luby_coloring"):
            coloring = LubyEdgeColoring(
                line_graph,
                kn,
                constants=self.constants,
                seed=self.seed,
                loss_rate=self.coloring_loss_rate,
                exchange_mode=self.exchange_mode,
                network=net if self.exchange_mode == "simulated" else None,
            ).run()
        ledger.merge(coloring.ledger)

        # 4. Color announcement ----------------------------------------
        # Simulators tell the other endpoint each edge's color; one more
        # exchange execution.
        color_payloads: List[Dict[Edge, int]] = [
            {} for _ in range(net.n)
        ]
        for edge, color in coloring.colors.items():
            simulator = min(edge)
            color_payloads[simulator][edge] = color
        announced = self._exchange(
            discovery.discovered, color_payloads, "cgcast.colors", ledger
        )
        edge_colors = self._assemble_edge_colors(
            coloring.colors, announced, net.n
        )
        coloring_valid = is_valid_edge_coloring(edge_colors, mutual_edges)

        # 5. Dissemination ---------------------------------------------
        pre_slots = ledger.total
        dissemination = run_dissemination(
            net,
            self.source,
            edge_colors,
            dedicated,
            knowledge=kn,
            constants=self.constants,
            seed=self.seed,
            early_stop=self.early_stop,
        )
        ledger.merge(dissemination.ledger)
        informed_slot = dissemination.informed_slot.copy()
        informed_slot[informed_slot >= 0] += pre_slots
        informed_slot[self.source] = 0

        return CGCastResult(
            informed=dissemination.informed,
            informed_slot=informed_slot,
            ledger=ledger,
            discovery=discovery,
            coloring=coloring,
            coloring_valid=coloring_valid,
            dissemination=dissemination,
            edge_colors=edge_colors,
            dedicated=dedicated,
        )

    # ------------------------------------------------------------------
    def _exchange(
        self,
        neighbor_sets: List[set],
        payloads: List[object],
        label: str,
        ledger: SlotLedger,
    ) -> List[Dict[int, object]]:
        if self.exchange_mode == "simulated":
            # The simulated exchange runs a relabelled CSeek, which
            # records its own "oracle_exchange" span — no outer span, or
            # the stage would double-count.
            return simulated_exchange(
                self.network,
                payloads,
                knowledge=self.knowledge,
                constants=self.constants,
                seed=self.seed,
                rng_label=label,
                ledger=ledger,
            )
        with obs.span("oracle_exchange"):
            return oracle_exchange(
                neighbor_sets, payloads, self.knowledge, self.constants, ledger
            )

    @staticmethod
    def _mutual_edges(discovered: List[set]) -> List[Edge]:
        edges: List[Edge] = []
        for u in range(len(discovered)):
            for v in discovered[u]:
                if u < v and u in discovered[v]:
                    edges.append((u, v))
        return sorted(edges)

    @staticmethod
    def _assemble_edge_colors(
        simulator_colors: Dict[Edge, int],
        announced: List[Dict[int, Dict[Edge, int]]],
        n: int,
    ) -> Dict[Edge, int]:
        """Combine simulator-held colors with announcement receptions.

        Every edge whose simulator decided a color participates; the
        announcement lets the *other* endpoint learn it. In oracle mode
        delivery is reliable, so this equals ``simulator_colors``; in
        simulated mode an edge whose announcement was missed by the far
        endpoint is dropped (that endpoint cannot attend the color step),
        which the dissemination success metric then reflects. What the
        far endpoint must have received is the *announcement itself* —
        membership in its received payload dict, regardless of the
        announced value.
        """
        colors: Dict[Edge, int] = {}
        for edge, color in simulator_colors.items():
            u, v = edge
            simulator, other = (u, v) if u < v else (v, u)
            received = announced[other].get(simulator, {})
            if edge in received:
                colors[edge] = color
        return colors

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def batch(self) -> "object":
        """A :class:`~repro.core.cgcast_batch.CGCastBatch` with this
        configuration.

        The returned runner executes many trial seeds of this exact
        protocol (source, exchange mode, loss rate, early stop,
        environment) in lockstep across the trial axis;
        ``batch().run([s])[0]`` is bit-identical to
        ``CGCast(..., seed=s).run()``. Deferred import: the batch module
        depends on this one.
        """
        from repro.core.cgcast_batch import CGCastBatch

        return CGCastBatch.from_serial(self)


def redisseminate(
    network: CRNetwork,
    setup: CGCastResult,
    source: int,
    seed: int = 0,
    knowledge: Optional[ModelKnowledge] = None,
    constants: Optional[ProtocolConstants] = None,
    early_stop: bool = True,
) -> DisseminationResult:
    """Broadcast another message over an existing CGCAST schedule.

    CGCAST's expensive phases — discovery, dedicated-channel agreement,
    edge coloring — build *reusable* artifacts: in a long-lived network
    every later broadcast (from any source) only pays the
    ``Õ(D·Δ)`` dissemination stage. This is the amortized regime in
    which Theorem 9's comparison against the naive strawman's
    per-broadcast ``Õ((c²/k)·D)`` plays out at any network size
    (experiment E11).

    Args:
        network: The network the setup was built on.
        setup: A completed CGCAST result (its coloring must be valid).
        source: The new message's source node.
        seed: Back-off randomness for this dissemination.
        knowledge, constants: Override the setup's defaults if needed.
        early_stop: Stop once everyone is informed.

    Raises:
        ProtocolError: if the setup's coloring was not proper (a broken
            schedule must not be silently reused).
    """
    if not setup.coloring_valid:
        raise ProtocolError(
            "cannot reuse a CGCAST setup whose coloring was invalid"
        )
    return run_dissemination(
        network,
        source,
        setup.edge_colors,
        setup.dedicated,
        knowledge=knowledge,
        constants=constants,
        seed=seed,
        early_stop=early_stop,
    )
