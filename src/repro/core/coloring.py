"""Luby-style node coloring of the line graph (Section 5.2, Lemma 8).

The coloring procedure runs in phases; each phase has two steps and each
step gives every pair of adjacent virtual nodes one message exchange
(implemented with CSEEK, whose slot cost is charged per step — adjacent
virtual nodes' simulators are at most two hops apart, so a step costs two
CSEEK executions).

Per phase (following Luby [13] as adapted by the paper):

* **Step A** — every *active* virtual node sits out with probability
  1/2; otherwise it draws a tentative color uniformly from its remaining
  palette. Tentative choices are exchanged; if two active neighbors drew
  the same color, both abandon the draw, otherwise the draw becomes the
  node's final color.
* **Step B** — final colors are exchanged; neighbors delete them from
  their palettes, and colored nodes go inactive.

Lemma 8: with a palette of ``2*Delta`` colors every node terminates
within ``O(lg n)`` phases w.h.p. (each phase inactivates a constant
fraction of survivors with constant probability).

``loss_rate`` injects exchange-message loss, which is how the
reproduction probes the protocol's failure mode: a lost conflict
notification can leave two neighbors with the same color, which the
validity checker then reports (the paper's guarantee is w.h.p. over
lossless CSEEK exchanges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.constants import ProtocolConstants
from repro.core.exchange import exchange_slot_cost, simulated_exchange
from repro.core.linegraph import Edge, LineGraph
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork
from repro.sim.rng import RngHub

__all__ = ["ColoringResult", "LubyEdgeColoring", "is_valid_edge_coloring"]


@dataclass
class ColoringResult:
    """Outcome of the coloring procedure.

    Attributes:
        colors: Final color per canonical edge (only decided edges).
        phases_used: Phases actually executed (Lemma 8 predicts
            ``O(lg n)``).
        scheduled_phases: The ``Theta(lg n)`` budget that was scheduled.
        uncolored: Edges still active when the run stopped (empty on
            success).
        ledger: Slots charged (phase ``"coloring"``).
        palette_size: Number of colors in the initial plate (``2*Delta``).
    """

    colors: Dict[Edge, int]
    phases_used: int
    scheduled_phases: int
    uncolored: List[Edge]
    ledger: SlotLedger
    palette_size: int

    @property
    def complete(self) -> bool:
        """True iff every virtual node decided a color."""
        return not self.uncolored


def is_valid_edge_coloring(
    colors: Dict[Edge, int], edges: List[Edge]
) -> bool:
    """Check properness: edges sharing an endpoint have distinct colors.

    Only fully colored edge sets are valid (every edge must appear in
    ``colors``).
    """
    by_node: Dict[int, Set[int]] = {}
    for edge in edges:
        if edge not in colors:
            return False
        color = colors[edge]
        for endpoint in edge:
            used = by_node.setdefault(endpoint, set())
            if color in used:
                return False
            used.add(color)
    return True


class LubyEdgeColoring:
    """One coloring execution over a line graph.

    Args:
        line_graph: The virtual-node graph to color.
        knowledge: Global parameters (palette size ``2*Delta`` and the
            per-step exchange cost derive from these).
        constants: Schedule constants.
        seed: Randomness seed.
        loss_rate: Probability that any single exchanged message is lost
            (failure injection; 0 reproduces the paper's setting; only
            meaningful in oracle mode — simulated mode's losses are the
            physical collisions themselves).
        allow_overrun: When True, keep running past the scheduled
            ``Theta(lg n)`` phases until everyone decides (slots still
            charged); when False, stop at the budget and report
            stragglers.
        exchange_mode: ``"oracle"`` delivers exchange messages reliably
            while charging the CSEEK slot cost; ``"simulated"`` actually
            runs two chained CSEEK executions per step on ``network`` —
            the relay pattern that reaches the two-hops-apart simulators
            of adjacent virtual nodes (Section 5.2) — and conflicts are
            detected only from what was physically received.
        network: The physical network (required for simulated mode).
    """

    def __init__(
        self,
        line_graph: LineGraph,
        knowledge: ModelKnowledge,
        constants: Optional[ProtocolConstants] = None,
        seed: int = 0,
        loss_rate: float = 0.0,
        allow_overrun: bool = True,
        exchange_mode: str = "oracle",
        network: Optional["CRNetwork"] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ProtocolError(
                f"loss_rate must be in [0, 1), got {loss_rate}"
            )
        if exchange_mode not in ("oracle", "simulated"):
            raise ProtocolError(
                f"unknown exchange mode: {exchange_mode!r}"
            )
        if exchange_mode == "simulated" and network is None:
            raise ProtocolError(
                "simulated exchange mode requires the physical network"
            )
        self.line_graph = line_graph
        self.knowledge = knowledge
        self.constants = constants or ProtocolConstants.fast()
        self.loss_rate = loss_rate
        self.allow_overrun = allow_overrun
        self.exchange_mode = exchange_mode
        self.network = network
        self.palette_size = 2 * knowledge.max_degree
        self.seed = seed
        self._rng = RngHub(seed).child("coloring").generator("luby")
        self._phase_counter = 0

    # ------------------------------------------------------------------
    def run(self) -> ColoringResult:
        """Execute the phased coloring; see module docstring."""
        lg = self.line_graph
        m = lg.num_virtual
        scheduled = self.constants.coloring_phases(self.knowledge.log_n)
        step_cost = 2 * exchange_slot_cost(self.knowledge, self.constants)
        ledger = SlotLedger()
        palettes: List[Set[int]] = [
            set(range(self.palette_size)) for _ in range(m)
        ]
        final: Dict[int, int] = {}
        active: Set[int] = set(range(m))
        phases_used = 0
        # Hard stop far beyond the w.h.p. bound, to keep a pathological
        # RNG draw from looping forever when allow_overrun is set.
        hard_cap = max(4 * scheduled, 64)
        while active:
            if phases_used >= scheduled and not self.allow_overrun:
                break
            if phases_used >= hard_cap:
                break
            if self.exchange_mode == "simulated":
                self._run_phase_simulated(palettes, final, active, ledger)
            else:
                self._run_phase(palettes, final, active, ledger, step_cost)
            phases_used += 1
        colors = {lg.edges[i]: color for i, color in final.items()}
        uncolored = sorted(lg.edges[i] for i in active)
        return ColoringResult(
            colors=colors,
            phases_used=phases_used,
            scheduled_phases=scheduled,
            uncolored=uncolored,
            ledger=ledger,
            palette_size=self.palette_size,
        )

    # ------------------------------------------------------------------
    def _deliver(self, value: object) -> object:
        """Apply exchange-loss injection to one message."""
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            return None
        return value

    def _run_phase(
        self,
        palettes: List[Set[int]],
        final: Dict[int, int],
        active: Set[int],
        ledger: SlotLedger,
        step_cost: int,
    ) -> None:
        lg = self.line_graph
        rng = self._rng
        # --- Step A: tentative draws + conflict exchange -------------
        tentative: Dict[int, int] = {}
        for i in sorted(active):
            if rng.random() < 0.5:
                continue  # sits this phase out
            palette = palettes[i]
            if not palette:
                raise ProtocolError(
                    f"virtual node {i} ran out of colors; palette 2*Delta "
                    "should always leave an option (Lemma 8 precondition "
                    "violated)"
                )
            choices = sorted(palette)
            tentative[i] = choices[int(rng.integers(0, len(choices)))]
        ledger.charge("coloring", step_cost)
        decided: Dict[int, int] = {}
        for i, color in tentative.items():
            conflict = False
            for j in lg.neighbors[i]:
                if j not in active:
                    continue
                neighbor_draw = tentative.get(j)
                if neighbor_draw is None:
                    continue
                heard = self._deliver(neighbor_draw)
                if heard is not None and heard == color:
                    conflict = True
                    break
            if not conflict:
                decided[i] = color
        # --- Step B: decided colors are exchanged and pruned ---------
        ledger.charge("coloring", step_cost)
        for i, color in decided.items():
            final[i] = color
            active.discard(i)
            for j in lg.neighbors[i]:
                if j in active:
                    heard = self._deliver(color)
                    if heard is not None:
                        palettes[j].discard(color)

    # ------------------------------------------------------------------
    # Slot-level simulated exchanges (Section 5.2's "run CSEEK twice")
    # ------------------------------------------------------------------
    def _flood_two_hops(
        self,
        per_node_payload: List[Dict[Edge, int]],
        label: str,
        ledger: SlotLedger,
    ) -> List[Dict[Edge, int]]:
        """Two chained CSEEK executions: payloads reach 2-hop simulators.

        The first execution delivers each node's dict to its neighbors;
        nodes then merge everything they heard into their own payload
        and a second execution relays it one hop further — enough,
        because simulators of adjacent virtual nodes are at most two
        hops apart. Returns each physical node's merged knowledge
        (own + everything received).
        """
        network = self.network
        assert network is not None  # guarded in __init__
        n = network.n

        def merge_in(
            knowledge_maps: List[Dict[Edge, int]],
            received: List[Dict[int, object]],
        ) -> None:
            for u in range(n):
                for payload in received[u].values():
                    knowledge_maps[u].update(payload)  # type: ignore[arg-type]

        knowledge_maps = [dict(p) for p in per_node_payload]
        received = simulated_exchange(
            network,
            [dict(m) for m in knowledge_maps],
            knowledge=self.knowledge,
            constants=self.constants,
            seed=self.seed,
            rng_label=f"{label}.hop1",
            ledger=None,
        )
        ledger.charge(
            "coloring", exchange_slot_cost(self.knowledge, self.constants)
        )
        merge_in(knowledge_maps, received)
        received = simulated_exchange(
            network,
            [dict(m) for m in knowledge_maps],
            knowledge=self.knowledge,
            constants=self.constants,
            seed=self.seed,
            rng_label=f"{label}.hop2",
            ledger=None,
        )
        ledger.charge(
            "coloring", exchange_slot_cost(self.knowledge, self.constants)
        )
        merge_in(knowledge_maps, received)
        return knowledge_maps

    @staticmethod
    def _edges_adjacent(a: Edge, b: Edge) -> bool:
        return a != b and bool(set(a) & set(b))

    def _run_phase_simulated(
        self,
        palettes: List[Set[int]],
        final: Dict[int, int],
        active: Set[int],
        ledger: SlotLedger,
    ) -> None:
        """One Luby phase with physically simulated exchanges.

        Conflict detection and palette pruning use only the information
        that actually arrived over the air; CSEEK's w.h.p. delivery
        makes the outcome match the oracle phase almost always, and a
        genuinely lost message shows up as a (detectable) coloring
        fault — the physical failure mode the oracle's ``loss_rate``
        knob emulates.
        """
        lg = self.line_graph
        rng = self._rng
        self._phase_counter += 1
        phase_label = f"coloring.phase{self._phase_counter}"
        # Tentative draws (simulators hold the state of their edges).
        tentative: Dict[int, int] = {}
        for i in sorted(active):
            if rng.random() < 0.5:
                continue
            palette = palettes[i]
            if not palette:
                raise ProtocolError(
                    f"virtual node {i} ran out of colors; palette "
                    "2*Delta should always leave an option"
                )
            choices = sorted(palette)
            tentative[i] = choices[int(rng.integers(0, len(choices)))]
        # Step A exchange: flood tentative draws two hops.
        network = self.network
        assert network is not None
        payloads: List[Dict[Edge, int]] = [{} for _ in range(network.n)]
        for i, color in tentative.items():
            payloads[lg.simulator[i]][lg.edges[i]] = color
        heard_a = self._flood_two_hops(payloads, f"{phase_label}.A", ledger)
        decided: Dict[int, int] = {}
        for i, color in tentative.items():
            my_edge = lg.edges[i]
            view = heard_a[lg.simulator[i]]
            conflict = any(
                other_color == color
                and self._edges_adjacent(my_edge, other_edge)
                for other_edge, other_color in view.items()
            )
            if not conflict:
                decided[i] = color
        # Step B exchange: flood decided colors two hops; prune.
        payloads = [{} for _ in range(network.n)]
        for i, color in decided.items():
            payloads[lg.simulator[i]][lg.edges[i]] = color
        heard_b = self._flood_two_hops(payloads, f"{phase_label}.B", ledger)
        for i, color in decided.items():
            final[i] = color
            active.discard(i)
        for j in sorted(active):
            my_edge = lg.edges[j]
            view = heard_b[lg.simulator[j]]
            for other_edge, other_color in view.items():
                if self._edges_adjacent(my_edge, other_edge):
                    palettes[j].discard(other_color)
