"""CSEEK — randomized neighbor discovery (Section 4.2, Figure 1).

CSEEK runs in two parts:

**Part one** (``Theta((c^2/k) lg n)`` steps of one COUNT execution each).
Every step, every node tunes to one of its ``c`` channels uniformly at
random and flips a fair coin to be broadcaster or listener, then the
network runs :func:`repro.core.count.run_count_step`. Listeners
accumulate the channel's broadcaster estimate into a per-channel score
(the "density sample") and record every identity they hear. Lemma 2:
neighbors overlapping on *un*-crowded channels are discovered here.

**Part two** (``Theta((kmax/k) Delta lg n)`` steps of ``lg Delta`` slots
each). Every step, broadcasters pick a uniform channel while listeners
pick a channel *proportionally to the part-one scores* — they revisit
crowded channels more often. Broadcasters run an exponential back-off:
in slot ``j = lg Delta .. 1`` they transmit with probability ``1/2^j``
(Figure 1, line 14). Lemma 3: neighbors overlapping only on crowded
channels are discovered here.

The ``part2_listener="uniform"`` ablation disables the density-weighted
channel choice (turning part two into more naive hopping); experiment
E10 uses it to show the weighting is what makes part two work.

This class is also reused by CKSEEK (different step budgets) and as
CGCAST's pairwise-exchange primitive (hearing a node's identity means
receiving its current payload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Set, Tuple

import numpy as np

from repro import obs
from repro.core.constants import ProtocolConstants
from repro.core.count import run_count_step
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.engine import BatchStepOutcome, resolve_step, resolve_step_batch
from repro.sim.environment import SpectrumEnvironment
from repro.sim.interference import PrimaryUserTraffic
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork
from repro.sim.rng import RngHub
from repro.sim.trace import TraceRecorder

__all__ = [
    "CSeek",
    "CSeekResult",
    "DiscoveryReport",
    "backoff_probabilities",
    "choose_part2_labels",
    "resolve_backoff_batch",
    "verify_discovery",
]

ListenerPolicy = Literal["weighted", "uniform"]


def choose_part2_labels(
    rng: np.random.Generator,
    tx_role: np.ndarray,
    counts: np.ndarray,
    policy: ListenerPolicy = "weighted",
) -> np.ndarray:
    """Per-node local channel labels for a CSEEK part-two step.

    Broadcasters choose uniformly (Figure 1, line 12). Listeners choose
    label ``ch`` with probability proportional to the accumulated score
    ``counts[u, ch]`` (Figure 1, lines 16-18), falling back to uniform
    when a node accumulated nothing — or for everyone under the
    ``uniform`` ablation policy.

    Shared by the serial (:meth:`CSeek.run`) and trial-batched
    (:class:`repro.core.cseek_batch.CSeekBatch`) execution paths: both
    must consume ``rng`` in exactly this order for their trials to stay
    bit-identical.
    """
    n, c = counts.shape
    labels = rng.integers(0, c, size=n)
    if policy == "uniform":
        return labels
    listeners = ~tx_role
    row_sums = counts.sum(axis=1)
    use_weighted = listeners & (row_sums > 0)
    if not use_weighted.any():
        return labels
    rows = np.flatnonzero(use_weighted)
    cdf = np.cumsum(counts[rows], axis=1)
    targets = rng.random(rows.size) * row_sums[rows]
    weighted_labels = (cdf < targets[:, None]).sum(axis=1)
    labels[rows] = np.minimum(weighted_labels, c - 1)
    return labels


def backoff_probabilities(backoff_len: int) -> np.ndarray:
    """Figure 1 line 14's per-slot transmission probabilities.

    Slot ``j = lg Delta .. 1`` of a part-two back-off window transmits
    with probability ``1/2^j`` (ascending across the window).
    """
    if backoff_len < 1:
        raise ProtocolError(
            f"backoff_len must be >= 1, got {backoff_len}"
        )
    return 2.0 ** -np.arange(backoff_len, 0, -1, dtype=float)


def resolve_backoff_batch(
    adjacency: np.ndarray,
    channels: np.ndarray,
    tx_role: np.ndarray,
    backoff_len: int,
    rngs: List[np.random.Generator],
    jam: np.ndarray | None = None,
) -> BatchStepOutcome:
    """Resolve ``B`` independent part-two back-off windows in one shot.

    The trials share one adjacency; channels and roles may be shared
    (1-D) or per-trial (2-D), and each trial's Figure-1 coins come from
    its own generator — drawn exactly as :meth:`CSeek.run` draws them,
    so trial ``b`` is bit-identical to the serial window it replaces.
    This is the batched counterpart of a single part-two step for
    homogeneous-trial experiments and benchmarks.

    Args:
        adjacency: ``(n, n)`` shared or ``(B, n, n)`` per-trial boolean
            adjacency (the cross-point batching path).
        channels: ``(n,)`` or ``(B, n)`` global channel per node.
        tx_role: ``(n,)`` or ``(B, n)`` broadcaster roles.
        backoff_len: Window length (``lg Delta`` in the paper).
        rngs: One generator per trial (length ``B``).
        jam: Optional ``(B, backoff_len, n)`` reception-kill mask.

    Returns:
        A :class:`~repro.sim.engine.BatchStepOutcome` over all trials.
    """
    if not rngs:
        raise ProtocolError("rngs must name at least one trial generator")
    n = adjacency.shape[-1]
    probs = backoff_probabilities(backoff_len)
    coins = np.stack(
        [rng.random((backoff_len, n)) < probs[:, None] for rng in rngs]
    )
    return resolve_step_batch(adjacency, channels, tx_role, coins, jam=jam)


@dataclass
class CSeekResult:
    """Everything a CSEEK execution produced.

    Attributes:
        discovered: Per-node sets of neighbor identities heard (paper's
            ``ids``); populated by both parts.
        discovered_part_one: Snapshot of ``discovered`` at the end of
            part one (for the Lemma 2 / Lemma 3 split, experiment E3).
        counts: ``(n, c)`` per-node per-local-channel accumulated COUNT
            scores (paper's ``counts`` dictionary).
        trace: First-reception events with slots and global channels.
        ledger: Slots charged, split into ``part1`` and ``part2``.
        step_start_slots: ``(S,)`` global slot at which each step began.
        step_channels: ``(S, n)`` global channel of every node in every
            step (``-1`` never occurs — nodes always tune somewhere).
            Needed by CGCAST's dedicated-channel agreement (a node must
            recall which channel it used in any given slot).
        total_slots: Total slots consumed.
    """

    discovered: List[Set[int]]
    discovered_part_one: List[Set[int]]
    counts: np.ndarray
    trace: TraceRecorder
    ledger: SlotLedger
    step_start_slots: np.ndarray
    step_channels: np.ndarray
    total_slots: int

    def channel_at_slot(self, node: int, slot: int) -> int:
        """Global channel ``node`` was tuned to during ``slot``.

        Raises:
            ProtocolError: if the slot is outside the execution.
        """
        if not 0 <= slot < self.total_slots:
            raise ProtocolError(
                f"slot {slot} outside execution of {self.total_slots} slots"
            )
        idx = int(
            np.searchsorted(self.step_start_slots, slot, side="right") - 1
        )
        return int(self.step_channels[idx, node])


@dataclass(frozen=True)
class DiscoveryReport:
    """Verification of a discovery execution against ground truth.

    Attributes:
        success: True iff every node discovered every required neighbor.
        missing: Ordered ``(listener, undiscovered neighbor)`` pairs.
        completion_slot: Slot of the last first-reception among required
            pairs (None when nothing was required or heard).
        scheduled_slots: The full schedule length that was run.
    """

    success: bool
    missing: Tuple[Tuple[int, int], ...]
    completion_slot: Optional[int]
    scheduled_slots: int


class CSeek:
    """One configurable CSEEK execution over a network.

    Args:
        network: Ground-truth network to run against.
        knowledge: Global parameters handed to nodes; defaults to the
            network's realized parameters.
        constants: Schedule constants; defaults to
            :meth:`ProtocolConstants.fast`.
        seed: Experiment seed (fans out via :class:`RngHub`).
        part1_steps: Override the part-one step budget (CKSEEK uses
            this); default per ``constants.part1_steps``.
        part2_steps: Override the part-two step budget; default per
            ``constants.part2_steps``.
        part2_listener: ``"weighted"`` (paper) or ``"uniform"``
            (ablation).
        rng_label: Namespace for randomness, so repeated CSEEK
            executions inside one protocol (CGCAST runs it several
            times) draw independent coins from the same seed.
        environment: Optional spectrum environment
            (:class:`repro.sim.environment.SpectrumEnvironment`);
            each execution opens a fresh traffic stream seeded from
            this protocol's ``seed``, and receptions on occupied
            channels are lost. Robustness extension — the paper
            analyzes the interference-free model.
        jammer: Deprecated alias for interference: a pre-seeded
            sequential traffic process
            (:class:`repro.sim.interference.PrimaryUserTraffic`).
            Prefer ``environment=`` — an environment serves serial and
            trial-batched execution alike. Mutually exclusive with
            ``environment``.
    """

    def __init__(
        self,
        network: CRNetwork,
        knowledge: Optional[ModelKnowledge] = None,
        constants: Optional[ProtocolConstants] = None,
        seed: int = 0,
        part1_steps: Optional[int] = None,
        part2_steps: Optional[int] = None,
        part2_listener: ListenerPolicy = "weighted",
        rng_label: str = "cseek",
        jammer: Optional["PrimaryUserTraffic"] = None,
        environment: Optional[SpectrumEnvironment] = None,
    ) -> None:
        self.network = network
        self.knowledge = knowledge or network.knowledge()
        self.constants = constants or ProtocolConstants.fast()
        if part2_listener not in ("weighted", "uniform"):
            raise ProtocolError(
                f"unknown part2_listener policy: {part2_listener!r}"
            )
        self.part2_listener = part2_listener
        kn = self.knowledge
        self.part1_step_budget = (
            part1_steps
            if part1_steps is not None
            else self.constants.part1_steps(kn.c, kn.k, kn.log_n)
        )
        self.part2_step_budget = (
            part2_steps
            if part2_steps is not None
            else self.constants.part2_steps(
                kn.kmax, kn.k, kn.max_degree, kn.log_n
            )
        )
        if self.part1_step_budget < 0 or self.part2_step_budget < 0:
            raise ProtocolError("step budgets must be non-negative")
        if jammer is not None and environment is not None:
            raise ProtocolError(
                "pass either environment= or the deprecated jammer= "
                "alias, not both"
            )
        self.jammer = jammer
        self.environment = environment
        self.seed = seed
        self.rng_label = rng_label
        self._hub = RngHub(seed).child(rng_label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> CSeekResult:
        """Execute part one then part two; return the full result."""
        # Telemetry stage mirrors the lockstep runner: plain CSEEK (and
        # CGCAST discovery) report as "discovery"; rng-relabelled
        # simulated exchanges report as "oracle_exchange".
        stage = (
            "discovery"
            if self.rng_label == "cseek"
            or self.rng_label.endswith("discovery")
            else "oracle_exchange"
        )
        with obs.span(stage):
            return self._execute()

    def _execute(self) -> CSeekResult:
        net = self.network
        kn = self.knowledge
        n, c = net.n, net.c
        table = net.channel_table()
        counts = np.zeros((n, c), dtype=np.float64)
        trace = TraceRecorder()
        ledger = SlotLedger()
        step_starts: List[int] = []
        step_channels: List[np.ndarray] = []
        slot_cursor = 0

        from repro.core.count import count_schedule

        count_rounds, count_round_len = count_schedule(
            kn.max_degree, kn.log_n, self.constants
        )
        count_slots = count_rounds * count_round_len

        traffic = self._open_traffic()
        rng1 = self._hub.generator("part1")
        for _ in range(self.part1_step_budget):
            labels = rng1.integers(0, c, size=n)
            channels = table[np.arange(n), labels]
            tx_role = rng1.random(n) < 0.5
            jam = (
                traffic.jam_mask(channels, count_slots)
                if traffic is not None
                else None
            )
            outcome = run_count_step(
                net.adjacency,
                channels,
                tx_role,
                max_count=kn.max_degree,
                log_n=kn.log_n,
                constants=self.constants,
                rng=rng1,
                jam=jam,
            )
            listeners = ~tx_role
            counts[np.arange(n)[listeners], labels[listeners]] += (
                outcome.estimates[listeners]
            )
            trace.record_step(
                outcome.step, slot_cursor, "cseek.part1", channels=channels
            )
            step_starts.append(slot_cursor)
            step_channels.append(channels)
            slot_cursor += outcome.num_slots
            ledger.charge("part1", outcome.num_slots)

        discovered_part_one = [set(trace.heard_by(u)) for u in range(n)]

        rng2 = self._hub.generator("part2")
        backoff_len = kn.log_delta
        backoff_probs = backoff_probabilities(backoff_len)
        for _ in range(self.part2_step_budget):
            tx_role = rng2.random(n) < 0.5
            labels = self._choose_part2_labels(rng2, tx_role, counts)
            channels = table[np.arange(n), labels]
            coins = rng2.random((backoff_len, n)) < backoff_probs[:, None]
            jam = (
                traffic.jam_mask(channels, backoff_len)
                if traffic is not None
                else None
            )
            outcome = resolve_step(
                net.adjacency, channels, tx_role, coins, jam=jam
            )
            trace.record_step(
                outcome, slot_cursor, "cseek.part2", channels=channels
            )
            step_starts.append(slot_cursor)
            step_channels.append(channels)
            slot_cursor += backoff_len
            ledger.charge("part2", backoff_len)

        discovered = [set(trace.heard_by(u)) for u in range(n)]
        return CSeekResult(
            discovered=discovered,
            discovered_part_one=discovered_part_one,
            counts=counts,
            trace=trace,
            ledger=ledger,
            step_start_slots=np.array(step_starts, dtype=np.int64),
            step_channels=(
                np.vstack(step_channels)
                if step_channels
                else np.zeros((0, n), dtype=np.int64)
            ),
            total_slots=slot_cursor,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _open_traffic(self):
        """This execution's traffic process, or None when unjammed.

        A legacy ``jammer=`` instance is used as-is (it owns its seed
        and state); an ``environment=`` opens a fresh single-trial
        stream seeded from this protocol's ``seed``, so repeated
        executions and the trial-batched runner see identical
        occupancy for identical seeds.
        """
        if self.jammer is not None:
            return self.jammer
        if self.environment is not None:
            return self.environment.stream(self.seed)
        return None

    def _choose_part2_labels(
        self,
        rng: np.random.Generator,
        tx_role: np.ndarray,
        counts: np.ndarray,
    ) -> np.ndarray:
        return choose_part2_labels(
            rng, tx_role, counts, policy=self.part2_listener
        )

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def batch(self, jammer_factory=None) -> "object":
        """A :class:`~repro.core.cseek_batch.CSeekBatch` with this
        configuration.

        The returned runner executes many trial seeds of this exact
        protocol (budgets, listener policy, rng namespace) in lockstep
        across the trial axis; ``batch().run([s])[0]`` is bit-identical
        to ``CSeek(..., seed=s).run()``. Works on subclasses too —
        a :class:`~repro.core.ckseek.CKSeek` prototype hands its
        Section 4.4 budgets to the batch. The prototype's
        ``environment`` carries over (environments open per-trial
        streams on demand); per-trial legacy jammers come from
        ``jammer_factory`` (the prototype's own ``jammer`` is ignored:
        a single shared jammer instance cannot serve independent
        trials).
        """
        from repro.core.cseek_batch import CSeekBatch

        return CSeekBatch.from_serial(self, jammer_factory=jammer_factory)


def verify_discovery(
    result: CSeekResult,
    network: CRNetwork,
    required: Optional[List[Set[int]]] = None,
) -> DiscoveryReport:
    """Check a discovery result against ground truth.

    Args:
        result: A CSEEK/CKSEEK execution result.
        network: The network it ran on.
        required: Per-node sets of neighbors that *must* be discovered;
            defaults to all true neighbors (plain neighbor discovery).
            CKSEEK passes the good-neighbor sets instead.

    Returns:
        A :class:`DiscoveryReport`; ``completion_slot`` only considers
        required pairs, so it measures time-to-goal rather than
        time-to-last-reception.
    """
    if required is None:
        required = [set(s) for s in network.true_neighbor_sets()]
    missing: List[Tuple[int, int]] = []
    completion: Optional[int] = None
    for u in range(network.n):
        for v in sorted(required[u]):
            if v not in result.discovered[u]:
                missing.append((u, v))
                continue
            event = result.trace.first_reception(u, v)
            if event is not None and (
                completion is None or event.slot > completion
            ):
                completion = event.slot
    return DiscoveryReport(
        success=not missing,
        missing=tuple(missing),
        completion_slot=completion,
        scheduled_slots=result.total_slots,
    )
