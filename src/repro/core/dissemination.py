"""Color-scheduled message dissemination (Section 5.2, Theorem 9).

After edge coloring, CGCAST disseminates the source's message in ``D``
phases. Each phase has ``2*Delta`` steps — one per color. In the step
for color ``K``, exactly the endpoints of ``K``-colored edges
participate: properness guarantees a node has at most one incident
``K``-edge, so each participant tunes to that edge's dedicated channel.
Informed participants run a back-off broadcast (``Theta(lg n)`` rounds of
``lg Delta`` slots — contention can still occur because distinct
``K``-edges may share a physical channel); uninformed participants
listen for the whole step.

Each phase pushes the message at least one hop w.h.p. (the proof of
Theorem 9), so ``D`` phases inform everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.constants import ProtocolConstants
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.engine import resolve_step
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork
from repro.sim.rng import RngHub

__all__ = ["DisseminationResult", "run_dissemination"]

Edge = Tuple[int, int]


@dataclass
class DisseminationResult:
    """Outcome of the dissemination stage.

    Attributes:
        informed: ``(n,)`` boolean; who holds the message at the end.
        informed_slot: ``(n,)`` int; stage-local slot at which each node
            first received the message (0 for the source, -1 if never).
        ledger: Slots charged (phase ``"dissemination"``).
        phases_run: Phases executed (early stop may end before ``D``).
        scheduled_slots: Full ``D * 2*Delta * rounds * lg Delta`` budget.
        success: True iff every node is informed.
    """

    informed: np.ndarray
    informed_slot: np.ndarray
    ledger: SlotLedger
    phases_run: int
    scheduled_slots: int

    @property
    def success(self) -> bool:
        return bool(self.informed.all())

    @property
    def completion_slot(self) -> Optional[int]:
        """Stage-local slot when the last node became informed."""
        if not self.success:
            return None
        return int(self.informed_slot.max())


def run_dissemination(
    network: CRNetwork,
    source: int,
    edge_colors: Dict[Edge, int],
    dedicated: Dict[Edge, int],
    knowledge: Optional[ModelKnowledge] = None,
    constants: Optional[ProtocolConstants] = None,
    seed: int = 0,
    early_stop: bool = True,
) -> DisseminationResult:
    """Run the color-scheduled dissemination of one message.

    Args:
        network: Ground-truth network.
        source: The initially informed node.
        edge_colors: Proper coloring of (discovered) edges; colors must
            lie in ``[0, 2*Delta)``.
        dedicated: Global dedicated channel per edge; every colored edge
            needs one.
        knowledge: Global parameters (``D`` bounds the phase count,
            ``2*Delta`` the steps per phase).
        constants: Schedule constants (rounds per step).
        seed: Randomness seed for back-off coins.
        early_stop: Stop after the first phase in which everyone is
            informed (the slot ledger then reflects actual usage; the
            scheduled budget is still reported).

    Returns:
        A :class:`DisseminationResult`.
    """
    kn = knowledge or network.knowledge()
    consts = constants or ProtocolConstants.fast()
    n = network.n
    if not 0 <= source < n:
        raise ProtocolError(f"source {source} out of range [0, {n})")
    num_colors = 2 * kn.max_degree
    for edge, color in edge_colors.items():
        if not 0 <= color < num_colors:
            raise ProtocolError(
                f"edge {edge} has color {color} outside [0, {num_colors})"
            )
        if edge not in dedicated:
            raise ProtocolError(f"edge {edge} has no dedicated channel")

    rounds = consts.dissemination_rounds(kn.log_n)
    backoff_len = kn.log_delta
    slots_per_step = rounds * backoff_len
    scheduled_slots = kn.diameter * num_colors * slots_per_step
    # Ascending back-off probabilities, tiled across the step's rounds.
    probs = np.tile(
        2.0 ** -np.arange(backoff_len, 0, -1, dtype=float), rounds
    )

    # Precompute per-color participant arrays.
    color_channels: Dict[int, np.ndarray] = {}
    for color in sorted(set(edge_colors.values())):
        channels = np.full(n, -1, dtype=np.int64)
        for edge, col in edge_colors.items():
            if col != color:
                continue
            u, v = edge
            for endpoint in (u, v):
                if channels[endpoint] != -1:
                    raise ProtocolError(
                        f"node {endpoint} has two edges colored {color}; "
                        "the coloring is not proper"
                    )
            channels[u] = dedicated[edge]
            channels[v] = dedicated[edge]
        color_channels[color] = channels

    rng = RngHub(seed).child("dissemination").generator("backoff")
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_slot = np.full(n, -1, dtype=np.int64)
    informed_slot[source] = 0
    ledger = SlotLedger()
    slot_cursor = 0
    phases_run = 0

    for _ in range(kn.diameter):
        phases_run += 1
        for color in range(num_colors):
            channels = color_channels.get(color)
            if channels is None:
                # No edge has this color; the step still occupies its
                # scheduled slots (nodes idle), matching the paper's
                # fixed step-per-color schedule.
                slot_cursor += slots_per_step
                ledger.charge("dissemination", slots_per_step)
                continue
            participating = channels >= 0
            tx_role = participating & informed
            coins = rng.random((slots_per_step, n)) < probs[:, None]
            outcome = resolve_step(
                network.adjacency, channels, tx_role, coins
            )
            heard = outcome.heard_from >= 0
            # A node is informed at the earliest slot it heard *any*
            # message in this step: only informed nodes transmit here,
            # and the message is always the broadcast payload.
            newly = heard.any(axis=0) & ~informed
            if newly.any():
                first = np.argmax(heard, axis=0)
                informed_slot[newly] = slot_cursor + first[newly]
                informed[newly] = True
            slot_cursor += slots_per_step
            ledger.charge("dissemination", slots_per_step)
        if early_stop and informed.all():
            break

    return DisseminationResult(
        informed=informed,
        informed_slot=informed_slot,
        ledger=ledger,
        phases_run=phases_run,
        scheduled_slots=scheduled_slots,
    )
