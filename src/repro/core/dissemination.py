"""Color-scheduled message dissemination (Section 5.2, Theorem 9).

After edge coloring, CGCAST disseminates the source's message in ``D``
phases. Each phase has ``2*Delta`` steps — one per color. In the step
for color ``K``, exactly the endpoints of ``K``-colored edges
participate: properness guarantees a node has at most one incident
``K``-edge, so each participant tunes to that edge's dedicated channel.
Informed participants run a back-off broadcast (``Theta(lg n)`` rounds of
``lg Delta`` slots — contention can still occur because distinct
``K``-edges may share a physical channel); uninformed participants
listen for the whole step.

Each phase pushes the message at least one hop w.h.p. (the proof of
Theorem 9), so ``D`` phases inform everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.constants import ProtocolConstants
from repro.model.errors import ProtocolError
from repro.model.spec import ModelKnowledge
from repro.sim.engine import resolve_step, resolve_step_batch
from repro.sim.metrics import SlotLedger
from repro.sim.network import CRNetwork
from repro.sim.rng import RngHub

__all__ = [
    "DisseminationResult",
    "build_color_channels",
    "run_dissemination",
    "run_dissemination_batch",
]

Edge = Tuple[int, int]


@dataclass
class DisseminationResult:
    """Outcome of the dissemination stage.

    Attributes:
        informed: ``(n,)`` boolean; who holds the message at the end.
        informed_slot: ``(n,)`` int; stage-local slot at which each node
            first received the message (0 for the source, -1 if never).
        ledger: Slots charged (phase ``"dissemination"``).
        phases_run: Phases executed (early stop may end before ``D``).
        scheduled_slots: Full ``D * 2*Delta * rounds * lg Delta`` budget.
        success: True iff every node is informed.
    """

    informed: np.ndarray
    informed_slot: np.ndarray
    ledger: SlotLedger
    phases_run: int
    scheduled_slots: int

    @property
    def success(self) -> bool:
        return bool(self.informed.all())

    @property
    def completion_slot(self) -> Optional[int]:
        """Stage-local slot when the last node became informed."""
        if not self.success:
            return None
        return int(self.informed_slot.max())


def _validate_schedule(
    edge_colors: Dict[Edge, int],
    dedicated: Dict[Edge, int],
    num_colors: int,
) -> None:
    """The shared schedule checks of serial and batched dissemination."""
    for edge, color in edge_colors.items():
        if not 0 <= color < num_colors:
            raise ProtocolError(
                f"edge {edge} has color {color} outside [0, {num_colors})"
            )
        if edge not in dedicated:
            raise ProtocolError(f"edge {edge} has no dedicated channel")


def _raise_improper(
    edge_colors: Dict[Edge, int], dedicated: Dict[Edge, int], n: int
) -> None:
    """Locate and report the first properness violation.

    Replays the historical per-edge scan so the reported (node, color)
    pair — and hence the error text — is exactly the one the serial
    precompute loop used to raise.
    """
    for color in sorted(set(edge_colors.values())):
        seen = np.zeros(n, dtype=bool)
        for edge, col in edge_colors.items():
            if col != color:
                continue
            for endpoint in edge:
                if seen[endpoint]:
                    raise ProtocolError(
                        f"node {endpoint} has two edges colored {color}; "
                        "the coloring is not proper"
                    )
            seen[edge[0]] = True
            seen[edge[1]] = True
    raise ProtocolError(
        "coloring is not proper"
    )  # pragma: no cover - duplicate detection implies a violation above


def build_color_channels(
    edge_colors: Dict[Edge, int],
    dedicated: Dict[Edge, int],
    n: int,
) -> Dict[int, np.ndarray]:
    """Per-color participant channel vectors, in ascending color order.

    For each color present in ``edge_colors``, builds the ``(n,)``
    vector whose entry ``u`` is the dedicated channel of ``u``'s unique
    edge of that color (``-1`` for non-participants) — the step inputs
    of the dissemination loop. One vectorized scatter replaces the
    per-color-per-edge dict scan; the resulting dict is identical
    (same keys in the same ascending order, same arrays) to the
    historical loop, and an improper coloring raises the identical
    :class:`ProtocolError`. Shared by :func:`run_dissemination` and
    :func:`run_dissemination_batch`.

    Raises:
        ProtocolError: if some node has two same-colored edges (the
            coloring is not proper).
    """
    if not edge_colors:
        return {}
    edges = np.array(list(edge_colors.keys()), dtype=np.int64)
    colors = np.fromiter(
        edge_colors.values(), dtype=np.int64, count=len(edge_colors)
    )
    chans = np.fromiter(
        (dedicated[e] for e in edge_colors),
        dtype=np.int64,
        count=len(edge_colors),
    )
    # Properness <=> every (color, endpoint) pair occurs at most once.
    pair_keys = (colors[:, None] * n + edges).reshape(-1)
    if np.unique(pair_keys).size != pair_keys.size:
        _raise_improper(edge_colors, dedicated, n)
    color_ids, color_idx = np.unique(colors, return_inverse=True)
    mat = np.full((color_ids.size, n), -1, dtype=np.int64)
    mat[color_idx, edges[:, 0]] = chans
    mat[color_idx, edges[:, 1]] = chans
    return {int(c): mat[i] for i, c in enumerate(color_ids)}


def run_dissemination(
    network: CRNetwork,
    source: int,
    edge_colors: Dict[Edge, int],
    dedicated: Dict[Edge, int],
    knowledge: Optional[ModelKnowledge] = None,
    constants: Optional[ProtocolConstants] = None,
    seed: int = 0,
    early_stop: bool = True,
) -> DisseminationResult:
    """Run the color-scheduled dissemination of one message.

    Args:
        network: Ground-truth network.
        source: The initially informed node.
        edge_colors: Proper coloring of (discovered) edges; colors must
            lie in ``[0, 2*Delta)``.
        dedicated: Global dedicated channel per edge; every colored edge
            needs one.
        knowledge: Global parameters (``D`` bounds the phase count,
            ``2*Delta`` the steps per phase).
        constants: Schedule constants (rounds per step).
        seed: Randomness seed for back-off coins.
        early_stop: Stop after the first phase in which everyone is
            informed (the slot ledger then reflects actual usage; the
            scheduled budget is still reported).

    Returns:
        A :class:`DisseminationResult`.
    """
    kn = knowledge or network.knowledge()
    consts = constants or ProtocolConstants.fast()
    n = network.n
    if not 0 <= source < n:
        raise ProtocolError(f"source {source} out of range [0, {n})")
    num_colors = 2 * kn.max_degree
    _validate_schedule(edge_colors, dedicated, num_colors)

    rounds = consts.dissemination_rounds(kn.log_n)
    backoff_len = kn.log_delta
    slots_per_step = rounds * backoff_len
    scheduled_slots = kn.diameter * num_colors * slots_per_step
    # Ascending back-off probabilities, tiled across the step's rounds.
    probs = np.tile(
        2.0 ** -np.arange(backoff_len, 0, -1, dtype=float), rounds
    )

    color_channels = build_color_channels(edge_colors, dedicated, n)

    rng = RngHub(seed).child("dissemination").generator("backoff")
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    informed_slot = np.full(n, -1, dtype=np.int64)
    informed_slot[source] = 0
    ledger = SlotLedger()
    slot_cursor = 0
    phases_run = 0

    with obs.span("dissemination"):
        for _ in range(kn.diameter):
            phases_run += 1
            for color in range(num_colors):
                channels = color_channels.get(color)
                if channels is None:
                    # No edge has this color; the step still occupies
                    # its scheduled slots (nodes idle), matching the
                    # paper's fixed step-per-color schedule.
                    slot_cursor += slots_per_step
                    ledger.charge("dissemination", slots_per_step)
                    continue
                participating = channels >= 0
                tx_role = participating & informed
                coins = rng.random((slots_per_step, n)) < probs[:, None]
                outcome = resolve_step(
                    network.adjacency, channels, tx_role, coins
                )
                heard = outcome.heard_from >= 0
                # A node is informed at the earliest slot it heard *any*
                # message in this step: only informed nodes transmit
                # here, and the message is always the broadcast payload.
                newly = heard.any(axis=0) & ~informed
                if newly.any():
                    first = np.argmax(heard, axis=0)
                    informed_slot[newly] = slot_cursor + first[newly]
                    informed[newly] = True
                slot_cursor += slots_per_step
                ledger.charge("dissemination", slots_per_step)
            if early_stop and informed.all():
                break

    return DisseminationResult(
        informed=informed,
        informed_slot=informed_slot,
        ledger=ledger,
        phases_run=phases_run,
        scheduled_slots=scheduled_slots,
    )


def run_dissemination_batch(
    adjacency: np.ndarray,
    sources: Union[int, Sequence[int]],
    edge_colors_list: Sequence[Dict[Edge, int]],
    dedicated_list: Sequence[Dict[Edge, int]],
    knowledge: ModelKnowledge,
    constants: Optional[ProtocolConstants] = None,
    seeds: Sequence[int] = (),
    early_stop: bool = True,
) -> List[DisseminationResult]:
    """Run ``B`` dissemination trials in lockstep across the trial axis.

    All trials share the knowledge-derived schedule (``D`` phases of
    ``2*Delta`` color-steps of ``rounds * lg Delta`` slots); per trial,
    the schedule artifacts (edge colors and dedicated channels), the
    source, the back-off seed — and, through a ``(B, n, n)`` adjacency
    stack, the network — may differ. Each (phase, color) step resolves
    as *one* :func:`repro.sim.engine.resolve_step_batch` call over the
    trials whose schedule contains that color, with per-trial channel
    vectors; informed-slot bookkeeping is vectorized across the batch,
    and an active-trial mask implements per-trial ``early_stop`` at
    phase granularity (a trial keeps drawing through the remainder of
    the phase that informs its last node, exactly as the serial loop
    does).

    Bit-exactness contract: trial ``b`` draws its back-off coins from
    its own ``RngHub(seeds[b]).child("dissemination")`` stream in the
    serial order — colors absent from its schedule draw nothing — so
    result ``b`` is field-for-field identical to
    :func:`run_dissemination` with the same inputs. Batching is a pure
    throughput decision; this is the engine of
    :class:`repro.core.cgcast_batch.CGCastBatch` and
    :func:`repro.core.cgcast_batch.redisseminate_batch`.

    Args:
        adjacency: ``(n, n)`` shared or ``(B, n, n)`` per-trial boolean
            adjacency.
        sources: The initially informed node — one int shared by every
            trial, or a per-trial sequence.
        edge_colors_list: Per-trial proper edge colorings.
        dedicated_list: Per-trial dedicated channels per edge.
        knowledge: Global parameters shared by every trial.
        constants: Schedule constants; defaults to
            :meth:`ProtocolConstants.fast`.
        seeds: Per-trial back-off seeds (defines ``B``).
        early_stop: Stop each trial after the first phase in which all
            of its nodes are informed.

    Returns:
        One :class:`DisseminationResult` per trial, in seed order.
    """
    kn = knowledge
    consts = constants or ProtocolConstants.fast()
    seeds = [int(s) for s in seeds]
    num_trials = len(seeds)
    if num_trials == 0:
        raise ProtocolError("seeds must name at least one trial")
    n = adjacency.shape[-1]
    if adjacency.ndim == 3 and adjacency.shape[0] != num_trials:
        raise ProtocolError(
            f"per-trial adjacency must have shape ({num_trials}, {n}, "
            f"{n}), got {adjacency.shape}"
        )
    if isinstance(sources, (int, np.integer)):
        source_arr = [int(sources)] * num_trials
    else:
        source_arr = [int(s) for s in sources]
    if len(source_arr) != num_trials:
        raise ProtocolError(
            f"need one source per trial ({num_trials}), "
            f"got {len(source_arr)}"
        )
    if len(edge_colors_list) != num_trials:
        raise ProtocolError(
            f"need one edge coloring per trial ({num_trials}), "
            f"got {len(edge_colors_list)}"
        )
    if len(dedicated_list) != num_trials:
        raise ProtocolError(
            f"need one dedicated-channel map per trial ({num_trials}), "
            f"got {len(dedicated_list)}"
        )
    for source in source_arr:
        if not 0 <= source < n:
            raise ProtocolError(f"source {source} out of range [0, {n})")
    num_colors = 2 * kn.max_degree
    color_channels: List[Dict[int, np.ndarray]] = []
    for edge_colors, dedicated in zip(edge_colors_list, dedicated_list):
        _validate_schedule(edge_colors, dedicated, num_colors)
        color_channels.append(build_color_channels(edge_colors, dedicated, n))

    rounds = consts.dissemination_rounds(kn.log_n)
    backoff_len = kn.log_delta
    slots_per_step = rounds * backoff_len
    scheduled_slots = kn.diameter * num_colors * slots_per_step
    probs = np.tile(
        2.0 ** -np.arange(backoff_len, 0, -1, dtype=float), rounds
    )

    rngs = [
        RngHub(s).child("dissemination").generator("backoff") for s in seeds
    ]
    trial_ids = np.arange(num_trials)
    informed = np.zeros((num_trials, n), dtype=bool)
    informed[trial_ids, source_arr] = True
    informed_slot = np.full((num_trials, n), -1, dtype=np.int64)
    informed_slot[trial_ids, source_arr] = 0
    active = np.ones(num_trials, dtype=bool)
    phases_run = np.zeros(num_trials, dtype=np.int64)
    # The slot cursor is shared: every active trial sits at the same
    # schedule position, and stopped trials never consult it again.
    slot_cursor = 0

    with obs.span("dissemination"):
        for _ in range(kn.diameter):
            if not active.any():
                break
            phases_run[active] += 1
            for color in range(num_colors):
                # Active trials lacking this color idle through the
                # step (their cursor advances, no coins are drawn) —
                # exactly the serial empty-color branch.
                sub = [
                    b
                    for b in range(num_trials)
                    if active[b] and color in color_channels[b]
                ]
                if sub:
                    sub_idx = np.asarray(sub)
                    channels = np.stack(
                        [color_channels[b][color] for b in sub]
                    )
                    coins = np.empty(
                        (len(sub), slots_per_step, n), dtype=bool
                    )
                    for i, b in enumerate(sub):
                        coins[i] = (
                            rngs[b].random((slots_per_step, n))
                            < probs[:, None]
                        )
                    tx_role = (channels >= 0) & informed[sub_idx]
                    adj = (
                        adjacency[sub_idx]
                        if adjacency.ndim == 3
                        else adjacency
                    )
                    outcome = resolve_step_batch(
                        adj, channels, tx_role, coins
                    )
                    heard = outcome.heard_from >= 0
                    newly = heard.any(axis=1) & ~informed[sub_idx]
                    if newly.any():
                        first = np.argmax(heard, axis=1)
                        s_i, u_i = np.nonzero(newly)
                        informed_slot[sub_idx[s_i], u_i] = (
                            slot_cursor + first[s_i, u_i]
                        )
                        informed[sub_idx[s_i], u_i] = True
                slot_cursor += slots_per_step
            if early_stop:
                active &= ~informed.all(axis=1)

    results: List[DisseminationResult] = []
    for b in range(num_trials):
        ledger = SlotLedger()
        if phases_run[b]:
            # The serial loop charges once per color step; the total is
            # a pure function of the phases the trial participated in.
            ledger.charge(
                "dissemination",
                int(phases_run[b]) * num_colors * slots_per_step,
            )
        results.append(
            DisseminationResult(
                informed=informed[b].copy(),
                informed_slot=informed_slot[b].copy(),
                ledger=ledger,
                phases_run=int(phases_run[b]),
                scheduled_slots=scheduled_slots,
            )
        )
    return results
