"""Cross-point batch groups: lockstep execution across sweep points.

:class:`~repro.core.cseek_batch.CSeekBatch` locksteps the trials of one
sweep point; a sweep grid still drains point by point, paying the
per-step Python and dispatch overhead once per point. This module is
the grouping layer on top of :func:`~repro.core.cseek_batch.
run_cseek_lockstep`: trial factories (:mod:`repro.scenarios.trials`)
attach an :class:`XBatchable` describing how their point can join a
cross-point group, points whose :meth:`XBatchable.signature` match are
concatenated along one trial axis, and :func:`run_group` executes the
whole group as a single lockstep run — one engine call per protocol
step for *every* compatible point of the scenario.

Three member kinds exist:

``"cseek"``
    Full CSEEK/CKSEEK executions (and anything built on
    :class:`CSeekBatch`); grouped points may have different networks
    and environments — the signature pins only the schedule shape (see
    :func:`~repro.core.cseek_batch.lockstep_signature`).
``"cgcast"``
    Full CGCAST executions, end-to-end through
    :func:`~repro.core.cgcast_batch.run_cgcast_lockstep`; the signature
    pins the discovery schedule plus the pipeline knobs (source,
    exchange mode, loss rate, early stop, knowledge — see
    :func:`~repro.core.cgcast_batch.cgcast_lockstep_signature`), while
    networks may differ per point.
``"count"``
    Single COUNT steps; the signature pins the rig (adjacency,
    channels, roles — content, not identity) and the schedule, so a
    grouped COUNT sweep (e.g. an activity axis on one star) rides the
    engine's fully homogeneous flattened-GEMM path as one giant call.

The trial axis is the concatenation of every member's seeds: ragged
per-point trial counts need no padding, and each trial's generator
draws are its own, so per-trial results are bit-identical to the
per-point ``run_batch`` path — grouping, like batching, is a pure
throughput decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cgcast import CGCast
from repro.core.cgcast_batch import (
    CGCastBatch,
    CGCastMember,
    cgcast_lockstep_signature,
    run_cgcast_lockstep,
)
from repro.core.constants import ProtocolConstants
from repro.core.count import count_schedule, run_count_step_batch
from repro.core.cseek import CSeek
from repro.core.cseek_batch import (
    CSeekBatch,
    JammerFactory,
    LockstepMember,
    lockstep_signature,
    run_cseek_lockstep,
)
from repro.model.errors import ProtocolError
from repro.sim.environment import SpectrumEnvironment

__all__ = [
    "CGCastXBatch",
    "CSeekXBatch",
    "CountXBatch",
    "XBatchable",
    "run_group",
]


class XBatchable:
    """How one sweep point joins a cross-point lockstep group.

    Subclasses carry everything their group runner needs (protocol
    configuration, environment, postprocess) plus a :meth:`signature`
    naming the compatibility class: points whose signatures compare
    equal may run as one group; any difference splits them into
    separate groups (never an error — grouping degrades to per-point
    batching at worst).
    """

    kind: ClassVar[str] = ""

    def signature(self) -> tuple:
        raise NotImplementedError


@dataclass
class CSeekXBatch(XBatchable):
    """Cross-point descriptor for CSEEK/CKSEEK trial factories.

    The :class:`CSeekBatch` is built lazily (first signature probe) so
    factories that never meet an xbatch executor pay nothing.
    """

    make_protocol: Callable[[int], CSeek]
    postprocess: Callable[..., object]
    jammer_factory: Optional[JammerFactory] = None
    environment: Optional[SpectrumEnvironment] = None
    _batch: Optional[CSeekBatch] = field(
        default=None, repr=False, compare=False
    )

    kind: ClassVar[str] = "cseek"

    @property
    def batch(self) -> CSeekBatch:
        if self._batch is None:
            self._batch = CSeekBatch.from_serial(
                self.make_protocol(0),
                jammer_factory=self.jammer_factory,
                environment=self.environment,
            )
        return self._batch

    def signature(self) -> tuple:
        return (self.kind, lockstep_signature(self.batch))


@dataclass
class CGCastXBatch(XBatchable):
    """Cross-point descriptor for full-pipeline CGCAST trial factories.

    ``make_protocol(seed, discovery=None)`` is the factory the serial
    path uses; the batch is built lazily from its seed-0 instance, so
    factories that never meet an xbatch executor pay nothing.
    """

    make_protocol: Callable[..., CGCast]
    postprocess: Callable[..., object]
    environment: Optional[SpectrumEnvironment] = None
    _batch: Optional[CGCastBatch] = field(
        default=None, repr=False, compare=False
    )

    kind: ClassVar[str] = "cgcast"

    @property
    def batch(self) -> CGCastBatch:
        if self._batch is None:
            self._batch = CGCastBatch.from_serial(
                self.make_protocol(0), environment=self.environment
            )
        return self._batch

    def signature(self) -> tuple:
        return (self.kind, cgcast_lockstep_signature(self.batch))


@dataclass
class CountXBatch(XBatchable):
    """Cross-point descriptor for single-COUNT-step trial factories."""

    adj: np.ndarray
    channels: np.ndarray
    tx_role: np.ndarray
    max_count: int
    log_n: int
    constants: ProtocolConstants
    postprocess: Callable[[np.ndarray], object]
    jammer_factory: Optional[Callable[[int], object]] = None
    environment: Optional[SpectrumEnvironment] = None

    kind: ClassVar[str] = "count"

    def signature(self) -> tuple:
        # Content-keyed rig: equal signatures guarantee one shared
        # (adjacency, channels, roles) triple, so the whole group rides
        # the engine's homogeneous flattened-GEMM path.
        return (
            self.kind,
            self.adj.shape[0],
            self.adj.tobytes(),
            self.channels.tobytes(),
            self.tx_role.tobytes(),
            self.max_count,
            self.log_n,
            self.constants,
        )


def _run_cseek_group(
    xs: Sequence[CSeekXBatch], seed_lists: Sequence[List[int]]
) -> List[List[object]]:
    raw = run_cseek_lockstep(
        [
            LockstepMember(x.batch, seeds)
            for x, seeds in zip(xs, seed_lists)
        ]
    )
    return [
        [x.postprocess(result) for result in member_results]
        for x, member_results in zip(xs, raw)
    ]


def _run_count_group(
    xs: Sequence[CountXBatch], seed_lists: Sequence[List[int]]
) -> List[List[object]]:
    x0 = xs[0]
    rounds, round_length = count_schedule(
        x0.max_count, x0.log_n, x0.constants
    )
    total_slots = rounds * round_length
    n = x0.adj.shape[0]
    per_member = [len(seeds) for seeds in seed_lists]
    num_trials = sum(per_member)
    offsets = np.concatenate([[0], np.cumsum(per_member)])
    jam = None
    if any(
        x.environment is not None or x.jammer_factory is not None
        for x in xs
    ):
        # Unjammed members contribute zeros — engine-equivalent to the
        # no-jam path, so mixed groups stay bit-identical per member.
        jam = np.zeros((num_trials, total_slots, n), dtype=bool)
        for j, (x, seeds) in enumerate(zip(xs, seed_lists)):
            sl = slice(int(offsets[j]), int(offsets[j + 1]))
            if x.environment is not None:
                jam[sl] = x.environment.streams(seeds).jam_mask(
                    x.channels, total_slots
                )
            elif x.jammer_factory is not None:
                jam[sl] = np.stack(
                    [
                        x.jammer_factory(s).jam_mask(
                            x.channels, total_slots
                        )
                        for s in seeds
                    ]
                )
    out = run_count_step_batch(
        x0.adj,
        x0.channels,
        x0.tx_role,
        max_count=x0.max_count,
        log_n=x0.log_n,
        constants=x0.constants,
        rngs=[
            np.random.default_rng(s)
            for seeds in seed_lists
            for s in seeds
        ],
        jam=jam,
    )
    return [
        [
            x.postprocess(row)
            for row in out.estimates[
                int(offsets[j]) : int(offsets[j + 1])
            ]
        ]
        for j, x in enumerate(xs)
    ]


def _run_cgcast_group(
    xs: Sequence[CGCastXBatch], seed_lists: Sequence[List[int]]
) -> List[List[object]]:
    raw = run_cgcast_lockstep(
        [
            CGCastMember(x.batch, seeds)
            for x, seeds in zip(xs, seed_lists)
        ]
    )
    return [
        [x.postprocess(result) for result in member_results]
        for x, member_results in zip(xs, raw)
    ]


_RUNNERS = {
    "cseek": _run_cseek_group,
    "cgcast": _run_cgcast_group,
    "count": _run_count_group,
}


def run_group(
    xs: Sequence[XBatchable],
    seed_lists: Sequence[Sequence[int]],
    batch_size: Optional[int] = None,
) -> List[List[object]]:
    """Execute one compatibility group's trials in cross-point lockstep.

    Args:
        xs: The group's members — same ``kind``, equal signatures
            (callers group by :meth:`XBatchable.signature`; the kind
            runners re-validate what correctness depends on).
        seed_lists: Per-member trial seeds (ragged counts welcome).
        batch_size: Optional cap on trials per lockstep execution;
            the concatenated axis is split into consecutive sub-groups
            of at most this many trials (memory bound, same results —
            every trial draws from its own generators).

    Returns:
        Per-member postprocessed outcome lists, in member order and
        per-member seed order.
    """
    if not xs:
        raise ProtocolError("cross-point group needs at least one member")
    if len(xs) != len(seed_lists):
        raise ProtocolError(
            f"{len(xs)} members but {len(seed_lists)} seed lists"
        )
    kind = xs[0].kind
    if any(x.kind != kind for x in xs):
        raise ProtocolError(
            "cross-point group members must share one kind; got "
            f"{sorted({x.kind for x in xs})}"
        )
    runner = _RUNNERS[kind]
    seed_lists = [[int(s) for s in seeds] for seeds in seed_lists]
    total = sum(len(seeds) for seeds in seed_lists)
    cap = batch_size if batch_size else total
    results: List[List[object]] = [[] for _ in xs]
    pending: List[Tuple[int, List[int]]] = []
    filled = 0

    def flush() -> None:
        nonlocal filled
        if not pending:
            return
        sub_xs = [xs[i] for i, _ in pending]
        sub_seeds = [seeds for _, seeds in pending]
        for (i, _), outs in zip(pending, runner(sub_xs, sub_seeds)):
            results[i].extend(outs)
        pending.clear()
        filled = 0

    for i, seeds in enumerate(seed_lists):
        pos = 0
        while pos < len(seeds):
            take = min(cap - filled, len(seeds) - pos)
            pending.append((i, seeds[pos : pos + take]))
            filled += take
            pos += take
            if filled >= cap:
                flush()
    flush()
    return results
