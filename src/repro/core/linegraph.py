"""Line-graph construction for edge coloring (Section 5.2, Fact 7).

CGCAST reduces edge coloring of the network graph ``G`` to node coloring
of its line graph ``G_L``: every edge ``(u, v)`` of ``G`` becomes a
virtual node ``w_{u,v}``, and two virtual nodes are adjacent iff their
edges share an endpoint. Each virtual node is *simulated* by the physical
endpoint with the smaller identity — possible because after neighbor
discovery both endpoints know the edge exists, and consistent because
identities are globally unique.

Key structural facts reproduced here:

* physical simulators of adjacent virtual nodes are at most two hops
  apart in ``G`` (they are endpoints of edges sharing a vertex), and
* ``G_L`` has maximum degree at most ``2*Delta - 2``, so a palette of
  ``2*Delta`` colors always leaves an available color (Lemma 8's proof).

The construction takes per-node *discovered* neighbor sets rather than
ground truth: CGCAST colors the graph CSEEK actually found.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.model.errors import ProtocolError

__all__ = ["LineGraph", "edges_from_discovery"]

Edge = Tuple[int, int]


def edges_from_discovery(
    discovered: Sequence[Set[int]], mutual: bool = True
) -> List[Edge]:
    """Extract canonical edges from per-node discovered neighbor sets.

    Args:
        discovered: ``discovered[u]`` = identities node ``u`` heard.
        mutual: When True an edge requires both directions (the paper's
            CSEEK ends with both endpoints knowing each other w.h.p.);
            when False one direction suffices.

    Returns:
        Sorted list of ``(min, max)`` edges.
    """
    n = len(discovered)
    edges: Set[Edge] = set()
    for u in range(n):
        for v in discovered[u]:
            if not 0 <= v < n or v == u:
                raise ProtocolError(
                    f"node {u} discovered invalid identity {v}"
                )
            a, b = (u, v) if u < v else (v, u)
            if mutual:
                if u in discovered[v]:
                    edges.add((a, b))
            else:
                edges.add((a, b))
    return sorted(edges)


@dataclass
class LineGraph:
    """The line graph ``G_L`` of a discovered edge set.

    Attributes:
        edges: Canonical ``(min, max)`` edges of ``G`` — the virtual
            nodes, indexed by position.
        neighbors: ``neighbors[i]`` = indices of virtual nodes adjacent
            to virtual node ``i`` (edges sharing an endpoint).
        simulator: ``simulator[i]`` = physical node simulating virtual
            node ``i`` (the smaller endpoint).
    """

    edges: List[Edge]
    neighbors: List[List[int]]
    simulator: List[int]

    @classmethod
    def from_edges(cls, edges: Sequence[Edge]) -> "LineGraph":
        """Build ``G_L`` from canonical edges.

        Raises:
            ProtocolError: on duplicate or non-canonical edges.
        """
        canon: List[Edge] = []
        seen: Set[Edge] = set()
        for u, v in edges:
            if u >= v:
                raise ProtocolError(
                    f"edges must be canonical (u < v), got ({u}, {v})"
                )
            if (u, v) in seen:
                raise ProtocolError(f"duplicate edge ({u}, {v})")
            seen.add((u, v))
            canon.append((u, v))
        canon.sort()
        incident: Dict[int, List[int]] = {}
        for i, (u, v) in enumerate(canon):
            incident.setdefault(u, []).append(i)
            incident.setdefault(v, []).append(i)
        neighbors: List[List[int]] = [[] for _ in canon]
        for ids in incident.values():
            for i in ids:
                for j in ids:
                    if i != j:
                        neighbors[i].append(j)
        # Two edges can share both endpoints only in multigraphs, which
        # the model excludes, so no dedup beyond set() is needed; still,
        # keep the lists sorted and unique for determinism.
        neighbors = [sorted(set(adj)) for adj in neighbors]
        simulator = [u for (u, v) in canon]
        return cls(edges=canon, neighbors=neighbors, simulator=simulator)

    @classmethod
    def from_discovery(
        cls, discovered: Sequence[Set[int]], mutual: bool = True
    ) -> "LineGraph":
        """Build ``G_L`` from per-node discovery results."""
        return cls.from_edges(edges_from_discovery(discovered, mutual))

    @property
    def num_virtual(self) -> int:
        """Number of virtual nodes (= discovered edges)."""
        return len(self.edges)

    def max_degree(self) -> int:
        """Maximum degree of ``G_L`` (at most ``2*Delta - 2``)."""
        if not self.neighbors:
            return 0
        return max(len(adj) for adj in self.neighbors)

    def index_of(self, edge: Edge) -> int:
        """Index of a canonical edge.

        Raises:
            ProtocolError: if the edge is not present.
        """
        try:
            return self.edges.index(edge)
        except ValueError:
            raise ProtocolError(f"edge {edge} not in line graph") from None

    def edges_simulated_by(self, node: int) -> List[int]:
        """Virtual-node indices the physical ``node`` simulates."""
        return [i for i, s in enumerate(self.simulator) if s == node]

    def incident_to(self, node: int) -> List[int]:
        """Virtual-node indices whose edge touches the physical ``node``."""
        return [
            i for i, (u, v) in enumerate(self.edges) if node in (u, v)
        ]
