"""Structural graph statistics.

Lives at the package root (rather than in :mod:`repro.graphs`) because it
is needed both by topology generators and by the simulation network
wrapper, and must not create an import cycle between those packages.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.model.errors import TopologyError

__all__ = ["GraphStats", "graph_stats"]


@dataclass(frozen=True)
class GraphStats:
    """Realized structural parameters of a connectivity graph.

    Attributes:
        n: Number of nodes.
        m: Number of edges.
        max_degree: The paper's ``Delta``.
        diameter: The paper's ``D``.
    """

    n: int
    m: int
    max_degree: int
    diameter: int


def graph_stats(graph: nx.Graph) -> GraphStats:
    """Compute ``(n, m, Delta, D)`` for a connected graph.

    Raises:
        TopologyError: if the graph is empty or disconnected.
    """
    if graph.number_of_nodes() == 0:
        raise TopologyError("graph has no nodes")
    if graph.number_of_nodes() == 1:
        return GraphStats(n=1, m=0, max_degree=0, diameter=0)
    if not nx.is_connected(graph):
        raise TopologyError("graph must be connected")
    degrees = [d for _, d in graph.degree()]
    return GraphStats(
        n=graph.number_of_nodes(),
        m=graph.number_of_edges(),
        max_degree=max(degrees),
        diameter=nx.diameter(graph),
    )
