"""Cross-module end-to-end scenarios beyond the fixture networks."""

import pytest

from repro.baselines import NaiveBroadcast
from repro.core import (
    CGCast,
    CSeek,
    ProtocolConstants,
    verify_discovery,
)
from repro.graphs import (
    build_network,
    build_random_subset_network,
    build_theorem14_tree,
    erdos_renyi_connected,
    grid,
    random_geometric,
)


@pytest.mark.integration
class TestDiscoveryAcrossTopologies:
    def test_grid_network(self):
        net = build_network(grid(4, 5), c=10, k=2, seed=1)
        result = CSeek(net, seed=2).run()
        assert verify_discovery(result, net).success

    def test_random_geometric_network(self):
        graph = random_geometric(24, seed=3)
        k = 1
        c = max(8, max(d for _, d in graph.degree()) * k)
        net = build_network(graph, c=c, k=k, seed=4)
        result = CSeek(net, seed=5).run()
        assert verify_discovery(result, net).success

    def test_erdos_renyi_network(self):
        graph = erdos_renyi_connected(20, seed=6)
        k = 1
        c = max(8, max(d for _, d in graph.degree()) * k)
        net = build_network(graph, c=c, k=k, seed=7)
        result = CSeek(net, seed=8).run()
        assert verify_discovery(result, net).success

    def test_emergent_whitespace_network(self):
        net = build_random_subset_network(
            n=14, c=6, k=2, pool_size=12, seed=9
        )
        result = CSeek(net, seed=10).run()
        assert verify_discovery(result, net).success


@pytest.mark.integration
class TestBroadcastAcrossTopologies:
    def test_cgcast_on_grid(self):
        net = build_network(grid(3, 4), c=10, k=2, seed=11)
        result = CGCast(net, source=5, seed=12).run()
        assert result.success
        assert result.coloring_valid

    def test_cgcast_on_theorem14_tree(self):
        net = build_theorem14_tree(c=4, depth=2, seed=13)
        result = CGCast(net, source=0, seed=14).run()
        assert result.success

    def test_cgcast_and_naive_agree_on_reachability(self):
        net = build_network(grid(3, 4), c=10, k=2, seed=15)
        cg = CGCast(net, source=0, seed=16).run()
        nv = NaiveBroadcast(net, source=0, seed=16).run()
        assert cg.success and nv.success

    def test_broadcast_causality(self):
        """Every informed node (except the source) has a neighbor that
        was informed strictly earlier."""
        net = build_network(grid(3, 4), c=10, k=2, seed=17)
        result = CGCast(net, source=0, seed=18).run()
        slots = result.informed_slot
        for u in range(1, net.n):
            neighbor_slots = [slots[int(v)] for v in net.neighbors(u)]
            assert min(neighbor_slots) < slots[u]


@pytest.mark.integration
class TestProfileConsistency:
    def test_faithful_profile_discovers(self, small_path_net):
        """The paper-exact COUNT profile also yields full discovery
        (slower but correct)."""
        consts = ProtocolConstants.faithful()
        result = CSeek(
            small_path_net,
            seed=19,
            constants=consts,
            # Keep the runtime bounded: the faithful COUNT rounds are
            # ~100x longer, so trim the step budgets to the Lemma 2
            # requirement for this tiny network (~2 lg n expected
            # meetings per pair at 400 steps).
            part1_steps=400,
            part2_steps=40,
        ).run()
        report = verify_discovery(result, small_path_net)
        assert report.success

    def test_default_constants_match_fast_shape(self):
        default = ProtocolConstants()
        fast = ProtocolConstants.fast()
        assert default.part1_factor == fast.part1_factor
        assert default.count_rule == "argmax"
