"""Unit and statistical tests for CSEEK (Theorem 4)."""

import numpy as np
import pytest

from repro.core import CSeek, ProtocolConstants, verify_discovery
from repro.model import ProtocolError


class TestScheduleSizing:
    def test_budgets_follow_constants(self, small_regular_net):
        kn = small_regular_net.knowledge()
        consts = ProtocolConstants.fast()
        cseek = CSeek(small_regular_net, constants=consts, seed=0)
        assert cseek.part1_step_budget == consts.part1_steps(
            kn.c, kn.k, kn.log_n
        )
        assert cseek.part2_step_budget == consts.part2_steps(
            kn.kmax, kn.k, kn.max_degree, kn.log_n
        )

    def test_budget_overrides(self, small_path_net):
        cseek = CSeek(small_path_net, seed=0, part1_steps=3, part2_steps=2)
        result = cseek.run()
        assert result.step_start_slots.shape[0] == 5

    def test_rejects_bad_listener_policy(self, small_path_net):
        with pytest.raises(ProtocolError):
            CSeek(small_path_net, part2_listener="bogus")


class TestDiscovery:
    def test_full_discovery_regular(self, small_regular_net):
        result = CSeek(small_regular_net, seed=1).run()
        report = verify_discovery(result, small_regular_net)
        assert report.success, report.missing

    def test_full_discovery_path(self, small_path_net):
        result = CSeek(small_path_net, seed=2).run()
        assert verify_discovery(result, small_path_net).success

    def test_full_discovery_crowded_star(self, star_net):
        result = CSeek(star_net, seed=3).run()
        assert verify_discovery(result, star_net).success

    def test_discovered_are_true_neighbors(self, small_regular_net):
        result = CSeek(small_regular_net, seed=4).run()
        truth = small_regular_net.true_neighbor_sets()
        for u in range(small_regular_net.n):
            assert result.discovered[u] <= set(truth[u])

    def test_part_one_subset_of_total(self, small_regular_net):
        result = CSeek(small_regular_net, seed=5).run()
        for u in range(small_regular_net.n):
            assert result.discovered_part_one[u] <= result.discovered[u]

    def test_counts_shape_and_positivity(self, small_regular_net):
        result = CSeek(small_regular_net, seed=6).run()
        n, c = small_regular_net.n, small_regular_net.c
        assert result.counts.shape == (n, c)
        assert (result.counts >= 0).all()
        assert result.counts.sum() > 0

    def test_determinism(self, small_path_net):
        r1 = CSeek(small_path_net, seed=7).run()
        r2 = CSeek(small_path_net, seed=7).run()
        assert r1.discovered == r2.discovered
        assert np.array_equal(r1.counts, r2.counts)
        assert r1.total_slots == r2.total_slots

    def test_different_seeds_differ(self, small_regular_net):
        r1 = CSeek(small_regular_net, seed=8).run()
        r2 = CSeek(small_regular_net, seed=9).run()
        assert not np.array_equal(r1.step_channels, r2.step_channels)


class TestLedger:
    def test_phases_present(self, small_path_net):
        result = CSeek(small_path_net, seed=10).run()
        assert result.ledger.get("part1") > 0
        assert result.ledger.get("part2") > 0
        assert result.ledger.total == result.total_slots

    def test_part2_slots_use_backoff_window(self, small_path_net):
        kn = small_path_net.knowledge()
        cseek = CSeek(small_path_net, seed=11)
        result = cseek.run()
        assert result.ledger.get("part2") == (
            cseek.part2_step_budget * kn.log_delta
        )


class TestChannelHistory:
    def test_channel_at_slot_matches_step_table(self, small_path_net):
        result = CSeek(small_path_net, seed=12).run()
        # Check a handful of boundaries.
        for idx in (0, 1, len(result.step_start_slots) - 1):
            start = int(result.step_start_slots[idx])
            for node in (0, 3):
                assert result.channel_at_slot(node, start) == int(
                    result.step_channels[idx, node]
                )

    def test_channel_at_slot_out_of_range(self, small_path_net):
        result = CSeek(small_path_net, seed=13).run()
        with pytest.raises(ProtocolError):
            result.channel_at_slot(0, result.total_slots)
        with pytest.raises(ProtocolError):
            result.channel_at_slot(0, -1)

    def test_first_heard_channel_is_shared(self, small_path_net):
        """The channel of a first reception is shared by the pair."""
        net = small_path_net
        result = CSeek(net, seed=14).run()
        for (u, v), event in result.trace.first_heard.items():
            assert event.channel in net.shared_channels(u, v)


class TestAblation:
    def test_uniform_listener_policy_runs(self, star_net):
        result = CSeek(star_net, seed=15, part2_listener="uniform").run()
        assert verify_discovery(result, star_net).success

    def test_weighted_prefers_crowded_channels(self, star_net):
        """On a global-core star, the hub's counts concentrate on core
        channels, so weighted part-two listening revisits them."""
        result = CSeek(star_net, seed=16).run()
        hub = 0
        counts = result.counts[hub]
        labels = np.argsort(counts)[::-1]
        table = star_net.channel_table()
        core = star_net.shared_channels(0, 1)
        top_two_globals = {int(table[hub, labels[0]]), int(table[hub, labels[1]])}
        assert top_two_globals == set(core)


class TestVerifyDiscovery:
    def test_missing_detection(self, small_path_net):
        # A hopeless budget cannot discover anything.
        result = CSeek(
            small_path_net, seed=17, part1_steps=0, part2_steps=0
        ).run()
        report = verify_discovery(result, small_path_net)
        assert not report.success
        assert len(report.missing) == 2 * small_path_net.stats.m

    def test_completion_not_after_schedule(self, small_regular_net):
        result = CSeek(small_regular_net, seed=18).run()
        report = verify_discovery(result, small_regular_net)
        assert report.completion_slot is not None
        assert report.completion_slot < result.total_slots


class TestBackoffBatch:
    def test_batch_matches_serial_windows(self):
        import numpy as np

        from repro.core.cseek import backoff_probabilities, resolve_backoff_batch
        from repro.sim.engine import resolve_step

        rng = np.random.default_rng(5)
        n, backoff_len = 12, 4
        adj = rng.random((n, n)) < 0.4
        adj = np.triu(adj, 1)
        adj = adj | adj.T
        channels = rng.integers(0, 3, size=n)
        tx_role = rng.random(n) < 0.5
        seeds = [3, 4, 5]
        batch = resolve_backoff_batch(
            adj, channels, tx_role, backoff_len,
            [np.random.default_rng(s) for s in seeds],
        )
        probs = backoff_probabilities(backoff_len)
        for b, s in enumerate(seeds):
            coins = (
                np.random.default_rng(s).random((backoff_len, n))
                < probs[:, None]
            )
            ref = resolve_step(adj, channels, tx_role, coins)
            assert np.array_equal(batch.heard_from[b], ref.heard_from)

    def test_backoff_probabilities_shape(self):
        import numpy as np
        import pytest

        from repro.core.cseek import backoff_probabilities
        from repro.model import ProtocolError

        probs = backoff_probabilities(3)
        assert np.allclose(probs, [1 / 8, 1 / 4, 1 / 2])
        with pytest.raises(ProtocolError):
            backoff_probabilities(0)
