"""Unit tests for the experiment harness (tables, runner, registry,
executors, and the result cache)."""

import pytest

from repro.harness import (
    EXPERIMENTS,
    ExperimentTable,
    cache_key,
    experiment_ids,
    load_table,
    render_markdown,
    run_experiment,
    run_trials,
    store_table,
    write_csv,
)
from repro.model import HarnessError


class TestRenderMarkdown:
    def test_basic_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": None}]
        md = render_markdown(rows, title="T")
        assert "### T" in md
        assert "| a | b |" in md
        assert "| 3 | - |" in md

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2}]
        md = render_markdown(rows, columns=["b", "a"])
        assert md.splitlines()[0] == "| b | a |"

    def test_union_of_row_keys(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        md = render_markdown(rows)
        assert "| a | b |" in md

    def test_rejects_empty(self):
        with pytest.raises(HarnessError):
            render_markdown([])

    def test_rejects_missing_columns(self):
        with pytest.raises(HarnessError):
            render_markdown([{"a": 1}], columns=["nope"])

    def test_float_formatting(self):
        md = render_markdown([{"x": 123456.0, "y": 0.12345, "z": True}])
        assert "123,456" in md
        assert "0.123" in md
        assert "yes" in md


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_csv(tmp_path / "deep" / "out.csv", rows)
        text = path.read_text()
        assert text.splitlines()[0] == "a,b"
        assert "2,y" in text


class TestExperimentTable:
    def make(self):
        return ExperimentTable(
            experiment_id="EX",
            title="demo",
            rows=[{"x": 1, "y": 2}],
            notes="some interpretation",
        )

    def test_to_markdown_includes_notes(self):
        md = self.make().to_markdown()
        assert "EX — demo" in md
        assert "some interpretation" in md

    def test_save_writes_both_files(self, tmp_path):
        paths = self.make().save(tmp_path)
        assert paths["markdown"].exists()
        assert paths["csv"].exists()
        assert paths["markdown"].name == "ex.md"


class TestRunTrials:
    def test_trials_get_distinct_seeds(self):
        seeds = run_trials(lambda s: s, trials=5, seed=1)
        assert len(set(seeds)) == 5

    def test_deterministic(self):
        a = run_trials(lambda s: s, trials=4, seed=9)
        b = run_trials(lambda s: s, trials=4, seed=9)
        assert a == b

    def test_label_decorrelates(self):
        a = run_trials(lambda s: s, trials=4, seed=9, label="x")
        b = run_trials(lambda s: s, trials=4, seed=9, label="y")
        assert a != b

    def test_rejects_zero_trials(self):
        with pytest.raises(HarnessError):
            run_trials(lambda s: s, trials=0, seed=0)

    def test_failure_surfaces_the_trial_seed(self):
        # A trial raising mid-sweep must name the seed that failed so
        # the failure is reproducible in isolation.
        seen = []

        def flaky(s):
            seen.append(s)
            if len(seen) == 3:
                raise ValueError("third trial dies")
            return s

        with pytest.raises(HarnessError) as excinfo:
            run_trials(flaky, trials=5, seed=12)
        assert f"seed={seen[2]}" in str(excinfo.value)

    def test_harness_errors_keep_seed_context(self):
        def refusing(s):
            raise HarnessError("player failed")

        with pytest.raises(HarnessError, match=r"seed=\d+.*player failed"):
            run_trials(refusing, trials=1, seed=3)


class TestExecutionEquivalence:
    """Same master seed => identical rows, whatever the strategy.

    Per-trial seeds are derived up front (RngHub.spawn_seeds), so the
    execution strategy must be a pure throughput decision; these tests
    pin that contract at the run_trials and run_experiment levels.
    """

    def test_run_trials_strategies_bit_identical(self):
        import numpy as np

        def trial(s):
            return float(np.random.default_rng(s).random())

        def run_batch(seeds):
            return [float(np.random.default_rng(s).random()) for s in seeds]

        trial.run_batch = run_batch
        serial = run_trials(trial, 12, seed=7)
        parallel = run_trials(trial, 12, seed=7, executor=2)
        batched = run_trials(trial, 12, seed=7, executor="batch")
        assert serial == parallel == batched

    @pytest.mark.integration
    def test_e1_rows_identical_across_strategies(self):
        # E1 exercises the full stack: run_count_step_batch under
        # "batch", fork workers under jobs=2, and the serial reference.
        serial = run_experiment("E1", trials=4, seed=9)
        parallel = run_experiment("E1", trials=4, seed=9, jobs=2)
        batched = run_experiment("E1", trials=4, seed=9, jobs="batch")
        assert serial.rows == parallel.rows
        assert serial.rows == batched.rows

    @pytest.mark.integration
    def test_e7_rows_identical_serial_vs_parallel(self):
        serial = run_experiment("E7", trials=4, seed=2)
        parallel = run_experiment("E7", trials=4, seed=2, jobs=2)
        assert serial.rows == parallel.rows


class TestResultCache:
    def make(self):
        return ExperimentTable(
            experiment_id="EX",
            title="demo",
            rows=[{"x": 1, "y": 2.5, "z": None, "w": "s"}],
            notes="notes",
        )

    def test_round_trip(self, tmp_path):
        table = self.make()
        store_table(table, trials=3, seed=1, cache_dir=tmp_path)
        loaded = load_table("EX", trials=3, seed=1, cache_dir=tmp_path)
        assert loaded is not None
        assert loaded.rows == table.rows
        assert loaded.title == table.title
        assert loaded.notes == table.notes

    def test_miss_on_different_params(self, tmp_path):
        store_table(self.make(), trials=3, seed=1, cache_dir=tmp_path)
        assert load_table("EX", trials=3, seed=2, cache_dir=tmp_path) is None
        assert load_table("EX", trials=4, seed=1, cache_dir=tmp_path) is None
        assert load_table("E9", trials=3, seed=1, cache_dir=tmp_path) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        path = store_table(self.make(), trials=1, seed=0, cache_dir=tmp_path)
        path.write_text("{not json")
        assert load_table("EX", trials=1, seed=0, cache_dir=tmp_path) is None

    def test_key_is_stable_and_param_sensitive(self):
        assert cache_key("E1", 3, 0) == cache_key("e1", 3, 0)
        assert cache_key("E1", 3, 0) != cache_key("E1", 3, 1)
        assert cache_key("E1", 3, 0) != cache_key("E2", 3, 0)

    def test_numpy_rows_serialize(self, tmp_path):
        import numpy as np

        table = ExperimentTable(
            experiment_id="EX",
            title="np",
            rows=[{"a": np.int64(3), "b": np.float64(0.5), "c": np.True_}],
        )
        store_table(table, trials=None, seed=0, cache_dir=tmp_path)
        loaded = load_table("EX", trials=None, seed=0, cache_dir=tmp_path)
        assert loaded.rows == [{"a": 3, "b": 0.5, "c": True}]

    @pytest.mark.integration
    def test_unwritable_cache_never_loses_the_table(self, tmp_path):
        # The cache is an optimization: a bad cache location must warn,
        # not discard a computed table.
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        with pytest.warns(UserWarning, match="result cache"):
            table = run_experiment(
                "E1", trials=2, seed=4, cache=True, cache_dir=blocker
            )
        assert table.rows

    @pytest.mark.integration
    def test_run_experiment_cache_hit_skips_execution(self, tmp_path):
        first = run_experiment(
            "E1", trials=2, seed=4, cache=True, cache_dir=tmp_path
        )
        entries = list(tmp_path.glob("e1-*.json"))
        assert len(entries) == 1
        again = run_experiment(
            "E1", trials=2, seed=4, cache=True, cache_dir=tmp_path
        )
        assert [list(r.items()) for r in again.rows] == [
            list(r.items()) for r in first.rows
        ]
        # The entry was reused, not rewritten into a second file.
        assert list(tmp_path.glob("e1-*.json")) == entries


class TestRegistry:
    def test_ids_cover_design_index(self):
        # E1-E10 regenerate the paper's claims; E11/E12 are extensions.
        assert experiment_ids() == [f"E{i}" for i in range(1, 13)]

    def test_unknown_id_errors(self):
        with pytest.raises(HarnessError):
            run_experiment("E99")

    def test_case_insensitive(self):
        assert "E1" in EXPERIMENTS
        table = run_experiment("e1", trials=2, seed=1)
        assert table.experiment_id == "E1"

    @pytest.mark.integration
    def test_e1_smoke(self):
        table = run_experiment("E1", trials=3, seed=2)
        assert table.rows
        assert {"rule", "m", "median_ratio"} <= set(table.rows[0])

    @pytest.mark.integration
    def test_e7_smoke(self):
        table = run_experiment("E7", trials=10, seed=3)
        # Lemma 10 rows (k <= c/2): the fresh/uniform players' medians
        # sit comfortably above the c^2/(8k) floor even at few trials.
        checked = 0
        for row in table.rows:
            floor = row["floor(c^2/8k)"]
            if floor is None or row["k"] > row["c"] / 2:
                continue
            assert row["median_rounds"] >= floor, row
            checked += 1
        assert checked > 0
