"""Unit tests for the experiment harness (tables, runner, registry)."""

import pytest

from repro.harness import (
    EXPERIMENTS,
    ExperimentTable,
    experiment_ids,
    render_markdown,
    run_experiment,
    run_trials,
    write_csv,
)
from repro.model import HarnessError


class TestRenderMarkdown:
    def test_basic_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": None}]
        md = render_markdown(rows, title="T")
        assert "### T" in md
        assert "| a | b |" in md
        assert "| 3 | - |" in md

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2}]
        md = render_markdown(rows, columns=["b", "a"])
        assert md.splitlines()[0] == "| b | a |"

    def test_union_of_row_keys(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        md = render_markdown(rows)
        assert "| a | b |" in md

    def test_rejects_empty(self):
        with pytest.raises(HarnessError):
            render_markdown([])

    def test_rejects_missing_columns(self):
        with pytest.raises(HarnessError):
            render_markdown([{"a": 1}], columns=["nope"])

    def test_float_formatting(self):
        md = render_markdown([{"x": 123456.0, "y": 0.12345, "z": True}])
        assert "123,456" in md
        assert "0.123" in md
        assert "yes" in md


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_csv(tmp_path / "deep" / "out.csv", rows)
        text = path.read_text()
        assert text.splitlines()[0] == "a,b"
        assert "2,y" in text


class TestExperimentTable:
    def make(self):
        return ExperimentTable(
            experiment_id="EX",
            title="demo",
            rows=[{"x": 1, "y": 2}],
            notes="some interpretation",
        )

    def test_to_markdown_includes_notes(self):
        md = self.make().to_markdown()
        assert "EX — demo" in md
        assert "some interpretation" in md

    def test_save_writes_both_files(self, tmp_path):
        paths = self.make().save(tmp_path)
        assert paths["markdown"].exists()
        assert paths["csv"].exists()
        assert paths["markdown"].name == "ex.md"


class TestRunTrials:
    def test_trials_get_distinct_seeds(self):
        seeds = run_trials(lambda s: s, trials=5, seed=1)
        assert len(set(seeds)) == 5

    def test_deterministic(self):
        a = run_trials(lambda s: s, trials=4, seed=9)
        b = run_trials(lambda s: s, trials=4, seed=9)
        assert a == b

    def test_label_decorrelates(self):
        a = run_trials(lambda s: s, trials=4, seed=9, label="x")
        b = run_trials(lambda s: s, trials=4, seed=9, label="y")
        assert a != b

    def test_rejects_zero_trials(self):
        with pytest.raises(HarnessError):
            run_trials(lambda s: s, trials=0, seed=0)


class TestRegistry:
    def test_ids_cover_design_index(self):
        # E1-E10 regenerate the paper's claims; E11/E12 are extensions.
        assert experiment_ids() == [f"E{i}" for i in range(1, 13)]

    def test_unknown_id_errors(self):
        with pytest.raises(HarnessError):
            run_experiment("E99")

    def test_case_insensitive(self):
        assert "E1" in EXPERIMENTS
        table = run_experiment("e1", trials=2, seed=1)
        assert table.experiment_id == "E1"

    @pytest.mark.integration
    def test_e1_smoke(self):
        table = run_experiment("E1", trials=3, seed=2)
        assert table.rows
        assert {"rule", "m", "median_ratio"} <= set(table.rows[0])

    @pytest.mark.integration
    def test_e7_smoke(self):
        table = run_experiment("E7", trials=10, seed=3)
        # Lemma 10 rows (k <= c/2): the fresh/uniform players' medians
        # sit comfortably above the c^2/(8k) floor even at few trials.
        checked = 0
        for row in table.rows:
            floor = row["floor(c^2/8k)"]
            if floor is None or row["k"] > row["c"] / 2:
                continue
            assert row["median_rounds"] >= floor, row
            checked += 1
        assert checked > 0
