"""Unit tests for the table-rendering helpers (harness/tables.py)."""

import csv
import math

import pytest

from repro.harness.tables import format_value, render_markdown, write_csv
from repro.model.errors import HarnessError


class TestFormatValue:
    def test_booleans_render_as_yes_no(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_none_renders_as_dash(self):
        assert format_value(None) == "-"

    def test_zero_float_is_bare_zero(self):
        assert format_value(0.0) == "0"
        assert format_value(-0.0) == "0"

    def test_small_floats_get_three_significant_digits(self):
        assert format_value(0.123456) == "0.123"
        assert format_value(1.0 / 3.0) == "0.333"
        assert format_value(2.5) == "2.5"

    def test_large_floats_get_thousands_separators(self):
        assert format_value(1234.5) == "1,234"
        assert format_value(1_000_000.0) == "1,000,000"

    def test_negative_large_floats(self):
        assert format_value(-12345.6) == "-12,346"

    def test_boundary_just_below_thousand_stays_significant(self):
        assert format_value(999.9) == "1e+03"
        assert format_value(999.0) == "999"

    def test_special_floats_do_not_crash(self):
        assert format_value(math.inf) == "inf"
        assert format_value(-math.inf) == "-inf"
        assert format_value(math.nan) == "nan"

    def test_ints_and_strings_pass_through(self):
        assert format_value(42) == "42"
        assert format_value("weighted") == "weighted"

    def test_bool_wins_over_numeric_formatting(self):
        # bool is an int subclass; it must not hit the number paths.
        assert format_value(True) != "1"


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        rows = [
            {"n": 4, "rate": 0.5, "ok": True},
            {"n": 8, "rate": 0.25, "ok": False},
        ]
        path = write_csv(tmp_path / "out.csv", rows)
        with path.open(newline="") as handle:
            back = list(csv.DictReader(handle))
        assert [r["n"] for r in back] == ["4", "8"]
        assert [r["rate"] for r in back] == ["0.5", "0.25"]
        assert [r["ok"] for r in back] == ["True", "False"]

    def test_creates_parent_directories(self, tmp_path):
        path = write_csv(
            tmp_path / "deep" / "nested" / "out.csv", [{"a": 1}]
        )
        assert path.exists()

    def test_explicit_columns_select_and_order(self, tmp_path):
        rows = [{"a": 1, "b": 2, "c": 3}]
        path = write_csv(tmp_path / "out.csv", rows, columns=["c", "a"])
        header = path.read_text().splitlines()[0]
        assert header == "c,a"

    def test_missing_explicit_column_raises(self, tmp_path):
        with pytest.raises(HarnessError, match="columns not in rows"):
            write_csv(
                tmp_path / "out.csv", [{"a": 1}], columns=["a", "nope"]
            )

    def test_zero_rows_raise(self, tmp_path):
        with pytest.raises(HarnessError, match="zero rows"):
            write_csv(tmp_path / "out.csv", [])

    def test_ragged_rows_fill_missing_cells(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = write_csv(tmp_path / "out.csv", rows)
        with path.open(newline="") as handle:
            back = list(csv.DictReader(handle))
        assert back[0]["b"] == ""
        assert back[1]["b"] == "3"


class TestRenderMarkdown:
    def test_column_union_preserves_first_seen_order(self):
        rows = [{"a": 1, "b": 2}, {"b": 3, "c": 4}]
        out = render_markdown(rows)
        assert out.splitlines()[0] == "| a | b | c |"

    def test_missing_cells_render_as_dash(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        out = render_markdown(rows)
        assert out.splitlines()[2] == "| 1 | - |"

    def test_title_becomes_heading(self):
        out = render_markdown([{"a": 1}], title="T")
        assert out.startswith("### T\n")

    def test_missing_explicit_column_raises(self):
        with pytest.raises(HarnessError, match="columns not in rows"):
            render_markdown([{"a": 1}], columns=["z"])

    def test_zero_rows_raise(self):
        with pytest.raises(HarnessError, match="zero rows"):
            render_markdown([])
