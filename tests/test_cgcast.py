"""Unit and integration tests for CGCAST (Theorem 9)."""

import numpy as np
import pytest

from repro.core import CGCast
from repro.model import ProtocolError


class TestCGCast:
    def test_full_broadcast_on_path(self, small_path_net):
        result = CGCast(small_path_net, source=0, seed=1).run()
        assert result.success
        assert result.coloring_valid

    def test_full_broadcast_on_clique_chain(self, clique_chain_net):
        result = CGCast(clique_chain_net, source=0, seed=2).run()
        assert result.success

    def test_full_broadcast_from_interior_source(self, small_path_net):
        result = CGCast(small_path_net, source=4, seed=3).run()
        assert result.success
        assert result.informed_slot[4] == 0

    def test_ledger_has_all_phases(self, small_path_net):
        result = CGCast(small_path_net, source=0, seed=4).run()
        ledger = result.ledger.as_dict()
        assert ledger.get("discovery.part1", 0) > 0
        assert ledger.get("discovery.part2", 0) > 0
        assert ledger.get("exchange", 0) > 0
        assert ledger.get("coloring", 0) > 0
        assert ledger.get("dissemination", 0) > 0
        assert result.total_slots == sum(ledger.values())

    def test_informed_slots_offset_past_setup(self, small_path_net):
        result = CGCast(small_path_net, source=0, seed=5).run()
        setup = result.total_slots - result.ledger.get("dissemination")
        others = np.delete(result.informed_slot, 0)
        assert (others >= setup).all()
        assert result.completion_slot == int(result.informed_slot.max())

    def test_deterministic(self, small_path_net):
        r1 = CGCast(small_path_net, source=0, seed=6).run()
        r2 = CGCast(small_path_net, source=0, seed=6).run()
        assert np.array_equal(r1.informed_slot, r2.informed_slot)
        assert r1.ledger.as_dict() == r2.ledger.as_dict()

    def test_rejects_bad_source(self, small_path_net):
        with pytest.raises(ProtocolError):
            CGCast(small_path_net, source=99)

    def test_rejects_bad_mode(self, small_path_net):
        with pytest.raises(ProtocolError):
            CGCast(small_path_net, exchange_mode="psychic")

    @pytest.mark.integration
    def test_simulated_exchange_mode(self, small_path_net):
        """Slot-level exchanges deliver the same pipeline outcome."""
        result = CGCast(
            small_path_net, source=0, seed=7, exchange_mode="simulated"
        ).run()
        assert result.success
        assert result.coloring_valid
        # Simulated exchanges cost real slots too.
        assert result.ledger.get("exchange") > 0

    @pytest.mark.integration
    def test_star_broadcast(self, star_net):
        result = CGCast(star_net, source=1, seed=8).run()
        assert result.success


class TestAssembleEdgeColors:
    """Announcement-drop semantics of the color-assembly step.

    An edge participates in dissemination iff the far endpoint received
    the simulator's announcement — membership in its received payload
    dict, regardless of the announced value. Oracle delivery is
    reliable, so assembly is then the identity on the simulator-held
    colors; in simulated mode a missed announcement drops the edge.
    """

    def test_reliable_delivery_keeps_every_edge(self):
        colors = {(0, 1): 0, (1, 2): 1}
        announced = [
            {},
            {0: {(0, 1): 0}},  # node 1 heard 0's announcement
            {1: {(1, 2): 1}},  # node 2 heard 1's announcement
        ]
        assert (
            CGCast._assemble_edge_colors(colors, announced, 3) == colors
        )

    def test_missed_announcement_drops_the_edge(self):
        colors = {(0, 1): 0, (1, 2): 1}
        announced = [{}, {0: {(0, 1): 0}}, {}]  # node 2 heard nothing
        assert CGCast._assemble_edge_colors(colors, announced, 3) == {
            (0, 1): 0
        }

    def test_announcement_without_this_edge_drops_it(self):
        # The far endpoint heard *something* from the simulator, but not
        # this edge's announcement: the edge still drops.
        colors = {(0, 1): 0}
        announced = [{}, {0: {(0, 2): 4}}]
        assert CGCast._assemble_edge_colors(colors, announced, 2) == {}

    def test_oracle_assembly_equals_simulator_colors(self, small_path_net):
        # Pin the oracle-mode invariant end to end: reliable delivery
        # makes the assembled coloring exactly the Luby output.
        result = CGCast(small_path_net, source=0, seed=9).run()
        assert result.edge_colors == result.coloring.colors
