"""Unit tests for the declarative scenario subsystem."""

import json

import pytest

from repro.harness.cache import cache_key
from repro.model import HarnessError
from repro.scenarios import (
    AssignmentSpec,
    InterferenceSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    apply_overrides,
    get_scenario,
    load_scenario_file,
    run_scenario,
    scenario_ids,
    spec_digest,
    spec_from_dict,
    spec_to_dict,
)
from repro.scenarios.spec import resolve


def tiny_count_spec(**kwargs):
    base = dict(
        name="tiny-count",
        title="tiny",
        trials=3,
        sweep=SweepSpec(axes={"m": [1, 2]}),
        protocol=ProtocolSpec(
            "count", {"m": "$m", "max_count": 4, "log_n": 3}
        ),
    )
    base.update(kwargs)
    return ScenarioSpec(**base)


def tiny_cseek_spec(**kwargs):
    base = dict(
        name="tiny-cseek",
        title="tiny cseek",
        trials=2,
        sweep=SweepSpec(axes={"activity": [0.0, 0.7]}),
        topology=TopologySpec("star", {"n": 5}),
        assignment=AssignmentSpec(kind="global_core", c=6, k=2),
        interference=InterferenceSpec(
            activity="$activity", mean_dwell=4.0
        ),
        protocol=ProtocolSpec("cseek"),
    )
    base.update(kwargs)
    return ScenarioSpec(**base)


class TestSweepSpec:
    def test_product_expansion_order(self):
        sweep = SweepSpec(axes={"a": [1, 2], "b": ["x", "y"]})
        assert sweep.points() == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_zip_expansion(self):
        sweep = SweepSpec(axes={"a": [1, 2], "b": [3, 4]}, mode="zip")
        assert sweep.points() == [{"a": 1, "b": 3}, {"a": 2, "b": 4}]

    def test_empty_axes_yield_one_point(self):
        assert SweepSpec().points() == [{}]

    def test_rejects_bad_mode_and_ragged_zip(self):
        with pytest.raises(HarnessError):
            SweepSpec(axes={"a": [1]}, mode="shuffle")
        with pytest.raises(HarnessError):
            SweepSpec(axes={"a": [1], "b": [1, 2]}, mode="zip")

    def test_rejects_empty_axis(self):
        with pytest.raises(HarnessError):
            SweepSpec(axes={"a": []})


class TestResolve:
    def test_reference_and_passthrough(self):
        scope = {"m": 4, "seed": 7}
        assert resolve("$m", scope) == 4
        assert resolve(3.5, scope) == 3.5
        assert resolve("plain", scope) == "plain"

    def test_nested_containers(self):
        scope = {"x": 1}
        assert resolve({"a": ["$x", 2]}, scope) == {"a": [1, 2]}

    def test_unknown_reference_raises(self):
        with pytest.raises(HarnessError, match="unknown scenario ref"):
            resolve("$nope", {"m": 1})


class TestExprReferences:
    SCOPE = {"num_channels": 8, "seed": 3, "pseed": 5}

    def test_arithmetic_over_scope(self):
        assert resolve({"$expr": "num_channels * 2"}, self.SCOPE) == 16
        assert resolve({"$expr": "num_channels + seed"}, self.SCOPE) == 11
        assert resolve({"$expr": "num_channels // 3"}, self.SCOPE) == 2
        assert resolve({"$expr": "2 ** 3 - 1"}, self.SCOPE) == 7
        assert resolve({"$expr": "-seed"}, self.SCOPE) == -3
        assert resolve(
            {"$expr": "(num_channels + 1) % 4"}, self.SCOPE
        ) == 1

    def test_whitelisted_calls(self):
        assert resolve({"$expr": "max(1, seed - 10)"}, self.SCOPE) == 1
        assert resolve({"$expr": "int(seed / 2)"}, self.SCOPE) == 1
        assert resolve(
            {"$expr": "min(num_channels, 4)"}, self.SCOPE
        ) == 4

    def test_nested_inside_containers(self):
        value = {"params": {"c": {"$expr": "num_channels * 2"}, "k": 1}}
        assert resolve(value, self.SCOPE) == {
            "params": {"c": 16, "k": 1}
        }

    def test_unknown_name_lists_scope(self):
        with pytest.raises(HarnessError, match="unknown name"):
            resolve({"$expr": "bogus + 1"}, self.SCOPE)

    def test_unsafe_syntax_rejected(self):
        for bad in (
            "__import__('os').system('true')",
            "seed.denominator",
            "'a' * 3",
            "[1, 2]",
            "seed if seed else 0",
            "lambda: 1",
            "min(1, 2, key=abs)",
        ):
            with pytest.raises(HarnessError):
                resolve({"$expr": bad}, self.SCOPE)

    def test_bad_values_rejected(self):
        with pytest.raises(HarnessError, match="invalid \\$expr"):
            resolve({"$expr": "1 +"}, self.SCOPE)
        with pytest.raises(HarnessError, match="expression string"):
            resolve({"$expr": 7}, self.SCOPE)
        with pytest.raises(HarnessError, match="failed at this sweep"):
            resolve({"$expr": "1 / (seed - 3)"}, self.SCOPE)

    def test_runtime_arithmetic_errors_become_harness_errors(self):
        # Float overflow and non-numeric axis values are spec errors,
        # not tracebacks.
        with pytest.raises(HarnessError, match="failed at this sweep"):
            resolve({"$expr": "1e300 ** 2"}, self.SCOPE)
        with pytest.raises(HarnessError, match="failed at this sweep"):
            resolve({"$expr": "int(model)"}, {"model": "markov"})

    def test_unbounded_exponents_rejected(self):
        # 9**9**9**9 would materialize an astronomically large int
        # before any other guard could fire; the exponent cap rejects
        # it without evaluating.
        with pytest.raises(HarnessError, match="exponents are limited"):
            resolve({"$expr": "9 ** 9 ** 9 ** 9"}, self.SCOPE)
        with pytest.raises(HarnessError, match="exponents are limited"):
            resolve({"$expr": "2 ** 65"}, self.SCOPE)
        assert resolve({"$expr": "2 ** 64"}, self.SCOPE) == 2**64
        assert resolve({"$expr": "2 ** -2"}, self.SCOPE) == 0.25

    def test_expr_with_extra_keys_rejected(self):
        # A stray key next to $expr must fail loudly, not pass the
        # unevaluated dict downstream.
        with pytest.raises(HarnessError, match="only the '\\$expr' key"):
            resolve(
                {"$expr": "seed * 2", "comment": "x"}, self.SCOPE
            )

    def test_expr_drives_a_real_sweep(self):
        # Derived parameter end-to-end: max_count follows the m axis.
        spec = tiny_count_spec(
            protocol=ProtocolSpec(
                "count",
                {
                    "m": "$m",
                    "max_count": {"$expr": "m * 2"},
                    "log_n": 3,
                },
            )
        )
        table = run_scenario(spec, seed=1)
        assert len(table.rows) == 2


class TestSpecValidation:
    def test_rejects_unknown_kinds(self):
        with pytest.raises(HarnessError):
            TopologySpec("moebius")
        with pytest.raises(HarnessError):
            AssignmentSpec(kind="psychic")
        with pytest.raises(HarnessError):
            ProtocolSpec("carrier-pigeon")

    def test_protocol_required_without_plan(self):
        with pytest.raises(HarnessError, match="protocol"):
            ScenarioSpec(name="x", title="x")

    def test_topology_required_for_network_protocols(self):
        with pytest.raises(HarnessError, match="topology"):
            ScenarioSpec(
                name="x", title="x", protocol=ProtocolSpec("cseek")
            )

    def test_count_needs_no_topology(self):
        tiny_count_spec()  # must not raise


class TestSerialization:
    def test_round_trip_preserves_digest(self):
        spec = tiny_cseek_spec(metrics=("success",))
        payload = json.loads(json.dumps(spec_to_dict(spec)))
        back = spec_from_dict(payload)
        assert spec_digest(back) == spec_digest(spec)
        assert back.sweep.axes == spec.sweep.axes
        assert back.protocol.kind == "cseek"

    def test_unknown_keys_rejected(self):
        with pytest.raises(HarnessError, match="unknown scenario keys"):
            spec_from_dict({"name": "x", "protocol": {"kind": "cseek"},
                            "toplogy": {}})
        with pytest.raises(HarnessError, match="unknown topology keys"):
            spec_from_dict(
                {
                    "name": "x",
                    "protocol": {"kind": "count", "params": {"m": 1}},
                    "topology": {"kind": "star", "prams": {}},
                }
            )

    def test_plan_based_specs_do_not_serialize(self):
        spec = get_scenario("E1")
        with pytest.raises(HarnessError, match="code-defined"):
            spec_to_dict(spec)

    def test_scenario_file_loading(self, tmp_path):
        spec = tiny_count_spec()
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(spec_to_dict(spec)))
        loaded = load_scenario_file(path)
        assert loaded.name == spec.name
        assert spec_digest(loaded) == spec_digest(spec)

    def test_bad_scenario_file_errors(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(HarnessError, match="not valid JSON"):
            load_scenario_file(path)
        with pytest.raises(HarnessError, match="cannot read"):
            load_scenario_file(tmp_path / "missing.json")


class TestOverrides:
    def test_override_changes_value_and_digest(self):
        spec = tiny_count_spec()
        new = apply_overrides(
            spec, {"trials": "9", "sweep.axes.m": "[4]"}
        )
        assert new.trials == 9
        assert new.sweep.axes["m"] == [4]
        assert spec_digest(new) != spec_digest(spec)

    def test_bare_string_values_pass_through(self):
        spec = tiny_cseek_spec()
        new = apply_overrides(
            spec, {"protocol.params.part2_listener": "uniform"}
        )
        assert new.protocol.params["part2_listener"] == "uniform"

    def test_plan_based_accepts_data_field_paths(self):
        spec = get_scenario("E1")
        assert apply_overrides(spec, {"trials": "2"}).trials == 2
        new = apply_overrides(
            spec,
            {
                "trials": "3",
                "experiment_id": "E1-variant",
                "title": "retitled",
                "notes": "custom notes",
                "tags": '["paper", "variant"]',
            },
        )
        assert new.trials == 3
        assert new.table_id == "E1-variant"
        assert new.title == "retitled"
        assert new.notes == "custom notes"
        assert new.tags == ("paper", "variant")
        # The original registered spec is untouched.
        assert spec.table_id == "E1"
        # Overridden data fields reach the plan-based digest, so cache
        # entries never collide.
        assert spec_digest(new) != spec_digest(spec)

    def test_plan_based_rejects_plan_owned_paths(self):
        spec = get_scenario("E1")
        for path in ("assignment.c", "sweep.axes.m", "protocol.params.x"):
            with pytest.raises(HarnessError, match="code-defined"):
                apply_overrides(spec, {path: "4"})
        # The error names what plan-based specs do accept.
        with pytest.raises(HarnessError, match="trials"):
            apply_overrides(spec, {"topology.kind": "star"})

    def test_non_numeric_trials_fail_cleanly(self):
        # Both override paths (plan-based and declarative) must surface
        # garbage trials as a HarnessError, not a bare ValueError.
        with pytest.raises(HarnessError, match="trials must be"):
            apply_overrides(get_scenario("E1"), {"trials": "abc"})
        with pytest.raises(HarnessError, match="trials must be"):
            apply_overrides(tiny_count_spec(), {"trials": "abc"})
        with pytest.raises(HarnessError, match="trials must be"):
            apply_overrides(tiny_count_spec(), {"trials": "[2]"})

    def test_bad_path_rejected(self):
        spec = tiny_count_spec()
        with pytest.raises(HarnessError, match="unknown scenario keys"):
            apply_overrides(spec, {"speling": "1"})


class TestSpecDigest:
    def test_callable_notes_keep_parameters_in_the_digest(self):
        # A declarative spec with computed notes must still digest its
        # parameters — otherwise differently-swept workloads would
        # collide in the result cache.
        def notes(rows, ctx):
            return "computed"

        a = tiny_count_spec(notes=notes)
        b = tiny_count_spec(
            notes=notes, sweep=SweepSpec(axes={"m": [4]})
        )
        assert spec_digest(a) != spec_digest(b)

    def test_sweep_change_changes_digest(self):
        a = tiny_count_spec()
        b = tiny_count_spec(sweep=SweepSpec(axes={"m": [1, 2, 4]}))
        assert spec_digest(a) != spec_digest(b)


class TestRegistry:
    def test_paper_and_stock_scenarios_registered(self):
        ids = scenario_ids()
        assert [f"E{i}" for i in range(1, 13)] == ids[:12]
        assert len(ids) >= 15  # >= 3 stock scenarios beyond the paper
        stock = [
            s for s in ids[12:] if "paper" not in get_scenario(s).tags
        ]
        assert len(stock) >= 3

    def test_lookup_is_case_insensitive(self):
        assert get_scenario("PU-GEO-CSEEK").name == "pu-geo-cseek"

    def test_unknown_scenario_errors(self):
        with pytest.raises(HarnessError, match="unknown scenario"):
            get_scenario("does-not-exist")


class TestDeclarativeExecution:
    def test_count_scenario_rows(self):
        table = run_scenario(tiny_count_spec(), seed=3)
        assert len(table.rows) == 2
        assert set(table.rows[0]) == {
            "m", "median_ratio", "band_rate", "slots",
        }
        assert table.rows[0]["m"] == 1

    def test_executors_produce_identical_rows(self):
        spec = tiny_count_spec()
        serial = run_scenario(spec, seed=5)
        pooled = run_scenario(spec, seed=5, jobs=2)
        batched = run_scenario(spec, seed=5, jobs="batch")
        assert serial.rows == pooled.rows == batched.rows

    @pytest.mark.integration
    def test_cseek_with_interference_across_executors(self):
        spec = tiny_cseek_spec()
        serial = run_scenario(spec, seed=2)
        batched = run_scenario(spec, seed=2, jobs="batch")
        assert serial.rows == batched.rows
        assert {"success", "discovered_fraction"} <= set(serial.rows[0])

    def test_interference_model_axis_produces_different_rows(self):
        # The traffic process itself as a sweep axis: at identical
        # activity the markov and poisson rows must come from different
        # occupancy streams (and markov should lose at least as much).
        spec = tiny_cseek_spec(
            sweep=SweepSpec(
                axes={"model": ["markov", "poisson"], "activity": [0.8]}
            ),
            interference=InterferenceSpec(
                model="$model", activity="$activity", mean_dwell=100.0
            ),
        )
        table = run_scenario(spec, seed=2)
        assert [r["model"] for r in table.rows] == ["markov", "poisson"]
        markov, poisson = table.rows
        assert markov["discovered_fraction"] <= poisson[
            "discovered_fraction"
        ]

    def test_static_interference_model(self):
        spec = tiny_cseek_spec(
            sweep=None,
            interference=InterferenceSpec(
                model="static", blocked=list(range(64))
            ),
        )
        table = run_scenario(spec, seed=1)
        # Every global channel blocked: discovery cannot succeed.
        assert table.rows[0]["success"] == 0.0
        assert table.rows[0]["discovered_fraction"] == 0.0

    def test_unknown_interference_model_rejected(self):
        with pytest.raises(HarnessError, match="unknown interference"):
            InterferenceSpec(model="fractal")

    def test_interference_model_round_trips_through_json(self):
        spec = tiny_cseek_spec(
            interference=InterferenceSpec(
                model="poisson", activity="$activity"
            )
        )
        payload = json.loads(json.dumps(spec_to_dict(spec)))
        assert payload["interference"]["model"] == "poisson"
        back = spec_from_dict(payload)
        assert back.interference.model == "poisson"
        assert spec_digest(back) == spec_digest(spec)

    @pytest.mark.integration
    def test_poisson_scenario_file_runs_via_batch(self, tmp_path):
        # The acceptance path: a JSON scenario file selecting
        # "model": "poisson", end-to-end through jobs="batch",
        # row-identical to the serial executor.
        spec = tiny_cseek_spec(
            interference=InterferenceSpec(
                model="poisson", activity="$activity"
            )
        )
        path = tmp_path / "poisson.json"
        path.write_text(json.dumps(spec_to_dict(spec)))
        batched = run_scenario(str(path), seed=3, jobs="batch")
        serial = run_scenario(str(path), seed=3)
        assert batched.rows == serial.rows
        assert len(batched.rows) == 2

    def test_interference_seed_offset_resolves_references(self):
        spec = tiny_count_spec(
            sweep=SweepSpec(axes={"m": [1], "off": [500, 900]}),
            interference=InterferenceSpec(
                activity=0.4, mean_dwell=4.0, seed_offset="$off"
            ),
        )
        table = run_scenario(spec, seed=6)
        assert len(table.rows) == 2  # both offsets lower and run

    def test_metrics_filter_selects_columns(self):
        spec = tiny_count_spec(metrics=("median_ratio",))
        table = run_scenario(spec, seed=1)
        assert set(table.rows[0]) == {"m", "median_ratio"}

    def test_unknown_metric_errors(self):
        spec = tiny_count_spec(metrics=("nope",))
        with pytest.raises(HarnessError, match="unknown metrics"):
            run_scenario(spec, seed=1)

    def test_count_requires_m(self):
        spec = ScenarioSpec(
            name="bad-count",
            title="bad",
            protocol=ProtocolSpec("count", {"max_count": 4}),
        )
        with pytest.raises(HarnessError, match="'m'"):
            run_scenario(spec, seed=0)

    @pytest.mark.integration
    def test_ckseek_scenario_reports_delta_khat(self):
        spec = ScenarioSpec(
            name="tiny-ckseek",
            title="tiny ckseek",
            trials=2,
            topology=TopologySpec(
                "random_regular", {"n": 10, "d": 3, "seed": "$seed"}
            ),
            assignment=AssignmentSpec(
                kind="heterogeneous", c=12, k=1, kmax=2, seed="$seed"
            ),
            protocol=ProtocolSpec("ckseek", {"khat": 2}),
        )
        table = run_scenario(spec, seed=4)
        assert table.rows[0]["khat"] == 2
        assert "delta_khat" in table.rows[0]

    @pytest.mark.integration
    def test_naive_protocols_run(self):
        for kind in ("naive_discovery", "naive_broadcast"):
            spec = ScenarioSpec(
                name=f"tiny-{kind}",
                title="tiny",
                trials=2,
                topology=TopologySpec("path", {"n": 4}),
                assignment=AssignmentSpec(
                    kind="exact_uniform", c=6, k=2
                ),
                protocol=ProtocolSpec(kind),
            )
            table = run_scenario(spec, seed=1)
            assert table.rows and "success" in table.rows[0]


class TestScenarioCache:
    def test_cache_key_extra_separates_entries(self):
        base = cache_key("X", 3, 0)
        assert base == cache_key("X", 3, 0)  # stable
        assert base == cache_key("X", 3, 0, extra=None)  # back-compat
        with_extra = cache_key("X", 3, 0, extra={"digest": "abc"})
        assert with_extra != base
        assert with_extra != cache_key("X", 3, 0, extra={"digest": "d"})

    def test_override_runs_never_collide_with_defaults(self, tmp_path):
        spec = tiny_count_spec()
        default = run_scenario(
            spec, seed=2, cache=True, cache_dir=tmp_path
        )
        overridden = run_scenario(
            spec,
            seed=2,
            overrides={"sweep.axes.m": "[2]"},
            cache=True,
            cache_dir=tmp_path,
        )
        assert len(default.rows) == 2
        assert len(overridden.rows) == 1
        assert len(list(tmp_path.glob("*.json"))) == 2
        # Replays hit their own entries.
        again = run_scenario(
            spec,
            seed=2,
            overrides={"sweep.axes.m": "[2]"},
            cache=True,
            cache_dir=tmp_path,
        )
        assert again.rows == overridden.rows
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_scenario_names_make_safe_cache_files(self, tmp_path):
        spec = tiny_count_spec(name="weird name/with:stuff")
        run_scenario(spec, seed=0, cache=True, cache_dir=tmp_path)
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        assert "/" not in entries[0].name.replace(tmp_path.name, "")


class TestRandomSubsetsAssignment:
    """The white-space builder as a first-class AssignmentSpec mode."""

    def whitespace_spec(self, **kwargs):
        base = dict(
            name="tiny-whitespace",
            title="tiny whitespace",
            trials=2,
            sweep=SweepSpec(axes={"pool_size": [10, 14]}),
            assignment=AssignmentSpec(
                kind="random_subsets",
                n=8,
                c=5,
                k=2,
                pool_size="$pool_size",
            ),
            protocol=ProtocolSpec("cseek"),
        )
        base.update(kwargs)
        return ScenarioSpec(**base)

    def test_requires_n_and_pool_size(self):
        with pytest.raises(HarnessError, match="pool_size"):
            AssignmentSpec(kind="random_subsets", n=8)
        with pytest.raises(HarnessError, match="pool_size"):
            AssignmentSpec(kind="random_subsets", pool_size=12)

    def test_other_kinds_reject_whitespace_params(self):
        with pytest.raises(HarnessError, match="random_subsets"):
            AssignmentSpec(kind="global_core", n=8)
        with pytest.raises(HarnessError, match="random_subsets"):
            AssignmentSpec(kind="exact_uniform", pool_size=12)

    def test_topology_conflicts_with_induced_graph(self):
        with pytest.raises(HarnessError, match="induces"):
            self.whitespace_spec(
                topology=TopologySpec("star", {"n": 8})
            )

    def test_satisfies_topology_requirement(self):
        self.whitespace_spec()  # must not raise

    def test_json_round_trip_and_digest(self):
        spec = self.whitespace_spec()
        payload = json.loads(json.dumps(spec_to_dict(spec)))
        back = spec_from_dict(payload)
        assert back.assignment.kind == "random_subsets"
        assert back.assignment.pool_size == "$pool_size"
        assert spec_digest(back) == spec_digest(spec)

    def test_digest_covers_whitespace_params(self):
        a = self.whitespace_spec()
        b = self.whitespace_spec(
            assignment=AssignmentSpec(
                kind="random_subsets", n=9, c=5, k=2,
                pool_size="$pool_size",
            )
        )
        assert spec_digest(a) != spec_digest(b)

    @pytest.mark.integration
    def test_pool_size_sweeps_and_rows_are_deterministic(self):
        spec = self.whitespace_spec()
        table = run_scenario(spec, seed=0, jobs="batch")
        assert [r["pool_size"] for r in table.rows] == [10, 14]
        again = run_scenario(spec, seed=0)
        assert again.rows == table.rows

    def test_stock_whitespace_scenario_registered(self):
        spec = get_scenario("whitespace-cseek")
        assert spec.assignment.kind == "random_subsets"
        assert spec.is_declarative
        spec_to_dict(spec)  # serializable like every stock scenario


class TestVectorActivityInDsl:
    """List-valued interference.activity lowers to per-channel traffic."""

    def vector_spec(self):
        return ScenarioSpec(
            name="tiny-vector-count",
            title="tiny",
            trials=3,
            protocol=ProtocolSpec(
                "count", {"m": 2, "max_count": 4, "log_n": 3}
            ),
            interference=InterferenceSpec(
                model="poisson", activity=[0.5]
            ),
        )

    def test_vector_activity_runs(self):
        table = run_scenario(self.vector_spec(), seed=0)
        assert len(table.rows) == 1

    def test_vector_digest_differs_from_scalar(self):
        vector = self.vector_spec()
        scalar = ScenarioSpec(
            name="tiny-vector-count",
            title="tiny",
            trials=3,
            protocol=ProtocolSpec(
                "count", {"m": 2, "max_count": 4, "log_n": 3}
            ),
            interference=InterferenceSpec(
                model="poisson", activity=0.5
            ),
        )
        assert spec_digest(vector) != spec_digest(scalar)

    def test_whitespace_rejects_heterogeneous_params(self):
        with pytest.raises(HarnessError, match="kmax"):
            AssignmentSpec(
                kind="random_subsets", n=8, pool_size=12, kmax=4
            )
        with pytest.raises(HarnessError, match="high_fraction"):
            AssignmentSpec(
                kind="random_subsets", n=8, pool_size=12,
                high_fraction=0.9,
            )

    def test_other_kinds_reject_stray_max_tries(self):
        with pytest.raises(HarnessError, match="max_tries"):
            AssignmentSpec(kind="exact_uniform", max_tries=5)
