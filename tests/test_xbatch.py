"""Cross-point lockstep batching (the ``jobs="xbatch"`` contract).

The invariant everywhere: grouping compatible sweep points into one
lockstep execution is a pure throughput decision — every trial's result
stays bit-identical to the per-point ``CSeekBatch``/``run_batch`` path,
for plain, jammed, ragged-trial-count and mixed-shape workloads, and
scenario rows are byte-identical under every ``jobs`` value.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CSeek,
    CSeekBatch,
    CSeekXBatch,
    CountXBatch,
    LockstepMember,
    ProtocolConstants,
    lockstep_signature,
    run_cseek_lockstep,
    run_group,
)
from repro.graphs import build_network, cycle, path
from repro.harness.executor import (
    StreamingExecutor,
    XBatchExecutor,
    get_executor,
)
from repro.model import ProtocolError
from repro.scenarios import (
    InterferenceSpec,
    PrecisionSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    paper_spec,
    run_scenario_spec,
    stream_scenario_spec,
)
from repro.scenarios.spec import AssignmentSpec
from repro.sim import PrimaryUserTraffic
from repro.sim.engine import resolve_step, resolve_step_batch
from repro.sim.rng import RngHub

from tests.test_cseek_batch import assert_results_equal

SEEDS_A = [3, 17, 99]
SEEDS_B = [7, 41]  # ragged on purpose


@pytest.fixture(scope="module")
def path_net():
    return build_network(path(8), c=6, k=2, seed=3)


@pytest.fixture(scope="module")
def cycle_net():
    """Same (n, c) as ``path_net`` — lockstep-compatible, different graph."""
    return build_network(cycle(8), c=6, k=2, seed=5)


class TestLockstepEquivalence:
    def test_ragged_two_net_group_matches_per_point(
        self, path_net, cycle_net
    ):
        got = run_cseek_lockstep(
            [
                LockstepMember(CSeekBatch(path_net), SEEDS_A),
                LockstepMember(CSeekBatch(cycle_net), SEEDS_B),
            ]
        )
        ref_a = CSeekBatch(path_net).run(SEEDS_A)
        ref_b = CSeekBatch(cycle_net).run(SEEDS_B)
        for g, r in zip(got[0], ref_a):
            assert_results_equal(g, r)
        for g, r in zip(got[1], ref_b):
            assert_results_equal(g, r)

    def test_jammed_and_clear_members_stay_independent(
        self, path_net, cycle_net
    ):
        channels = sorted(path_net.assignment.universe())

        def factory(s: int) -> PrimaryUserTraffic:
            return PrimaryUserTraffic(
                channels, activity=0.5, mean_dwell=6.0, seed=s + 1000
            )

        got = run_cseek_lockstep(
            [
                LockstepMember(
                    CSeekBatch(path_net, jammer_factory=factory), SEEDS_A
                ),
                LockstepMember(CSeekBatch(cycle_net), SEEDS_B),
            ]
        )
        for g, s in zip(got[0], SEEDS_A):
            ref = CSeek(path_net, seed=s, jammer=factory(s)).run()
            assert_results_equal(g, ref)
        for g, r in zip(got[1], CSeekBatch(cycle_net).run(SEEDS_B)):
            assert_results_equal(g, r)

    def test_single_member_group_equals_batch(self, path_net):
        got = run_cseek_lockstep(
            [LockstepMember(CSeekBatch(path_net), SEEDS_A)]
        )
        for g, r in zip(got[0], CSeekBatch(path_net).run(SEEDS_A)):
            assert_results_equal(g, r)

    def test_incompatible_shapes_rejected(self, path_net):
        other = build_network(path(6), c=6, k=2, seed=3)
        assert lockstep_signature(CSeekBatch(path_net)) != (
            lockstep_signature(CSeekBatch(other))
        )
        with pytest.raises(ProtocolError):
            run_cseek_lockstep(
                [
                    LockstepMember(CSeekBatch(path_net), SEEDS_A),
                    LockstepMember(CSeekBatch(other), SEEDS_B),
                ]
            )

    def test_empty_member_seeds_rejected(self, path_net):
        with pytest.raises(ProtocolError):
            run_cseek_lockstep(
                [LockstepMember(CSeekBatch(path_net), [])]
            )


class TestRunGroup:
    def _descriptors(self, path_net, cycle_net):
        def make_a(s, net=path_net):
            return CSeek(net, seed=s)

        def make_b(s, net=cycle_net):
            return CSeek(net, seed=s)

        post = lambda r: r.trace.first_heard  # noqa: E731
        return (
            CSeekXBatch(make_protocol=make_a, postprocess=post),
            CSeekXBatch(make_protocol=make_b, postprocess=post),
        )

    def test_chunked_groups_match_unchunked(self, path_net, cycle_net):
        xa, xb = self._descriptors(path_net, cycle_net)
        whole = run_group([xa, xb], [SEEDS_A, SEEDS_B])
        for cap in (1, 2, 4):
            chunked = run_group([xa, xb], [SEEDS_A, SEEDS_B], cap)
            assert chunked == whole

    def test_mixed_kinds_rejected(self, path_net):
        xa, _ = self._descriptors(path_net, path_net)
        xc = CountXBatch(
            adj=np.ones((3, 3), dtype=bool),
            channels=np.zeros(3, dtype=np.int64),
            tx_role=np.ones(3, dtype=bool),
            max_count=2,
            log_n=2,
            constants=ProtocolConstants(),
            postprocess=lambda e: e,
        )
        with pytest.raises(ProtocolError):
            run_group([xa, xc], [SEEDS_A, SEEDS_B])

    def test_member_seed_list_mismatch_rejected(self, path_net):
        xa, xb = self._descriptors(path_net, path_net)
        with pytest.raises(ProtocolError):
            run_group([xa, xb], [SEEDS_A])
        with pytest.raises(ProtocolError):
            run_group([], [])


class TestEnginePerTrialAdjacency:
    def _rig(self, rng, n=6, slots=5, b=4):
        adj = np.zeros((b, n, n), dtype=bool)
        for i in range(b):
            a = rng.random((n, n)) < 0.5
            a = np.triu(a, 1)
            adj[i] = a | a.T
        channels = rng.integers(0, 3, size=n)
        tx_role = rng.random(n) < 0.5
        coins = rng.random((b, slots, n)) < 0.5
        return adj, channels, tx_role, coins

    def test_stacked_adjacency_matches_per_trial_resolve(self):
        rng = np.random.default_rng(11)
        adj, channels, tx_role, coins = self._rig(rng)
        out = resolve_step_batch(adj, channels, tx_role, coins)
        for b in range(coins.shape[0]):
            ref = resolve_step(adj[b], channels, tx_role, coins[b])
            assert np.array_equal(out.heard_from[b], ref.heard_from)
            assert np.array_equal(out.contenders[b], ref.contenders)

    def test_shared_stack_matches_homogeneous_path(self):
        rng = np.random.default_rng(13)
        adj, channels, tx_role, coins = self._rig(rng)
        shared = np.broadcast_to(adj[0], adj.shape)
        stacked = resolve_step_batch(
            np.ascontiguousarray(shared), channels, tx_role, coins
        )
        homogeneous = resolve_step_batch(adj[0], channels, tx_role, coins)
        assert np.array_equal(
            stacked.heard_from, homogeneous.heard_from
        )
        assert np.array_equal(
            stacked.contenders, homogeneous.contenders
        )

    def test_wrong_stack_size_rejected(self):
        rng = np.random.default_rng(17)
        adj, channels, tx_role, coins = self._rig(rng)
        with pytest.raises(ProtocolError):
            resolve_step_batch(adj[:2], channels, tx_role, coins)


def tiny_cseek_sweep(**kwargs):
    """Three same-shape CSEEK points (an activity axis) — one group."""
    base = dict(
        name="tiny-xbatch-cseek",
        title="tiny xbatch cseek sweep",
        trials=3,
        sweep=SweepSpec(axes={"activity": [0.0, 0.4, 0.8]}),
        topology=TopologySpec("path", {"n": 6}),
        assignment=AssignmentSpec(c=4, k=2),
        interference=InterferenceSpec(activity="$activity"),
        protocol=ProtocolSpec("cseek"),
    )
    base.update(kwargs)
    return ScenarioSpec(**base)


def tiny_count_sweep(**kwargs):
    """Same-rig COUNT points (an activity axis) — one flattened group."""
    base = dict(
        name="tiny-xbatch-count",
        title="tiny xbatch count sweep",
        trials=6,
        sweep=SweepSpec(axes={"activity": [0.0, 0.5]}),
        interference=InterferenceSpec(activity="$activity"),
        protocol=ProtocolSpec(
            "count", {"m": 4, "max_count": 8, "log_n": 3}
        ),
    )
    base.update(kwargs)
    return ScenarioSpec(**base)


class TestScenarioXBatch:
    def test_cseek_rows_match_batch(self):
        spec = tiny_cseek_sweep()
        batch = run_scenario_spec(spec, seed=2, jobs="batch")
        xbatch = run_scenario_spec(spec, seed=2, jobs="xbatch")
        assert xbatch.rows == batch.rows

    def test_chunked_xbatch_rows_match(self):
        spec = tiny_cseek_sweep()
        whole = run_scenario_spec(spec, seed=2, jobs="xbatch")
        chunked = run_scenario_spec(spec, seed=2, jobs="xbatch:2")
        assert chunked.rows == whole.rows

    def test_count_rows_match_across_strategies(self):
        spec = tiny_count_sweep()
        serial = run_scenario_spec(spec, seed=4, jobs=None)
        xbatch = run_scenario_spec(spec, seed=4, jobs="xbatch")
        assert xbatch.rows == serial.rows

    def test_mixed_shape_sweep_splits_into_groups(self):
        # Two n values -> two signatures; grouping must degrade to two
        # groups, never mix shapes, and still match per-point rows.
        spec = tiny_cseek_sweep(
            sweep=SweepSpec(
                axes={"n": [6, 8], "activity": [0.0, 0.5]}
            ),
            topology=TopologySpec("path", {"n": "$n"}),
        )
        batch = run_scenario_spec(spec, seed=6, jobs="batch")
        xbatch = run_scenario_spec(spec, seed=6, jobs="xbatch")
        assert xbatch.rows == batch.rows

    def test_plan_based_spec_falls_back_to_batch(self):
        spec = paper_spec("E1")
        batch = run_scenario_spec(spec, trials=2, seed=1, jobs="batch")
        xbatch = run_scenario_spec(spec, trials=2, seed=1, jobs="xbatch")
        assert xbatch.rows == batch.rows

    def test_xbatch_executor_parses(self):
        assert isinstance(get_executor("xbatch"), XBatchExecutor)
        assert get_executor("xbatch:64").batch_size == 64


class TestStreamingXBatch:
    def test_unconverging_stream_rows_match_per_point(self):
        # Impossible targets force every point to max_trials, so the
        # per-point and interleaved paths see identical trial counts
        # and must produce identical rows.
        spec = tiny_cseek_sweep(
            precision=PrecisionSpec(
                targets={"success": 1e-9},
                min_trials=4,
                max_trials=8,
                chunk=4,
            )
        )
        per_point = stream_scenario_spec(spec, seed=3, jobs=None)
        grouped = stream_scenario_spec(spec, seed=3, jobs="xbatch")
        assert grouped.rows == per_point.rows
        assert all(row["trials"] == 8 for row in grouped.rows)

    def test_converged_points_leave_the_group(self):
        spec = tiny_count_sweep(
            precision=PrecisionSpec(
                targets={"band_rate": 0.9},
                min_trials=4,
                max_trials=64,
                chunk=8,
            )
        )
        table = stream_scenario_spec(spec, seed=5, jobs="xbatch")
        assert all(row["converged"] for row in table.rows)
        assert all(row["trials"] <= 8 for row in table.rows)


class TestAdaptiveChunks:
    def test_geometric_growth_capped(self):
        executor = StreamingExecutor(chunk_size=16, initial_chunk=2)
        stream = RngHub(0).seed_stream(name="adaptive")
        sizes = [
            len(chunk)
            for chunk in executor.iter_chunks(
                lambda s: s, stream, max_trials=60
            )
        ]
        assert sizes == [2, 4, 8, 16, 16, 14]

    def test_default_stays_fixed(self):
        executor = StreamingExecutor(chunk_size=8)
        stream = RngHub(0).seed_stream(name="fixed")
        sizes = [
            len(chunk)
            for chunk in executor.iter_chunks(
                lambda s: s, stream, max_trials=20
            )
        ]
        assert sizes == [8, 8, 4]

    def test_initial_chunk_capped_at_chunk_size(self):
        executor = StreamingExecutor(chunk_size=4, initial_chunk=100)
        assert executor.initial_chunk == 4

    def test_adaptive_results_match_fixed(self):
        fixed = StreamingExecutor(chunk_size=8)
        adaptive = StreamingExecutor(chunk_size=8, initial_chunk=1)
        ref = [
            r
            for chunk in fixed.iter_chunks(
                lambda s: s * 2,
                RngHub(9).seed_stream(name="x"),
                max_trials=30,
            )
            for r in chunk
        ]
        got = [
            r
            for chunk in adaptive.iter_chunks(
                lambda s: s * 2,
                RngHub(9).seed_stream(name="x"),
                max_trials=30,
            )
            for r in chunk
        ]
        assert got == ref
