"""Unit tests for CKSEEK (Theorem 6)."""

import pytest

from repro.core import CKSeek, CSeek, verify_k_discovery
from repro.model import ProtocolError, SpecError


class TestBudgets:
    def test_part_one_shrinks_with_khat(self, hetero_net):
        kn = hetero_net.knowledge()
        full = CSeek(hetero_net, seed=0)
        filt = CKSeek(hetero_net, khat=kn.kmax, seed=0)
        assert filt.part1_step_budget < full.part1_step_budget

    def test_delta_khat_hint_shrinks_part_two(self, hetero_net):
        kn = hetero_net.knowledge()
        without = CKSeek(hetero_net, khat=kn.kmax, seed=0)
        with_hint = CKSeek(
            hetero_net,
            khat=kn.kmax,
            delta_khat=hetero_net.max_good_degree(kn.kmax),
            seed=0,
        )
        assert with_hint.part2_step_budget <= without.part2_step_budget

    def test_rejects_khat_outside_range(self, hetero_net):
        kn = hetero_net.knowledge()
        with pytest.raises(SpecError):
            CKSeek(hetero_net, khat=kn.k - 1)
        with pytest.raises(SpecError):
            CKSeek(hetero_net, khat=kn.kmax + 1)

    def test_rejects_bad_delta_khat(self, hetero_net):
        kn = hetero_net.knowledge()
        with pytest.raises(ProtocolError):
            CKSeek(hetero_net, khat=kn.kmax, delta_khat=kn.max_degree + 1)


class TestFilterDiscovery:
    def test_finds_all_good_neighbors(self, hetero_net):
        kn = hetero_net.knowledge()
        result = CKSeek(hetero_net, khat=kn.kmax, seed=1).run()
        report = verify_k_discovery(result, hetero_net, khat=kn.kmax)
        assert report.success, report.missing

    def test_discovered_are_true_neighbors(self, hetero_net):
        kn = hetero_net.knowledge()
        result = CKSeek(hetero_net, khat=kn.kmax, seed=2).run()
        truth = hetero_net.true_neighbor_sets()
        for u in range(hetero_net.n):
            assert result.discovered[u] <= set(truth[u])

    def test_khat_equal_k_degenerates_to_cseek_budget(self, hetero_net):
        kn = hetero_net.knowledge()
        filt = CKSeek(hetero_net, khat=kn.k, seed=3)
        full = CSeek(hetero_net, seed=3)
        assert filt.part1_step_budget == full.part1_step_budget

    def test_good_neighbor_ground_truth(self, hetero_net):
        kn = hetero_net.knowledge()
        good = hetero_net.good_neighbor_sets(kn.kmax)
        for u in range(hetero_net.n):
            for v in good[u]:
                assert hetero_net.edge_overlap(u, v) >= kn.kmax
