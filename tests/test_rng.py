"""Unit tests for seeded randomness management."""

from repro.sim import RngHub


class TestRngHub:
    def test_same_seed_same_stream(self):
        a = RngHub(7).generator("x")
        b = RngHub(7).generator("x")
        assert a.integers(0, 1000, 10).tolist() == b.integers(
            0, 1000, 10
        ).tolist()

    def test_different_names_differ(self):
        a = RngHub(7).generator("x")
        b = RngHub(7).generator("y")
        assert a.integers(0, 2**40, 8).tolist() != b.integers(
            0, 2**40, 8
        ).tolist()

    def test_different_seeds_differ(self):
        a = RngHub(1).generator("x")
        b = RngHub(2).generator("x")
        assert a.integers(0, 2**40, 8).tolist() != b.integers(
            0, 2**40, 8
        ).tolist()

    def test_child_scoping(self):
        root = RngHub(9)
        direct = root.generator("leaf")
        nested = root.child("phase").generator("leaf")
        assert direct.integers(0, 2**40, 8).tolist() != nested.integers(
            0, 2**40, 8
        ).tolist()

    def test_node_streams_independent(self):
        hub = RngHub(11).child("phase")
        g0 = hub.node_generator(0)
        g1 = hub.node_generator(1)
        assert g0.integers(0, 2**40, 8).tolist() != g1.integers(
            0, 2**40, 8
        ).tolist()

    def test_node_generators_iterates_all(self):
        hub = RngHub(3)
        gens = list(hub.node_generators(5))
        assert len(gens) == 5

    def test_spawn_seeds_deterministic(self):
        s1 = RngHub(13).spawn_seeds(5)
        s2 = RngHub(13).spawn_seeds(5)
        assert s1 == s2
        assert len(set(s1)) == 5

    def test_seed_property(self):
        assert RngHub(21).seed == 21
        assert RngHub(21).child("a").seed == 21
