"""Bit-identity pins for the end-to-end batched CGCAST path.

``CGCastBatch.run(seeds)[b]`` must be field-for-field identical to
``CGCast(..., seed=seeds[b]).run()`` — the batched executor is a pure
throughput decision. These tests pin that contract across the oracle
and simulated exchange modes, jammed discovery, heterogeneous
assignments, non-default sources and the ``early_stop`` policy, plus
the cross-point lockstep layer and the batched re-dissemination of the
amortized regime.
"""

import numpy as np
import pytest

from repro.core import (
    CGCast,
    CGCastBatch,
    CGCastMember,
    CGCastXBatch,
    cgcast_lockstep_signature,
    redisseminate,
    redisseminate_batch,
    run_cgcast_lockstep,
    run_group,
)
from repro.graphs import build_network, path_of_cliques, random_regular
from repro.model.errors import ProtocolError
from repro.sim.environment import MarkovTraffic

SEEDS = [3, 17, 99]


def assert_results_equal(got, ref):
    """Field-for-field equality of two CGCastResult objects."""
    assert np.array_equal(got.informed, ref.informed)
    assert np.array_equal(got.informed_slot, ref.informed_slot)
    assert got.ledger.as_dict() == ref.ledger.as_dict()
    assert got.edge_colors == ref.edge_colors
    assert got.dedicated == ref.dedicated
    assert got.coloring_valid == ref.coloring_valid
    assert got.success == ref.success
    assert got.total_slots == ref.total_slots
    assert got.completion_slot == ref.completion_slot
    # Underlying stage results.
    assert got.discovery.discovered == ref.discovery.discovered
    assert got.discovery.ledger.as_dict() == ref.discovery.ledger.as_dict()
    assert got.coloring.colors == ref.coloring.colors
    assert got.coloring.phases_used == ref.coloring.phases_used
    assert got.dissemination.phases_run == ref.dissemination.phases_run
    assert (
        got.dissemination.scheduled_slots
        == ref.dissemination.scheduled_slots
    )
    assert np.array_equal(
        got.dissemination.informed_slot, ref.dissemination.informed_slot
    )


class TestPlainEquivalence:
    def test_regular_network(self, small_regular_net):
        got = CGCastBatch(small_regular_net).run(SEEDS)
        for s, g in zip(SEEDS, got):
            assert_results_equal(g, CGCast(small_regular_net, seed=s).run())

    def test_clique_chain(self, clique_chain_net):
        got = CGCastBatch(clique_chain_net).run(SEEDS)
        for s, g in zip(SEEDS, got):
            assert_results_equal(g, CGCast(clique_chain_net, seed=s).run())

    def test_nonzero_source(self, small_regular_net):
        got = CGCastBatch(small_regular_net, source=7).run(SEEDS)
        for s, g in zip(SEEDS, got):
            ref = CGCast(small_regular_net, source=7, seed=s).run()
            assert_results_equal(g, ref)

    def test_heterogeneous_assignment(self, hetero_net):
        got = CGCastBatch(hetero_net).run(SEEDS)
        for s, g in zip(SEEDS, got):
            assert_results_equal(g, CGCast(hetero_net, seed=s).run())

    def test_no_early_stop(self, small_regular_net):
        got = CGCastBatch(small_regular_net, early_stop=False).run(SEEDS)
        for s, g in zip(SEEDS, got):
            ref = CGCast(small_regular_net, seed=s, early_stop=False).run()
            assert_results_equal(g, ref)
            # Without early stop, every trial drains the full schedule.
            assert (
                g.dissemination.phases_run
                == small_regular_net.knowledge().diameter
            )

    def test_empty_seeds_rejected(self, small_regular_net):
        with pytest.raises(ProtocolError, match="at least one trial"):
            CGCastBatch(small_regular_net).run([])

    def test_batch_method_round_trip(self, small_regular_net):
        proto = CGCast(small_regular_net, source=3, early_stop=False)
        got = proto.batch().run(SEEDS)
        for s, g in zip(SEEDS, got):
            ref = CGCast(
                small_regular_net, source=3, seed=s, early_stop=False
            ).run()
            assert_results_equal(g, ref)


class TestJammedDiscovery:
    """Primary-user traffic in discovery erodes the discovered graph;
    the later phases inherit the per-trial differences."""

    def _env(self, net):
        return MarkovTraffic(
            sorted(net.assignment.universe()),
            activity=0.5,
            mean_dwell=6.0,
            seed_offset=1000,
        )

    def test_jammed_equivalence(self, small_regular_net):
        env = self._env(small_regular_net)
        got = CGCastBatch(small_regular_net, environment=env).run(SEEDS)
        for s, g in zip(SEEDS, got):
            ref = CGCast(small_regular_net, seed=s, environment=env).run()
            assert_results_equal(g, ref)

    def test_from_serial_inherits_environment(self, small_regular_net):
        env = self._env(small_regular_net)
        proto = CGCast(small_regular_net, environment=env)
        batch = CGCastBatch.from_serial(proto)
        assert batch.environment is env
        got = batch.run(SEEDS[:2])
        for s, g in zip(SEEDS[:2], got):
            ref = CGCast(small_regular_net, seed=s, environment=env).run()
            assert_results_equal(g, ref)


class TestSimulatedExchange:
    def test_simulated_equivalence(self, small_path_net):
        got = CGCastBatch(
            small_path_net, exchange_mode="simulated"
        ).run(SEEDS)
        for s, g in zip(SEEDS, got):
            ref = CGCast(
                small_path_net, seed=s, exchange_mode="simulated"
            ).run()
            assert_results_equal(g, ref)


class TestPrecomputedDiscovery:
    def test_supplied_discoveries_skip_the_phase(self, small_regular_net):
        batch = CGCastBatch(small_regular_net)
        reference = batch.run(SEEDS)
        discoveries = [r.discovery for r in reference]
        again = batch.run(SEEDS, discoveries=discoveries)
        for g, ref in zip(again, reference):
            assert_results_equal(g, ref)

    def test_discovery_count_mismatch_rejected(self, small_regular_net):
        batch = CGCastBatch(small_regular_net)
        [only] = batch.run(SEEDS[:1])
        with pytest.raises(ProtocolError, match="one precomputed discovery"):
            batch.run(SEEDS, discoveries=[only.discovery])


class TestCrossPointLockstep:
    def _nets(self):
        net_a = build_network(
            random_regular(12, 4, seed=1), c=8, k=2, seed=1
        )
        net_b = build_network(
            random_regular(12, 4, seed=9), c=8, k=2, seed=9
        )
        return net_a, net_b

    def test_different_networks_one_group(self):
        net_a, net_b = self._nets()
        members = [
            CGCastMember(CGCastBatch(net_a), [3, 4]),
            CGCastMember(CGCastBatch(net_b), [5, 6, 7]),
        ]
        per_member = run_cgcast_lockstep(members)
        for net, seeds, results in zip(
            (net_a, net_b), ([3, 4], [5, 6, 7]), per_member
        ):
            for s, g in zip(seeds, results):
                assert_results_equal(g, CGCast(net, seed=s).run())

    def test_signature_mismatch_rejected(self):
        net_a, _ = self._nets()
        members = [
            CGCastMember(CGCastBatch(net_a, source=0), [1]),
            CGCastMember(CGCastBatch(net_a, source=3), [2]),
        ]
        with pytest.raises(ProtocolError, match="compatibility signature"):
            run_cgcast_lockstep(members)

    def test_signature_pins_pipeline_knobs(self, small_regular_net):
        base = cgcast_lockstep_signature(CGCastBatch(small_regular_net))
        for other in (
            CGCastBatch(small_regular_net, source=2),
            CGCastBatch(small_regular_net, exchange_mode="simulated"),
            CGCastBatch(small_regular_net, early_stop=False),
            CGCastBatch(small_regular_net, coloring_loss_rate=0.1),
        ):
            assert cgcast_lockstep_signature(other) != base

    def test_xbatch_group_runner(self):
        net_a, net_b = self._nets()
        post = lambda r: (r.success, r.total_slots)  # noqa: E731
        xs = [
            CGCastXBatch(
                make_protocol=lambda s, discovery=None, net=net: CGCast(
                    net, seed=s, discovery=discovery
                ),
                postprocess=post,
            )
            for net in (net_a, net_b)
        ]
        assert xs[0].signature() == xs[1].signature()
        assert xs[0].signature()[0] == "cgcast"
        grouped = run_group(xs, [[3, 4], [5, 6]])
        for net, seeds, outs in zip(
            (net_a, net_b), ([3, 4], [5, 6]), grouped
        ):
            assert outs == [post(CGCast(net, seed=s).run()) for s in seeds]


class TestRedisseminateBatch:
    @pytest.fixture(scope="class")
    def setups(self):
        net = build_network(path_of_cliques(3, 4), c=8, k=1, seed=5)
        return net, CGCastBatch(net).run(SEEDS)

    def test_matches_serial_redisseminate(self, setups):
        net, results = setups
        got = redisseminate_batch(
            net, results, 5, [s + 7 for s in SEEDS]
        )
        for s, setup, g in zip(SEEDS, results, got):
            ref = redisseminate(net, setup, 5, seed=s + 7)
            assert np.array_equal(g.informed, ref.informed)
            assert np.array_equal(g.informed_slot, ref.informed_slot)
            assert g.ledger.as_dict() == ref.ledger.as_dict()
            assert g.phases_run == ref.phases_run
            assert g.scheduled_slots == ref.scheduled_slots

    def test_per_trial_sources(self, setups):
        net, results = setups
        sources = [(1 + 3 * i) % net.n for i in range(len(SEEDS))]
        got = redisseminate_batch(net, results, sources, SEEDS)
        for s, setup, source, g in zip(SEEDS, results, sources, got):
            ref = redisseminate(net, setup, source, seed=s)
            assert np.array_equal(g.informed_slot, ref.informed_slot)
            assert g.ledger.as_dict() == ref.ledger.as_dict()

    def test_invalid_setup_rejected(self, setups):
        net, results = setups
        broken = CGCastBatch(net).run([SEEDS[0]])[0]
        broken.coloring_valid = False
        with pytest.raises(ProtocolError, match="coloring was invalid"):
            redisseminate_batch(net, [broken], 0, [1])

    def test_setup_count_mismatch_rejected(self, setups):
        net, results = setups
        with pytest.raises(ProtocolError, match="one setup per seed"):
            redisseminate_batch(net, results[:1], 0, SEEDS)
