"""Unit tests for the Lemma 11 reduction players."""

import pytest

from repro.core import ProtocolConstants
from repro.lowerbounds import (
    CSeekReductionPlayer,
    HittingGame,
    NaiveReductionPlayer,
    play,
    two_node_knowledge,
)
from repro.model import GameError


class TestTwoNodeKnowledge:
    def test_parameters(self):
        kn = two_node_knowledge(c=8, k=3)
        assert kn.n == 2
        assert kn.max_degree == 1
        assert kn.kmax == 3


class TestCSeekReductionPlayer:
    def test_proposals_repeat_within_steps(self):
        """Part-one proposals are constant across a COUNT execution."""
        player = CSeekReductionPlayer(k=2, seed=1)
        consts = player.constants
        from repro.core import count_schedule

        kn = two_node_knowledge(8, 2)
        rounds, length = count_schedule(1, kn.log_n, consts)
        step_slots = rounds * length
        stream = player.proposals(8)
        first_step = [next(stream) for _ in range(step_slots)]
        assert len(set(first_step)) == 1

    def test_schedule_slots_positive_and_scaling(self):
        player = CSeekReductionPlayer(k=2, seed=0)
        assert player.schedule_slots(8) > 0
        assert player.schedule_slots(16) > player.schedule_slots(8)

    def test_wins_within_schedule_whp(self):
        """The CSEEK-driven player meets within its own schedule."""
        wins_in_schedule = 0
        trials = 8
        for seed in range(trials):
            player = CSeekReductionPlayer(k=2, seed=seed)
            budget = player.schedule_slots(8)
            game = HittingGame(c=8, k=2, seed=seed + 100)
            transcript = play(game, player, max_rounds=budget)
            wins_in_schedule += transcript.won
        assert wins_in_schedule >= trials - 1

    def test_rejects_bad_k(self):
        with pytest.raises(GameError):
            CSeekReductionPlayer(k=0)

    def test_stream_never_ends(self):
        player = CSeekReductionPlayer(
            k=1, seed=2, constants=ProtocolConstants.fast()
        )
        stream = player.proposals(2)
        budget = player.schedule_slots(2)
        for _ in range(budget + 10):
            a, b = next(stream)
            assert 0 <= a < 2 and 0 <= b < 2


class TestNaiveReductionPlayer:
    def test_proposals_in_range(self):
        stream = NaiveReductionPlayer(seed=3).proposals(5)
        for _ in range(100):
            a, b = next(stream)
            assert 0 <= a < 5 and 0 <= b < 5

    def test_wins_eventually(self):
        game = HittingGame(c=6, k=2, seed=4)
        transcript = play(
            game, NaiveReductionPlayer(seed=5), max_rounds=5000
        )
        assert transcript.won
