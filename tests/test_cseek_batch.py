"""Batched-vs-serial CSEEK equivalence (the CSeekBatch contract).

Every test pins the same invariant from a different angle: running ``B``
trials through :class:`repro.core.cseek_batch.CSeekBatch` must be
bit-identical, per trial, to ``B`` serial :meth:`CSeek.run` executions —
including the hard paths (primary-user jamming, the uniform-listener
ablation, CKSEEK budgets, CGCAST's embedded discovery).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CGCast,
    CKSeek,
    CSeek,
    CSeekBatch,
    batched_discovery,
)
from repro.harness import run_trials
from repro.harness.executor import BatchedExecutor, get_executor
from repro.model import HarnessError, ProtocolError
from repro.sim import PrimaryUserTraffic
from repro.sim.trace import TraceRecorder, record_step_batch

SEEDS = [3, 17, 99]


def assert_results_equal(got, ref):
    """Field-by-field bit-identity of two CSeekResults."""
    assert got.discovered == ref.discovered
    assert got.discovered_part_one == ref.discovered_part_one
    assert np.array_equal(got.counts, ref.counts)
    assert np.array_equal(got.step_start_slots, ref.step_start_slots)
    assert np.array_equal(got.step_channels, ref.step_channels)
    assert got.total_slots == ref.total_slots
    assert got.ledger.as_dict() == ref.ledger.as_dict()
    assert got.trace.first_heard == ref.trace.first_heard


class TestPlainEquivalence:
    def test_full_budget_matches_serial(self, small_path_net):
        batch = CSeekBatch(small_path_net).run(SEEDS)
        for b, s in enumerate(SEEDS):
            assert_results_equal(
                batch[b], CSeek(small_path_net, seed=s).run()
            )

    def test_regular_net_reduced_budget(self, small_regular_net):
        kwargs = dict(part1_steps=25, part2_steps=40)
        batch = CSeekBatch(small_regular_net, **kwargs).run(SEEDS)
        for b, s in enumerate(SEEDS):
            assert_results_equal(
                batch[b], CSeek(small_regular_net, seed=s, **kwargs).run()
            )

    def test_zero_budgets(self, small_path_net):
        kwargs = dict(part1_steps=0, part2_steps=0)
        batch = CSeekBatch(small_path_net, **kwargs).run([5])
        ref = CSeek(small_path_net, seed=5, **kwargs).run()
        assert_results_equal(batch[0], ref)
        assert batch[0].total_slots == 0

    def test_single_trial(self, small_path_net):
        batch = CSeekBatch(small_path_net).run([42])
        assert_results_equal(batch[0], CSeek(small_path_net, seed=42).run())

    def test_empty_seed_list_rejected(self, small_path_net):
        with pytest.raises(ProtocolError):
            CSeekBatch(small_path_net).run([])


class TestJammedEquivalence:
    def _factory(self, net):
        channels = sorted(net.assignment.universe())

        def jammer_factory(s: int) -> PrimaryUserTraffic:
            return PrimaryUserTraffic(
                channels, activity=0.5, mean_dwell=6.0, seed=s + 1000
            )

        return jammer_factory

    def test_primary_user_traffic_matches_serial(self, small_path_net):
        factory = self._factory(small_path_net)
        batch = CSeekBatch(
            small_path_net, jammer_factory=factory
        ).run(SEEDS)
        for b, s in enumerate(SEEDS):
            ref = CSeek(small_path_net, seed=s, jammer=factory(s)).run()
            assert_results_equal(batch[b], ref)

    def test_jamming_changes_outcomes(self, small_path_net):
        """The jam mask must actually reach the batched engine."""
        factory = self._factory(small_path_net)
        jammed = CSeekBatch(
            small_path_net, jammer_factory=factory
        ).run(SEEDS)
        clear = CSeekBatch(small_path_net).run(SEEDS)
        assert any(
            jammed[b].trace.first_heard != clear[b].trace.first_heard
            for b in range(len(SEEDS))
        )

    def test_mixed_jammed_and_clear_trials(self, small_path_net):
        """A factory may leave some trials unjammed; each trial must
        still match its own serial counterpart."""
        factory = self._factory(small_path_net)

        def mixed(s: int):
            return factory(s) if s % 2 else None

        batch = CSeekBatch(
            small_path_net, jammer_factory=mixed
        ).run(SEEDS)
        for b, s in enumerate(SEEDS):
            ref = CSeek(small_path_net, seed=s, jammer=mixed(s)).run()
            assert_results_equal(batch[b], ref)


class TestUniformListenerEquivalence:
    def test_ablation_matches_serial(self, star_net):
        kwargs = dict(
            part1_steps=20, part2_steps=60, part2_listener="uniform"
        )
        batch = CSeekBatch(star_net, **kwargs).run(SEEDS)
        for b, s in enumerate(SEEDS):
            assert_results_equal(
                batch[b], CSeek(star_net, seed=s, **kwargs).run()
            )

    def test_weighted_starved_star_matches_serial(self, star_net):
        """The weighted listener's count-proportional draws are the
        state-dependent path; pin it on a crowded hub."""
        kwargs = dict(part1_steps=20, part2_steps=60)
        batch = CSeekBatch(star_net, **kwargs).run(SEEDS)
        for b, s in enumerate(SEEDS):
            assert_results_equal(
                batch[b], CSeek(star_net, seed=s, **kwargs).run()
            )


class TestProtocolReuse:
    def test_ckseek_budgets_via_from_serial(self, hetero_net):
        khat = 3
        delta_khat = hetero_net.max_good_degree(khat)
        make = lambda s: CKSeek(  # noqa: E731
            hetero_net, khat=khat, delta_khat=delta_khat, seed=s
        )
        proto = make(0)
        batch = proto.batch().run(SEEDS)
        for b, s in enumerate(SEEDS):
            assert_results_equal(batch[b], make(s).run())

    def test_from_serial_copies_configuration(self, small_path_net):
        proto = CSeek(
            small_path_net,
            seed=123,
            part1_steps=7,
            part2_steps=9,
            part2_listener="uniform",
            rng_label="custom",
        )
        batch = CSeekBatch.from_serial(proto)
        assert batch.part1_step_budget == 7
        assert batch.part2_step_budget == 9
        assert batch.part2_listener == "uniform"
        assert_results_equal(
            batch.run([55])[0],
            CSeek(
                small_path_net,
                seed=55,
                part1_steps=7,
                part2_steps=9,
                part2_listener="uniform",
                rng_label="custom",
            ).run(),
        )

    def test_cgcast_discovery_injection(self, clique_chain_net):
        net = clique_chain_net
        discoveries = batched_discovery(net, SEEDS)
        for s, disc in zip(SEEDS, discoveries):
            plain = CGCast(net, source=0, seed=s).run()
            injected = CGCast(
                net, source=0, seed=s, discovery=disc
            ).run()
            assert np.array_equal(injected.informed, plain.informed)
            assert np.array_equal(
                injected.informed_slot, plain.informed_slot
            )
            assert injected.ledger.as_dict() == plain.ledger.as_dict()
            assert injected.edge_colors == plain.edge_colors
            assert injected.dedicated == plain.dedicated


class TestExecutorIntegration:
    def _make_trial(self, net):
        def trial(s: int):
            result = CSeek(net, seed=s, part1_steps=10, part2_steps=15).run()
            return sorted(map(sorted, result.discovered))

        def run_batch(seeds):
            batch = CSeekBatch(net, part1_steps=10, part2_steps=15)
            return [
                sorted(map(sorted, r.discovered))
                for r in batch.run(seeds)
            ]

        trial.run_batch = run_batch
        return trial

    def test_run_trials_batch_matches_serial(self, small_path_net):
        trial = self._make_trial(small_path_net)
        serial = run_trials(trial, 5, 7, executor=None)
        batched = run_trials(trial, 5, 7, executor="batch")
        assert serial == batched

    def test_chunked_batches_match_unchunked(self, small_path_net):
        trial = self._make_trial(small_path_net)
        full = run_trials(trial, 5, 7, executor="batch")
        chunked = run_trials(trial, 5, 7, executor="batch:2")
        assert full == chunked

    def test_get_executor_parses_batch_size(self):
        ex = get_executor("batch:16")
        assert isinstance(ex, BatchedExecutor)
        assert ex.batch_size == 16
        assert get_executor("batch").batch_size is None

    def test_get_executor_rejects_bad_batch_size(self):
        with pytest.raises(HarnessError):
            get_executor("batch:0")
        with pytest.raises(HarnessError):
            get_executor("batch:nope")

    def test_batched_executor_rejects_bad_batch_size(self):
        with pytest.raises(HarnessError):
            BatchedExecutor(batch_size=0)


class TestRecordStepBatch:
    def _batch_outcome(self, seeds, net):
        from repro.core.cseek import resolve_backoff_batch

        rng = np.random.default_rng(0)
        n = net.n
        channels = np.stack(
            [rng.integers(0, 3, size=n) for _ in seeds]
        )
        tx_role = np.stack([rng.random(n) < 0.5 for _ in seeds])
        return (
            resolve_backoff_batch(
                net.adjacency,
                channels,
                tx_role,
                4,
                [np.random.default_rng(s) for s in seeds],
            ),
            channels,
        )

    def test_matches_per_trial_record_step(self, small_path_net):
        outcome, channels = self._batch_outcome(SEEDS, small_path_net)
        batched = [TraceRecorder() for _ in SEEDS]
        record_step_batch(batched, outcome, 100, "test", channels=channels)
        for b in range(len(SEEDS)):
            ref = TraceRecorder()
            ref.record_step(
                outcome.trial(b), 100, "test", channels=channels[b]
            )
            assert batched[b].first_heard == ref.first_heard

    def test_verbose_fallback_matches(self, small_path_net):
        outcome, channels = self._batch_outcome(SEEDS, small_path_net)
        batched = [TraceRecorder(verbose=True) for _ in SEEDS]
        record_step_batch(batched, outcome, 0, "test", channels=channels)
        for b in range(len(SEEDS)):
            ref = TraceRecorder(verbose=True)
            ref.record_step(
                outcome.trial(b), 0, "test", channels=channels[b]
            )
            assert batched[b].events == ref.events
            assert batched[b].first_heard == ref.first_heard

    def test_recorder_count_mismatch_rejected(self, small_path_net):
        outcome, channels = self._batch_outcome(SEEDS, small_path_net)
        with pytest.raises(ValueError):
            record_step_batch(
                [TraceRecorder()], outcome, 0, "test", channels=channels
            )
