"""ArrayBackend selection and cross-backend bit-identity.

Backends compute exact integer products (counts and id-sums), so every
correct implementation is bit-identical — pinned here against a naive
integer reference for each backend available in this environment. The
numba cases skip cleanly when numba is absent; CI runs them in a
dedicated leg with numba installed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.model import HarnessError
from repro.scenarios import run_scenario_spec
from repro.sim.backend import (
    BACKEND_ENV,
    ArrayBackend,
    NumpyBackend,
    active_backend,
    available_backends,
    set_backend,
    use_backend,
)

from tests.test_xbatch import tiny_cseek_sweep

BACKENDS = available_backends()


def reference_products(reach, coins):
    """Naive integer loop — the semantics every backend must match."""
    contenders = coins.astype(np.int64) @ reach.T.astype(np.int64)
    ids = np.arange(reach.shape[-1], dtype=np.int64)
    idsum = coins.astype(np.int64) @ (reach.astype(np.int64) * ids).T
    return contenders, idsum


@pytest.fixture(autouse=True)
def restore_backend():
    yield
    set_backend("numpy")


@pytest.mark.parametrize("name", BACKENDS)
class TestBackendEquivalence:
    def test_step_products_match_reference(self, name):
        rng = np.random.default_rng(5)
        reach = rng.random((7, 7)) < 0.4
        coins = rng.random((23, 7)) < 0.5
        with use_backend(name) as backend:
            contenders, idsum = backend.step_products(reach, coins)
        ref_c, ref_i = reference_products(reach, coins)
        assert contenders.dtype == np.int64
        assert np.array_equal(contenders, ref_c)
        assert np.array_equal(idsum, ref_i)

    def test_batch_step_products_match_reference(self, name):
        rng = np.random.default_rng(6)
        reach = rng.random((4, 6, 6)) < 0.4
        coins = rng.random((4, 9, 6)) < 0.5
        with use_backend(name) as backend:
            contenders, idsum = backend.batch_step_products(reach, coins)
        for b in range(4):
            ref_c, ref_i = reference_products(reach[b], coins[b])
            assert np.array_equal(contenders[b], ref_c)
            assert np.array_equal(idsum[b], ref_i)

    def test_scenario_rows_identical(self, name):
        spec = tiny_cseek_sweep()
        reference = run_scenario_spec(spec, seed=2, jobs="batch")
        with use_backend(name):
            got = run_scenario_spec(spec, seed=2, jobs="xbatch")
        assert got.rows == reference.rows


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        backend = set_backend(None)
        assert backend.name == "numpy"
        assert isinstance(active_backend(), ArrayBackend)

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert set_backend(None).name == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(HarnessError):
            set_backend("fortran")

    def test_numba_missing_is_a_clear_error(self):
        if "numba" in BACKENDS:
            pytest.skip("numba installed — missing-dep path untestable")
        with pytest.raises(HarnessError, match="not installed"):
            set_backend("numba")

    def test_use_backend_restores_previous(self):
        before = active_backend()
        with use_backend("numpy") as inner:
            assert active_backend() is inner
        assert active_backend() is before

    def test_available_always_lists_numpy(self):
        assert "numpy" in BACKENDS


class TestNumpyFloatCache:
    def test_same_mask_object_hits_cache(self):
        backend = NumpyBackend()
        reach = np.random.default_rng(7).random((5, 5)) < 0.5
        f1, i1 = backend.reach_floats(reach)
        f2, i2 = backend.reach_floats(reach)
        assert f1 is f2 and i1 is i2

    def test_cache_is_bounded(self):
        backend = NumpyBackend()
        masks = [
            np.random.default_rng(i).random((4, 4)) < 0.5
            for i in range(NumpyBackend._CACHE_ENTRIES + 3)
        ]
        for mask in masks:
            backend.reach_floats(mask)
        assert len(backend._floats) == NumpyBackend._CACHE_ENTRIES

    def test_distinct_objects_get_distinct_casts(self):
        backend = NumpyBackend()
        reach = np.random.default_rng(8).random((5, 5)) < 0.5
        copy = reach.copy()
        f1, _ = backend.reach_floats(reach)
        f2, _ = backend.reach_floats(copy)
        assert f1 is not f2
        assert np.array_equal(f1, f2)

    def test_hit_miss_counters(self):
        backend = NumpyBackend()
        reach = np.random.default_rng(11).random((5, 5)) < 0.5
        with obs.capture() as tel:
            backend.reach_floats(reach)
            backend.reach_floats(reach)
            backend.reach_floats(reach)
        assert tel.counters["backend.float_cache.misses"] == 1
        assert tel.counters["backend.float_cache.hits"] == 2
        assert "backend.float_cache.evictions" not in tel.counters

    def test_eviction_counter_matches_bound(self):
        backend = NumpyBackend()
        extra = 3
        masks = [
            np.random.default_rng(i).random((4, 4)) < 0.5
            for i in range(NumpyBackend._CACHE_ENTRIES + extra)
        ]
        with obs.capture() as tel:
            for mask in masks:
                backend.reach_floats(mask)
        assert tel.counters["backend.float_cache.misses"] == len(masks)
        assert tel.counters["backend.float_cache.evictions"] == extra


class TestEngineReachCache:
    def test_repeated_steps_reuse_one_reception_matrix(self):
        from repro.sim.engine import _cached_reception_matrix

        rng = np.random.default_rng(9)
        n = 6
        adj = rng.random((n, n)) < 0.5
        adj = np.triu(adj, 1)
        adj = adj | adj.T
        channels = rng.integers(0, 3, size=n)
        tx_role = rng.random(n) < 0.5
        first = _cached_reception_matrix(adj, channels, tx_role)
        second = _cached_reception_matrix(adj, channels, tx_role)
        assert first is second

    def test_hit_miss_counters(self):
        from repro.sim.engine import _cached_reception_matrix

        rng = np.random.default_rng(12)
        n = 5
        adj = rng.random((n, n)) < 0.5
        adj = np.triu(adj, 1)
        adj = adj | adj.T
        channels = rng.integers(0, 2, size=n)
        tx_role = rng.random(n) < 0.5
        # Fresh arrays cannot already sit in the module-level cache
        # (adjacency matches by identity), so the first call is exactly
        # one miss and the repeats are exactly hits.
        with obs.capture() as tel:
            _cached_reception_matrix(adj, channels, tx_role)
            _cached_reception_matrix(adj, channels, tx_role)
            _cached_reception_matrix(adj, channels, tx_role)
        assert tel.counters["engine.reach_cache.misses"] == 1
        assert tel.counters["engine.reach_cache.hits"] == 2

    def test_changed_channels_miss(self):
        from repro.sim.engine import _cached_reception_matrix, _reception_matrix

        rng = np.random.default_rng(10)
        n = 6
        adj = rng.random((n, n)) < 0.5
        adj = np.triu(adj, 1)
        adj = adj | adj.T
        tx_role = np.ones(n, dtype=bool)
        ch_a = np.zeros(n, dtype=np.int64)
        ch_b = np.arange(n, dtype=np.int64) % 2
        cached_a = _cached_reception_matrix(adj, ch_a, tx_role)
        cached_b = _cached_reception_matrix(adj, ch_b, tx_role)
        assert np.array_equal(cached_a, _reception_matrix(adj, ch_a, tx_role))
        assert np.array_equal(cached_b, _reception_matrix(adj, ch_b, tx_role))
