"""Unit tests for channel assignments and local labels."""

import numpy as np
import pytest

from repro.model import AssignmentError, ChannelAssignment


def simple_assignment() -> ChannelAssignment:
    # Node 0: {0,1,2}, node 1: {1,2,3}, node 2: {4,5,6}.
    return ChannelAssignment(
        table=np.array([[0, 1, 2], [1, 2, 3], [4, 5, 6]])
    )


class TestConstruction:
    def test_shapes(self):
        a = simple_assignment()
        assert a.n == 3
        assert a.c == 3
        assert a.universe_size == 7

    def test_rejects_duplicates_in_row(self):
        with pytest.raises(AssignmentError):
            ChannelAssignment(table=np.array([[0, 1, 1], [2, 3, 4]]))

    def test_rejects_negative_ids(self):
        with pytest.raises(AssignmentError):
            ChannelAssignment(table=np.array([[0, -1, 2], [3, 4, 5]]))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(AssignmentError):
            ChannelAssignment(table=np.array([0, 1, 2]))

    def test_rejects_empty(self):
        with pytest.raises(AssignmentError):
            ChannelAssignment(table=np.zeros((0, 0), dtype=int))

    def test_from_sets_sorted_without_rng(self):
        a = ChannelAssignment.from_sets([{3, 1, 2}, {7, 5, 6}])
        assert a.local_row(0) == (1, 2, 3)
        assert a.local_row(1) == (5, 6, 7)

    def test_from_sets_rejects_ragged(self):
        with pytest.raises(AssignmentError):
            ChannelAssignment.from_sets([{1, 2}, {3, 4, 5}])

    def test_from_sets_rejects_empty(self):
        with pytest.raises(AssignmentError):
            ChannelAssignment.from_sets([])


class TestLabels:
    def test_local_global_roundtrip(self):
        a = simple_assignment()
        for u in range(a.n):
            for label in range(a.c):
                g = a.global_id_of(u, label)
                assert a.local_label_of(u, g) == label

    def test_local_label_missing_channel(self):
        a = simple_assignment()
        with pytest.raises(AssignmentError):
            a.local_label_of(0, 6)

    def test_global_id_out_of_range(self):
        a = simple_assignment()
        with pytest.raises(AssignmentError):
            a.global_id_of(0, 3)

    def test_relabel_preserves_sets(self):
        a = simple_assignment()
        rng = np.random.default_rng(0)
        b = a.relabel_locally(rng)
        for u in range(a.n):
            assert b.channels_of(u) == a.channels_of(u)


class TestOverlap:
    def test_overlap_sets(self):
        a = simple_assignment()
        assert a.overlap(0, 1) == frozenset({1, 2})
        assert a.overlap_size(0, 1) == 2
        assert a.overlap_size(0, 2) == 0

    def test_overlap_matrix_matches_pairwise(self):
        a = simple_assignment()
        m = a.overlap_matrix()
        assert m[0, 0] == a.c
        for u in range(a.n):
            for v in range(a.n):
                if u != v:
                    assert m[u, v] == a.overlap_size(u, v)

    def test_realized_bounds(self):
        a = simple_assignment()
        lo, hi = a.realized_overlap_bounds([(0, 1)])
        assert (lo, hi) == (2, 2)

    def test_realized_bounds_empty_errors(self):
        a = simple_assignment()
        with pytest.raises(AssignmentError):
            a.realized_overlap_bounds([])

    def test_validate_edges_pass(self):
        a = simple_assignment()
        a.validate_edges([(0, 1)], k=1, kmax=2)

    def test_validate_edges_below_k(self):
        a = simple_assignment()
        with pytest.raises(AssignmentError, match="< k"):
            a.validate_edges([(0, 2)], k=1, kmax=3)

    def test_validate_edges_above_kmax(self):
        a = simple_assignment()
        with pytest.raises(AssignmentError, match="> kmax"):
            a.validate_edges([(0, 1)], k=1, kmax=1)


class TestMembership:
    def test_membership_map(self):
        a = simple_assignment()
        members = a.membership_map()
        assert members[1] == [0, 1]
        assert members[4] == [2]
        assert set(members) == a.universe()
