"""Property-based tests: coloring validity and game invariants."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LineGraph, LubyEdgeColoring, is_valid_edge_coloring
from repro.lowerbounds import HittingGame, SweepPlayer, play
from repro.model import ModelKnowledge


@st.composite
def random_connected_graph(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    graph = nx.Graph()
    graph.add_node(0)
    for v in range(1, n):
        graph.add_edge(int(rng.integers(0, v)), v)
    extra = draw(st.integers(min_value=0, max_value=6))
    for _ in range(extra):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v:
            graph.add_edge(min(u, v), max(u, v))
    return graph, seed


class TestColoringProperties:
    @given(random_connected_graph())
    @settings(max_examples=40, deadline=None)
    def test_always_produces_valid_proper_coloring(self, case):
        graph, seed = case
        edges = sorted((min(u, v), max(u, v)) for u, v in graph.edges())
        lg = LineGraph.from_edges(edges)
        delta = max(d for _, d in graph.degree())
        n = graph.number_of_nodes()
        kn = ModelKnowledge(
            n=max(n, 2),
            c=4,
            k=1,
            kmax=1,
            max_degree=max(delta, 1),
            diameter=max(1, n - 1),
        )
        result = LubyEdgeColoring(lg, kn, seed=seed).run()
        assert result.complete
        assert is_valid_edge_coloring(result.colors, lg.edges)
        assert all(
            0 <= color < 2 * kn.max_degree
            for color in result.colors.values()
        )

    @given(random_connected_graph())
    @settings(max_examples=30, deadline=None)
    def test_line_graph_degree_bound(self, case):
        graph, _ = case
        edges = sorted((min(u, v), max(u, v)) for u, v in graph.edges())
        lg = LineGraph.from_edges(edges)
        delta = max(d for _, d in graph.degree())
        assert lg.max_degree() <= 2 * delta - 2 or lg.num_virtual <= 1


class TestGameProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**20),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matching_well_formed(self, c, seed, data):
        k = data.draw(st.integers(min_value=1, max_value=c))
        game = HittingGame(c=c, k=k, seed=seed)
        matching = game.reveal_matching()
        assert len(matching) == k
        assert len(set(matching.keys())) == k
        assert len(set(matching.values())) == k

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=2**20),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_sweep_player_wins_in_at_most_c_squared(self, c, seed, data):
        k = data.draw(st.integers(min_value=1, max_value=c))
        game = HittingGame(c=c, k=k, seed=seed)
        transcript = play(game, SweepPlayer())
        assert transcript.won
        assert transcript.rounds <= c * c
