"""Unit tests for slot ledgers and reception traces."""

import numpy as np
import pytest

from repro.model import ProtocolError
from repro.sim import SlotLedger, TraceRecorder
from repro.sim.engine import StepOutcome


class TestSlotLedger:
    def test_charge_and_total(self):
        ledger = SlotLedger()
        ledger.charge("a", 10)
        ledger.charge("a", 5)
        ledger.charge("b", 2)
        assert ledger.get("a") == 15
        assert ledger.total == 17

    def test_get_unknown_phase(self):
        assert SlotLedger().get("nope") == 0

    def test_rejects_negative(self):
        with pytest.raises(ProtocolError):
            SlotLedger().charge("a", -1)

    def test_merge_with_prefix(self):
        a = SlotLedger()
        a.charge("part1", 3)
        b = SlotLedger()
        b.charge("x", 1)
        b.merge(a, prefix="cseek.")
        assert b.get("cseek.part1") == 3
        assert b.total == 4

    def test_as_dict_is_copy(self):
        ledger = SlotLedger()
        ledger.charge("a", 1)
        d = ledger.as_dict()
        d["a"] = 99
        assert ledger.get("a") == 1

    def test_items_ordered(self):
        ledger = SlotLedger()
        ledger.charge("z", 1)
        ledger.charge("a", 1)
        assert [k for k, _ in ledger.items()] == ["z", "a"]


def make_outcome(heard):
    heard = np.asarray(heard, dtype=np.int64)
    return StepOutcome(
        heard_from=heard, contenders=np.zeros_like(heard)
    )


class TestTraceRecorder:
    def test_first_heard_earliest_slot(self):
        trace = TraceRecorder()
        # Slot 0: node 1 hears 0; slot 1: node 1 hears 0 again.
        outcome = make_outcome([[-1, 0], [-1, 0]])
        trace.record_step(outcome, start_slot=100, phase="p")
        event = trace.first_reception(1, 0)
        assert event is not None
        assert event.slot == 100

    def test_first_heard_not_overwritten_across_steps(self):
        trace = TraceRecorder()
        trace.record_step(make_outcome([[-1, 0]]), 5, "p")
        trace.record_step(make_outcome([[-1, 0]]), 50, "p")
        assert trace.first_reception(1, 0).slot == 5

    def test_channels_annotation(self):
        trace = TraceRecorder()
        trace.record_step(
            make_outcome([[-1, 0]]), 0, "p", channels=np.array([9, 9])
        )
        assert trace.first_reception(1, 0).channel == 9

    def test_heard_by(self):
        trace = TraceRecorder()
        trace.record_step(make_outcome([[2, -1, 0]]), 0, "p")
        assert trace.heard_by(0) == [2]
        assert trace.heard_by(2) == [0]
        assert trace.heard_by(1) == []

    def test_completion_slot(self):
        trace = TraceRecorder()
        assert trace.completion_slot() is None
        trace.record_step(
            make_outcome([[-1, 0, -1], [2, -1, -1]]), 10, "p"
        )
        assert trace.completion_slot() == 11

    def test_reception_count(self):
        trace = TraceRecorder()
        trace.record_step(
            make_outcome([[-1, 0, -1], [-1, 0, -1], [2, -1, -1]]), 0, "p"
        )
        assert trace.reception_count() == 2

    def test_verbose_keeps_every_event(self):
        trace = TraceRecorder(verbose=True)
        trace.record_step(make_outcome([[-1, 0], [-1, 0]]), 0, "p")
        assert len(trace.events) == 2

    def test_empty_step_noop(self):
        trace = TraceRecorder()
        trace.record_step(make_outcome([[-1, -1]]), 0, "p")
        assert trace.reception_count() == 0
