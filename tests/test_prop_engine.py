"""Property-based tests: engine semantics vs a brute-force reference."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import resolve_slot, resolve_step
from repro.sim.engine import resolve_varying


def reference_slot(adj, channels, tx):
    """O(n^2) straight-line reimplementation of the model semantics."""
    n = adj.shape[0]
    heard = np.full(n, -1, dtype=np.int64)
    for u in range(n):
        if channels[u] < 0 or tx[u]:
            continue
        senders = [
            v
            for v in range(n)
            if adj[u, v] and tx[v] and channels[v] == channels[u]
        ]
        if len(senders) == 1:
            heard[u] = senders[0]
    return heard


@st.composite
def slot_case(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    adj = rng.random((n, n)) < draw(
        st.floats(min_value=0.1, max_value=0.9)
    )
    adj = np.triu(adj, 1)
    adj = adj | adj.T
    channels = rng.integers(-1, 4, size=n)
    tx = rng.random(n) < 0.5
    return adj, channels, tx


class TestSlotSemantics:
    @given(slot_case())
    @settings(max_examples=120, deadline=None)
    def test_matches_reference(self, case):
        adj, channels, tx = case
        out = resolve_slot(adj, channels, tx)
        assert np.array_equal(out.heard_from, reference_slot(adj, channels, tx))

    @given(slot_case())
    @settings(max_examples=60, deadline=None)
    def test_broadcasters_hear_nothing(self, case):
        adj, channels, tx = case
        out = resolve_slot(adj, channels, tx)
        assert (out.heard_from[tx] == -1).all()

    @given(slot_case())
    @settings(max_examples=60, deadline=None)
    def test_heard_sender_is_neighbor_on_same_channel(self, case):
        adj, channels, tx = case
        out = resolve_slot(adj, channels, tx)
        for u in np.flatnonzero(out.heard_from >= 0):
            v = out.heard_from[u]
            assert adj[u, v]
            assert tx[v]
            assert channels[u] == channels[v]


@st.composite
def step_case(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    slots = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    adj = rng.random((n, n)) < 0.5
    adj = np.triu(adj, 1)
    adj = adj | adj.T
    channels = rng.integers(-1, 3, size=n)
    tx_role = rng.random(n) < 0.5
    coins = rng.random((slots, n)) < 0.6
    return adj, channels, tx_role, coins


class TestStepSemantics:
    @given(step_case())
    @settings(max_examples=80, deadline=None)
    def test_step_equals_slotwise_reference(self, case):
        adj, channels, tx_role, coins = case
        out = resolve_step(adj, channels, tx_role, coins)
        for t in range(coins.shape[0]):
            tx = tx_role & coins[t]
            expected = reference_slot(adj, channels, tx)
            # Broadcasters who happen not to transmit this slot still do
            # not listen mid-step; mask them out of the reference.
            expected[tx_role] = -1
            assert np.array_equal(out.heard_from[t], expected)


@st.composite
def varying_case(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    slots = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    adj = rng.random((n, n)) < 0.5
    adj = np.triu(adj, 1)
    adj = adj | adj.T
    channels = rng.integers(-1, 3, size=(slots, n))
    tx = rng.random((slots, n)) < 0.5
    chunk = draw(st.integers(min_value=1, max_value=5))
    return adj, channels, tx, chunk


class TestVaryingSemantics:
    @given(varying_case())
    @settings(max_examples=80, deadline=None)
    def test_varying_equals_slotwise_reference(self, case):
        adj, channels, tx, chunk = case
        out = resolve_varying(adj, channels, tx, chunk=chunk)
        for t in range(channels.shape[0]):
            expected = reference_slot(adj, channels[t], tx[t])
            assert np.array_equal(out.heard_from[t], expected)
