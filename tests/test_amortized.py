"""Unit tests for reusing a CGCAST schedule (redisseminate)."""

import pytest

from repro.core import CGCast, redisseminate
from repro.model import ProtocolError


@pytest.fixture(scope="module")
def setup_result(clique_chain_net):
    result = CGCast(clique_chain_net, source=0, seed=1).run()
    assert result.success
    return result


class TestRedisseminate:
    def test_second_message_delivers(self, clique_chain_net, setup_result):
        diss = redisseminate(clique_chain_net, setup_result, source=0, seed=2)
        assert diss.success

    def test_any_source_works(self, clique_chain_net, setup_result):
        last = clique_chain_net.n - 1
        diss = redisseminate(
            clique_chain_net, setup_result, source=last, seed=3
        )
        assert diss.success
        assert diss.informed_slot[last] == 0

    def test_costs_only_dissemination(self, clique_chain_net, setup_result):
        diss = redisseminate(clique_chain_net, setup_result, source=0, seed=4)
        assert diss.ledger.total <= setup_result.ledger.get("dissemination") * 4
        assert diss.ledger.total < setup_result.total_slots / 10

    def test_deterministic(self, clique_chain_net, setup_result):
        a = redisseminate(clique_chain_net, setup_result, source=2, seed=5)
        b = redisseminate(clique_chain_net, setup_result, source=2, seed=5)
        assert (a.informed_slot == b.informed_slot).all()

    def test_rejects_invalid_setup(self, clique_chain_net, setup_result):
        import dataclasses

        broken = dataclasses.replace(setup_result, coloring_valid=False)
        with pytest.raises(ProtocolError, match="invalid"):
            redisseminate(clique_chain_net, broken, source=0)

    def test_setup_artifacts_exposed(self, setup_result):
        assert setup_result.edge_colors
        assert set(setup_result.dedicated) == set(setup_result.edge_colors)
